#include <gtest/gtest.h>

#include <cmath>

#include "graph/datasets.h"
#include "graph/stats.h"
#include "rng/rng.h"

namespace gcon {
namespace {

TEST(Specs, TableTwoNumbers) {
  const DatasetSpec cora = CoraMlSpec();
  EXPECT_EQ(cora.num_nodes, 2995);
  EXPECT_EQ(cora.num_undirected_edges, 8158u);  // 16,316 directed
  EXPECT_EQ(cora.num_features, 2879);
  EXPECT_EQ(cora.num_classes, 7);
  EXPECT_NEAR(cora.homophily, 0.81, 1e-9);

  const DatasetSpec cite = CiteSeerSpec();
  EXPECT_EQ(cite.num_nodes, 3327);
  EXPECT_EQ(cite.num_classes, 6);
  EXPECT_NEAR(cite.homophily, 0.71, 1e-9);

  const DatasetSpec pubmed = PubMedSpec();
  EXPECT_EQ(pubmed.num_nodes, 19717);
  EXPECT_EQ(pubmed.num_features, 500);
  EXPECT_EQ(pubmed.num_classes, 3);

  const DatasetSpec actor = ActorSpec();
  EXPECT_EQ(actor.num_nodes, 7600);
  EXPECT_EQ(actor.num_classes, 5);
  EXPECT_NEAR(actor.homophily, 0.22, 1e-9);
  EXPECT_FALSE(actor.planetoid_split);
}

TEST(Specs, SpecByNameRoundTrip) {
  EXPECT_EQ(SpecByName("cora_ml").name, "cora_ml");
  EXPECT_EQ(SpecByName("citeseer").name, "citeseer");
  EXPECT_EQ(SpecByName("pubmed").name, "pubmed");
  EXPECT_EQ(SpecByName("actor").name, "actor");
  EXPECT_EQ(SpecByName("tiny").name, "tiny");
  EXPECT_EQ(PaperSpecs().size(), 4u);
}

TEST(Specs, ScaledShrinksProportionally) {
  const DatasetSpec full = PubMedSpec();
  const DatasetSpec half = Scaled(full, 0.1);
  EXPECT_EQ(half.num_nodes, static_cast<int>(full.num_nodes * 0.1));
  EXPECT_LT(half.num_undirected_edges, full.num_undirected_edges);
  EXPECT_LE(half.num_features, full.num_features);
  EXPECT_EQ(half.num_classes, full.num_classes);
  EXPECT_DOUBLE_EQ(half.homophily, full.homophily);
  // Identity scale returns the spec unchanged.
  const DatasetSpec same = Scaled(full, 1.0);
  EXPECT_EQ(same.num_nodes, full.num_nodes);
  EXPECT_EQ(same.num_undirected_edges, full.num_undirected_edges);
}

class GeneratorCalibration : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorCalibration, MatchesSpec) {
  // Scaled-down for test speed; calibration properties must survive scaling.
  const DatasetSpec spec = Scaled(SpecByName(GetParam()), 0.15);
  Rng rng(99);
  const Graph graph = GenerateDataset(spec, &rng);
  graph.CheckConsistency();

  EXPECT_EQ(graph.num_nodes(), spec.num_nodes);
  EXPECT_EQ(graph.num_classes(), spec.num_classes);
  EXPECT_EQ(graph.feature_dim(), spec.num_features);
  // Edge count within 2% of target (generator stops exactly at target
  // unless the attempt cap was hit).
  EXPECT_GE(graph.num_edges(),
            static_cast<std::size_t>(0.98 * spec.num_undirected_edges));
  EXPECT_LE(graph.num_edges(), spec.num_undirected_edges);
  // Homophily tracks the per-edge same-label probability.
  EXPECT_NEAR(HomophilyRatio(graph), spec.homophily, 0.08);
  // Balanced classes.
  for (int c = 0; c < spec.num_classes; ++c) {
    EXPECT_NEAR(ClassFraction(graph, c), 1.0 / spec.num_classes, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperDatasets, GeneratorCalibration,
                         ::testing::Values("cora_ml", "citeseer", "pubmed",
                                           "actor"));

TEST(Generator, FeaturesAreSparseNonNegative) {
  Rng rng(7);
  const Graph graph = GenerateDataset(TinySpec(), &rng);
  const Matrix& x = graph.features();
  std::size_t nonzero = 0;
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_GE(x.data()[k], 0.0);
    if (x.data()[k] != 0.0) ++nonzero;
  }
  EXPECT_GT(nonzero, 0u);
  EXPECT_LT(nonzero, x.size() / 2);  // sparse
  // Every node has at least one active word (no all-zero feature rows).
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) row_sum += x(i, j);
    EXPECT_GT(row_sum, 0.0) << "node " << i;
  }
}

TEST(Generator, FeaturesAreClassInformative) {
  // Same-class nodes share topic blocks, so mean intra-class feature dot
  // product should exceed inter-class. This is what makes the MLP baseline
  // meaningful (as in the real citation data).
  Rng rng(8);
  const Graph graph = GenerateDataset(TinySpec(), &rng);
  const Matrix& x = graph.features();
  double intra = 0.0, inter = 0.0;
  int intra_n = 0, inter_n = 0;
  for (int u = 0; u < graph.num_nodes(); ++u) {
    for (int v = u + 1; v < graph.num_nodes(); ++v) {
      double dot = 0.0;
      for (std::size_t j = 0; j < x.cols(); ++j) {
        dot += x(static_cast<std::size_t>(u), j) * x(static_cast<std::size_t>(v), j);
      }
      if (graph.label(u) == graph.label(v)) {
        intra += dot;
        ++intra_n;
      } else {
        inter += dot;
        ++inter_n;
      }
    }
  }
  EXPECT_GT(intra / intra_n, 1.3 * (inter / inter_n));
}

TEST(Generator, DegreeDistributionIsSkewed) {
  Rng rng(9);
  DatasetSpec spec = TinySpec();
  spec.num_nodes = 400;
  spec.num_undirected_edges = 1200;
  const Graph graph = GenerateDataset(spec, &rng);
  // Preferential weights should give max degree well above the mean.
  EXPECT_GT(MaxDegree(graph), 3 * MeanDegree(graph));
}

TEST(Generator, DeterministicGivenSeed) {
  Rng rng_a(123), rng_b(123);
  const Graph a = GenerateDataset(TinySpec(), &rng_a);
  const Graph b = GenerateDataset(TinySpec(), &rng_b);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
  EXPECT_TRUE(a.features().AllClose(b.features()));
}

TEST(Generator, MakeSplitRespectsPolicy) {
  Rng rng(10);
  const DatasetSpec tiny = TinySpec();  // planetoid policy
  const Graph graph = GenerateDataset(tiny, &rng);
  const Split split = MakeSplit(tiny, graph, &rng);
  EXPECT_EQ(split.train.size(),
            static_cast<std::size_t>(tiny.train_per_class * tiny.num_classes));

  DatasetSpec actorish = TinySpec();
  actorish.planetoid_split = false;  // 60/20/20
  const Split prop = MakeSplit(actorish, graph, &rng);
  EXPECT_EQ(prop.train.size(), static_cast<std::size_t>(0.6 * tiny.num_nodes));
}

}  // namespace
}  // namespace gcon
