// Chaos suite for the serving tier: every injected fault must yield a
// structured error or a clean retry — never a crash, a hang, or wrong
// bits. Each scenario arms one FaultInjector site (queue-full admission,
// slow handler ahead of the deadline check, mid-batch handler throw, torn
// TCP socket, publish-during-batch) and asserts the failure is contained:
// the rejected query gets its coded ServeError, every *other* query gets
// its bitwise-offline answer, and the process keeps serving afterwards.
//
// Also home to the Stop-racing-Submit and drain lifecycle tests — the
// shutdown races the sanitizer matrix (TSan in particular) must see.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/datasets.h"
#include "linalg/ops.h"
#include "serve_test_util.h"
#include "serve/batcher.h"
#include "serve/fault_injection.h"
#include "serve/inference_session.h"
#include "serve/serve_error.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace gcon {
namespace {

using serve_test::BitwiseEqualRow;
using serve_test::SyntheticArtifact;
using serve_test::TestGraph;

/// Every chaos test disarms the global injector on the way out so a fault
/// can never leak into a later test (the injector is process-wide).
class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// --- The injector itself ---------------------------------------------------

TEST_F(ServeChaosTest, ArmFromSpecParsesCountsAndRejectsJunk) {
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_TRUE(injector.ArmFromSpec("queue_full:3,torn_socket"));
  EXPECT_TRUE(injector.ShouldFire(Fault::kQueueFull));
  EXPECT_TRUE(injector.ShouldFire(Fault::kQueueFull));
  EXPECT_TRUE(injector.ShouldFire(Fault::kQueueFull));
  EXPECT_FALSE(injector.ShouldFire(Fault::kQueueFull));
  EXPECT_TRUE(injector.ShouldFire(Fault::kTornSocket));
  EXPECT_FALSE(injector.ShouldFire(Fault::kTornSocket));
  EXPECT_EQ(injector.fired(Fault::kQueueFull), 3u);
  injector.Reset();
  EXPECT_FALSE(injector.ArmFromSpec("no_such_fault"));
  EXPECT_FALSE(injector.ArmFromSpec("queue_full:zero"));
  EXPECT_FALSE(injector.ArmFromSpec("queue_full:0"));
  // Disarmed again after Reset: the fast path must answer false.
  injector.Reset();
  EXPECT_FALSE(injector.ShouldFire(Fault::kQueueFull));
  EXPECT_EQ(injector.fired(Fault::kQueueFull), 0u);
}

// --- Overload: structured rejection, clean retry ---------------------------

TEST_F(ServeChaosTest, InjectedQueueFullRejectsWithCodeAndRetrySucceeds) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 41);
  const Matrix offline = artifact.Infer(graph);
  InferenceServer server(InferenceSession(artifact, graph), ServeOptions{});

  FaultInjector::Global().Arm(Fault::kQueueFull, 1);
  ServeRequest request;
  request.id = 1;
  request.node = 3;
  try {
    server.Query(request);
    FAIL() << "expected ServeError(kOverloaded)";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kOverloaded);
    EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos);
  }
  // The fault fired once; the retry is a clean admit with offline bits.
  const ServeResponse response = server.Query(request);
  EXPECT_TRUE(BitwiseEqualRow(offline, 3, response.logits));
  const std::string stats = server.StatsJson();
  EXPECT_NE(stats.find("\"rejected_overload\": 1"), std::string::npos)
      << stats;
}

TEST_F(ServeChaosTest, RealOverloadBoundedQueueShedsAndNeverHangs) {
  // A handler gated shut while submissions flood in: the queue must stop
  // at max_queue (shedding the rest with kOverloaded), and once the gate
  // opens every accepted query must resolve.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  ServeOptions options;
  options.threads = 1;
  options.max_batch = 1;
  options.max_queue = 4;
  MicroBatcher batcher(options, [&](std::vector<PendingQuery*>& batch) {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
    for (PendingQuery* p : batch) p->response.label = p->request.node;
  });

  std::vector<std::pair<int, std::future<ServeResponse>>> accepted;
  int rejected = 0;
  for (int i = 0; i < 32; ++i) {
    ServeRequest request;
    request.node = i;
    try {
      accepted.emplace_back(i, batcher.Submit(request));
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ServeErrorCode::kOverloaded);
      ++rejected;
    }
  }
  // At most max_queue pending + whatever the single worker already took.
  EXPECT_LE(accepted.size(), 4u + 1u);
  EXPECT_EQ(accepted.size() + static_cast<std::size_t>(rejected), 32u);
  EXPECT_GE(rejected, 1);
  EXPECT_LE(batcher.queue_peak(0), 4u);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (auto& [node, future] : accepted) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "accepted query " << node << " hung";
    EXPECT_EQ(future.get().label, node);
  }
  EXPECT_EQ(batcher.rejected_overload(0),
            static_cast<std::uint64_t>(rejected));
  batcher.Stop();
}

// --- Deadlines -------------------------------------------------------------

TEST_F(ServeChaosTest, ExpiredDeadlineDropsBeforeExecutionWithCode) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 43);
  const Matrix offline = artifact.Infer(graph);
  ServeOptions options;
  options.threads = 1;
  InferenceServer server(InferenceSession(artifact, graph), options);

  // The slow-handler fault sleeps AFTER the batch is taken and BEFORE the
  // deadline check, so a 1us deadline is deterministically expired by the
  // time the worker looks at it.
  FaultInjector::Global().set_slow_handler_us(20000);
  FaultInjector::Global().Arm(Fault::kSlowHandler, 1);
  ServeRequest doomed;
  doomed.id = 1;
  doomed.node = 5;
  doomed.deadline_us = 1;
  std::future<ServeResponse> future = server.QueryAsync(doomed);
  try {
    future.get();
    FAIL() << "expected ServeError(kDeadlineExceeded)";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kDeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  // A roomy deadline serves normally, bitwise.
  ServeRequest fine;
  fine.id = 2;
  fine.node = 5;
  fine.deadline_us = 30 * 1000 * 1000;
  EXPECT_TRUE(BitwiseEqualRow(offline, 5, server.Query(fine).logits));
  const std::string stats = server.StatsJson();
  EXPECT_NE(stats.find("\"rejected_deadline\": 1"), std::string::npos)
      << stats;
}

// --- Mid-batch handler failure ---------------------------------------------

TEST_F(ServeChaosTest, MidBatchThrowFailsThatBatchOnlyAndServerRecovers) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 47);
  const Matrix offline = artifact.Infer(graph);
  InferenceServer server(InferenceSession(artifact, graph), ServeOptions{});

  FaultInjector::Global().Arm(Fault::kMidBatchThrow, 1);
  ServeRequest request;
  request.id = 1;
  request.node = 2;
  std::future<ServeResponse> poisoned = server.QueryAsync(request);
  try {
    poisoned.get();
    FAIL() << "expected the injected handler failure";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("injected mid-batch fault"),
              std::string::npos);
  }
  // The worker survived its handler throwing: the next query is served
  // with the exact offline bits.
  EXPECT_TRUE(BitwiseEqualRow(offline, 2, server.Query(request).logits));
}

// --- Hot-swap racing an in-flight batch ------------------------------------

TEST_F(ServeChaosTest, PublishInsideBatchWindowYieldsOldOrNewBitsOnly) {
  const Graph graph = TestGraph();
  const GconArtifact artifact_a = SyntheticArtifact(graph, {0, 2}, 8, 53);
  const GconArtifact artifact_b = SyntheticArtifact(graph, {2}, 8, 153);
  const Matrix offline_a = artifact_a.Infer(graph);
  const Matrix offline_b = artifact_b.Infer(graph);
  ServeOptions options;
  options.threads = 2;
  options.max_batch = 8;
  InferenceServer server(InferenceSession(artifact_a, graph), options);

  // The callback runs inside the handler, right after the batch snapshots
  // its session — the worst-case window for an atomic swap. That batch
  // must finish on its snapshot (A); later batches read B.
  FaultInjector::Global().SetCallback(Fault::kSwapDuringBatch, [&] {
    server.Publish("", InferenceSession(artifact_b, graph));
  });
  FaultInjector::Global().Arm(Fault::kSwapDuringBatch, 1);

  std::vector<std::future<ServeResponse>> futures;
  for (int q = 0; q < 64; ++q) {
    ServeRequest request;
    request.id = q;
    request.node = q % graph.num_nodes();
    futures.push_back(server.QueryAsync(request));
  }
  int from_a = 0;
  int from_b = 0;
  for (int q = 0; q < 64; ++q) {
    const ServeResponse response =
        futures[static_cast<std::size_t>(q)].get();
    const auto row = static_cast<std::size_t>(q % graph.num_nodes());
    if (BitwiseEqualRow(offline_a, row, response.logits)) {
      ++from_a;
    } else if (BitwiseEqualRow(offline_b, row, response.logits)) {
      ++from_b;
    } else {
      ADD_FAILURE() << "query " << q
                    << " matches neither version bitwise (torn swap)";
    }
  }
  EXPECT_EQ(from_a + from_b, 64);
  EXPECT_EQ(FaultInjector::Global().fired(Fault::kSwapDuringBatch), 1u);
  // The swap completed: from here on, every answer is version B.
  ServeRequest after;
  after.node = 1;
  EXPECT_TRUE(BitwiseEqualRow(offline_b, 1, server.Query(after).logits));
}

TEST_F(ServeChaosTest, PublishRejectsDifferentPopulation) {
  const Graph graph = TestGraph(9);
  const GconArtifact artifact = SyntheticArtifact(graph, {2}, 8, 57);
  InferenceServer server(InferenceSession(artifact, graph), ServeOptions{});
  // One extra node is a different population: every admitted request was
  // validated against the served graph, so the swap must refuse.
  const Graph bigger = serve_test::AugmentGraph(
      graph, std::vector<double>(
                 static_cast<std::size_t>(graph.feature_dim()), 0.0),
      {});
  const GconArtifact big_artifact = SyntheticArtifact(bigger, {2}, 8, 58);
  try {
    server.Publish("", InferenceSession(big_artifact, bigger));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("different population"),
              std::string::npos)
        << e.what();
  }
}

// --- Torn socket -----------------------------------------------------------

/// Minimal blocking client for the TCP chaos scenarios.
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void SendLine(const std::string& line) {
    const std::string data = line + "\n";
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;  // chaos scenarios tolerate a dead socket
      sent += static_cast<std::size_t>(n);
    }
  }
  /// Reads until EOF; returns everything received (possibly a torn line).
  std::string ReadAll() {
    std::string data;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return data;
      data.append(chunk, static_cast<std::size_t>(n));
    }
  }
  /// Next full line (without newline); "" on EOF.
  std::string ReadLine() {
    for (;;) {
      const std::size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        const std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// TCP fixture: one default model behind the real front end on an
/// ephemeral port.
class TcpChaos {
 public:
  TcpChaos(const GconArtifact& artifact, const Graph& graph,
           ServeOptions options)
      : server_(InferenceSession(artifact, graph), options) {
    listener_ = std::thread(
        [this] { RunTcpServer(&server_, /*port=*/0, &shutdown_, &port_); });
    while (port_.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ~TcpChaos() {
    shutdown_.store(true, std::memory_order_release);
    listener_.join();
  }
  int port() const { return port_.load(std::memory_order_acquire); }
  InferenceServer& server() { return server_; }

 private:
  InferenceServer server_;
  std::thread listener_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> port_{0};
};

TEST_F(ServeChaosTest, TornSocketMidResponseLeavesServerServing) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 59);
  const Matrix offline = artifact.Infer(graph);
  ServeOptions options;
  options.threads = 2;
  TcpChaos tcp(artifact, graph, options);

  FaultInjector::Global().Arm(Fault::kTornSocket, 1);
  {
    RawClient victim(tcp.port());
    ASSERT_TRUE(victim.connected());
    victim.SendLine("{\"id\": 1, \"node\": 4}");
    // The injected tear delivers half the response line, then kills the
    // connection: the client sees a strict prefix of the real answer, then
    // EOF — and the server side must shrug, not crash or wedge.
    ServeResponse expected;
    expected.id = 1;
    expected.node = 4;
    expected.label = static_cast<int>(RowArgMax(offline, 4));
    expected.logits = offline.RowCopy(4);
    const std::string full = FormatWireResponse(expected) + "\n";
    const std::string torn = victim.ReadAll();
    EXPECT_LT(torn.size(), full.size());
    EXPECT_EQ(full.compare(0, torn.size(), torn), 0)
        << "torn bytes are not a prefix of the real response";
    EXPECT_EQ(torn.find('\n'), std::string::npos) << torn;
  }
  // A fresh connection gets clean, bitwise-offline service.
  RawClient survivor(tcp.port());
  ASSERT_TRUE(survivor.connected());
  survivor.SendLine("{\"id\": 2, \"node\": 4}");
  const std::string line = survivor.ReadLine();
  EXPECT_EQ(line.rfind("{\"id\": 2, \"node\": 4, ", 0), 0u) << line;
}

// --- Drain lifecycle -------------------------------------------------------

TEST_F(ServeChaosTest, DrainFlushesAcceptedWorkAndRejectsNewWithCode) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 61);
  const Matrix offline = artifact.Infer(graph);
  ServeOptions options;
  options.threads = 2;
  options.max_batch = 8;
  InferenceServer server(InferenceSession(artifact, graph), options);

  std::vector<std::future<ServeResponse>> accepted;
  for (int q = 0; q < 24; ++q) {
    ServeRequest request;
    request.id = q;
    request.node = q % graph.num_nodes();
    accepted.push_back(server.QueryAsync(request));
  }
  server.BeginDrain();
  ServeRequest late;
  late.node = 0;
  try {
    server.Query(late);
    FAIL() << "expected ServeError(kDraining)";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kDraining);
  }
  server.Drain();  // idempotent over BeginDrain; joins the workers
  for (int q = 0; q < 24; ++q) {
    const ServeResponse response =
        accepted[static_cast<std::size_t>(q)].get();
    EXPECT_TRUE(BitwiseEqualRow(
        offline, static_cast<std::size_t>(q % graph.num_nodes()),
        response.logits))
        << "query " << q << " dropped or corrupted by drain";
  }
  EXPECT_EQ(server.queries_served(), 24u);
}

TEST_F(ServeChaosTest, StopRacingSubmitResolvesEveryFuture) {
  // The shutdown race TSan must see: submitters hammer Submit while the
  // batcher Stops underneath them. Every outcome is binary — a submission
  // either throws ServeError(kDraining) at the call site or returns a
  // future that RESOLVES. A future that never resolves (a dropped promise)
  // hangs the wait below and fails the test.
  for (int round = 0; round < 8; ++round) {
    ServeOptions options;
    options.threads = 2;
    options.max_batch = 4;
    auto batcher = std::make_unique<MicroBatcher>(
        options, [](std::vector<PendingQuery*>& batch) {
          for (PendingQuery* p : batch) {
            p->response.label = p->request.node;
          }
        });
    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 50;
    std::mutex futures_mu;
    std::vector<std::pair<int, std::future<ServeResponse>>> futures;
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          ServeRequest request;
          request.node = t * kPerThread + i;
          try {
            std::future<ServeResponse> f = batcher->Submit(request);
            std::lock_guard<std::mutex> lock(futures_mu);
            futures.emplace_back(request.node, std::move(f));
          } catch (const ServeError&) {
            // Rejected at the door: fine, as long as it's structured.
          }
        }
      });
    }
    // Stop lands at a different point in the submission storm each round
    // (the yield count staggers it without wall-clock sleeps).
    for (int spin = 0; spin < round * 16; ++spin) {
      std::this_thread::yield();
    }
    batcher->Stop();
    for (auto& t : submitters) t.join();
    for (auto& [node, future] : futures) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "round " << round << ": a submitted future never resolved";
      EXPECT_EQ(future.get().label, node);
    }
  }
}

// --- Whole-process spec arming (the GCON_FAULTS path) ----------------------

TEST_F(ServeChaosTest, SpecArmedFaultBehavesLikeProgrammaticArm) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {2}, 8, 67);
  InferenceServer server(InferenceSession(artifact, graph), ServeOptions{});
  // Same parser the GCON_FAULTS env var uses at first Global() touch.
  ASSERT_TRUE(FaultInjector::Global().ArmFromSpec("queue_full:2"));
  int rejected = 0;
  for (int i = 0; i < 4; ++i) {
    ServeRequest request;
    request.node = 0;
    try {
      server.Query(request);
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ServeErrorCode::kOverloaded);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(FaultInjector::Global().fired(Fault::kQueueFull), 2u);
}

}  // namespace
}  // namespace gcon
