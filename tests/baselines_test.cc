#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dpgcn.h"
#include "baselines/dpsgd_gcn.h"
#include "baselines/gap.h"
#include "baselines/gcn.h"
#include "baselines/lpgnet.h"
#include "baselines/mlp_baseline.h"
#include "baselines/progap.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "rng/rng.h"

namespace gcon {
namespace {

struct Fixture {
  Graph graph;
  Split split;
};

Fixture MakeFixture(std::uint64_t seed) {
  const DatasetSpec spec = TinySpec();
  Rng rng(seed);
  Fixture f{GenerateDataset(spec, &rng), {}};
  f.split = MakeSplit(spec, f.graph, &rng);
  return f;
}

double TestF1(const Fixture& f, const Matrix& logits) {
  return MicroF1FromLogits(logits, f.graph.labels(), f.split.test,
                           f.graph.num_classes());
}

double Chance(const Fixture& f) { return 1.0 / f.graph.num_classes(); }

TEST(SymNorm, RowAndColumnScaling) {
  Graph g(3, 2);
  g.AddEdge(0, 1);
  const CsrMatrix a = SymmetricNormalizedAdjacency(g);
  // Node 0: degree 1 -> Â_00 = 1/2, Â_01 = 1/2 (both endpoints degree+1=2).
  EXPECT_NEAR(a.At(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(a.At(0, 1), 0.5, 1e-12);
  // Isolated node 2: Â_22 = 1.
  EXPECT_NEAR(a.At(2, 2), 1.0, 1e-12);
  // Symmetric.
  EXPECT_NEAR(a.At(0, 1), a.At(1, 0), 1e-12);
}

TEST(GcnBaseline, LearnsHomophilousGraph) {
  const Fixture f = MakeFixture(1);
  GcnOptions options;
  options.hidden = 16;
  options.epochs = 150;
  options.seed = 2;
  const Matrix logits = TrainGcnAndPredict(f.graph, f.split, options);
  EXPECT_EQ(logits.rows(), static_cast<std::size_t>(f.graph.num_nodes()));
  // Non-private GCN on an easy homophilous graph should do well.
  EXPECT_GT(TestF1(f, logits), 2.0 * Chance(f));
}

TEST(GcnBaseline, DeterministicGivenSeed) {
  const Fixture f = MakeFixture(2);
  GcnOptions options;
  options.hidden = 8;
  options.epochs = 50;
  options.seed = 7;
  const Matrix a = TrainGcnAndPredict(f.graph, f.split, options);
  const Matrix b = TrainGcnAndPredict(f.graph, f.split, options);
  EXPECT_TRUE(a.AllClose(b, 1e-12));
}

TEST(MlpBaseline, BeatsChanceOnInformativeFeatures) {
  const Fixture f = MakeFixture(3);
  MlpBaselineOptions options;
  options.hidden = 16;
  options.epochs = 150;
  options.seed = 4;
  const Matrix logits = TrainMlpAndPredict(f.graph, f.split, options);
  EXPECT_GT(TestF1(f, logits), 1.5 * Chance(f));
}

TEST(Dpgcn, RunsAndProducesFiniteLogits) {
  const Fixture f = MakeFixture(4);
  DpgcnOptions options;
  options.gcn.hidden = 16;
  options.gcn.epochs = 100;
  options.gcn.seed = 5;
  const Matrix logits = TrainDpgcnAndPredict(f.graph, f.split, 1.0, options);
  EXPECT_EQ(logits.rows(), static_cast<std::size_t>(f.graph.num_nodes()));
  for (std::size_t k = 0; k < logits.size(); ++k) {
    EXPECT_TRUE(std::isfinite(logits.data()[k]));
  }
}

TEST(Dpgcn, HighBudgetApproachesNonPrivateGcn) {
  const Fixture f = MakeFixture(5);
  GcnOptions gcn_options;
  gcn_options.hidden = 16;
  gcn_options.epochs = 150;
  gcn_options.seed = 6;
  const double f1_clean =
      TestF1(f, TrainGcnAndPredict(f.graph, f.split, gcn_options));
  DpgcnOptions options;
  options.gcn = gcn_options;
  // At eps = 50 LapGraph keeps essentially every edge.
  const double f1_dp =
      TestF1(f, TrainDpgcnAndPredict(f.graph, f.split, 50.0, options));
  EXPECT_GT(f1_dp, f1_clean - 0.12);
}

TEST(Gap, RunsAtTightAndLooseBudgets) {
  const Fixture f = MakeFixture(6);
  GapOptions options;
  options.hops = 2;
  options.encoder_hidden = 16;
  options.encoder_dim = 8;
  options.encoder_epochs = 80;
  options.head_epochs = 120;
  options.seed = 7;
  for (double eps : {0.5, 4.0}) {
    const Matrix logits =
        TrainGapAndPredict(f.graph, f.split, eps, 1e-4, options);
    EXPECT_EQ(logits.rows(), static_cast<std::size_t>(f.graph.num_nodes()));
    EXPECT_GT(TestF1(f, logits), 0.8 * Chance(f));
  }
}

TEST(Gap, ZeroHopsEqualsEdgeFreeModel) {
  // With K = 0 GAP touches no edges, so epsilon is irrelevant and utility
  // should match an MLP-like model.
  const Fixture f = MakeFixture(7);
  GapOptions options;
  options.hops = 0;
  options.encoder_hidden = 16;
  options.encoder_dim = 8;
  options.encoder_epochs = 100;
  options.head_epochs = 120;
  options.seed = 8;
  const Matrix logits =
      TrainGapAndPredict(f.graph, f.split, 0.1, 1e-4, options);
  EXPECT_GT(TestF1(f, logits), 1.2 * Chance(f));
}

TEST(Progap, RunsAndBeatsChanceAtLooseBudget) {
  const Fixture f = MakeFixture(8);
  ProgapOptions options;
  options.stages = 2;
  options.hidden = 16;
  options.dim = 8;
  options.stage_epochs = 80;
  options.seed = 9;
  const Matrix logits =
      TrainProgapAndPredict(f.graph, f.split, 4.0, 1e-4, options);
  EXPECT_GT(TestF1(f, logits), 1.2 * Chance(f));
}

TEST(Lpgnet, RunsAndBeatsChance) {
  const Fixture f = MakeFixture(9);
  LpgnetOptions options;
  options.stacks = 2;
  options.hidden = 16;
  options.epochs = 120;
  options.seed = 10;
  const Matrix logits = TrainLpgnetAndPredict(f.graph, f.split, 2.0, options);
  EXPECT_GT(TestF1(f, logits), 1.2 * Chance(f));
}

TEST(Lpgnet, ZeroStacksIsPureMlp) {
  const Fixture f = MakeFixture(10);
  LpgnetOptions options;
  options.stacks = 0;
  options.hidden = 16;
  options.epochs = 120;
  options.seed = 11;
  const Matrix logits = TrainLpgnetAndPredict(f.graph, f.split, 1.0, options);
  EXPECT_GT(TestF1(f, logits), 1.2 * Chance(f));
}

TEST(DpsgdGcn, RunsAndStaysFinite) {
  const Fixture f = MakeFixture(11);
  DpsgdOptions options;
  options.steps = 150;
  options.sample_rate = 0.5;
  options.seed = 12;
  const Matrix logits =
      TrainDpsgdGcnAndPredict(f.graph, f.split, 2.0, 1e-4, options);
  EXPECT_EQ(logits.rows(), static_cast<std::size_t>(f.graph.num_nodes()));
  for (std::size_t k = 0; k < logits.size(); ++k) {
    EXPECT_TRUE(std::isfinite(logits.data()[k]));
  }
}

TEST(DpsgdGcn, LooseBudgetBeatsChance) {
  const Fixture f = MakeFixture(12);
  DpsgdOptions options;
  options.steps = 300;
  options.sample_rate = 0.5;
  options.learning_rate = 0.1;
  options.seed = 13;
  const Matrix logits =
      TrainDpsgdGcnAndPredict(f.graph, f.split, 8.0, 1e-4, options);
  EXPECT_GT(TestF1(f, logits), 1.2 * Chance(f));
}

}  // namespace
}  // namespace gcon
