// The GraphModel registry (src/model/): every registered method must be
// instantiable by name, train on a tiny synthetic graph to finite logits of
// the right shape, and round-trip --set overrides into its options struct;
// unknown names and typo'd keys must fail loudly.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/datasets.h"
#include "model/adapters.h"
#include "rng/rng.h"

namespace gcon {
namespace {

struct TinyData {
  Graph graph;
  Split split;
};

TinyData MakeTinyData(std::uint64_t seed) {
  const DatasetSpec spec = TinySpec();
  Rng rng(seed);
  TinyData data;
  data.graph = GenerateDataset(spec, &rng);
  data.split = MakeSplit(spec, data.graph, &rng);
  return data;
}

/// Small per-method overrides so the full suite trains in seconds.
ModelConfig FastConfig(const std::string& method) {
  ModelConfig config;
  config.Set("epsilon", "2.0");
  config.Set("seed", "3");
  if (method == "gcon") {
    config.Set("encoder_epochs", "40");
    config.Set("max_iterations", "120");
  } else if (method == "dpsgd") {
    config.Set("steps", "60");
  } else if (method == "gap" || method == "progap") {
    // GAP trains encoder_epochs/head_epochs; ProGAP stage_epochs — both
    // accept the shared budget keys and their own epoch knobs.
    if (method == "gap") {
      config.Set("encoder_epochs", "40");
      config.Set("head_epochs", "40");
    } else {
      config.Set("stage_epochs", "40");
    }
  } else {
    config.Set("epochs", "60");
  }
  return config;
}

TEST(ModelRegistry, AllEightMethodsRegistered) {
  const std::vector<std::string> expected = {"dpgcn",  "dpsgd", "gap",
                                             "gcn",    "gcon",  "lpgnet",
                                             "mlp",    "progap"};
  const std::vector<std::string> names = BuiltinModelRegistry().Names();
  for (const std::string& name : expected) {
    EXPECT_TRUE(BuiltinModelRegistry().Contains(name)) << name;
    EXPECT_FALSE(BuiltinModelRegistry().Summary(name).empty()) << name;
  }
  EXPECT_GE(names.size(), expected.size());
}

TEST(ModelRegistry, UnknownMethodThrowsWithAlternatives) {
  try {
    BuiltinModelRegistry().Create("no_such_method", ModelConfig());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no_such_method"), std::string::npos) << message;
    // The error must list the registered names so a typo is self-serviced.
    EXPECT_NE(message.find("gcon"), std::string::npos) << message;
    EXPECT_NE(message.find("lpgnet"), std::string::npos) << message;
  }
}

TEST(ModelRegistry, UnknownConfigKeyThrows) {
  ModelConfig config;
  config.Set("hiden", "7");  // typo for "hidden"
  try {
    BuiltinModelRegistry().Create("gcn", config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hiden"), std::string::npos)
        << e.what();
  }
}

TEST(ModelRegistry, MalformedNumericValueThrows) {
  ModelConfig config;
  config.Set("hidden", "thirty-two");
  EXPECT_THROW(BuiltinModelRegistry().Create("gcn", config),
               std::invalid_argument);
}

TEST(ModelRegistry, EveryMethodTrainsToFiniteLogits) {
  const TinyData data = MakeTinyData(/*seed=*/7);
  const std::size_t n = static_cast<std::size_t>(data.graph.num_nodes());
  const std::size_t c = static_cast<std::size_t>(data.graph.num_classes());
  for (const std::string& name : BuiltinModelRegistry().Names()) {
    SCOPED_TRACE(name);
    std::unique_ptr<GraphModel> model =
        BuiltinModelRegistry().Create(name, FastConfig(name));
    EXPECT_EQ(model->name(), name);
    EXPECT_FALSE(model->Describe().empty());

    const TrainResult result = model->Train(data.graph, data.split);
    EXPECT_EQ(result.method, name);
    ASSERT_EQ(result.logits.rows(), n);
    ASSERT_EQ(result.logits.cols(), c);
    for (std::size_t k = 0; k < result.logits.size(); ++k) {
      ASSERT_TRUE(std::isfinite(result.logits.data()[k]))
          << "non-finite logit at flat index " << k;
    }
    EXPECT_GE(result.test_micro_f1, 0.0);
    EXPECT_LE(result.test_micro_f1, 1.0);
    EXPECT_GE(result.test_macro_f1, 0.0);
    EXPECT_LE(result.test_macro_f1, 1.0);
    EXPECT_GE(result.train_seconds, 0.0);
    EXPECT_GE(result.epsilon_spent, 0.0);  // 0 (mlp) .. inf (gcn)

    // Predict on the training graph agrees with the reported logits.
    const Matrix again = model->Predict(data.graph);
    ASSERT_EQ(again.rows(), n);
    ASSERT_EQ(again.cols(), c);
  }
}

TEST(ModelRegistry, PrivacyBudgetFlagsMatchTheMethods) {
  const TinyData data = MakeTinyData(/*seed=*/7);
  (void)data;
  for (const std::string& name : BuiltinModelRegistry().Names()) {
    std::unique_ptr<GraphModel> model =
        BuiltinModelRegistry().Create(name, ModelConfig());
    const bool wants_budget = name != "gcn" && name != "mlp";
    EXPECT_EQ(model->UsesPrivacyBudget(), wants_budget) << name;
  }
}

TEST(ModelConfig, SetOverridesRoundTripIntoOptions) {
  // The same overrides a user passes as `--set k=v` must show up in the
  // resolved options the adapter reports via Describe().
  ModelConfig config;
  config.SetFromFlag("hidden=7");
  config.SetFromFlag("epochs=3");
  config.SetFromFlag("learning_rate=0.125");
  std::unique_ptr<GraphModel> model =
      BuiltinModelRegistry().Create("gcn", config);
  const std::string described = model->Describe();
  EXPECT_NE(described.find("hidden=7"), std::string::npos) << described;
  EXPECT_NE(described.find("epochs=3"), std::string::npos) << described;
  EXPECT_NE(described.find("learning_rate=0.125"), std::string::npos)
      << described;
}

TEST(ModelConfig, GconStepsAndBudgetRoundTrip) {
  ModelConfig config;
  config.SetFromFlag("steps=0,2,inf");
  config.SetFromFlag("epsilon=2.5");
  config.SetFromFlag("alpha=0.45");
  std::unique_ptr<GraphModel> model =
      BuiltinModelRegistry().Create("gcon", config);
  const std::string described = model->Describe();
  EXPECT_NE(described.find("steps=0,2,inf"), std::string::npos) << described;
  EXPECT_NE(described.find("epsilon=2.5"), std::string::npos) << described;
  EXPECT_NE(described.find("alpha=0.45"), std::string::npos) << described;
}

TEST(ModelConfig, MalformedSetFlagThrows) {
  ModelConfig config;
  EXPECT_THROW(config.SetFromFlag("novalue"), std::invalid_argument);
  EXPECT_THROW(config.SetFromFlag("=5"), std::invalid_argument);
}

TEST(ModelRegistry, ConcurrentLookupsAreSafe) {
  // The parallel experiment engine Creates a model per run from worker
  // threads; lookups must tolerate full concurrency (shared locks — the
  // CI ThreadSanitizer job runs this test under TSan).
  BuiltinModelRegistry();  // registration happens-before the workers
  std::vector<std::thread> workers;
  std::atomic<int> created{0};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&created, t] {
      const std::vector<std::string> names = BuiltinModelRegistry().Names();
      EXPECT_EQ(names.size(), 8u);
      const std::string& method = names[static_cast<std::size_t>(t) %
                                        names.size()];
      EXPECT_TRUE(BuiltinModelRegistry().Contains(method));
      EXPECT_FALSE(BuiltinModelRegistry().Summary(method).empty());
      ModelConfig config;
      if (method != "mlp" && method != "gcn") config.Set("epsilon", "1.0");
      auto model = BuiltinModelRegistry().Create(method, config);
      EXPECT_EQ(model->name(), method);
      created.fetch_add(1);
      EXPECT_THROW(BuiltinModelRegistry().Create("no-such-method", {}),
                   std::invalid_argument);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(created.load(), 8);
}

TEST(ModelConfig, ParseStepsRejectsGarbage) {
  EXPECT_THROW(ParseStepsOrThrow("2,x"), std::invalid_argument);
  EXPECT_THROW(ParseStepsOrThrow("-3"), std::invalid_argument);
  EXPECT_THROW(ParseStepsOrThrow(""), std::invalid_argument);
  const std::vector<int> steps = ParseStepsOrThrow("0,2,inf");
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[2], -1);  // kInfiniteSteps
}

}  // namespace
}  // namespace gcon
