// LatencyStats property suite.
//
// The Prometheus exposition renders histogram buckets via
// BucketUpperBound(BucketIndex(value)), so these two functions carry a
// format-facing contract: the bound must never understate the value, the
// index must be stable, and quantiles derived from the buckets must never
// understate the true quantile. The properties are swept across 2^0..2^20
// us rather than spot-checked. Also pins the Reset() memory-ordering
// contract with a TSan-aimed concurrent Record/Add/Reset/Summarize hammer.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "serve/latency_stats.h"

namespace gcon {
namespace {

TEST(LatencyStatsTest, BucketBoundNeverUnderstatesSweep) {
  // Exhaustive below 4096, then every octave boundary's neighborhood up to
  // 2^20 — covers the exact-index region (<8), the generic octave math,
  // and the off-by-one-prone edges at each power of two.
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 4096; ++v) values.push_back(v);
  for (int shift = 12; shift <= 20; ++shift) {
    const std::uint64_t base = 1ull << shift;
    for (std::uint64_t delta = 0; delta < 16; ++delta) {
      values.push_back(base - delta - 1);
      values.push_back(base + delta);
    }
  }
  int prev_index = -1;
  std::uint64_t prev_value = 0;
  for (std::uint64_t v : values) {
    const int index = LatencyStats::BucketIndex(v);
    ASSERT_GE(index, 0) << v;
    ASSERT_LT(index, LatencyStats::kBuckets) << v;
    ASSERT_LE(v, LatencyStats::BucketUpperBound(index)) << v;
    // BucketIndex is monotone in the value (values is built ascending
    // within each region; only compare within ascending runs).
    if (v >= prev_value) {
      ASSERT_GE(index, prev_index) << v;
    }
    prev_index = index;
    prev_value = v;
  }
}

TEST(LatencyStatsTest, BucketBoundRoundTripsThroughIndex) {
  // Every reachable bucket's upper bound must map back to that bucket.
  // Buckets 8..23 are unreachable by construction: BucketIndex(us) for
  // us < 8 returns us directly, and the first generic octave (us >= 8)
  // starts at index 24 (octave 3 * 8 sub-buckets).
  for (int b = 0; b < LatencyStats::kBuckets; ++b) {
    if (b >= 8 && b < 24) continue;
    EXPECT_EQ(LatencyStats::BucketIndex(LatencyStats::BucketUpperBound(b)), b)
        << "bucket " << b;
  }
}

TEST(LatencyStatsTest, QuantilesNeverUnderstate) {
  LatencyStats stats;
  for (int us = 1; us <= 1000; ++us) {
    stats.Record(static_cast<double>(us));
  }
  const LatencyStats::Snapshot snapshot = stats.Summarize();
  EXPECT_EQ(snapshot.count, 1000u);
  EXPECT_DOUBLE_EQ(snapshot.mean_us, 500.5);
  EXPECT_DOUBLE_EQ(snapshot.max_us, 1000.0);
  // Reported percentiles are bucket upper bounds: >= the true quantile,
  // and clamped to the observed max.
  EXPECT_GE(snapshot.p50_us, 500.0);
  EXPECT_GE(snapshot.p95_us, 950.0);
  EXPECT_GE(snapshot.p99_us, 990.0);
  EXPECT_LE(snapshot.p50_us, snapshot.max_us);
  EXPECT_LE(snapshot.p95_us, snapshot.max_us);
  EXPECT_LE(snapshot.p99_us, snapshot.max_us);
  EXPECT_LE(snapshot.p50_us, snapshot.p95_us);
  EXPECT_LE(snapshot.p95_us, snapshot.p99_us);
}

TEST(LatencyStatsTest, NegativeAndSaturatingValuesClamp) {
  LatencyStats stats;
  stats.Record(-5.0);   // clamps to 0
  stats.Record(1e18);   // saturates into the last bucket
  const auto counts = stats.BucketCounts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[LatencyStats::kBuckets - 1], 1u);
  EXPECT_EQ(stats.TotalCount(), 2u);
}

TEST(LatencyStatsTest, ResetZeroesEverything) {
  LatencyStats stats;
  stats.Record(10.0);
  stats.Record(500.0);
  stats.Reset();
  EXPECT_EQ(stats.TotalCount(), 0u);
  EXPECT_EQ(stats.SumUs(), 0u);
  const LatencyStats::Snapshot snapshot = stats.Summarize();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.max_us, 0.0);
  for (const std::uint64_t c : stats.BucketCounts()) {
    EXPECT_EQ(c, 0u);
  }
}

TEST(LatencyStatsTest, ConcurrentRecordAddResetSummarizeIsRaceFree) {
  // TSan target for the Reset() contract: recorders, an aggregator, and a
  // resetter all run concurrently. Values are asserted only after
  // quiescing — mid-burst views are approximations by contract, the test
  // is that no access is a data race.
  LatencyStats stats;
  LatencyStats aggregate;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stats, t] {
      for (int i = 0; i < 2000; ++i) {
        stats.Record(static_cast<double>((t + 1) * (i % 100 + 1)));
      }
    });
  }
  threads.emplace_back([&stats, &aggregate] {
    for (int i = 0; i < 200; ++i) {
      aggregate.Add(stats);
      (void)stats.Summarize();
      (void)stats.BucketCounts();
    }
  });
  threads.emplace_back([&stats] {
    for (int i = 0; i < 100; ++i) {
      stats.Reset();
    }
  });
  for (auto& thread : threads) thread.join();

  // Quiesced: a final Reset leaves a provably empty histogram.
  stats.Reset();
  EXPECT_EQ(stats.TotalCount(), 0u);
  EXPECT_EQ(stats.Summarize().count, 0u);
}

}  // namespace
}  // namespace gcon
