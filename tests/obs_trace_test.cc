// TraceRecorder unit suite: sampling arithmetic, the disarmed fast path,
// seqlock ring wraparound, TracesJson structure, and a TSan-aimed
// concurrent writers-vs-reader hammer (the ring is lock-free; readers must
// skip torn slots rather than block or tear).
//
// Every test uses a LOCAL TraceRecorder so the global instance (default
// disarmed) is never left configured for later suites.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gcon {
namespace obs {
namespace {

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceRecorderTest, DisarmedByDefault) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.sample_every(), 0u);
  EXPECT_EQ(recorder.MaybeStart(1, kTransportJson), nullptr);
  EXPECT_EQ(recorder.sampled(), 0u);
  const std::string json = recorder.TracesJson();
  EXPECT_NE(json.find("\"sample_every\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"traces\": []"), std::string::npos) << json;
}

TEST(TraceRecorderTest, SamplesOneInN) {
  TraceRecorder recorder;
  recorder.Configure(/*sample_every=*/4, /*slow_query_us=*/0);
  int live = 0;
  for (int q = 0; q < 16; ++q) {
    auto trace = recorder.MaybeStart(q, kTransportJson);
    if (trace) {
      ++live;
      recorder.Finish(trace);
    }
  }
  EXPECT_EQ(live, 4);  // requests 0, 4, 8, 12
  EXPECT_EQ(recorder.sampled(), 4u);
}

TEST(TraceRecorderTest, FinishIgnoresNullAndRecordsSpans) {
  TraceRecorder recorder;
  recorder.Configure(1, 0);
  recorder.Finish(nullptr);  // no-op, no crash, no ring entry
  EXPECT_EQ(recorder.sampled(), 0u);

  auto trace = recorder.MaybeStart(42, kTransportBinary);
  ASSERT_NE(trace, nullptr);
  EXPECT_GE(trace->offset_us[kMarkParse], 0.0);  // stamped by MaybeStart
  trace->Stamp(kMarkEnqueue);
  trace->Stamp(kMarkBatchForm);
  trace->Stamp(kMarkGather);
  trace->Stamp(kMarkGemm);
  recorder.Finish(trace);

  const std::string json = recorder.TracesJson();
  EXPECT_NE(json.find("\"id\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"transport\": \"binary\""), std::string::npos) << json;
  for (int m = 0; m < kNumTraceMarks; ++m) {
    EXPECT_NE(json.find(TraceMarkName(m)), std::string::npos) << json;
  }
  // Stamp order is span order: the timeline must be monotone.
  for (int m = 1; m < kNumTraceMarks; ++m) {
    EXPECT_LE(trace->offset_us[static_cast<std::size_t>(m - 1)],
              trace->offset_us[static_cast<std::size_t>(m)]);
  }
}

TEST(TraceRecorderTest, UnstampedMarksStayNegativeOne) {
  TraceRecorder recorder;
  recorder.Configure(1, 0);
  auto trace = recorder.MaybeStart(7, kTransportJson);
  ASSERT_NE(trace, nullptr);
  recorder.Finish(trace);  // only parse + respond stamped
  const std::string json = recorder.TracesJson();
  EXPECT_NE(json.find("\"gemm_us\": -1"), std::string::npos) << json;
}

TEST(TraceRecorderTest, RingWrapsAndServesTheLastN) {
  TraceRecorder recorder;
  recorder.Configure(1, 0);
  const int total = static_cast<int>(TraceRecorder::kRingSize) + 16;
  for (int q = 0; q < total; ++q) {
    recorder.Finish(recorder.MaybeStart(q, kTransportJson));
  }
  EXPECT_EQ(recorder.sampled(), static_cast<std::uint64_t>(total));
  const std::string json = recorder.TracesJson(/*last_n=*/32);
  EXPECT_EQ(CountOccurrences(json, "\"id\": "), 32) << json;
  EXPECT_NE(json.find("\"id\": " + std::to_string(total - 1)),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("\"id\": " + std::to_string(total - 33)),
            std::string::npos)
      << json;
}

TEST(TraceRecorderTest, SlowQueriesBumpTheSlowCounter) {
  Counter* slow = MetricsRegistry::Global().counter(
      "gcon_trace_slow_total",
      "Sampled requests over the slow-query threshold.");
  const std::uint64_t before = slow->value();
  TraceRecorder recorder;
  recorder.Configure(/*sample_every=*/1, /*slow_query_us=*/1);
  auto trace = recorder.MaybeStart(1, kTransportJson);
  ASSERT_NE(trace, nullptr);
  // Guarantee the total crosses the 1us threshold.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  recorder.Finish(trace);  // also emits the slow-query log line to stderr
  EXPECT_EQ(slow->value(), before + 1);
}

TEST(TraceRecorderTest, ConcurrentWritersAndReaderStayTornFree) {
  // TSan target: 4 threads pushing through the seqlock while a reader
  // renders the ring. A torn slot is skipped, never blocked on; the final
  // quiesced read must serve a full window.
  TraceRecorder recorder;
  recorder.Configure(1, 0);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 400;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int q = 0; q < kPerWriter; ++q) {
        recorder.Finish(recorder.MaybeStart(w * kPerWriter + q,
                                            kTransportJson));
      }
    });
  }
  std::thread reader([&recorder] {
    for (int i = 0; i < 200; ++i) {
      const std::string json = recorder.TracesJson(64);
      EXPECT_NE(json.find("\"traces\": ["), std::string::npos);
    }
  });
  for (auto& t : writers) t.join();
  reader.join();
  EXPECT_EQ(recorder.sampled(),
            static_cast<std::uint64_t>(kWriters * kPerWriter));
  // Quiesced: every slot is sealed, so the last 64 are all readable.
  EXPECT_EQ(CountOccurrences(recorder.TracesJson(64), "\"id\": "), 64);
}

}  // namespace
}  // namespace obs
}  // namespace gcon
