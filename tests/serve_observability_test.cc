// End-to-end observability conformance: the `metrics` and `trace` admin
// verbs on BOTH transports against the real TCP front end, the DP-budget
// gauge's construction/publish semantics, build info in stats, and the
// "obs on == obs off" served-bits invariant. The byte-level exposition
// format itself is locked by tests/obs_metrics_test.cc; this suite locks
// the wire plumbing — same exposition, two framings, counters that count.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.h"
#include "graph/datasets.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve_test_util.h"
#include "serve/fault_injection.h"
#include "serve/frame.h"
#include "serve/inference_session.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace gcon {
namespace {

using serve_test::SyntheticArtifact;

/// Blocking line-oriented client (the JSON transport), same idiom as
/// serve_conformance_test.cc's WireClient.
class WireClient {
 public:
  explicit WireClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0) << "socket: " << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << "connect: " << std::strerror(errno);
  }
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void SendLine(const std::string& line) {
    const std::string data = line + "\n";
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed";
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Next response line (without the newline); "" on EOF.
  std::string ReadLine() {
    for (;;) {
      const std::size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        const std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Reads exposition lines up to and including the "# EOF" sentinel and
  /// returns the whole text (terminator included) — the same read loop an
  /// `echo metrics | nc` shell pipeline performs.
  std::string ReadExposition() {
    std::string text;
    for (;;) {
      const std::string line = ReadLine();
      if (line.empty() && text.empty()) return text;  // EOF before data
      text += line + "\n";
      if (line == "# EOF") return text;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Blocking frame-oriented client (the binary transport), same idiom as
/// serve_frame_conformance_test.cc's FrameClient.
class FrameClient {
 public:
  explicit FrameClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0) << "socket: " << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << "connect: " << std::strerror(errno);
  }
  ~FrameClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed";
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string Hello(std::uint16_t version = kFrameVersion) {
    Send(EncodeHello(version));
    return ReadExact(kFrameHelloBytes);
  }

  bool ReadFrame(FrameType* type, std::string* payload) {
    const std::string header = ReadExact(kFrameHeaderBytes);
    if (header.size() != kFrameHeaderBytes) return false;
    std::uint32_t len = 0;
    std::string error;
    if (!ParseFrameHeader(header.data(), type, &len, &error)) {
      ADD_FAILURE() << "server sent a bad frame header: " << error;
      return false;
    }
    *payload = ReadExact(len);
    return payload->size() == len;
  }

 private:
  std::string ReadExact(std::size_t want) {
    while (buffer_.size() < want) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        const std::string partial = buffer_;
        buffer_.clear();
        return partial;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string out = buffer_.substr(0, want);
    buffer_.erase(0, want);
    return out;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// Arms the GLOBAL trace recorder for one test and guarantees it is
/// disarmed again on exit (the global default; later suites depend on it).
struct TraceArmGuard {
  explicit TraceArmGuard(std::uint32_t sample_every) {
    obs::TraceRecorder::Global().Configure(sample_every, /*slow_query_us=*/0);
  }
  ~TraceArmGuard() { obs::TraceRecorder::Global().Configure(0, 0); }
};

/// Value of one fully-spelled series ("name{labels}") in an exposition, or
/// -1 if absent. The trailing space disambiguates series prefixes.
double SeriesValue(const std::string& exposition, const std::string& series) {
  const std::string needle = "\n" + series + " ";
  std::string padded = "\n" + exposition;
  const std::size_t pos = padded.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::stod(padded.substr(pos + needle.size()));
}

/// Same two-model fixture as the conformance suites: "default" and "alt"
/// synthetic artifacts over the tiny graph behind the real TCP front end.
class ServeObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = serve_test::TestGraph(9);
    default_artifact_ = SyntheticArtifact(graph_, {0, 2}, 8, 3);
    alt_artifact_ = SyntheticArtifact(graph_, {2}, 8, 101);

    std::vector<ModelRouter::NamedModel> models;
    models.push_back({"default", InferenceSession(*default_artifact_, graph_)});
    models.push_back({"alt", InferenceSession(*alt_artifact_, graph_)});
    ServeOptions options;
    options.threads = 2;
    options.max_batch = 8;
    options.max_queue = 64;
    FaultInjector::Global().Reset();
    server_ = std::make_unique<InferenceServer>(std::move(models), options);
    listener_ = std::thread([this] {
      RunTcpServer(server_.get(), /*port=*/0, &shutdown_, &port_);
    });
    while (port_.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void TearDown() override {
    shutdown_.store(true, std::memory_order_release);
    listener_.join();
    server_.reset();
    FaultInjector::Global().Reset();
    // Invariants later suites rely on: metrics armed, tracing disarmed.
    obs::SetMetricsEnabled(true);
    obs::TraceRecorder::Global().Configure(0, 0);
  }

  int port() const { return port_.load(std::memory_order_acquire); }

  Graph graph_;
  std::optional<GconArtifact> default_artifact_;
  std::optional<GconArtifact> alt_artifact_;
  std::unique_ptr<InferenceServer> server_;
  std::thread listener_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> port_{0};
};

TEST_F(ServeObservabilityTest, JsonMetricsVerbCountsAcceptedQueries) {
  WireClient client(port());
  // The global registry is cumulative across the process, so assert on the
  // DELTA between two scrapes bracketing a known amount of traffic.
  client.SendLine("{\"cmd\": \"metrics\"}");
  const std::string before = client.ReadExposition();
  ASSERT_NE(before.find("# EOF\n"), std::string::npos);
  ASSERT_NE(before.find("# TYPE gcon_serve_accepted_total counter\n"),
            std::string::npos)
      << before;

  for (int q = 0; q < 3; ++q) {
    client.SendLine("{\"id\": " + std::to_string(q) +
                    ", \"node\": " + std::to_string(q) + "}");
    const std::string response = client.ReadLine();
    ASSERT_EQ(response.find("error"), std::string::npos) << response;
  }
  client.SendLine("{\"id\": 3, \"node\": 0, \"model\": \"alt\"}");
  ASSERT_EQ(client.ReadLine().find("error"), std::string::npos);

  // The bare-line spelling (`echo metrics | nc`) must answer too.
  client.SendLine("metrics");
  const std::string after = client.ReadExposition();
  const std::string series_default =
      "gcon_serve_accepted_total{model=\"default\"}";
  const std::string series_alt = "gcon_serve_accepted_total{model=\"alt\"}";
  EXPECT_DOUBLE_EQ(
      SeriesValue(after, series_default) - SeriesValue(before, series_default),
      3.0)
      << after;
  EXPECT_DOUBLE_EQ(
      SeriesValue(after, series_alt) - SeriesValue(before, series_alt), 1.0)
      << after;
  // The admission path also feeds the queue-depth gauge family.
  EXPECT_NE(after.find("gcon_serve_queue_peak{model=\"default\"}"),
            std::string::npos)
      << after;
}

TEST_F(ServeObservabilityTest, BinaryMetricsVerbAnswersTheSameExposition) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  client.Send(EncodeAdminFrame(AdminVerb::kMetrics));
  FrameType type{};
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&type, &payload));
  EXPECT_EQ(type, FrameType::kAdminReply);
  // One exposition, two framings: the reply payload IS the Prometheus
  // text, terminator and all.
  ASSERT_GE(payload.size(), 6u);
  EXPECT_EQ(payload.substr(payload.size() - 6), "# EOF\n") << payload;
  EXPECT_NE(payload.find("# TYPE gcon_serve_accepted_total counter\n"),
            std::string::npos)
      << payload;
  EXPECT_NE(payload.find("gcon_dp_epsilon{model=\"default\"}"),
            std::string::npos)
      << payload;
}

TEST_F(ServeObservabilityTest, JsonTraceVerbServesSampledSpanTimelines) {
  TraceArmGuard armed(/*sample_every=*/1);
  WireClient client(port());
  client.SendLine("{\"id\": 421, \"node\": 2}");
  ASSERT_EQ(client.ReadLine().find("error"), std::string::npos);

  client.SendLine("{\"cmd\": \"trace\"}");
  const std::string trace = client.ReadLine();
  EXPECT_NE(trace.find("\"sample_every\": 1"), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"traces\": ["), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"id\": 421"), std::string::npos) << trace;
  // Every station of the span glossary appears for a batched node query.
  for (int m = 0; m < obs::kNumTraceMarks; ++m) {
    EXPECT_NE(trace.find(obs::TraceMarkName(m)), std::string::npos)
        << obs::TraceMarkName(m) << " missing in " << trace;
  }
  EXPECT_NE(trace.find("\"transport\": \"json\""), std::string::npos) << trace;
}

TEST_F(ServeObservabilityTest, BinaryTraceVerbServesTheSameDocument) {
  TraceArmGuard armed(/*sample_every=*/1);
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));

  ServeRequest request;
  request.id = 9001;
  request.node = 1;
  client.Send(EncodeRequestFrame(request));
  FrameType type{};
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&type, &payload));
  ASSERT_EQ(type, FrameType::kResponse);

  client.Send(EncodeAdminFrame(AdminVerb::kTrace));
  ASSERT_TRUE(client.ReadFrame(&type, &payload));
  EXPECT_EQ(type, FrameType::kAdminReply);
  EXPECT_NE(payload.find("\"traces\": ["), std::string::npos) << payload;
  EXPECT_NE(payload.find("\"id\": 9001"), std::string::npos) << payload;
  EXPECT_NE(payload.find("\"transport\": \"binary\""), std::string::npos)
      << payload;
}

TEST_F(ServeObservabilityTest, StatsCarriesBuildInfo) {
  WireClient client(port());
  client.SendLine("{\"cmd\": \"stats\"}");
  const std::string stats = client.ReadLine();
  EXPECT_NE(stats.find("\"build\": {"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"git_sha\": "), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"compiler\": "), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"simd\": "), std::string::npos) << stats;
}

TEST_F(ServeObservabilityTest, EpsilonGaugeTracksConstructionAndPublish) {
  // SyntheticArtifact trains with epsilon = 1.0, and the server Set()s the
  // gauge at construction — so whatever earlier tests did to the global
  // registry, this fixture's SetUp pinned it to the served budget.
  obs::Gauge* gauge = obs::MetricsRegistry::Global().gauge(
      "gcon_dp_epsilon", "", {{"model", "default"}});
  EXPECT_DOUBLE_EQ(gauge->value(), 1.0);

  // A repeated release of the same population spends fresh budget: publish
  // ADDS the incoming artifact's epsilon (GAP repeated-release total).
  server_->Publish("default", InferenceSession(*default_artifact_, graph_));
  EXPECT_DOUBLE_EQ(gauge->value(), 2.0);

  // The running total is on the wire, not just in memory.
  WireClient client(port());
  client.SendLine("metrics");
  EXPECT_DOUBLE_EQ(
      SeriesValue(client.ReadExposition(),
                  "gcon_dp_epsilon{model=\"default\"}"),
      2.0);
}

TEST_F(ServeObservabilityTest, ServedBitsAreIdenticalWithObsOnAndOff) {
  // The invariant that makes always-on metrics safe to ship: disarming the
  // whole tier must not change a single response byte.
  WireClient client(port());
  client.SendLine("{\"id\": 77, \"node\": 2}");
  const std::string with_obs = client.ReadLine();
  ASSERT_FALSE(with_obs.empty());
  ASSERT_EQ(with_obs.find("error"), std::string::npos) << with_obs;

  obs::SetMetricsEnabled(false);
  client.SendLine("{\"id\": 77, \"node\": 2}");
  const std::string without_obs = client.ReadLine();
  obs::SetMetricsEnabled(true);

  EXPECT_EQ(with_obs, without_obs);
}

}  // namespace
}  // namespace gcon
