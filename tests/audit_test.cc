#include <gtest/gtest.h>

#include <cmath>

#include "audit/audit.h"
#include "audit/beta_dist.h"
#include "audit/gcon_audit.h"
#include "graph/datasets.h"
#include "rng/rng.h"

namespace gcon {
namespace {

TEST(BetaDist, KnownValues) {
  // I_x(1,1) = x (uniform CDF).
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedBetaI(1.0, 1.0, x), x, 1e-12);
  }
  // I_x(2,1) = x^2; I_x(1,2) = 1-(1-x)^2 = 2x - x^2.
  EXPECT_NEAR(RegularizedBetaI(2.0, 1.0, 0.3), 0.09, 1e-12);
  EXPECT_NEAR(RegularizedBetaI(1.0, 2.0, 0.3), 0.51, 1e-12);
  // Boundaries.
  EXPECT_DOUBLE_EQ(RegularizedBetaI(3.0, 4.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedBetaI(3.0, 4.0, 1.0), 1.0);
}

TEST(BetaDist, Symmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double a : {0.5, 2.0, 7.0}) {
    for (double b : {1.0, 3.5}) {
      for (double x : {0.2, 0.5, 0.77}) {
        EXPECT_NEAR(RegularizedBetaI(a, b, x),
                    1.0 - RegularizedBetaI(b, a, 1.0 - x), 1e-10);
      }
    }
  }
}

TEST(BetaDist, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.02) {
    const double v = RegularizedBetaI(3.0, 5.0, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(BetaDist, QuantileInvertsCdf) {
  for (double a : {1.0, 4.0, 20.0}) {
    for (double b : {2.0, 9.0}) {
      for (double prob : {0.05, 0.5, 0.975}) {
        const double x = BetaQuantile(a, b, prob);
        EXPECT_NEAR(RegularizedBetaI(a, b, x), prob, 1e-8);
      }
    }
  }
}

TEST(ClopperPearson, ContainsPointEstimate) {
  for (int k : {0, 1, 25, 49, 50}) {
    const BinomialInterval ci = ClopperPearson(k, 50, 0.95);
    const double p_hat = k / 50.0;
    EXPECT_LE(ci.lower, p_hat + 1e-12);
    EXPECT_GE(ci.upper, p_hat - 1e-12);
    EXPECT_GE(ci.lower, 0.0);
    EXPECT_LE(ci.upper, 1.0);
  }
}

TEST(ClopperPearson, KnownZeroSuccessBound) {
  // The "rule of three": upper ~ 1 - (alpha/2)^(1/n) ≈ 3.7/n at 95%.
  const BinomialInterval ci = ClopperPearson(0, 100, 0.95);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_NEAR(ci.upper, 1.0 - std::pow(0.025, 1.0 / 100.0), 1e-9);
}

TEST(ClopperPearson, TightensWithMoreTrials) {
  const BinomialInterval small = ClopperPearson(10, 20, 0.95);
  const BinomialInterval large = ClopperPearson(1000, 2000, 0.95);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

// --- audit of synthetic mechanisms ----------------------------------------

std::vector<double> LaplaceSamples(double center, double eps, int n,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto& v : out) {
    v = center + rng.Laplace(1.0 / eps);
  }
  return out;
}

TEST(Audit, LaplaceMechanismBoundIsSoundAndNonTrivial) {
  // Counting query 0 vs 1 released with Laplace(1/eps): exactly eps-DP.
  const double eps = 1.0;
  const int n = 40000;
  const auto d = LaplaceSamples(1.0, eps, n, 1);
  const auto dp = LaplaceSamples(0.0, eps, n, 2);
  AuditOptions options;
  options.delta = 0.0;
  const AuditResult result = AuditFromSamples(d, dp, options);
  // Sound: must not exceed the true epsilon (up to CP slack; with n=40k the
  // slack is small, allow 5%).
  EXPECT_LE(result.eps_lower_bound, eps * 1.05);
  // Non-trivial: a strong attack should recover a decent fraction.
  EXPECT_GE(result.eps_lower_bound, 0.5 * eps);
}

TEST(Audit, SoundAcrossEpsilons) {
  for (double eps : {0.5, 2.0}) {
    const int n = 30000;
    const auto d = LaplaceSamples(1.0, eps, n, 10);
    const auto dp = LaplaceSamples(0.0, eps, n, 11);
    AuditOptions options;
    const AuditResult result = AuditFromSamples(d, dp, options);
    EXPECT_LE(result.eps_lower_bound, eps * 1.05) << "eps=" << eps;
    EXPECT_GT(result.eps_lower_bound, 0.3 * eps) << "eps=" << eps;
  }
}

TEST(Audit, CatchesBrokenMechanism) {
  // "Mechanism" with no noise at all: the two worlds are perfectly
  // separable, eps_hat should blow up far past any plausible budget.
  std::vector<double> d(2000, 1.0);
  std::vector<double> dp(2000, 0.0);
  Rng rng(3);
  for (auto& v : d) v += rng.Normal(0.0, 1e-3);
  for (auto& v : dp) v += rng.Normal(0.0, 1e-3);
  AuditOptions options;
  const AuditResult result = AuditFromSamples(d, dp, options);
  EXPECT_GT(result.eps_lower_bound, 3.0);
}

TEST(Audit, IdenticalDistributionsGiveNearZero) {
  const auto d = LaplaceSamples(0.0, 1.0, 20000, 4);
  const auto dp = LaplaceSamples(0.0, 1.0, 20000, 5);
  AuditOptions options;
  const AuditResult result = AuditFromSamples(d, dp, options);
  EXPECT_LT(result.eps_lower_bound, 0.1);
}

TEST(Audit, DeltaReducesTheBound) {
  const auto d = LaplaceSamples(1.0, 1.0, 20000, 6);
  const auto dp = LaplaceSamples(0.0, 1.0, 20000, 7);
  AuditOptions no_delta;
  AuditOptions with_delta;
  with_delta.delta = 0.05;
  const double bound_no_delta = AuditFromSamples(d, dp, no_delta).eps_lower_bound;
  const double bound_with_delta =
      AuditFromSamples(d, dp, with_delta).eps_lower_bound;
  EXPECT_LE(bound_with_delta, bound_no_delta);
}

// --- end-to-end GCON audit -------------------------------------------------

TEST(GconAudit, BoundRespectsConfiguredEpsilon) {
  DatasetSpec spec = TinySpec();
  spec.num_nodes = 100;
  spec.num_undirected_edges = 250;
  Rng rng(21);
  const Graph graph = GenerateDataset(spec, &rng);
  const Split split = MakeSplit(spec, graph, &rng);

  GconConfig config;
  config.alpha = 0.4;  // high sensitivity -> the audit has signal to find
  config.steps = {2};
  config.encoder.hidden = 8;
  config.encoder.out_dim = 4;
  config.encoder.epochs = 60;
  config.minimize.minimizer = Minimizer::kLbfgs;
  config.minimize.max_iterations = 200;
  config.seed = 5;

  GconAuditOptions options;
  options.trials = 150;
  options.seed = 9;
  const double eps = 1.0;
  const GconAuditResult result =
      AuditGcon(graph, split, config, eps, 1e-4, options);
  // Soundness: the 95%-confidence lower bound must not exceed the
  // configured budget (a violation here = calibration bug).
  EXPECT_LE(result.attack.eps_lower_bound, eps)
      << "AUDIT VIOLATION: empirical privacy loss exceeds configured eps";
  EXPECT_EQ(result.trials, 150);
  EXPECT_GE(result.edge.first, 0);
}

TEST(GconAudit, DisabledNoiseIsDetectablyNonPrivate) {
  // The disable_noise ablation must fail the audit spectacularly — this
  // proves the audit has the power to catch a broken mechanism, so the
  // passing result above is meaningful.
  DatasetSpec spec = TinySpec();
  spec.num_nodes = 100;
  spec.num_undirected_edges = 250;
  Rng rng(22);
  const Graph graph = GenerateDataset(spec, &rng);
  const Split split = MakeSplit(spec, graph, &rng);

  GconConfig config;
  config.alpha = 0.4;
  config.steps = {2};
  config.encoder.hidden = 8;
  config.encoder.out_dim = 4;
  config.encoder.epochs = 60;
  config.minimize.minimizer = Minimizer::kLbfgs;
  config.minimize.max_iterations = 200;
  config.seed = 6;
  config.disable_noise = true;  // NOT differentially private

  GconAuditOptions options;
  options.trials = 120;
  options.seed = 10;
  const GconAuditResult result =
      AuditGcon(graph, split, config, 1.0, 1e-4, options);
  EXPECT_GT(result.attack.eps_lower_bound, 2.0)
      << "the audit failed to flag a mechanism with the noise disabled";
}

}  // namespace
}  // namespace gcon
