#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/gcon.h"
#include "core/model_io.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "linalg/ops.h"
#include "model/adapters.h"
#include "nn/mlp_io.h"
#include "rng/rng.h"

namespace gcon {
namespace {

TEST(MlpIo, RoundTripPreservesWeightsAndPredictions) {
  MlpOptions options;
  options.dims = {5, 7, 3};
  options.hidden_activation = Activation::kTanh;
  options.seed = 3;
  Mlp original(options);

  std::stringstream stream;
  SaveMlp(original, &stream);
  Mlp loaded = LoadMlp(&stream);

  EXPECT_EQ(loaded.num_layers(), original.num_layers());
  for (int l = 0; l < original.num_layers(); ++l) {
    EXPECT_TRUE(loaded.weight(l).AllClose(original.weight(l), 1e-15));
    EXPECT_TRUE(loaded.bias(l).AllClose(original.bias(l), 1e-15));
  }
  Rng rng(4);
  Matrix x(6, 5);
  for (std::size_t k = 0; k < x.size(); ++k) {
    x.data()[k] = rng.Uniform(-1.0, 1.0);
  }
  EXPECT_TRUE(loaded.Forward(x).AllClose(original.Forward(x), 1e-12));
}

TEST(MlpIo, PreservesActivation) {
  for (Activation act : {Activation::kRelu, Activation::kSigmoid,
                         Activation::kIdentity}) {
    MlpOptions options;
    options.dims = {2, 3, 2};
    options.hidden_activation = act;
    Mlp original(options);
    std::stringstream stream;
    SaveMlp(original, &stream);
    Mlp loaded = LoadMlp(&stream);
    EXPECT_EQ(loaded.options().hidden_activation, act);
  }
}

struct Trained {
  Graph graph;
  Split split;
  GconPrepared prepared;
  GconModel model;
};

Trained TrainSmall() {
  const DatasetSpec spec = TinySpec();
  Rng rng(9);
  Graph graph = GenerateDataset(spec, &rng);
  Split split = MakeSplit(spec, graph, &rng);
  GconConfig config;
  config.alpha = 0.7;
  config.steps = {0, 2};
  config.encoder.hidden = 16;
  config.encoder.out_dim = 8;
  config.encoder.epochs = 100;
  config.minimize.max_iterations = 1200;
  config.seed = 11;
  GconPrepared prepared = PrepareGcon(graph, split, config);
  GconModel model = TrainPrepared(prepared, 2.0, 1e-4, 13);
  return Trained{std::move(graph), std::move(split), std::move(prepared),
                 std::move(model)};
}

TEST(ModelIo, ArtifactInferMatchesPipelineInference) {
  const Trained t = TrainSmall();
  const GconArtifact artifact = MakeArtifact(t.prepared, t.model, 2.0, 1e-4);
  const Matrix direct = PrivateInference(t.prepared, t.model);
  const Matrix via_artifact = artifact.Infer(t.graph);
  EXPECT_TRUE(via_artifact.AllClose(direct, 1e-9));
}

TEST(ModelIo, SaveLoadRoundTrip) {
  const Trained t = TrainSmall();
  const GconArtifact artifact = MakeArtifact(t.prepared, t.model, 2.0, 1e-4);
  const std::string path = "/tmp/gcon_model_io_test.model";
  SaveModel(artifact, path);
  const GconArtifact loaded = LoadModel(path);
  std::remove(path.c_str());

  EXPECT_TRUE(loaded.theta.AllClose(artifact.theta, 1e-12));
  EXPECT_EQ(loaded.steps, artifact.steps);
  EXPECT_DOUBLE_EQ(loaded.alpha, artifact.alpha);
  EXPECT_DOUBLE_EQ(loaded.epsilon, 2.0);
  EXPECT_DOUBLE_EQ(loaded.delta, 1e-4);
  EXPECT_NEAR(loaded.params.beta, artifact.params.beta, 1e-12);

  const Matrix before = artifact.Infer(t.graph);
  const Matrix after = loaded.Infer(t.graph);
  EXPECT_TRUE(after.AllClose(before, 1e-9));
}

TEST(ModelIo, LoadedModelServesNewGraph) {
  const Trained t = TrainSmall();
  const GconArtifact artifact = MakeArtifact(t.prepared, t.model, 2.0, 1e-4);
  const std::string path = "/tmp/gcon_model_io_test2.model";
  SaveModel(artifact, path);
  const GconArtifact loaded = LoadModel(path);
  std::remove(path.c_str());

  Rng rng(77);
  const Graph other = GenerateDataset(TinySpec(), &rng);
  const Matrix logits = loaded.Infer(other);
  EXPECT_EQ(logits.rows(), static_cast<std::size_t>(other.num_nodes()));
  std::vector<int> all;
  for (int v = 0; v < other.num_nodes(); ++v) all.push_back(v);
  EXPECT_GT(MicroF1FromLogits(logits, other.labels(), all,
                              other.num_classes()),
            1.0 / other.num_classes());
}

// Every registry method that supports persistence must round-trip
// Save -> fresh instance -> Load -> Predict with *bitwise* stable logits
// (the artifact formats write 17 significant digits, which reproduces
// doubles exactly). Methods without a serialization format must say so
// consistently: Save and Load both return false. A new adapter that gains
// Save/Load is picked up here automatically.
TEST(RegistryPersistence, SaveLoadPredictRoundTripsEveryPersistentMethod) {
  const DatasetSpec spec = TinySpec();
  Rng rng(31);
  const Graph graph = GenerateDataset(spec, &rng);
  const Split split = MakeSplit(spec, graph, &rng);

  int persistent = 0;
  for (const std::string& name : BuiltinModelRegistry().Names()) {
    ModelConfig config;
    config.Set("epsilon", "2");
    config.Set("seed", "7");
    std::unique_ptr<GraphModel> model =
        BuiltinModelRegistry().Create(name, config);
    model->Train(graph, split);
    const Matrix before = model->Predict(graph);

    const std::string path = "/tmp/gcon_registry_roundtrip_" + name + ".model";
    if (!model->Save(path)) {
      std::unique_ptr<GraphModel> fresh =
          BuiltinModelRegistry().Create(name, config);
      EXPECT_FALSE(fresh->Load(path))
          << name << ": Save unsupported but Load claims support";
      continue;
    }
    ++persistent;

    std::unique_ptr<GraphModel> loaded =
        BuiltinModelRegistry().Create(name, config);
    ASSERT_TRUE(loaded->Load(path)) << name;
    std::remove(path.c_str());
    const Matrix after = loaded->Predict(graph);
    ASSERT_EQ(after.rows(), before.rows()) << name;
    ASSERT_EQ(after.cols(), before.cols()) << name;
    EXPECT_EQ(std::memcmp(after.data(), before.data(),
                          after.size() * sizeof(double)),
              0)
        << name << ": logits drifted across the Save/Load round-trip";
  }
  // gcon (release artifact) and mlp (edge-free network) persist today.
  EXPECT_GE(persistent, 2);
}

TEST(ModelIo, HighPrecisionSurvivesRoundTrip) {
  const Trained t = TrainSmall();
  GconArtifact artifact = MakeArtifact(t.prepared, t.model, 2.0, 1e-4);
  artifact.theta(0, 0) = 1.0 / 3.0;
  artifact.theta(1, 0) = 1e-17;
  artifact.theta(2, 0) = -123456.789012345678;
  const std::string path = "/tmp/gcon_model_io_test3.model";
  SaveModel(artifact, path);
  const GconArtifact loaded = LoadModel(path);
  std::remove(path.c_str());
  EXPECT_DOUBLE_EQ(loaded.theta(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(loaded.theta(1, 0), 1e-17);
  EXPECT_DOUBLE_EQ(loaded.theta(2, 0), -123456.789012345678);
}

// --- hostile-header bounds ---------------------------------------------------
// A corrupt or malicious artifact must be rejected by its *declared* sizes
// before any allocation happens — the artifact fuzz harness demonstrated
// that an unbounded `steps`/`theta`/`mlp` header turns LoadModel into an
// OOM. These mirror fuzz/corpus/artifact/huge_{steps,theta}.

std::string ArtifactWithTail(const std::string& tail) {
  return "gcon-model v1\nalpha 0.5\nalpha_inference -1\nepsilon 1\n"
         "delta 0.001\nbeta 1\nlambda_bar 0.2\nlambda_prime 0\n" +
         tail;
}

std::string LoadModelError(const std::string& text) {
  std::istringstream in(text);
  try {
    LoadModel(in, "<hostile>");
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(ModelIo, RejectsImplausibleStepsCountBeforeAllocating) {
  const std::string error =
      LoadModelError(ArtifactWithTail("steps 99999999999999 1\n"));
  EXPECT_NE(error.find("implausible steps count"), std::string::npos) << error;
}

TEST(ModelIo, RejectsImplausibleThetaShapeBeforeAllocating) {
  const std::string error = LoadModelError(
      ArtifactWithTail("steps 2 1 2\ntheta 999999999 999999999\n"));
  EXPECT_NE(error.find("implausible theta shape"), std::string::npos) << error;
}

TEST(ModelIo, RejectsThetaShapeWhoseProductOverflows) {
  // Each dim alone is under the per-dim cap; the product must still trip
  // the element bound instead of wrapping the allocation size.
  const std::string error = LoadModelError(
      ArtifactWithTail("steps 2 1 2\ntheta 16000000 16000000\n"));
  EXPECT_NE(error.find("implausible theta shape"), std::string::npos) << error;
}

std::string LoadMlpError(const std::string& text) {
  std::istringstream in(text);
  try {
    LoadMlp(&in);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(MlpIo, RejectsImplausibleLayerCountBeforeAllocating) {
  const std::string error = LoadMlpError("mlp 99999999999999 3 3 relu\n");
  EXPECT_NE(error.find("implausible layer count"), std::string::npos) << error;
}

TEST(MlpIo, RejectsImplausibleLayerDimension) {
  const std::string error = LoadMlpError("mlp 2 999999999 3 relu\n");
  EXPECT_NE(error.find("implausible layer dimension"), std::string::npos)
      << error;
}

TEST(MlpIo, RejectsWeightShapeWhoseProductExceedsBound) {
  const std::string error = LoadMlpError("mlp 2 16000000 16000000 relu\n");
  EXPECT_NE(error.find("implausible weight shape"), std::string::npos)
      << error;
}

}  // namespace
}  // namespace gcon
