#include <gtest/gtest.h>

#include <cmath>

#include "core/incomplete_gamma.h"
#include "core/theorem1.h"

namespace gcon {
namespace {

PrivacyInputs DefaultInputs() {
  PrivacyInputs in;
  in.epsilon = 1.0;
  in.delta = 1e-5;
  in.omega = 0.9;
  in.lambda = 0.2;
  in.n1 = 500;
  in.num_classes = 4;
  in.dim = 32;
  in.psi_z = 1.0;
  return in;
}

TEST(IncompleteGamma, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(2, x) = 1 - e^{-x}(1 + x).
  EXPECT_NEAR(RegularizedGammaP(2.0, 2.0), 1.0 - std::exp(-2.0) * 3.0, 1e-12);
  // Boundaries.
  EXPECT_DOUBLE_EQ(RegularizedGammaP(5.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(5.0, 1000.0), 1.0, 1e-12);
}

TEST(IncompleteGamma, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x < 30.0; x += 0.5) {
    const double p = RegularizedGammaP(7.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(IncompleteGamma, QuantileInvertsCdf) {
  for (double a : {1.0, 4.0, 32.0, 200.0}) {
    for (double prob : {0.1, 0.5, 0.9, 0.999, 1.0 - 1e-6}) {
      const double u = GammaQuantile(a, prob);
      EXPECT_NEAR(RegularizedGammaP(a, u), prob, 1e-8)
          << "a=" << a << " prob=" << prob;
    }
  }
}

TEST(IncompleteGamma, CsfSolvesEq21) {
  // c_sf is the minimal u with P(d, u) >= 1 - delta/c: the CDF at c_sf
  // reaches the target and at 0.999*c_sf stays below it.
  const int d = 48;
  const double delta = 1e-4;
  const int c = 6;
  const double csf = ComputeCsf(d, delta, c);
  const double target = 1.0 - delta / c;
  EXPECT_GE(RegularizedGammaP(d, csf) + 1e-12, target);
  EXPECT_LT(RegularizedGammaP(d, 0.999 * csf), target);
}

TEST(IncompleteGamma, CsfGrowsWithDimensionAndShrinkingDelta) {
  EXPECT_GT(ComputeCsf(64, 1e-5, 4), ComputeCsf(16, 1e-5, 4));
  EXPECT_GT(ComputeCsf(32, 1e-8, 4), ComputeCsf(32, 1e-3, 4));
  // More classes -> smaller per-class delta -> larger quantile.
  EXPECT_GT(ComputeCsf(32, 1e-5, 10), ComputeCsf(32, 1e-5, 2));
}

TEST(Theorem1, OutputsAreFiniteAndPositive) {
  const PrivacyInputs in = DefaultInputs();
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(in.num_classes);
  const PrivacyParams p = ComputePrivacyParams(in, loss);
  EXPECT_FALSE(p.zero_noise);
  EXPECT_GT(p.beta, 0.0);
  EXPECT_TRUE(std::isfinite(p.beta));
  EXPECT_GE(p.lambda_bar, in.lambda);
  EXPECT_GE(p.lambda_prime, 0.0);
  EXPECT_GT(p.c_theta, 0.0);
  EXPECT_GT(p.c_sf, 0.0);
  EXPECT_GE(p.eps_lambda, 0.0);
  EXPECT_GT(p.lambda_total(), 0.0);
}

TEST(Theorem1, LossSupremaPropagate) {
  const PrivacyInputs in = DefaultInputs();
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(in.num_classes);
  const PrivacyParams p = ComputePrivacyParams(in, loss);
  EXPECT_DOUBLE_EQ(p.c1, loss.c1());
  EXPECT_DOUBLE_EQ(p.c2, loss.c2());
  EXPECT_DOUBLE_EQ(p.c3, loss.c3());
}

TEST(Theorem1, BetaIncreasesWithEpsilon) {
  // More budget -> larger beta -> smaller expected noise radius d/beta.
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(4);
  double prev_beta = 0.0;
  for (double eps : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    PrivacyInputs in = DefaultInputs();
    in.epsilon = eps;
    const PrivacyParams p = ComputePrivacyParams(in, loss);
    EXPECT_GT(p.beta, prev_beta) << "eps=" << eps;
    prev_beta = p.beta;
  }
}

TEST(Theorem1, BetaDecreasesWithSensitivity) {
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(4);
  double prev_beta = 1e300;
  for (double psi : {0.5, 1.0, 2.0, 4.0}) {
    PrivacyInputs in = DefaultInputs();
    in.psi_z = psi;
    const PrivacyParams p = ComputePrivacyParams(in, loss);
    EXPECT_LT(p.beta, prev_beta) << "psi=" << psi;
    prev_beta = p.beta;
  }
}

TEST(Theorem1, MoreTrainingRowsLessRelativeNoise) {
  // The linear term is B/n1; with beta roughly linear in n1 via c_theta,
  // noise per-row shrinks. We check beta grows with n1.
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(4);
  PrivacyInputs small = DefaultInputs();
  small.n1 = 100;
  PrivacyInputs large = DefaultInputs();
  large.n1 = 5000;
  EXPECT_GT(ComputePrivacyParams(large, loss).beta,
            ComputePrivacyParams(small, loss).beta);
}

TEST(Theorem1, LambdaPrimeCaseSplit) {
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(4);
  // Large dim + tiny epsilon forces eps_lambda > (1-omega) eps -> Λ' > 0.
  PrivacyInputs tight = DefaultInputs();
  tight.epsilon = 0.25;
  tight.dim = 96;
  tight.n1 = 120;
  const PrivacyParams p_tight = ComputePrivacyParams(tight, loss);
  EXPECT_GT(p_tight.eps_lambda, (1.0 - tight.omega) * tight.epsilon);
  EXPECT_GT(p_tight.lambda_prime, 0.0);

  // Huge lambda makes eps_lambda tiny -> Λ' = 0.
  PrivacyInputs loose = DefaultInputs();
  loose.lambda = 500.0;
  loose.epsilon = 4.0;
  const PrivacyParams p_loose = ComputePrivacyParams(loose, loss);
  EXPECT_LE(p_loose.eps_lambda, (1.0 - loose.omega) * loose.epsilon);
  EXPECT_DOUBLE_EQ(p_loose.lambda_prime, 0.0);
}

TEST(Theorem1, LambdaPrimeSatisfiesJacobianBudget) {
  // When Λ' > 0, the defining identity of Eq. (17) must hold:
  // c (2c2 + c3 cθ) Ψ / (n1 (Λ̄ + Λ')) <= (1-ω) ε, which is what makes the
  // (log(1+x) <= x)-relaxed Jacobian cost fit in the reserved budget.
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(4);
  PrivacyInputs in = DefaultInputs();
  in.epsilon = 0.25;
  in.dim = 96;
  in.n1 = 120;
  const PrivacyParams p = ComputePrivacyParams(in, loss);
  ASSERT_GT(p.lambda_prime, 0.0);
  const double c = in.num_classes;
  const double relaxed_cost = c * (2.0 * p.c2 + p.c3 * p.c_theta) * in.psi_z /
                              (in.n1 * p.lambda_total());
  EXPECT_LE(relaxed_cost, (1.0 - in.omega) * in.epsilon + 1e-9);
}

TEST(Theorem1, NoiseBudgetIdentity) {
  // Eq. (18): beta * c(c1 + c2 cθ) Ψ == max(ε - ε_Λ, ωε) exactly.
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(4);
  const PrivacyInputs in = DefaultInputs();
  const PrivacyParams p = ComputePrivacyParams(in, loss);
  const double lhs =
      p.beta * in.num_classes * (p.c1 + p.c2 * p.c_theta) * in.psi_z;
  const double rhs = std::max(in.epsilon - p.eps_lambda,
                              in.omega * in.epsilon);
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(Theorem1, ZeroSensitivityMeansZeroNoise) {
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(4);
  PrivacyInputs in = DefaultInputs();
  in.psi_z = 0.0;  // alpha = 1 or all steps zero
  const PrivacyParams p = ComputePrivacyParams(in, loss);
  EXPECT_TRUE(p.zero_noise);
  EXPECT_DOUBLE_EQ(p.beta, 0.0);
  EXPECT_DOUBLE_EQ(p.lambda_prime, 0.0);
}

TEST(Theorem1, PseudoHuberAlsoWorks) {
  PrivacyInputs in = DefaultInputs();
  const ConvexLoss loss = ConvexLoss::PseudoHuber(in.num_classes, 0.5);
  const PrivacyParams p = ComputePrivacyParams(in, loss);
  EXPECT_GT(p.beta, 0.0);
  EXPECT_GT(p.c_theta, 0.0);
}

TEST(Theorem1, OmegaTradesBudget) {
  // Larger omega reserves more budget for the linear noise term: with
  // eps_lambda large (small lambda), beta should scale like omega*eps.
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(4);
  PrivacyInputs in = DefaultInputs();
  in.lambda = 0.01;
  in.dim = 96;
  PrivacyInputs in_low = in, in_high = in;
  in_low.omega = 0.5;
  in_high.omega = 0.95;
  const double beta_low = ComputePrivacyParams(in_low, loss).beta;
  const double beta_high = ComputePrivacyParams(in_high, loss).beta;
  // Not a strict theorem, but for this configuration the noise budget is
  // omega*eps in both cases, and c_theta shifts only mildly.
  EXPECT_GT(beta_high, beta_low);
}

}  // namespace
}  // namespace gcon
