// Shared fixtures for the serving test suites (serve_test,
// serve_conformance_test, serve_inductive_test): the synthetic
// serving-shaped artifact, the tiny test graph, the bitwise row
// comparator, and — load-bearing for the inductive contract — the ONE
// definition of "the graph augmented with a feature-carrying query's
// node". Every suite that states the serve(features) == offline(augmented)
// equivalence must build the offline side through AugmentGraph below, so
// a change to the augmentation semantics hits every suite at once instead
// of silently forking the contract.
#ifndef GCON_TESTS_SERVE_TEST_UTIL_H_
#define GCON_TESTS_SERVE_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/model_io.h"
#include "graph/datasets.h"
#include "nn/mlp.h"
#include "rng/rng.h"

namespace gcon {
namespace serve_test {

/// A serving-shaped artifact without the training cost: fresh Glorot
/// encoder, random theta. The serving layer never looks at model quality,
/// only at the numerics of the inference path.
inline GconArtifact SyntheticArtifact(const Graph& graph,
                                      std::vector<int> steps, int d1,
                                      std::uint64_t seed) {
  MlpOptions options;
  options.dims = {graph.feature_dim(), 16, d1, graph.num_classes()};
  options.seed = seed;
  Mlp encoder(options);
  Matrix theta(steps.size() * static_cast<std::size_t>(d1),
               static_cast<std::size_t>(graph.num_classes()));
  Rng rng(seed + 1);
  for (std::size_t k = 0; k < theta.size(); ++k) {
    theta.data()[k] = rng.Uniform(-0.5, 0.5);
  }
  return GconArtifact{std::move(theta), std::move(encoder), std::move(steps),
                      /*alpha=*/0.7,    /*alpha_inference=*/-1.0,
                      /*epsilon=*/1.0,  /*delta=*/1e-5,
                      PrivacyParams{}};
}

inline Graph TestGraph(std::uint64_t seed = 9) {
  Rng rng(seed);
  return GenerateDataset(TinySpec(), &rng);
}

/// The graph a feature-carrying query implies: the query node appended at
/// index n with the given features and (in-range, deduplicated by AddEdge)
/// edges. This is the offline side of the equivalence the serving tier
/// promises.
inline Graph AugmentGraph(const Graph& graph,
                          const std::vector<double>& features,
                          const std::vector<int>& edges) {
  const int n = graph.num_nodes();
  Graph augmented(n + 1, graph.num_classes());
  Matrix x(static_cast<std::size_t>(n) + 1,
           static_cast<std::size_t>(graph.feature_dim()));
  for (int v = 0; v < n; ++v) {
    const double* src = graph.features().RowPtr(static_cast<std::size_t>(v));
    std::copy(src, src + graph.feature_dim(),
              x.RowPtr(static_cast<std::size_t>(v)));
    augmented.set_label(v, graph.label(v));
  }
  std::copy(features.begin(), features.end(),
            x.RowPtr(static_cast<std::size_t>(n)));
  augmented.set_features(std::move(x));
  for (const auto& [u, v] : graph.EdgeList()) augmented.AddEdge(u, v);
  for (int u : edges) {
    if (u >= 0 && u < n) augmented.AddEdge(n, u);
  }
  return augmented;
}

inline bool BitwiseEqualRow(const Matrix& m, std::size_t row,
                            const std::vector<double>& values) {
  if (values.size() != m.cols()) return false;
  return std::memcmp(m.RowPtr(row), values.data(),
                     m.cols() * sizeof(double)) == 0;
}

}  // namespace serve_test
}  // namespace gcon

#endif  // GCON_TESTS_SERVE_TEST_UTIL_H_
