#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "rng/rng.h"

namespace gcon {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  Rng a2(42);
  EXPECT_NE(a2.NextUint64(), c.NextUint64());
}

TEST(Rng, NextDoubleRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRangeAndCoverage) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit in 1000 draws
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  int count = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    count += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(count) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += (x - 3.0) * (x - 3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
  EXPECT_NEAR(sq / n, 4.0, 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, LaplaceMomentsAndSymmetry) {
  Rng rng(7);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  int negative = 0;
  const double scale = 1.5;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Laplace(scale);
    sum += x;
    sq += x * x;
    if (x < 0.0) ++negative;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 2.0 * scale * scale, 0.1);  // var = 2b²
  EXPECT_NEAR(static_cast<double>(negative) / n, 0.5, 0.01);
}

TEST(Rng, GammaMoments) {
  Rng rng(8);
  const int n = 50000;
  const double shape = 3.5, scale = 2.0;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gamma(shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, shape * scale, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, shape * scale * scale, 0.5);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(9);
  const int n = 50000;
  const double shape = 0.4, scale = 1.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gamma(shape, scale);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, shape * scale, 0.02);
}

// Erlang(d, β) has mean d/β and variance d/β² — these are exactly the radius
// moments Algorithm 2 relies on.
class ErlangMoments : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(ErlangMoments, MeanAndVariance) {
  const auto [shape, rate] = GetParam();
  Rng rng(static_cast<std::uint64_t>(shape * 1000) + 11);
  const int n = 60000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Erlang(shape, rate);
    EXPECT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  const double expected_mean = shape / rate;
  const double expected_var = shape / (rate * rate);
  EXPECT_NEAR(mean, expected_mean, 0.05 * expected_mean + 0.01);
  EXPECT_NEAR(var, expected_var, 0.1 * expected_var + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndRates, ErlangMoments,
    ::testing::Values(std::make_tuple(1, 1.0), std::make_tuple(4, 0.5),
                      std::make_tuple(16, 2.0), std::make_tuple(40, 5.0),
                      std::make_tuple(100, 0.2)));

TEST(Rng, BinomialSmallN) {
  Rng rng(12);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto x = rng.Binomial(10, 0.4);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 10);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(Rng, BinomialSmallMeanLargeN) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Binomial(1000000, 2e-5));  // mean 20
  }
  EXPECT_NEAR(sum / n, 20.0, 0.3);
}

TEST(Rng, BinomialNormalRegime) {
  Rng rng(14);
  const int n = 20000;
  const std::int64_t trials = 10000;
  const double p = 0.3;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.Binomial(trials, p));
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, static_cast<double>(trials));
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, trials * p, 5.0);
  EXPECT_NEAR(sq / n - mean * mean, trials * p * (1 - p), 100.0);
}

TEST(Rng, BinomialSkewedRegimeIsExact) {
  // Regression for the doc/code mismatch: the header promises the normal
  // approximation only when np(1-p) > 100, but the sampler used to switch
  // at mean >= 64 — reaching the symmetric approximation where the true
  // distribution is still visibly skewed. Binomial(6400, 0.01) has mean 64
  // and variance 63.36, squarely in the once-misrouted band; its skewness
  // (1-2p)/sqrt(np(1-p)) = 0.123 is ~11 sigma away from the approximation's
  // 0 at this sample count.
  Rng rng(77);
  const std::int64_t trials = 6400;
  const double p = 0.01;
  const int n = 50000;
  double sum = 0.0, sq = 0.0, cube = 0.0;
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.Binomial(trials, p));
    xs[static_cast<std::size_t>(i)] = x;
    sum += x;
  }
  const double mean = sum / n;
  for (double x : xs) {
    const double d = x - mean;
    sq += d * d;
    cube += d * d * d;
  }
  const double variance = sq / n;
  const double skewness = (cube / n) / std::pow(variance, 1.5);
  const double expected_mean = trials * p;                    // 64
  const double expected_var = trials * p * (1 - p);           // 63.36
  const double expected_skew = (1 - 2 * p) / std::sqrt(expected_var);  // .123
  EXPECT_NEAR(mean, expected_mean, 0.15);
  EXPECT_NEAR(variance, expected_var, 2.0);
  EXPECT_NEAR(skewness, expected_skew, 0.04);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(15);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100);
}

TEST(Rng, SphereDirectionUnitNorm) {
  Rng rng(16);
  for (int d : {1, 2, 5, 20, 100}) {
    const auto v = rng.SphereDirection(d);
    ASSERT_EQ(v.size(), static_cast<std::size_t>(d));
    double norm_sq = 0.0;
    for (double x : v) norm_sq += x * x;
    EXPECT_NEAR(norm_sq, 1.0, 1e-12);
  }
}

TEST(Rng, SphereDirectionIsotropy) {
  Rng rng(17);
  const int d = 8;
  const int n = 20000;
  std::vector<double> mean(d, 0.0);
  for (int i = 0; i < n; ++i) {
    const auto v = rng.SphereDirection(d);
    for (int j = 0; j < d; ++j) mean[static_cast<std::size_t>(j)] += v[static_cast<std::size_t>(j)];
  }
  for (int j = 0; j < d; ++j) {
    EXPECT_NEAR(mean[static_cast<std::size_t>(j)] / n, 0.0, 0.01);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(18);
  const auto perm = rng.Permutation(100);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Rng, PermutationUniformFirstElement) {
  Rng rng(19);
  std::vector<int> count(5, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++count[static_cast<std::size_t>(rng.Permutation(5)[0])];
  }
  for (int c : count) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(20);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(21);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace gcon
