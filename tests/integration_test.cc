// End-to-end tests across modules: the full Figure-1-style pipeline on a
// small synthetic dataset, cross-method sanity orderings, and the
// empirical-privacy attack comparison that motivates the paper.
#include <gtest/gtest.h>

#include "baselines/gcn.h"
#include "baselines/mlp_baseline.h"
#include "core/gcon.h"
#include "eval/attack.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "graph/stats.h"
#include "rng/rng.h"

namespace gcon {
namespace {

struct Bench {
  Graph graph;
  Split split;
};

Bench MakeBench(std::uint64_t seed, double homophily = 0.85) {
  DatasetSpec spec = TinySpec();
  spec.num_nodes = 300;
  spec.num_undirected_edges = 900;
  spec.homophily = homophily;
  spec.train_per_class = 15;
  spec.val_size = 60;
  spec.test_size = 120;
  Rng rng(seed);
  Bench b{GenerateDataset(spec, &rng), {}};
  b.split = MakeSplit(spec, b.graph, &rng);
  return b;
}

GconConfig BenchGconConfig() {
  GconConfig config;
  config.alpha = 0.6;
  config.steps = {2};
  config.encoder.hidden = 16;
  config.encoder.out_dim = 8;
  config.encoder.epochs = 150;
  config.minimize.max_iterations = 2000;
  config.seed = 3;
  return config;
}

double TestF1(const Bench& b, const Matrix& logits) {
  return MicroF1FromLogits(logits, b.graph.labels(), b.split.test,
                           b.graph.num_classes());
}

TEST(EndToEnd, GconUtilityImprovesWithBudget) {
  const Bench b = MakeBench(1);
  const GconPrepared prepared =
      PrepareGcon(b.graph, b.split, BenchGconConfig());
  // Average over noise draws to damp randomness; tiny vs large budget.
  double f1_tight = 0.0, f1_loose = 0.0;
  const int runs = 5;
  for (int r = 0; r < runs; ++r) {
    const GconModel tight =
        TrainPrepared(prepared, 0.05, 1e-4, static_cast<std::uint64_t>(r));
    const GconModel loose =
        TrainPrepared(prepared, 8.0, 1e-4, static_cast<std::uint64_t>(100 + r));
    f1_tight += TestF1(b, PrivateInference(prepared, tight));
    f1_loose += TestF1(b, PrivateInference(prepared, loose));
  }
  EXPECT_GT(f1_loose / runs, f1_tight / runs - 0.02);
  EXPECT_GT(f1_loose / runs, 0.5);  // absolute utility on an easy graph
}

TEST(EndToEnd, GraphInformationHelpsOnHomophilousData) {
  // GCON at a loose budget should beat the edge-free MLP baseline on a
  // homophilous graph whose features alone are weakly informative.
  DatasetSpec spec = TinySpec();
  spec.num_nodes = 300;
  spec.num_undirected_edges = 1100;
  spec.homophily = 0.9;
  spec.topic_bias = 0.35;  // weaken features so edges matter
  spec.train_per_class = 15;
  spec.val_size = 60;
  spec.test_size = 120;
  Rng rng(7);
  Bench b{GenerateDataset(spec, &rng), {}};
  b.split = MakeSplit(spec, b.graph, &rng);

  GconConfig config = BenchGconConfig();
  config.epsilon = 8.0;
  const GconPrepared prepared = PrepareGcon(b.graph, b.split, config);
  const GconModel model = TrainPrepared(prepared, 8.0, 1e-4, 5);
  const double f1_gcon = TestF1(b, PublicInference(prepared, model));

  MlpBaselineOptions mlp_options;
  mlp_options.hidden = 16;
  mlp_options.epochs = 150;
  mlp_options.seed = 5;
  const double f1_mlp =
      TestF1(b, TrainMlpAndPredict(b.graph, b.split, mlp_options));
  EXPECT_GT(f1_gcon, f1_mlp - 0.02)
      << "propagation should help when features are weak";
}

TEST(EndToEnd, NonPrivateGcnIsUpperBoundish) {
  // GCN (non-DP) should be at least as good as GCON at a tight budget —
  // this is the headline gap the paper is closing.
  const Bench b = MakeBench(2);
  GcnOptions gcn_options;
  gcn_options.hidden = 16;
  gcn_options.epochs = 150;
  gcn_options.seed = 11;
  const double f1_gcn =
      TestF1(b, TrainGcnAndPredict(b.graph, b.split, gcn_options));

  const GconPrepared prepared =
      PrepareGcon(b.graph, b.split, BenchGconConfig());
  const GconModel model = TrainPrepared(prepared, 0.1, 1e-4, 5);
  const double f1_gcon_tight = TestF1(b, PrivateInference(prepared, model));
  EXPECT_GT(f1_gcn, f1_gcon_tight - 0.1);
}

TEST(EndToEnd, AttackWeakerAgainstGconThanNonPrivateGcn) {
  // The motivating experiment: posterior-similarity edge inference should
  // be (weakly) less effective against the DP model.
  const Bench b = MakeBench(3, 0.9);
  GcnOptions gcn_options;
  gcn_options.hidden = 16;
  gcn_options.epochs = 200;
  gcn_options.seed = 13;
  const Matrix gcn_logits = TrainGcnAndPredict(b.graph, b.split, gcn_options);

  GconConfig config = BenchGconConfig();
  const GconPrepared prepared = PrepareGcon(b.graph, b.split, config);
  const GconModel model = TrainPrepared(prepared, 0.5, 1e-4, 17);
  const Matrix gcon_logits = PrivateInference(prepared, model);

  Rng rng_a(19), rng_b(23);
  const double auc_gcn =
      PosteriorSimilarityAttack(gcn_logits, b.graph, 400, &rng_a).auc;
  const double auc_gcon =
      PosteriorSimilarityAttack(gcon_logits, b.graph, 400, &rng_b).auc;
  // Both models sit on a homophilous graph so neither AUC is exactly 0.5;
  // the non-private model must not leak LESS than the DP one by a margin.
  EXPECT_GT(auc_gcn, auc_gcon - 0.1);
}

TEST(EndToEnd, HeterophilyShrinksGconAdvantage) {
  // On a heterophilous graph (Actor-like), propagation helps less — the
  // gap between GCON and MLP should be smaller than on homophilous data.
  const Bench homo = MakeBench(4, 0.9);
  const Bench hetero = MakeBench(5, 0.15);

  auto gap = [&](const Bench& b) {
    GconConfig config = BenchGconConfig();
    const GconPrepared prepared = PrepareGcon(b.graph, b.split, config);
    const GconModel model = TrainPrepared(prepared, 8.0, 1e-4, 29);
    const double f1_gcon = TestF1(b, PublicInference(prepared, model));
    MlpBaselineOptions mlp_options;
    mlp_options.hidden = 16;
    mlp_options.epochs = 150;
    mlp_options.seed = 31;
    const double f1_mlp =
        TestF1(b, TrainMlpAndPredict(b.graph, b.split, mlp_options));
    return f1_gcon - f1_mlp;
  };
  EXPECT_GT(gap(homo), gap(hetero) - 0.05);
}

TEST(EndToEnd, FullFigureOnePipelineSmoke) {
  // One epsilon point of the Figure 1 harness across all methods, checking
  // everything runs end to end and returns sane numbers.
  const Bench b = MakeBench(6);
  const double eps = 2.0;
  const double delta = 1e-4;
  std::vector<double> scores;

  {
    const GconPrepared prepared =
        PrepareGcon(b.graph, b.split, BenchGconConfig());
    scores.push_back(TestF1(
        b, PrivateInference(prepared, TrainPrepared(prepared, eps, delta, 1))));
  }
  {
    MlpBaselineOptions options;
    options.hidden = 16;
    options.epochs = 120;
    scores.push_back(TestF1(b, TrainMlpAndPredict(b.graph, b.split, options)));
  }
  {
    GcnOptions options;
    options.hidden = 16;
    options.epochs = 120;
    scores.push_back(TestF1(b, TrainGcnAndPredict(b.graph, b.split, options)));
  }
  for (double f1 : scores) {
    EXPECT_GE(f1, 0.0);
    EXPECT_LE(f1, 1.0);
    EXPECT_GT(f1, 0.8 / b.graph.num_classes());
  }
}

TEST(EndToEnd, StatsPipelineForTableTwo) {
  // The Table II harness path: generate each paper dataset (scaled), print
  // stats — here we just assert the stats are consistent.
  for (const DatasetSpec& spec : PaperSpecs()) {
    const DatasetSpec scaled = Scaled(spec, 0.08);
    Rng rng(41);
    const Graph graph = GenerateDataset(scaled, &rng);
    EXPECT_EQ(graph.num_nodes(), scaled.num_nodes);
    EXPECT_GT(graph.num_edges(), 0u);
    const double h = HomophilyRatio(graph);
    EXPECT_GT(h, 0.0);
    EXPECT_LT(h, 1.0);
  }
}

}  // namespace
}  // namespace gcon
