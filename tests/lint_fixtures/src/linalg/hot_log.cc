// Fixture: a log statement inside a GEMM kernel file — per-tile logging
// is the pathological case no-hot-path-logging bans from src/linalg/.
#include "common/logging.h"

void MicroKernelTail() {
  GCON_LOG(WARNING) << "fringe tile";  // live violation
}
