// Fixture: NOT a violation — src/linalg/ is a sanctioned OpenMP home.
void SanctionedKernel(double* x, int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    x[i] += 1.0;
  }
}
