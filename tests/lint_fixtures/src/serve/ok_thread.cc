// Fixture: NOT a violation — src/serve/ owns its threads (TCP accept loop,
// resident batcher workers).
#include <thread>

void ServeAcceptLoop() {
  std::thread acceptor([] {});
  acceptor.join();
}
