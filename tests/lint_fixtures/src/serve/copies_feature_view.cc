// Fixture: seeded serve-zero-copy violation — materializing the
// non-owning feature_view into an owning vector reintroduces the
// per-query copy the binary transport deleted.
#include <vector>

struct FeatureView {
  const float* data = nullptr;
  unsigned count = 0;
};

struct Request {
  FeatureView feature_view;
  std::vector<double> features;
};

void Widen(Request* request) {
  // VIOLATION: deep copy of the view payload.
  request->features.assign(request->feature_view.data,
                           request->feature_view.data +
                               request->feature_view.count);
  // NOT a violation (commented out):
  // std::copy(request->feature_view.data, end, dst);
}

void GatherInPlace(const Request& request, double* dst) {
  // NOT a violation: the sanctioned in-place widening — reads the view
  // element-wise straight into the packed panel, no copy API.
  const float* src = request.feature_view.data;
  for (unsigned j = 0; j < request.feature_view.count; ++j) {
    dst[j] = static_cast<double>(src[j]);
  }
}
