// Fixture: a log statement in the micro-batcher's dispatch loop — the
// exact construct no-hot-path-logging exists to catch (one mutex + one
// write() syscall per batch, serialized across every worker).
#include "common/logging.h"

void WorkerMain() {
  // GCON_LOG(INFO) << "commented-out copy must not count";
  GCON_LOG(INFO) << "dispatching batch";  // live violation
}
