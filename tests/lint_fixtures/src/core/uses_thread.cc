// Fixture: seeded no-raw-threads violation (std::thread outside
// src/eval/parallel.* and src/serve/). Never compiled; consumed by
// tests/lint_invariants_test.py.
#include <thread>

void SpawnRogueWorker() {
  std::thread worker([] {});
  worker.join();
}
