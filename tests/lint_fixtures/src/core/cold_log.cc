// Fixture: GCON_LOG outside the no-hot-path-logging "only" list — cold
// paths may log freely, so this file must produce NO finding.
#include "common/logging.h"

void LoadArtifact() {
  GCON_LOG(INFO) << "loaded artifact";  // sanctioned: not a hot path
}
