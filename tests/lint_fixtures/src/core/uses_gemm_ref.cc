// Fixture: seeded gemm-reference violation — a production call into the
// unblocked seed oracle kernel. (Never compiled; the include just mirrors
// how a real offender would pull the symbol in.)
#include "linalg/gemm_kernels.h"

void SlowPath(const double* a, const double* b, double* c, int n) {
  GemmReference(a, b, c, n);
}
