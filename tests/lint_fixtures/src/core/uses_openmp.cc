// Fixture: seeded no-raw-openmp violation (raw pragma outside the
// sanctioned kernel dirs).
void RoguePragmaLoop(double* x, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    x[i] *= 2.0;
  }
}
