// Fixture: seeded rng-discipline violations — two rand() call lines (the
// pair is the ambiguous-waiver case in the self-test), plus srand and
// std::random_device. `strand(` must NOT match (identifier boundary).
#include <cstdlib>
#include <random>

int strand(int x) { return x; }  // decoy: not rand()

int RogueEntropy() {
  srand(7);
  int a = rand();
  int b = rand();
  std::random_device dev;
  return a + b + static_cast<int>(dev()) + strand(1);
}
