// Fixture: seeded nolint-reason violation — a bare tidy-suppression marker
// with no named check or reason. The two markers below it follow the
// required `(check-name): why` shape and must NOT be flagged.
int RogueSuppression(int x) {
  return x + 1;  // NOLINT
}

int ExplainedSuppression(int x) {
  // NOLINTNEXTLINE(bugprone-example-check): fixture shows the legal shape.
  return x + 2;
}

int InlineExplained(int x) {
  return x + 3;  // NOLINT(performance-example-check): fixture legal shape.
}
