// Fixture: seeded scoped-cache-stats violation — the retired "diff the
// global stats across the call" scheme. The commented-out copy below the
// live one must NOT be flagged (the linter strips comments).
struct FakeStats {
  unsigned long hits;
};
struct FakeCache {
  static FakeCache& Global();
  FakeStats stats() const { return {0}; }
};

unsigned long RacyDelta() {
  const auto before = FakeCache::Global().stats();
  // const auto commented = FakeCache::Global().stats();
  return before.hits;
}
