// Fixture: seeded baseline-layering violation — a bench including a
// concrete baseline header instead of dispatching through the registry.
#include "baselines/gcn.h"

int main() { return 0; }
