// PropagationCache: hit ≡ recompute (bitwise), keying/invalidations,
// eviction bounds, the disabled path, the fused SpmmAxpby round it builds
// on, and the RunMethodRepeated share_data amortization counters.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>

#include "eval/experiment.h"
#include "graph/datasets.h"
#include "linalg/ops.h"
#include "propagation/appr.h"
#include "propagation/cache.h"
#include "propagation/transition.h"
#include "rng/rng.h"
#include "sparse/csr_matrix.h"

namespace gcon {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t k = 0; k < m.size(); ++k) {
    m.data()[k] = rng.Uniform(-1.0, 1.0);
  }
  return m;
}

Graph MakeGraph(std::uint64_t seed = 3) {
  Rng rng(seed);
  return GenerateDataset(TinySpec(), &rng);
}

TEST(SpmmAxpby, MatchesThreeOpSequenceBitwise) {
  const Graph graph = MakeGraph();
  const CsrMatrix t = BuildTransition(graph);
  const Matrix z = RandomMatrix(t.cols(), 9, 11);
  const Matrix x = RandomMatrix(t.rows(), 9, 13);
  const double a = 0.4, b = 0.6;

  Matrix want = t.Multiply(z);
  ScaleInPlace(a, &want);
  AxpyInPlace(b, x, &want);

  Matrix got;
  t.SpmmAxpby(a, z, b, x, &got);
  EXPECT_TRUE(got.AllClose(want, 0.0));  // same accumulation order: bitwise
}

TEST(SpmmAxpby, ReusesPreallocatedOutput) {
  const Graph graph = MakeGraph();
  const CsrMatrix t = BuildTransition(graph);
  const Matrix z = RandomMatrix(t.cols(), 4, 17);
  Matrix out(t.rows(), 4, /*value=*/123.0);  // stale contents must vanish
  t.SpmmAxpby(1.0, z, 0.0, z, &out);
  EXPECT_TRUE(out.AllClose(t.Multiply(z), 0.0));
}

TEST(CooBuilder, ReservePreservesSemantics) {
  CooBuilder builder(3, 3);
  builder.Reserve(4);
  builder.Add(0, 1, 1.0);
  builder.Add(0, 1, 2.0);  // duplicate merges
  builder.Add(2, 0, 5.0);
  const CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 5.0);
}

TEST(PropagationCache, TransitionHitIsBitwiseIdenticalToRebuild) {
  const Graph graph = MakeGraph();
  PropagationCache cache;
  const auto first = cache.Transition(graph);
  const auto second = cache.Transition(graph);
  EXPECT_EQ(first.key, second.key);
  EXPECT_EQ(first.csr.get(), second.csr.get());  // same cached object
  const CsrMatrix direct = BuildTransition(graph);
  EXPECT_TRUE(first.csr->ToDense().AllClose(direct.ToDense(), 0.0));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.csr_misses, 1u);
  EXPECT_EQ(stats.csr_hits, 1u);
}

TEST(PropagationCache, ConcatPropagateHitEqualsRecompute) {
  const Graph graph = MakeGraph();
  Matrix x = RandomMatrix(static_cast<std::size_t>(graph.num_nodes()), 8, 19);
  RowL2NormalizeInPlace(&x);
  const std::vector<int> steps = {0, 2};
  PropagationCache cache;
  const auto t = cache.Transition(graph);
  const Matrix miss = cache.ConcatPropagate(*t.csr, t.key, x, steps, 0.6);
  const Matrix hit = cache.ConcatPropagate(*t.csr, t.key, x, steps, 0.6);
  const Matrix direct = ConcatPropagate(*t.csr, x, steps, 0.6);
  EXPECT_TRUE(miss.AllClose(direct, 0.0));
  EXPECT_TRUE(hit.AllClose(direct, 0.0));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.propagation_misses, 1u);
  EXPECT_EQ(stats.propagation_hits, 1u);
}

TEST(PropagationCache, DistinctParametersAreDistinctEntries) {
  const Graph graph = MakeGraph();
  Matrix x = RandomMatrix(static_cast<std::size_t>(graph.num_nodes()), 4, 23);
  PropagationCache cache;
  const auto t = cache.Transition(graph);
  const Matrix a = cache.ConcatPropagate(*t.csr, t.key, x, {2}, 0.6);
  const Matrix b = cache.ConcatPropagate(*t.csr, t.key, x, {2}, 0.4);
  const Matrix c = cache.ConcatPropagate(*t.csr, t.key, x, {1}, 0.6);
  EXPECT_EQ(cache.stats().propagation_misses, 3u);
  EXPECT_EQ(cache.stats().propagation_hits, 0u);
  EXPECT_FALSE(a.AllClose(b, 1e-12));
  EXPECT_FALSE(a.AllClose(c, 1e-12));
}

TEST(PropagationCache, EdgeMutationChangesFingerprint) {
  Graph graph = MakeGraph();
  PropagationCache cache;
  const auto before = cache.Transition(graph);
  // Flip one edge; the structural fingerprint must change so the cache
  // cannot serve the stale transition.
  int u = 0, v = 1;
  if (!graph.AddEdge(u, v)) graph.RemoveEdge(u, v);
  const auto after = cache.Transition(graph);
  EXPECT_NE(before.key, after.key);
  EXPECT_EQ(cache.stats().csr_misses, 2u);
  EXPECT_EQ(cache.stats().csr_hits, 0u);
}

TEST(PropagationCache, DifferentFeaturesMissOnPropagation) {
  const Graph graph = MakeGraph();
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  PropagationCache cache;
  const auto t = cache.Transition(graph);
  cache.ConcatPropagate(*t.csr, t.key, RandomMatrix(n, 4, 29), {2}, 0.5);
  cache.ConcatPropagate(*t.csr, t.key, RandomMatrix(n, 4, 31), {2}, 0.5);
  EXPECT_EQ(cache.stats().propagation_misses, 2u);
}

TEST(PropagationCache, UncachedTransitionKeyZeroNeverMemoizes) {
  const Graph graph = MakeGraph();
  const CsrMatrix t = BuildTransition(graph);
  const Matrix x = RandomMatrix(static_cast<std::size_t>(graph.num_nodes()),
                                4, 37);
  PropagationCache cache;
  cache.ConcatPropagate(t, /*transition_key=*/0, x, {2}, 0.5);
  cache.ConcatPropagate(t, /*transition_key=*/0, x, {2}, 0.5);
  EXPECT_EQ(cache.stats().propagation_hits, 0u);
  EXPECT_EQ(cache.stats().propagation_misses, 0u);  // bypassed entirely
}

TEST(PropagationCache, DisabledCacheAlwaysRecomputes) {
  const Graph graph = MakeGraph();
  PropagationCache cache;
  cache.set_enabled(false);
  const auto a = cache.Transition(graph);
  const auto b = cache.Transition(graph);
  EXPECT_EQ(a.key, 0u);
  EXPECT_NE(a.csr.get(), b.csr.get());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PropagationCache, EntryCapEvictsLeastRecentlyUsed) {
  PropagationCache cache;
  cache.set_capacity(/*max_entries_per_store=*/2, /*max_bytes=*/1u << 30);
  const Graph g1 = MakeGraph(41);
  const Graph g2 = MakeGraph(43);
  const Graph g3 = MakeGraph(47);
  cache.Transition(g1);
  cache.Transition(g2);
  cache.Transition(g1);  // refresh g1 so g2 is the LRU victim
  cache.Transition(g3);  // evicts g2
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.Transition(g1);
  EXPECT_EQ(cache.stats().csr_hits, 2u);
  cache.Transition(g2);  // re-miss after eviction
  EXPECT_EQ(cache.stats().csr_misses, 4u);
}

TEST(PropagationCache, ByteBudgetBoundsFootprint) {
  PropagationCache cache;
  cache.set_capacity(/*max_entries_per_store=*/64, /*max_bytes=*/1);
  const Graph graph = MakeGraph();
  cache.Transition(graph);
  EXPECT_EQ(cache.stats().entries, 0u);  // everything evicted immediately
}

TEST(PropagationCache, HashMatrixSeparatesShapeAndContent) {
  const Matrix a = RandomMatrix(4, 6, 51);
  Matrix b = a;
  EXPECT_EQ(HashMatrix(a), HashMatrix(b));
  b(3, 5) = std::nextafter(b(3, 5), 2.0);  // one-ulp flip must change it
  EXPECT_NE(HashMatrix(a), HashMatrix(b));
  const Matrix flat(1, 24);
  const Matrix tall(24, 1);
  EXPECT_NE(HashMatrix(flat), HashMatrix(tall));
}

// Regression: with the cache disabled, CsrLocked's shared_ptr is the SOLE
// owner of the built matrix — any caller binding a reference without
// keeping the CachedCsr alive dangles (gap/dpsgd once segfaulted here).
// Drives the methods that consume cached CSRs end-to-end on the disabled
// global cache.
TEST(PropagationCache, DisabledGlobalCacheTrainsAllCsrConsumers) {
  PropagationCache::Global().set_enabled(false);
  ModelConfig config;
  config.Set("epsilon", "1.0");
  for (const char* method : {"gap", "dpsgd", "gcn", "gcon"}) {
    const MethodRunSummary summary = RunMethodRepeated(
        method, config, TinySpec(), /*runs=*/1, /*base_seed=*/91);
    EXPECT_GT(summary.runs.front().logits.size(), 0u) << method;
  }
  PropagationCache::Global().set_enabled(true);
}

// RunMethodRepeated with share_data: one dataset, runs-1 propagation hits;
// the pinned seed makes the encoder output identical across runs, which is
// exactly the repeated-measurement protocol the cache amortizes.
TEST(PropagationCache, RunMethodRepeatedShareDataAmortizes) {
  ModelConfig config;
  config.Set("epsilon", "1.0");
  config.Set("encoder_epochs", "20");
  config.Set("max_iterations", "50");
  config.Set("seed", "5");
  RepeatOptions options;
  options.share_data = true;
  const MethodRunSummary summary = RunMethodRepeated(
      "gcon", config, TinySpec(), /*runs=*/3, /*base_seed=*/77, options);
  EXPECT_EQ(summary.cache.propagation_misses, 1u);
  EXPECT_EQ(summary.cache.propagation_hits, 2u);
  EXPECT_GE(summary.cache.csr_hits, 2u);
  // Identical inputs end-to-end: the cache must not perturb determinism.
  ASSERT_EQ(summary.runs.size(), 3u);
  EXPECT_TRUE(summary.runs[0].logits.AllClose(summary.runs[1].logits, 0.0));
}

TEST(PropagationCacheStatsScope, CountsOnlyOwnThreadAndNests) {
  const Graph graph = MakeGraph(211);
  PropagationCache cache;

  PropagationCacheStatsScope outer;
  cache.Transition(graph);  // miss, credited to outer
  {
    PropagationCacheStatsScope inner;
    cache.Transition(graph);  // hit, credited to inner AND outer
    EXPECT_EQ(inner.stats().csr_hits, 1u);
    EXPECT_EQ(inner.stats().csr_misses, 0u);
  }

  // Another thread's events are invisible to this thread's scopes.
  std::thread other([&] {
    PropagationCacheStatsScope theirs;
    cache.Transition(graph);
    cache.Transition(graph);
    EXPECT_EQ(theirs.stats().csr_hits, 2u);
    EXPECT_EQ(theirs.stats().csr_misses, 0u);
  });
  other.join();

  EXPECT_EQ(outer.stats().csr_misses, 1u);
  EXPECT_EQ(outer.stats().csr_hits, 1u);  // the inner hit, not the thread's
  // The global tally still sees everything.
  EXPECT_EQ(cache.stats().csr_misses, 1u);
  EXPECT_EQ(cache.stats().csr_hits, 3u);
}

// Helper for the concurrent-delta tests: the four counters of a delta (the
// seconds fields are wall-clock and not comparable across runs).
std::array<std::uint64_t, 4> Counters(const PropagationCacheDelta& d) {
  return {d.csr_hits, d.csr_misses, d.propagation_hits, d.propagation_misses};
}

// The bug this PR fixes: PropagationCacheDelta used to be the diff of
// PropagationCache::Global().stats() across the call, which credited every
// concurrent caller's events to whoever diffed. Two RunMethodRepeated
// calls in flight at once (different methods, different data, so their
// cache keys never collide) must each report exactly the delta they report
// when run alone.
TEST(PropagationCache, ConcurrentRepeatedCallsReportTheirOwnDeltasExactly) {
  PropagationCache::Global().Clear();
  ModelConfig gcon_config;
  gcon_config.Set("epsilon", "1.0");
  gcon_config.Set("encoder_epochs", "20");
  gcon_config.Set("max_iterations", "50");
  gcon_config.Set("seed", "31");
  ModelConfig gap_config;
  gap_config.Set("epsilon", "1.0");
  RepeatOptions share;
  share.share_data = true;

  // Baselines: each call alone on a cold store.
  const PropagationCacheDelta gcon_alone =
      RunMethodRepeated("gcon", gcon_config, TinySpec(), /*runs=*/3,
                        /*base_seed=*/301, share)
          .cache;
  const PropagationCacheDelta gap_alone =
      RunMethodRepeated("gap", gap_config, TinySpec(), /*runs=*/3,
                        /*base_seed=*/401, share)
          .cache;
  // Sanity: the gcon share_data+pinned-seed protocol amortizes as ever.
  EXPECT_EQ(gcon_alone.propagation_misses, 1u);
  EXPECT_EQ(gcon_alone.propagation_hits, 2u);

  // Same two calls, cold store again, but in flight simultaneously.
  PropagationCache::Global().Clear();
  PropagationCacheDelta gcon_delta, gap_delta;
  std::thread gcon_thread([&] {
    gcon_delta = RunMethodRepeated("gcon", gcon_config, TinySpec(), 3,
                                   /*base_seed=*/301, share)
                     .cache;
  });
  std::thread gap_thread([&] {
    gap_delta = RunMethodRepeated("gap", gap_config, TinySpec(), 3,
                                  /*base_seed=*/401, share)
                    .cache;
  });
  gcon_thread.join();
  gap_thread.join();

  EXPECT_EQ(Counters(gcon_delta), Counters(gcon_alone));
  EXPECT_EQ(Counters(gap_delta), Counters(gap_alone));
}

// Delta attribution survives unrelated cache traffic hammering the global
// store from another thread while the measured call runs.
TEST(PropagationCache, DeltaIgnoresConcurrentForeignTraffic) {
  PropagationCache::Global().Clear();
  std::atomic<bool> stop{false};
  std::thread noise([&] {
    const Graph foreign = MakeGraph(503);
    while (!stop.load()) {
      PropagationCache::Global().Transition(foreign);
    }
  });

  ModelConfig config;
  config.Set("epsilon", "1.0");
  config.Set("encoder_epochs", "20");
  config.Set("max_iterations", "50");
  config.Set("seed", "37");
  RepeatOptions share;
  share.share_data = true;
  const PropagationCacheDelta delta =
      RunMethodRepeated("gcon", config, TinySpec(), /*runs=*/3,
                        /*base_seed=*/601, share)
          .cache;
  stop.store(true);
  noise.join();

  // Exactly this call's protocol — none of the noise thread's hits/misses.
  EXPECT_EQ(delta.propagation_misses, 1u);
  EXPECT_EQ(delta.propagation_hits, 2u);
}

TEST(PropagationCache, ShareDataStillVariesModelSeedWhenUnpinned) {
  ModelConfig config;
  config.Set("epsilon", "1.0");
  config.Set("encoder_epochs", "20");
  config.Set("max_iterations", "50");
  RepeatOptions options;
  options.share_data = true;
  const MethodRunSummary summary = RunMethodRepeated(
      "gcon", config, TinySpec(), /*runs=*/2, /*base_seed=*/78, options);
  // Different per-run seeds -> different encoder outputs -> no false
  // propagation hits, but the shared graph still reuses its transition.
  EXPECT_EQ(summary.cache.propagation_hits, 0u);
  EXPECT_GE(summary.cache.csr_hits, 1u);
  EXPECT_FALSE(summary.runs[0].logits.AllClose(summary.runs[1].logits, 1e-12));
}

}  // namespace
}  // namespace gcon
