#include <gtest/gtest.h>

#include <cstdlib>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace gcon {
namespace {

TEST(StringUtil, SplitBasic) {
  const auto pieces = SplitString("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtil, SplitDropsEmptyPieces) {
  const auto pieces = SplitString(",,a,,b,", ',');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(StringUtil, SplitEmptyString) { EXPECT_TRUE(SplitString("", ',').empty()); }

TEST(StringUtil, JoinRoundTrip) {
  const std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Join(pieces, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringUtil, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
}

TEST(Flags, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--epsilon=2.5", "--dataset=cora_ml"};
  Flags flags(3, const_cast<char**>(argv),
              {{"epsilon", "budget"}, {"dataset", "name"}});
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 1.0), 2.5);
  EXPECT_EQ(flags.GetString("dataset", ""), "cora_ml");
}

TEST(Flags, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--runs", "7"};
  Flags flags(3, const_cast<char**>(argv), {{"runs", "repeat count"}});
  EXPECT_EQ(flags.GetInt("runs", 1), 7);
}

TEST(Flags, BooleanSwitch) {
  const char* argv[] = {"prog", "--full"};
  Flags flags(2, const_cast<char**>(argv), {{"full", "paper scale"}});
  EXPECT_TRUE(flags.GetBool("full", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(Flags, DeclaredSwitchDoesNotSwallowNextToken) {
  // The bug: `--share-data eval` consumed "eval" as the switch's value,
  // so the subcommand vanished from positional().
  const char* argv[] = {"prog", "--share-data", "eval"};
  Flags flags(3, const_cast<char**>(argv),
              {{"share-data", "share one dataset"}},
              /*switches=*/{"share-data"});
  EXPECT_TRUE(flags.GetBool("share-data", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "eval");
}

TEST(Flags, DeclaredSwitchStillAcceptsEqualsForm) {
  const char* argv[] = {"prog", "--share-data=false", "eval"};
  Flags flags(3, const_cast<char**>(argv),
              {{"share-data", "share one dataset"}},
              /*switches=*/{"share-data"});
  EXPECT_FALSE(flags.GetBool("share-data", true));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "eval");
}

TEST(Flags, UndeclaredFlagKeepsGreedyValueForm) {
  // Flags not named in `switches` keep the "--name value" behavior.
  const char* argv[] = {"prog", "--runs", "7", "--share-data", "eval"};
  Flags flags(5, const_cast<char**>(argv),
              {{"runs", "repeats"}, {"share-data", "share"}},
              /*switches=*/{"share-data"});
  EXPECT_EQ(flags.GetInt("runs", 1), 7);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "eval");
}

TEST(FlagsDeathTest, MalformedIntNamesFlagAndPrintsUsage) {
  // Used to escape as an uncaught std::invalid_argument from std::stoi
  // with no hint of which flag was bad.
  const char* argv[] = {"prog", "--runs=abc"};
  Flags flags(2, const_cast<char**>(argv), {{"runs", "repeat count"}});
  EXPECT_EXIT(flags.GetInt("runs", 1), ::testing::ExitedWithCode(2),
              "Invalid value for --runs: 'abc'.*Usage: prog");
}

TEST(FlagsDeathTest, TrailingJunkIntRejected) {
  const char* argv[] = {"prog", "--runs=12abc"};
  Flags flags(2, const_cast<char**>(argv), {{"runs", "repeat count"}});
  EXPECT_EXIT(flags.GetInt("runs", 1), ::testing::ExitedWithCode(2),
              "Invalid value for --runs: '12abc'");
}

TEST(FlagsDeathTest, MalformedDoubleNamesFlagAndPrintsUsage) {
  const char* argv[] = {"prog", "--scale=fast"};
  Flags flags(2, const_cast<char**>(argv), {{"scale", "dataset scale"}});
  EXPECT_EXIT(flags.GetDouble("scale", 1.0), ::testing::ExitedWithCode(2),
              "Invalid value for --scale: 'fast'.*Usage: prog");
}

TEST(FlagsDeathTest, OutOfRangeIntRejected) {
  const char* argv[] = {"prog", "--runs=99999999999999999999"};
  Flags flags(2, const_cast<char**>(argv), {{"runs", "repeat count"}});
  EXPECT_EXIT(flags.GetInt("runs", 1), ::testing::ExitedWithCode(2),
              "Invalid value for --runs");
}

TEST(FlagsDeathTest, GetPositiveIntRejectsZeroAndNegativeNamingTheFlag) {
  // Serving knobs (--threads/--max_batch/--max_wait_us) use this: zero is
  // not a mode, it is a broken invocation that must fail loudly.
  const char* argv[] = {"prog", "--threads=0", "--max_batch=-4"};
  Flags flags(3, const_cast<char**>(argv),
              {{"threads", "workers"}, {"max_batch", "batch size"}});
  EXPECT_EXIT(flags.GetPositiveInt("threads", 1),
              ::testing::ExitedWithCode(2),
              "Invalid value for --threads: '0'.*positive integer");
  EXPECT_EXIT(flags.GetPositiveInt("max_batch", 1),
              ::testing::ExitedWithCode(2),
              "Invalid value for --max_batch: '-4'.*positive integer");
}

TEST(Flags, GetPositiveIntPassesValidValuesAndDefaults) {
  const char* argv[] = {"prog", "--threads=4"};
  Flags flags(2, const_cast<char**>(argv), {{"threads", "workers"}});
  EXPECT_EQ(flags.GetPositiveInt("threads", 1), 4);
  EXPECT_EQ(flags.GetPositiveInt("absent", 32), 32);
}

TEST(Flags, WellFormedNumericsStillParse) {
  const char* argv[] = {"prog", "--runs=8", "--scale=0.25", "--shift=-3"};
  Flags flags(4, const_cast<char**>(argv),
              {{"runs", "r"}, {"scale", "s"}, {"shift", "t"}});
  EXPECT_EQ(flags.GetInt("runs", 1), 8);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.25);
  EXPECT_EQ(flags.GetInt("shift", 0), -3);
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv), {{"x", "unused"}});
  EXPECT_EQ(flags.GetInt("x", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("x", "d"), "d");
  EXPECT_FALSE(flags.Has("x"));
}

TEST(Flags, PositionalArguments) {
  const char* argv[] = {"prog", "pos1", "--k=1", "pos2"};
  Flags flags(4, const_cast<char**>(argv), {{"k", "key"}});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "pos2");
}

TEST(Env, EnvIntDefaults) {
  EXPECT_EQ(EnvInt("GCON_TEST_UNSET_VARIABLE_XYZ", 17), 17);
}

TEST(Env, EnvIntReadsValue) {
  setenv("GCON_TEST_INT_VAR", "123", 1);
  EXPECT_EQ(EnvInt("GCON_TEST_INT_VAR", 0), 123);
  unsetenv("GCON_TEST_INT_VAR");
}

TEST(Env, EnvBoolReadsValue) {
  setenv("GCON_TEST_BOOL_VAR", "true", 1);
  EXPECT_TRUE(EnvBool("GCON_TEST_BOOL_VAR", false));
  setenv("GCON_TEST_BOOL_VAR", "0", 1);
  EXPECT_FALSE(EnvBool("GCON_TEST_BOOL_VAR", true));
  unsetenv("GCON_TEST_BOOL_VAR");
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer timer;
  double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink += i;
  EXPECT_GE(sink, 0.0);  // keep the loop observable
  EXPECT_GE(timer.Seconds(), 0.0);
  timer.Reset();
  EXPECT_LT(timer.Seconds(), 1.0);
}

}  // namespace
}  // namespace gcon
