#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/graph.h"
#include "graph/io.h"
#include "graph/splits.h"
#include "graph/stats.h"
#include "rng/rng.h"

namespace gcon {
namespace {

Graph TriangleGraph() {
  Graph g(4, 2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.set_label(0, 0);
  g.set_label(1, 0);
  g.set_label(2, 1);
  g.set_label(3, 1);
  Matrix x(4, 2);
  x(0, 0) = 1.0;
  x(1, 0) = 1.0;
  x(2, 1) = 1.0;
  x(3, 1) = 1.0;
  g.set_features(std::move(x));
  return g;
}

TEST(Graph, AddRemoveEdge) {
  Graph g(5, 2);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1));  // duplicate
  EXPECT_FALSE(g.AddEdge(1, 0));  // same undirected edge
  EXPECT_FALSE(g.AddEdge(2, 2));  // self loop rejected
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.RemoveEdge(1, 0));
  EXPECT_FALSE(g.RemoveEdge(0, 1));  // already gone
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, DegreesAndNeighbors) {
  const Graph g = TriangleGraph();
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(3), 0);
  const auto& nbrs = g.Neighbors(1);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 2);
}

TEST(Graph, EdgeListCanonical) {
  const Graph g = TriangleGraph();
  const auto edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, v);
  }
}

TEST(Graph, OneHotLabels) {
  const Graph g = TriangleGraph();
  const Matrix y = g.OneHotLabels();
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(y(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(y(2, 1), 1.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(y(i, 0) + y(i, 1), 1.0);
  }
}

TEST(Graph, AdjacencyCsrSymmetricNoSelfLoops) {
  const Graph g = TriangleGraph();
  const CsrMatrix a = g.AdjacencyCsr();
  EXPECT_EQ(a.nnz(), 6u);  // 3 undirected edges = 6 entries
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a.At(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(i)),
                     0.0);
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(a.At(static_cast<std::size_t>(i),
                            static_cast<std::size_t>(j)),
                       a.At(static_cast<std::size_t>(j),
                            static_cast<std::size_t>(i)));
    }
  }
}

TEST(Graph, CheckConsistencyPasses) {
  const Graph g = TriangleGraph();
  g.CheckConsistency();  // aborts on violation
}

TEST(Stats, HomophilyRatio) {
  // Triangle 0-1-2 with labels {0,0,1}: node 0 has neighbors {1 (same), 2
  // (diff)} -> 1/2; node 1 likewise 1/2; node 2 has {0,1} both diff -> 0.
  // Node 3 is isolated and skipped. Mean = (0.5+0.5+0)/3.
  const Graph g = TriangleGraph();
  EXPECT_NEAR(HomophilyRatio(g), (0.5 + 0.5 + 0.0) / 3.0, 1e-12);
}

TEST(Stats, DegreeStats) {
  const Graph g = TriangleGraph();
  EXPECT_EQ(MaxDegree(g), 2);
  EXPECT_DOUBLE_EQ(MeanDegree(g), 2.0 * 3.0 / 4.0);
  EXPECT_EQ(IsolatedCount(g), 1);
}

TEST(Stats, ClassFraction) {
  const Graph g = TriangleGraph();
  EXPECT_DOUBLE_EQ(ClassFraction(g, 0), 0.5);
  EXPECT_DOUBLE_EQ(ClassFraction(g, 1), 0.5);
}

TEST(Io, SaveLoadRoundTrip) {
  const Graph g = TriangleGraph();
  const std::string path = "/tmp/gcon_io_test_graph.txt";
  SaveGraph(g, path);
  const Graph loaded = LoadGraph(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.num_classes(), g.num_classes());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  for (int v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(loaded.label(v), g.label(v));
  }
  EXPECT_TRUE(loaded.features().AllClose(g.features()));
  EXPECT_TRUE(loaded.HasEdge(0, 1));
  EXPECT_TRUE(loaded.HasEdge(0, 2));
  EXPECT_FALSE(loaded.HasEdge(0, 3));
}

TEST(Splits, PlanetoidPerClassCounts) {
  Rng rng(1);
  Graph g(100, 4);
  for (int v = 0; v < 100; ++v) g.set_label(v, v % 4);
  const Split split = PlanetoidSplit(g, 5, 20, 40, &rng);
  EXPECT_EQ(split.train.size(), 20u);  // 5 per class x 4
  EXPECT_EQ(split.val.size(), 20u);
  EXPECT_EQ(split.test.size(), 40u);
  std::vector<int> per_class(4, 0);
  for (int v : split.train) ++per_class[static_cast<std::size_t>(g.label(v))];
  for (int c : per_class) EXPECT_EQ(c, 5);
}

TEST(Splits, PlanetoidClampsOversizedRequests) {
  Rng rng(2);
  Graph g(30, 3);
  for (int v = 0; v < 30; ++v) g.set_label(v, v % 3);
  const Split split = PlanetoidSplit(g, 5, 1000, 1000, &rng);
  EXPECT_EQ(split.train.size(), 15u);
  EXPECT_EQ(split.val.size(), 15u);  // remainder goes to val first
  EXPECT_TRUE(split.test.empty());
}

TEST(Splits, SplitsAreDisjoint) {
  Rng rng(3);
  Graph g(200, 5);
  for (int v = 0; v < 200; ++v) g.set_label(v, v % 5);
  const Split split = PlanetoidSplit(g, 10, 50, 80, &rng);
  std::vector<bool> seen(200, false);
  for (const auto* part : {&split.train, &split.val, &split.test}) {
    for (int v : *part) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]) << "node " << v;
      seen[static_cast<std::size_t>(v)] = true;
    }
  }
}

TEST(Splits, ProportionalSizes) {
  Rng rng(4);
  Graph g(100, 2);
  const Split split = ProportionalSplit(g, 0.6, 0.2, 0.2, &rng);
  EXPECT_EQ(split.train.size(), 60u);
  EXPECT_EQ(split.val.size(), 20u);
  EXPECT_EQ(split.test.size(), 20u);
}

TEST(Splits, DifferentSeedsDifferentSplits) {
  Graph g(100, 2);
  Rng rng_a(5), rng_b(6);
  const Split a = ProportionalSplit(g, 0.5, 0.2, 0.3, &rng_a);
  const Split b = ProportionalSplit(g, 0.5, 0.2, 0.3, &rng_b);
  EXPECT_NE(a.train, b.train);
}

}  // namespace
}  // namespace gcon
