#include <gtest/gtest.h>

#include <cmath>

#include "dp/graph_perturbation.h"
#include "dp/mechanisms.h"
#include "dp/rdp_accountant.h"
#include "graph/datasets.h"
#include "rng/rng.h"

namespace gcon {
namespace {

TEST(Mechanisms, LaplaceNoiseScale) {
  Rng rng(1);
  Matrix m(200, 50);
  LaplaceMechanismInPlace(&m, 2.0, 0.5, &rng);
  // scale b = sensitivity/eps = 4 -> variance 2b² = 32.
  double sq = 0.0;
  for (std::size_t k = 0; k < m.size(); ++k) sq += m.data()[k] * m.data()[k];
  EXPECT_NEAR(sq / static_cast<double>(m.size()), 32.0, 2.0);
}

TEST(Mechanisms, GaussianNoiseScale) {
  Rng rng(2);
  Matrix m(100, 100);
  GaussianNoiseInPlace(&m, 3.0, &rng);
  double sq = 0.0;
  for (std::size_t k = 0; k < m.size(); ++k) sq += m.data()[k] * m.data()[k];
  EXPECT_NEAR(sq / static_cast<double>(m.size()), 9.0, 0.5);
}

TEST(Mechanisms, GaussianNoiseZeroSigmaIsNoOp) {
  Rng rng(3);
  Matrix m(5, 5, 1.0);
  GaussianNoiseInPlace(&m, 0.0, &rng);
  EXPECT_TRUE(m.AllClose(Matrix(5, 5, 1.0)));
}

TEST(Mechanisms, GaussianSigmaClassicFormula) {
  const double sigma = GaussianSigma(1.0, 1.0, 1e-5);
  EXPECT_NEAR(sigma, std::sqrt(2.0 * std::log(1.25e5)), 1e-9);
  // Sigma scales linearly with sensitivity and inversely with epsilon.
  EXPECT_NEAR(GaussianSigma(2.0, 1.0, 1e-5), 2.0 * sigma, 1e-9);
  EXPECT_NEAR(GaussianSigma(1.0, 2.0, 1e-5), 0.5 * sigma, 1e-9);
}

TEST(Mechanisms, ZcdpConversionRoundTrip) {
  const double delta = 1e-6;
  for (double eps : {0.5, 1.0, 2.0, 4.0}) {
    const double rho = ZcdpRhoFromEpsilonDelta(eps, delta);
    EXPECT_GT(rho, 0.0);
    // Converting back must give exactly the target epsilon.
    EXPECT_NEAR(ZcdpEpsilon(rho, delta), eps, 1e-9);
  }
}

TEST(Mechanisms, ZcdpSigmaMonotonicity) {
  const double delta = 1e-6;
  // More composition -> more noise; larger budget -> less noise.
  EXPECT_GT(ZcdpSigmaForComposition(4, 1.0, 1.0, delta),
            ZcdpSigmaForComposition(2, 1.0, 1.0, delta));
  EXPECT_LT(ZcdpSigmaForComposition(2, 1.0, 4.0, delta),
            ZcdpSigmaForComposition(2, 1.0, 1.0, delta));
  EXPECT_NEAR(ZcdpSigmaForComposition(2, 2.0, 1.0, delta),
              2.0 * ZcdpSigmaForComposition(2, 1.0, 1.0, delta), 1e-9);
}

TEST(Rdp, GaussianRdpLinearInAlpha) {
  EXPECT_NEAR(GaussianRdp(2.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(GaussianRdp(8.0, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(GaussianRdp(3.0, 1.0), 1.5, 1e-12);
}

TEST(Rdp, SubsampledReducesToGaussianAtQ1) {
  for (int alpha : {2, 4, 16}) {
    EXPECT_NEAR(SubsampledGaussianRdp(alpha, 1.0, 2.0),
                GaussianRdp(alpha, 2.0), 1e-9);
  }
}

TEST(Rdp, SubsampledZeroAtQ0) {
  EXPECT_DOUBLE_EQ(SubsampledGaussianRdp(4, 0.0, 1.0), 0.0);
}

TEST(Rdp, SubsamplingAmplifiesPrivacy) {
  // q < 1 must cost (weakly) less than the full mechanism.
  for (int alpha : {2, 8, 32}) {
    EXPECT_LT(SubsampledGaussianRdp(alpha, 0.1, 1.0),
              GaussianRdp(alpha, 1.0));
  }
  // And more subsampling -> less cost.
  EXPECT_LT(SubsampledGaussianRdp(4, 0.01, 1.0),
            SubsampledGaussianRdp(4, 0.1, 1.0));
}

TEST(Rdp, EpsilonMonotoneInSteps) {
  const double e100 = DpSgdEpsilon(1.0, 0.1, 100, 1e-5);
  const double e500 = DpSgdEpsilon(1.0, 0.1, 500, 1e-5);
  EXPECT_LT(e100, e500);
}

TEST(Rdp, EpsilonMonotoneInSigma) {
  const double loose = DpSgdEpsilon(0.8, 0.1, 200, 1e-5);
  const double tight = DpSgdEpsilon(2.0, 0.1, 200, 1e-5);
  EXPECT_GT(loose, tight);
}

TEST(Rdp, SigmaSearchHitsTarget) {
  for (double eps : {0.5, 1.0, 4.0}) {
    const double sigma = DpSgdSigma(eps, 1e-5, 0.2, 300);
    const double achieved = DpSgdEpsilon(sigma, 0.2, 300, 1e-5);
    EXPECT_LE(achieved, eps * 1.001);
    EXPECT_GE(achieved, eps * 0.95);  // not wastefully large
  }
}

TEST(LapGraphInternals, LaplaceTailValues) {
  // P(Lap(1/eps) > 0) = 1/2; symmetric tails.
  EXPECT_NEAR(internal::LaplaceTail(0.0, 1.0, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(internal::LaplaceTail(0.0, 1.0, 1.0), 0.5 * std::exp(-1.0),
              1e-12);
  EXPECT_NEAR(internal::LaplaceTail(0.0, 1.0, -1.0),
              1.0 - 0.5 * std::exp(-1.0), 1e-12);
  // Shift moves the tail: P(1 + Lap > 1) = 1/2.
  EXPECT_NEAR(internal::LaplaceTail(1.0, 2.0, 1.0), 0.5, 1e-12);
}

TEST(LapGraphInternals, ThresholdMatchesTarget) {
  const std::size_t edges = 500;
  const std::size_t pairs = 100000;
  const double eps2 = 1.0;
  for (double target : {100.0, 500.0, 2000.0}) {
    const double t = internal::SolveLapGraphThreshold(edges, pairs, eps2,
                                                      target);
    const double expected =
        edges * internal::LaplaceTail(1.0, eps2, t) +
        (pairs - edges) * internal::LaplaceTail(0.0, eps2, t);
    EXPECT_NEAR(expected, target, 1.0);
  }
}

TEST(LapGraph, PreservesNodesAndAttributes) {
  Rng gen(5);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  Rng rng(6);
  const Graph perturbed = LapGraph(graph, 1.0, &rng);
  perturbed.CheckConsistency();
  EXPECT_EQ(perturbed.num_nodes(), graph.num_nodes());
  EXPECT_EQ(perturbed.num_classes(), graph.num_classes());
  EXPECT_TRUE(perturbed.features().AllClose(graph.features()));
  for (int v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_EQ(perturbed.label(v), graph.label(v));
  }
}

TEST(LapGraph, EdgeCountTracksNoisyTarget) {
  Rng gen(7);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  Rng rng(8);
  const Graph perturbed = LapGraph(graph, 2.0, &rng);
  // The kept-cell count concentrates around m~ ~= |E| (eps1 noise is small
  // relative to |E|); allow generous slack for the binomial fluctuation.
  const double m = static_cast<double>(graph.num_edges());
  EXPECT_GT(static_cast<double>(perturbed.num_edges()), 0.5 * m);
  EXPECT_LT(static_cast<double>(perturbed.num_edges()), 2.0 * m);
}

TEST(LapGraph, HigherEpsilonPreservesMoreTrueEdges) {
  Rng gen(9);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  auto true_edge_fraction = [&](double eps, std::uint64_t seed) {
    Rng rng(seed);
    const Graph p = LapGraph(graph, eps, &rng);
    std::size_t kept = 0;
    for (const auto& [u, v] : graph.EdgeList()) {
      if (p.HasEdge(u, v)) ++kept;
    }
    return static_cast<double>(kept) /
           static_cast<double>(graph.num_edges());
  };
  // Average a few seeds to damp randomness.
  double low = 0.0, high = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    low += true_edge_fraction(0.5, 10 + s);
    high += true_edge_fraction(8.0, 20 + s);
  }
  EXPECT_GT(high, low);
}

TEST(EdgeRand, FlipProbabilityMatchesTheory) {
  Rng gen(11);
  DatasetSpec spec = TinySpec();
  spec.num_nodes = 100;
  spec.num_undirected_edges = 300;
  const Graph graph = GenerateDataset(spec, &gen);
  const double eps = 2.0;
  const double p_keep = std::exp(eps) / (1.0 + std::exp(eps));
  double kept_fraction = 0.0;
  const int runs = 10;
  for (int r = 0; r < runs; ++r) {
    Rng rng(static_cast<std::uint64_t>(100 + r));
    const Graph p = EdgeRand(graph, eps, &rng);
    std::size_t kept = 0;
    for (const auto& [u, v] : graph.EdgeList()) {
      if (p.HasEdge(u, v)) ++kept;
    }
    kept_fraction +=
        static_cast<double>(kept) / static_cast<double>(graph.num_edges());
  }
  EXPECT_NEAR(kept_fraction / runs, p_keep, 0.05);
}

}  // namespace
}  // namespace gcon
