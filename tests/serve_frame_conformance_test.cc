// Binary-transport conformance: golden length-prefixed frame transcripts
// (serve/frame.h) replayed against the real TCP front end and
// byte-compared, mirroring the newline-JSON suite
// (serve_conformance_test.cc) so neither transport can drift silently.
// Covers the hello handshake + version negotiation (including skew),
// node/routed/private-edge/inductive queries, the coded rejection frames
// (overloaded / deadline_exceeded / draining / malformed_frame), admin
// verbs (JSON-bodied replies — JSON stays the debug surface), hostile
// frames (truncated, size-mismatched, oversized, unknown type), and the
// mixed-transport contract: one server, concurrent JSON and binary
// connections, responses derived from the same offline bits per query.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <locale>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.h"
#include "graph/datasets.h"
#include "linalg/ops.h"
#include "serve_test_util.h"
#include "serve/fault_injection.h"
#include "serve/frame.h"
#include "serve/inference_session.h"
#include "serve/serve_error.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace gcon {
namespace {

using serve_test::AugmentGraph;
using serve_test::SyntheticArtifact;

/// Blocking frame-oriented client over a raw socket — the binary
/// counterpart of the JSON suite's WireClient.
class FrameClient {
 public:
  explicit FrameClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0) << "socket: " << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << "connect: " << std::strerror(errno);
  }
  ~FrameClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed";
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Performs the hello handshake and returns the server's 8 ack bytes
  /// ("" on EOF before a full ack).
  std::string Hello(std::uint16_t version = kFrameVersion) {
    Send(EncodeHello(version));
    return ReadExact(kFrameHelloBytes);
  }

  /// Reads one complete frame; false on EOF.
  bool ReadFrame(FrameType* type, std::string* payload) {
    const std::string header = ReadExact(kFrameHeaderBytes);
    if (header.size() != kFrameHeaderBytes) return false;
    std::uint32_t len = 0;
    std::string error;
    if (!ParseFrameHeader(header.data(), type, &len, &error)) {
      ADD_FAILURE() << "server sent a bad frame header: " << error;
      return false;
    }
    *payload = ReadExact(len);
    return payload->size() == len;
  }

  /// The whole next frame (header + payload) as raw bytes, for goldens.
  std::string ReadFrameBytes() {
    const std::string header = ReadExact(kFrameHeaderBytes);
    if (header.size() != kFrameHeaderBytes) return header;
    std::uint32_t len = 0;
    len = static_cast<std::uint32_t>(
        static_cast<unsigned char>(header[0]) |
        (static_cast<unsigned char>(header[1]) << 8) |
        (static_cast<unsigned char>(header[2]) << 16) |
        (static_cast<unsigned char>(header[3]) << 24));
    return header + ReadExact(len);
  }

  bool AtEof() {
    if (!buffer_.empty()) return false;
    char byte;
    return ::recv(fd_, &byte, 1, 0) <= 0;
  }

 private:
  std::string ReadExact(std::size_t want) {
    while (buffer_.size() < want) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        const std::string partial = buffer_;
        buffer_.clear();
        return partial;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string out = buffer_.substr(0, want);
    buffer_.erase(0, want);
    return out;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// Minimal newline-JSON client for the mixed-transport test (the full
/// golden battery for the JSON transport lives in
/// serve_conformance_test.cc; this one only needs send-line/read-line).
class JsonLineClient {
 public:
  explicit JsonLineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~JsonLineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void SendLine(const std::string& line) {
    const std::string data = line + "\n";
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string ReadLine() {
    for (;;) {
      const std::size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        const std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// The exact response frame for a query answered by row `row` of `logits`.
std::string GoldenResponseFrame(std::int64_t id, int node,
                                const Matrix& logits, std::size_t row) {
  ServeResponse response;
  response.id = id;
  response.node = node;
  response.label = static_cast<int>(RowArgMax(logits, row));
  response.logits = logits.RowCopy(row);
  return EncodeResponseFrame(response);
}

/// Server fixture: two synthetic models ("default", "alt") over the tiny
/// graph behind the real TCP front end on an ephemeral port — identical to
/// the JSON conformance fixture so goldens are comparable across suites.
class ServeFrameConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = serve_test::TestGraph(9);
    default_artifact_ = SyntheticArtifact(graph_, {0, 2}, 8, 3);
    alt_artifact_ = SyntheticArtifact(graph_, {2}, 8, 101);
    offline_default_ = default_artifact_->Infer(graph_);
    offline_alt_ = alt_artifact_->Infer(graph_);

    std::vector<ModelRouter::NamedModel> models;
    models.push_back(
        {"default", InferenceSession(*default_artifact_, graph_)});
    models.push_back({"alt", InferenceSession(*alt_artifact_, graph_)});
    ServeOptions options;
    options.threads = 2;
    options.max_batch = 8;
    options.max_queue = 64;
    FaultInjector::Global().Reset();
    server_ = std::make_unique<InferenceServer>(std::move(models), options);
    listener_ = std::thread([this] {
      RunTcpServer(server_.get(), /*port=*/0, &shutdown_, &port_);
    });
    while (port_.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void TearDown() override {
    shutdown_.store(true, std::memory_order_release);
    listener_.join();
    server_.reset();
    FaultInjector::Global().Reset();
  }

  int port() const { return port_.load(std::memory_order_acquire); }

  /// An inductive query whose feature values are exactly representable in
  /// f32 (the binary transport's payload type): graph row `src` rounded
  /// through float, then widened — both transports and the offline side
  /// operate on these exact doubles.
  std::vector<double> WidenedFeatures(int src) const {
    std::vector<double> out(
        static_cast<std::size_t>(graph_.feature_dim()));
    const double* row =
        graph_.features().RowPtr(static_cast<std::size_t>(src));
    for (std::size_t j = 0; j < out.size(); ++j) {
      out[j] = static_cast<double>(static_cast<float>(row[j] * 1.375));
    }
    return out;
  }

  Graph graph_;
  std::optional<GconArtifact> default_artifact_;
  std::optional<GconArtifact> alt_artifact_;
  Matrix offline_default_;
  Matrix offline_alt_;
  std::unique_ptr<InferenceServer> server_;
  std::thread listener_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> port_{0};
};

// --- Codec format locks (pure, no server) ----------------------------------

TEST(FrameFormatLock, HelloBytesAreByteStable) {
  const std::string hello = EncodeHello(1);
  ASSERT_EQ(hello.size(), kFrameHelloBytes);
  const unsigned char expected[8] = {0xC0, 'G', 'C', 'O', 'N', 'B', 1, 0};
  EXPECT_EQ(std::memcmp(hello.data(), expected, 8), 0);
}

TEST(FrameFormatLock, ErrorCodeEncodingsAreWireStable) {
  // These integers are the binary wire contract — renumbering the enum
  // must not renumber the wire.
  EXPECT_EQ(WireErrorCode(ServeErrorCode::kOverloaded), 1u);
  EXPECT_EQ(WireErrorCode(ServeErrorCode::kDeadlineExceeded), 2u);
  EXPECT_EQ(WireErrorCode(ServeErrorCode::kDraining), 3u);
  EXPECT_EQ(WireErrorCode(ServeErrorCode::kMalformedFrame), 4u);
  EXPECT_EQ(WireErrorCode(ServeErrorCode::kBudgetExhausted), 5u);
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kMalformedFrame),
               "malformed_frame");
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kBudgetExhausted),
               "budget_exhausted");
}

TEST(FrameFormatLock, ResponseFrameIsByteStable) {
  ServeResponse response;
  response.id = 7;
  response.node = 3;
  response.label = 2;
  response.logits = {0.5, -2.0};
  const std::string frame = EncodeResponseFrame(response);
  // Header: 40-byte payload, type 0x11; payload: id, node, label,
  // num_logits, reserved, then the two f64 bit patterns (0.5 = 0x3FE0...,
  // -2.0 = 0xC000...).
  const unsigned char expected[] = {
      40, 0, 0, 0, 0x11,                                  // header
      7, 0, 0, 0, 0, 0, 0, 0,                             // id
      3, 0, 0, 0,                                         // node
      2, 0, 0, 0,                                         // label
      2, 0, 0, 0,                                         // num_logits
      0, 0, 0, 0,                                         // reserved
      0, 0, 0, 0, 0, 0, 0xE0, 0x3F,                       // 0.5
      0, 0, 0, 0, 0, 0, 0x00, 0xC0,                       // -2.0
  };
  ASSERT_EQ(frame.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);
}

TEST(FrameFormatLock, RequestFrameRoundTrips) {
  ServeRequest request;
  request.id = 42;
  request.deadline_us = 1000;
  request.model = "alt";
  request.has_edges = true;
  request.edges = {1, 5, -3};
  request.has_features = true;
  request.features = {0.25, -1.5};
  const std::string frame = EncodeRequestFrame(request);
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  // Parse from a 4-aligned payload buffer, as the server's pooled recv
  // path guarantees — the zero-copy feature view is only dereferenceable
  // under that contract (frame.data() + 5 would misalign the floats).
  const std::size_t payload_len = frame.size() - kFrameHeaderBytes;
  std::vector<std::uint32_t> aligned(payload_len / 4 + 1, 0);
  std::memcpy(aligned.data(), frame.data() + kFrameHeaderBytes, payload_len);
  const char* payload_bytes = reinterpret_cast<const char*>(aligned.data());
  ServeRequest decoded;
  std::string error;
  ASSERT_TRUE(ParseRequestPayload(payload_bytes, payload_len, &decoded, &error))
      << error;
  EXPECT_EQ(decoded.id, 42);
  EXPECT_EQ(decoded.deadline_us, 1000);
  EXPECT_EQ(decoded.model, "alt");
  EXPECT_EQ(decoded.node, -1);
  EXPECT_TRUE(decoded.has_edges);
  EXPECT_EQ(decoded.edges, (std::vector<int>{1, 5, -3}));
  ASSERT_TRUE(decoded.has_features);
  // Zero-copy: the decoded request views the frame bytes, owns nothing.
  ASSERT_NE(decoded.feature_view.data, nullptr);
  EXPECT_TRUE(decoded.features.empty());
  ASSERT_EQ(decoded.feature_count(), 2u);
  EXPECT_EQ(decoded.feature_view.data[0], 0.25f);
  EXPECT_EQ(decoded.feature_view.data[1], -1.5f);
}

TEST(FrameFormatLock, MalformedPayloadsRejectWithIdRecovery) {
  ServeRequest request;
  request.id = 99;
  request.node = 4;
  const std::string frame = EncodeRequestFrame(request);
  const char* payload = frame.data() + kFrameHeaderBytes;
  const std::size_t len = frame.size() - kFrameHeaderBytes;

  // Truncation below the fixed header still recovers the id (offset 0..7).
  ServeRequest decoded;
  std::string error;
  EXPECT_FALSE(ParseRequestPayload(payload, len - 1, &decoded, &error));
  EXPECT_EQ(decoded.id, 99);
  EXPECT_FALSE(error.empty());

  // Declared dims must consume the payload exactly.
  std::string padded(payload, len);
  padded += '\0';
  EXPECT_FALSE(
      ParseRequestPayload(padded.data(), padded.size(), &decoded, &error));
  EXPECT_EQ(decoded.id, 99);

  // A count that would wrap 32-bit size arithmetic is caught, not
  // overflowed: node = -1, has_features flag, feature_dim = 0xFFFFFFFF.
  std::string hostile(payload, len);
  for (int b = 16; b < 20; ++b) hostile[b] = static_cast<char>(0xFF);
  hostile[20] = 0x02;
  for (int b = 28; b < 32; ++b) hostile[b] = static_cast<char>(0xFF);
  EXPECT_FALSE(
      ParseRequestPayload(hostile.data(), hostile.size(), &decoded, &error));
  EXPECT_FALSE(error.empty());
}

// --- Handshake + negotiation ----------------------------------------------

TEST_F(ServeFrameConformanceTest, HelloAckIsByteStableAndServes) {
  FrameClient client(port());
  EXPECT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  ServeRequest request;
  request.id = 1;
  request.node = 0;
  client.Send(EncodeRequestFrame(request));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(1, 0, offline_default_, 0));
}

TEST_F(ServeFrameConformanceTest, NewerClientNegotiatesDownAndServes) {
  FrameClient client(port());
  // A version-7 client gets our version back (min of the two) and the
  // connection serves normally — version skew negotiates, never wedges.
  EXPECT_EQ(client.Hello(7), EncodeHello(kFrameVersion));
  ServeRequest request;
  request.id = 2;
  request.node = 5;
  client.Send(EncodeRequestFrame(request));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(2, 5, offline_default_, 5));
}

TEST_F(ServeFrameConformanceTest, VersionZeroHelloIsRejectedCoded) {
  FrameClient client(port());
  client.Send(EncodeHello(0));
  FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&type, &payload));
  EXPECT_EQ(type, FrameType::kError);
  FrameError frame_error;
  std::string error;
  ASSERT_TRUE(ParseErrorPayload(payload.data(), payload.size(), &frame_error,
                                &error))
      << error;
  EXPECT_EQ(frame_error.code, WireErrorCode(ServeErrorCode::kMalformedFrame));
  EXPECT_NE(frame_error.message.find("version"), std::string::npos);
  EXPECT_TRUE(client.AtEof());
}

TEST_F(ServeFrameConformanceTest, BadMagicIsRejectedCoded) {
  FrameClient client(port());
  std::string hello = EncodeHello(1);
  hello[3] = 'X';  // preamble byte intact, magic corrupted
  client.Send(hello);
  FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&type, &payload));
  EXPECT_EQ(type, FrameType::kError);
  FrameError frame_error;
  std::string error;
  ASSERT_TRUE(ParseErrorPayload(payload.data(), payload.size(), &frame_error,
                                &error));
  EXPECT_EQ(frame_error.code, WireErrorCode(ServeErrorCode::kMalformedFrame));
  EXPECT_TRUE(client.AtEof());
}

// --- Golden query transcripts ----------------------------------------------

TEST_F(ServeFrameConformanceTest, RoutedAndPrivateEdgeQueriesMatchGoldens) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));

  ServeRequest routed;
  routed.id = 10;
  routed.model = "alt";
  routed.node = 12;
  client.Send(EncodeRequestFrame(routed));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(10, 12, offline_alt_, 12));

  // A private edge list replaces the graph adjacency for this query; the
  // served bits equal QueryLogits on the same request (locked bitwise to
  // the rebuilt-transition path by serve_test.cc).
  ServeRequest edges;
  edges.id = 11;
  edges.node = 3;
  edges.has_edges = true;
  edges.edges = {1, 5, 9};
  const std::vector<double> expected =
      InferenceSession(*default_artifact_, graph_).QueryLogits(edges);
  ServeResponse golden;
  golden.id = 11;
  golden.node = 3;
  golden.label = 0;
  for (std::size_t j = 1; j < expected.size(); ++j) {
    if (expected[j] > expected[static_cast<std::size_t>(golden.label)]) {
      golden.label = static_cast<int>(j);
    }
  }
  golden.logits = expected;
  client.Send(EncodeRequestFrame(edges));
  EXPECT_EQ(client.ReadFrameBytes(), EncodeResponseFrame(golden));
}

TEST_F(ServeFrameConformanceTest, InductiveQueryMatchesOfflineAugmentedBits) {
  // The binary transport's inductive contract end to end: f32 features on
  // the wire, zero-copy view into the frame buffer, widened into the
  // gathered GEMM panel — and the answer is memcmp-identical to offline
  // Infer on the graph augmented with the (widened) query node.
  const std::vector<double> features = WidenedFeatures(4);
  const std::vector<int> edges = {0, 7, 11};
  const Graph augmented = AugmentGraph(graph_, features, edges);
  const Matrix offline = default_artifact_->Infer(augmented);
  const std::size_t virtual_row = static_cast<std::size_t>(graph_.num_nodes());

  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  ServeRequest request;
  request.id = 20;
  request.has_features = true;
  request.features = features;  // encoder narrows to f32 on the wire; exact
  request.has_edges = true;
  request.edges = edges;
  client.Send(EncodeRequestFrame(request));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(20, -1, offline, virtual_row));
}

TEST_F(ServeFrameConformanceTest, PipelinedBurstAnswersInOrder) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  // A burst of frames sent before any read: the connection loop pipelines
  // them through the batcher and answers strictly in request order.
  std::string burst;
  for (int i = 0; i < 8; ++i) {
    ServeRequest request;
    request.id = 100 + i;
    request.node = i;
    burst += EncodeRequestFrame(request);
  }
  client.Send(burst);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(client.ReadFrameBytes(),
              GoldenResponseFrame(100 + i, i, offline_default_,
                                  static_cast<std::size_t>(i)));
  }
}

// --- Coded rejections ------------------------------------------------------

TEST_F(ServeFrameConformanceTest, OverloadedRejectionIsCodedAndRetryServes) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  FaultInjector::Global().Arm(Fault::kQueueFull, 1);
  ServeRequest request;
  request.id = 50;
  request.node = 2;
  // The golden bytes: same id, code 1, and the exact message the JSON
  // transport sends for the same rejection.
  client.Send(EncodeRequestFrame(request));
  EXPECT_EQ(client.ReadFrameBytes(),
            EncodeErrorFrame(50, WireErrorCode(ServeErrorCode::kOverloaded),
                             "model queue full (max_queue=64); retry later"));
  client.Send(EncodeRequestFrame(request));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(50, 2, offline_default_, 2));
}

TEST_F(ServeFrameConformanceTest, DeadlineExceededRejectionIsCoded) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  FaultInjector::Global().Arm(Fault::kSlowHandler, 1);
  ServeRequest request;
  request.id = 51;
  request.node = 3;
  request.deadline_us = 1;
  client.Send(EncodeRequestFrame(request));
  EXPECT_EQ(
      client.ReadFrameBytes(),
      EncodeErrorFrame(51, WireErrorCode(ServeErrorCode::kDeadlineExceeded),
                       "query deadline expired before execution"));
}

TEST_F(ServeFrameConformanceTest, DrainRepliesThenRejectsCoded) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  client.Send(EncodeAdminFrame(AdminVerb::kDrain));
  EXPECT_EQ(client.ReadFrameBytes(),
            EncodeAdminReplyFrame("{\"draining\": true}"));
  ServeRequest request;
  request.id = 61;
  request.node = 1;
  client.Send(EncodeRequestFrame(request));
  EXPECT_EQ(client.ReadFrameBytes(),
            EncodeErrorFrame(61, WireErrorCode(ServeErrorCode::kDraining),
                             "server draining; not accepting new queries"));
}

TEST_F(ServeFrameConformanceTest, UnknownModelIsUncodedErrorWithMessage) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  ServeRequest request;
  request.id = 55;
  request.model = "nope";
  request.node = 0;
  client.Send(EncodeRequestFrame(request));
  FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&type, &payload));
  ASSERT_EQ(type, FrameType::kError);
  FrameError frame_error;
  std::string error;
  ASSERT_TRUE(
      ParseErrorPayload(payload.data(), payload.size(), &frame_error, &error));
  EXPECT_EQ(frame_error.id, 55);
  EXPECT_EQ(frame_error.code, 0u);  // prose-only rejection, not a code
  EXPECT_NE(frame_error.message.find("unknown model"), std::string::npos);
}

// --- Hostile frames --------------------------------------------------------

TEST_F(ServeFrameConformanceTest,
       MalformedPayloadGetsCodedErrorAndConnectionSurvives) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  // A structurally intact frame whose payload lies about its dims: strip
  // the final byte of a valid request and re-wrap (declared model_len now
  // overruns). Framing is preserved, so the server answers a coded
  // malformed_frame error with the recovered id and KEEPS SERVING.
  ServeRequest request;
  request.id = 70;
  request.node = 1;
  request.model = "default";
  const std::string valid = EncodeRequestFrame(request);
  const std::string payload =
      valid.substr(kFrameHeaderBytes, valid.size() - kFrameHeaderBytes - 1);
  std::string frame;
  frame.push_back(static_cast<char>(payload.size() & 0xFF));
  frame.push_back(static_cast<char>((payload.size() >> 8) & 0xFF));
  frame.push_back(static_cast<char>((payload.size() >> 16) & 0xFF));
  frame.push_back(static_cast<char>((payload.size() >> 24) & 0xFF));
  frame.push_back(0x10);
  frame += payload;
  client.Send(frame);
  FrameType type;
  std::string reply;
  ASSERT_TRUE(client.ReadFrame(&type, &reply));
  ASSERT_EQ(type, FrameType::kError);
  FrameError frame_error;
  std::string error;
  ASSERT_TRUE(
      ParseErrorPayload(reply.data(), reply.size(), &frame_error, &error));
  EXPECT_EQ(frame_error.id, 70);  // structured id recovery from offset 0
  EXPECT_EQ(frame_error.code, WireErrorCode(ServeErrorCode::kMalformedFrame));
  // Same socket, next frame serves — the defect was payload-deep only.
  ServeRequest retry;
  retry.id = 71;
  retry.node = 1;
  client.Send(EncodeRequestFrame(retry));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(71, 1, offline_default_, 1));
}

TEST_F(ServeFrameConformanceTest, OversizedFrameIsRejectedAndDisconnected) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  // Declared length past kMaxFrameBytes: framing is unrecoverable (the
  // server will not stream 4 GiB to resync), so: coded error, hang up.
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
  std::string header;
  header.push_back(static_cast<char>(huge & 0xFF));
  header.push_back(static_cast<char>((huge >> 8) & 0xFF));
  header.push_back(static_cast<char>((huge >> 16) & 0xFF));
  header.push_back(static_cast<char>((huge >> 24) & 0xFF));
  header.push_back(0x10);
  client.Send(header);
  FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&type, &payload));
  ASSERT_EQ(type, FrameType::kError);
  FrameError frame_error;
  std::string error;
  ASSERT_TRUE(
      ParseErrorPayload(payload.data(), payload.size(), &frame_error, &error));
  EXPECT_EQ(frame_error.code, WireErrorCode(ServeErrorCode::kMalformedFrame));
  EXPECT_NE(frame_error.message.find("oversized"), std::string::npos);
  EXPECT_TRUE(client.AtEof());
}

TEST_F(ServeFrameConformanceTest, UnknownFrameTypeIsRejectedAndDisconnected) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  const char header[5] = {0, 0, 0, 0, static_cast<char>(0x7F)};
  client.Send(std::string(header, sizeof(header)));
  FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&type, &payload));
  ASSERT_EQ(type, FrameType::kError);
  FrameError frame_error;
  std::string error;
  ASSERT_TRUE(
      ParseErrorPayload(payload.data(), payload.size(), &frame_error, &error));
  EXPECT_EQ(frame_error.code, WireErrorCode(ServeErrorCode::kMalformedFrame));
  EXPECT_TRUE(client.AtEof());
}

// --- Admin verbs (JSON-bodied replies) -------------------------------------

TEST_F(ServeFrameConformanceTest, AdminVerbsAnswerTheJsonDocuments) {
  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  // list_models: the reply body IS the JSON transport's document — admin
  // stays JSON over either transport (the debug surface).
  client.Send(EncodeAdminFrame(AdminVerb::kListModels));
  EXPECT_EQ(client.ReadFrameBytes(),
            EncodeAdminReplyFrame(server_->ListModelsJson()));

  ServeRequest request;
  request.id = 80;
  request.node = 6;
  client.Send(EncodeRequestFrame(request));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(80, 6, offline_default_, 6));

  client.Send(EncodeAdminFrame(AdminVerb::kStats));
  FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&type, &payload));
  EXPECT_EQ(type, FrameType::kAdminReply);
  EXPECT_EQ(payload, server_->StatsJson());
  EXPECT_NE(payload.find("\"queries\": "), std::string::npos);

  client.Send(EncodeAdminFrame(AdminVerb::kQuit));
  EXPECT_TRUE(client.AtEof());
}

TEST_F(ServeFrameConformanceTest, PublishHotSwapsOverBinaryTransport) {
  const GconArtifact next = SyntheticArtifact(graph_, {0, 2}, 8, 202);
  const Matrix offline_next = next.Infer(graph_);
  const std::string path = "/tmp/gcon_frame_conformance_publish.model";
  SaveModel(next, path);

  FrameClient client(port());
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  ServeRequest before;
  before.id = 90;
  before.model = "alt";
  before.node = 12;
  client.Send(EncodeRequestFrame(before));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(90, 12, offline_alt_, 12));

  // Construction charged alt's artifact epsilon (1.0); this publish
  // charges another 1.0 — the reply carries both the release's own epsilon
  // and the model's cumulative total, same bytes as the JSON transport.
  std::ostringstream published;
  published << "{\"published\": \"alt\", \"nodes\": " << graph_.num_nodes()
            << ", \"classes\": " << graph_.num_classes()
            << ", \"features\": " << graph_.feature_dim()
            << ", \"per_query\": true, \"epsilon\": 1, "
            << "\"epsilon_total\": 2}";
  client.Send(EncodeAdminFrame(AdminVerb::kPublish, "alt", path));
  EXPECT_EQ(client.ReadFrameBytes(), EncodeAdminReplyFrame(published.str()));

  ServeRequest after = before;
  after.id = 91;
  client.Send(EncodeRequestFrame(after));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(91, 12, offline_next, 12));

  // The budget admin verb answers the same JSON document on this transport:
  // alt's row shows the accumulated spend, default's is untouched.
  client.Send(EncodeAdminFrame(AdminVerb::kBudget));
  EXPECT_EQ(client.ReadFrameBytes(),
            EncodeAdminReplyFrame(
                "{\"budget\": [{\"model\": \"default\", \"epsilon\": 1, "
                "\"delta\": 1.0000000000000001e-05, \"publishes\": 1, "
                "\"cap\": 0}, {\"model\": \"alt\", \"epsilon\": 2, "
                "\"delta\": 2.0000000000000002e-05, \"publishes\": 2, "
                "\"cap\": 0}], \"ledger\": \"\", \"persistent\": false}"));
  std::remove(path.c_str());
}

TEST_F(ServeFrameConformanceTest, OverCapPublishRefusedCodedOverBinary) {
  // A second publish of the same 1.0-epsilon artifact onto a server whose
  // cap is spent must cross the binary transport as the structured code 5
  // frame — and leave the old bits serving. The fixture's server has no
  // cap, so this test runs its own capped one.
  std::vector<ModelRouter::NamedModel> models;
  models.push_back({"only", InferenceSession(*default_artifact_, graph_)});
  ServeOptions options;
  options.threads = 1;
  options.max_batch = 4;
  options.budget_cap = 1.5;  // construction spends 1.0 of it
  InferenceServer server(std::move(models), options);
  std::atomic<bool> stop{false};
  std::atomic<int> capped_port{0};
  std::thread listener(
      [&] { RunTcpServer(&server, /*port=*/0, &stop, &capped_port); });
  while (capped_port.load(std::memory_order_acquire) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const GconArtifact next = SyntheticArtifact(graph_, {2}, 8, 404);
  const std::string path = "/tmp/gcon_frame_conformance_overcap.model";
  SaveModel(next, path);

  FrameClient client(capped_port.load(std::memory_order_acquire));
  ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
  client.Send(EncodeAdminFrame(AdminVerb::kPublish, "only", path));
  EXPECT_EQ(client.ReadFrameBytes(),
            EncodeErrorFrame(
                0, WireErrorCode(ServeErrorCode::kBudgetExhausted),
                "release of model 'only' refused: cumulative epsilon 1 + 1 "
                "exceeds budget cap 1.5"));
  // The refusal spent nothing and the old artifact still serves bitwise.
  ServeRequest request;
  request.id = 95;
  request.node = 12;
  client.Send(EncodeRequestFrame(request));
  EXPECT_EQ(client.ReadFrameBytes(),
            GoldenResponseFrame(95, 12, offline_default_, 12));

  stop.store(true, std::memory_order_release);
  listener.join();
  std::remove(path.c_str());
}

// --- Mixed transports: one server, both codecs, identical bits -------------

TEST_F(ServeFrameConformanceTest, ConcurrentJsonAndBinaryClientsMatchBits) {
  // The acceptance criterion, end to end: for every query, the JSON line
  // and the binary frame are both byte-identical to goldens derived from
  // the SAME offline doubles — so the transports agree with each other and
  // with offline predict, bit for bit, under concurrency (and under the
  // sanitizer matrix, which runs this suite).
  const std::vector<double> features = WidenedFeatures(2);
  const std::vector<int> edges = {3, 8};
  const Graph augmented = AugmentGraph(graph_, features, edges);
  const Matrix offline_inductive = default_artifact_->Infer(augmented);
  const std::size_t virtual_row =
      static_cast<std::size_t>(graph_.num_nodes());

  constexpr int kRounds = 40;
  std::thread binary_thread([&] {
    FrameClient client(port());
    ASSERT_EQ(client.Hello(), EncodeHello(kFrameVersion));
    for (int i = 0; i < kRounds; ++i) {
      const int node = i % graph_.num_nodes();
      ServeRequest request;
      request.id = 1000 + i;
      request.node = node;
      client.Send(EncodeRequestFrame(request));
      EXPECT_EQ(client.ReadFrameBytes(),
                GoldenResponseFrame(1000 + i, node, offline_default_,
                                    static_cast<std::size_t>(node)));
      ServeRequest inductive;
      inductive.id = 2000 + i;
      inductive.has_features = true;
      inductive.features = features;
      inductive.has_edges = true;
      inductive.edges = edges;
      client.Send(EncodeRequestFrame(inductive));
      EXPECT_EQ(
          client.ReadFrameBytes(),
          GoldenResponseFrame(2000 + i, -1, offline_inductive, virtual_row));
    }
  });

  // The JSON side of the same queries, on the same server, concurrently.
  // Feature values are f32-exact, so the 17-digit text round-trip carries
  // the very doubles the binary client's f32 payload widens to.
  std::ostringstream inductive_tail;
  inductive_tail.imbue(std::locale::classic());
  inductive_tail.precision(17);
  inductive_tail << ", \"features\": [";
  for (std::size_t j = 0; j < features.size(); ++j) {
    inductive_tail << (j == 0 ? "" : ", ") << features[j];
  }
  inductive_tail << "], \"edges\": [3, 8]}";
  const std::string inductive_body = inductive_tail.str();

  JsonLineClient json_client(port());
  for (int i = 0; i < kRounds; ++i) {
    const int node = i % graph_.num_nodes();
    std::ostringstream line;
    line << "{\"id\": " << 3000 + i << ", \"node\": " << node << "}";
    json_client.SendLine(line.str());
    ServeResponse golden;
    golden.id = 3000 + i;
    golden.node = node;
    golden.label = static_cast<int>(
        RowArgMax(offline_default_, static_cast<std::size_t>(node)));
    golden.logits = offline_default_.RowCopy(static_cast<std::size_t>(node));
    EXPECT_EQ(json_client.ReadLine(), FormatWireResponse(golden));

    std::ostringstream inductive;
    inductive << "{\"id\": " << 4000 + i << inductive_body;
    json_client.SendLine(inductive.str());
    ServeResponse inductive_golden;
    inductive_golden.id = 4000 + i;
    inductive_golden.node = -1;
    inductive_golden.label =
        static_cast<int>(RowArgMax(offline_inductive, virtual_row));
    inductive_golden.logits = offline_inductive.RowCopy(virtual_row);
    EXPECT_EQ(json_client.ReadLine(), FormatWireResponse(inductive_golden));
  }
  binary_thread.join();
}

}  // namespace
}  // namespace gcon
