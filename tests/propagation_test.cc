#include <gtest/gtest.h>

#include <cmath>

#include "graph/datasets.h"
#include "linalg/ops.h"
#include "propagation/appr.h"
#include "propagation/sensitivity.h"
#include "propagation/transition.h"
#include "rng/rng.h"

namespace gcon {
namespace {

Graph PathGraph(int n) {
  Graph g(n, 2);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Matrix Identity(std::size_t n) {
  Matrix id(n, n);
  for (std::size_t i = 0; i < n; ++i) id(i, i) = 1.0;
  return id;
}

TEST(Transition, RowStochastic) {
  Rng gen(1);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  const CsrMatrix t = BuildTransition(graph);
  for (std::size_t i = 0; i < t.rows(); ++i) {
    EXPECT_NEAR(t.RowSum(i), 1.0, 1e-12);
  }
}

TEST(Transition, MatchesDegreeNormalization) {
  const Graph g = PathGraph(3);  // degrees 1, 2, 1
  const CsrMatrix t = BuildTransition(g);
  // Node 0: degree 1 -> diagonal and off-diagonal both 1/2.
  EXPECT_NEAR(t.At(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(t.At(0, 1), 0.5, 1e-12);
  // Node 1: degree 2 -> every entry 1/3.
  EXPECT_NEAR(t.At(1, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(t.At(1, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(t.At(1, 2), 1.0 / 3.0, 1e-12);
}

TEST(Transition, ClippedVariantRespectsP) {
  const Graph g = PathGraph(3);
  const double p = 0.2;
  const CsrMatrix t = BuildTransition(g, p);
  // Node 0 has degree 1: off-diagonal min(1/2, 0.2) = 0.2, diagonal 0.8.
  EXPECT_NEAR(t.At(0, 1), 0.2, 1e-12);
  EXPECT_NEAR(t.At(0, 0), 0.8, 1e-12);
  // Rows still sum to 1.
  for (std::size_t i = 0; i < t.rows(); ++i) {
    EXPECT_NEAR(t.RowSum(i), 1.0, 1e-12);
  }
}

TEST(Transition, IsolatedNodeSelfLoopOnly) {
  Graph g(3, 2);
  g.AddEdge(0, 1);  // node 2 isolated
  const CsrMatrix t = BuildTransition(g);
  EXPECT_NEAR(t.At(2, 2), 1.0, 1e-12);
  EXPECT_EQ(t.RowNnz(2), 1u);
}

TEST(Appr, ZeroStepsReturnsInput) {
  Rng gen(2);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  const CsrMatrix t = BuildTransition(graph);
  Matrix x = graph.features();
  RowL2NormalizeInPlace(&x);
  const Matrix z0 = ApprPropagate(t, x, 0, 0.5);
  EXPECT_TRUE(z0.AllClose(x));
}

TEST(Appr, AlphaOneFreezesFeatures) {
  // alpha = 1: restart always, R_m = I for every m.
  Rng gen(3);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  const CsrMatrix t = BuildTransition(graph);
  Matrix x = graph.features();
  RowL2NormalizeInPlace(&x);
  EXPECT_TRUE(ApprPropagate(t, x, 5, 1.0).AllClose(x, 1e-12));
  EXPECT_TRUE(PprPropagate(t, x, 1.0).AllClose(x, 1e-12));
}

TEST(Appr, RecursionMatchesExplicitSeries) {
  // R_m = α Σ_{i<m} (1-α)^i Ã^i + (1-α)^m Ã^m (Eq. 6) — check via dense
  // powers on a small graph, applying the matrix to I.
  const Graph g = PathGraph(5);
  const CsrMatrix t = BuildTransition(g);
  const Matrix t_dense = t.ToDense();
  const double alpha = 0.3;
  const int m = 4;
  Matrix series(5, 5);
  Matrix power = Identity(5);
  for (int i = 0; i < m; ++i) {
    AxpyInPlace(alpha * std::pow(1.0 - alpha, i), power, &series);
    power = MatMul(t_dense, power);
  }
  AxpyInPlace(std::pow(1.0 - alpha, m), power, &series);
  const Matrix recursion = ApprPropagate(t, Identity(5), m, alpha);
  EXPECT_TRUE(recursion.AllClose(series, 1e-10));
}

TEST(Ppr, FixedPointSolvesLinearSystem) {
  // R_inf X satisfies (I - (1-α)Ã) Z = α X.
  Rng gen(4);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  const CsrMatrix t = BuildTransition(graph);
  Matrix x = graph.features();
  RowL2NormalizeInPlace(&x);
  const double alpha = 0.4;
  const Matrix z = PprPropagate(t, x, alpha, 1e-12);
  // residual = z - (1-α) Ã z - α x should vanish.
  Matrix residual = z;
  Matrix tz = t.Multiply(z);
  AxpyInPlace(-(1.0 - alpha), tz, &residual);
  AxpyInPlace(-alpha, x, &residual);
  EXPECT_LT(FrobeniusNorm(residual), 1e-9);
}

TEST(Ppr, ApprConvergesToPpr) {
  Rng gen(5);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  const CsrMatrix t = BuildTransition(graph);
  Matrix x = graph.features();
  RowL2NormalizeInPlace(&x);
  const double alpha = 0.5;
  const Matrix z_inf = PprPropagate(t, x, alpha, 1e-12);
  double prev_gap = 1e300;
  for (int m : {1, 4, 16, 64}) {
    const Matrix z_m = ApprPropagate(t, x, m, alpha);
    const double gap = FrobeniusNorm(Sub(z_m, z_inf));
    EXPECT_LT(gap, prev_gap);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 1e-6);
}

TEST(Appr, PropagateDispatch) {
  Rng gen(6);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  const CsrMatrix t = BuildTransition(graph);
  Matrix x = graph.features();
  RowL2NormalizeInPlace(&x);
  EXPECT_TRUE(Propagate(t, x, 3, 0.5).AllClose(ApprPropagate(t, x, 3, 0.5)));
  EXPECT_TRUE(Propagate(t, x, kInfiniteSteps, 0.5)
                  .AllClose(PprPropagate(t, x, 0.5)));
}

TEST(Appr, ConcatPropagateShapeAndScaling) {
  Rng gen(7);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  const CsrMatrix t = BuildTransition(graph);
  Matrix x = graph.features();
  RowL2NormalizeInPlace(&x);
  const std::vector<int> steps = {0, 2, kInfiniteSteps};
  const Matrix z = ConcatPropagate(t, x, steps, 0.5);
  EXPECT_EQ(z.rows(), x.rows());
  EXPECT_EQ(z.cols(), 3 * x.cols());
  // First block is x / 3 (m=0 returns input; concat scales by 1/s).
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      EXPECT_NEAR(z(i, j), x(i, j) / 3.0, 1e-12);
    }
  }
  // Rows of Z have L2 norm <= 1 (each block row norm <= 1, weight 1/s).
  for (std::size_t i = 0; i < z.rows(); ++i) {
    EXPECT_LE(RowNorm2(z, i), 1.0 + 1e-9);
  }
}

TEST(Sensitivity, ClosedFormValues) {
  // Eq. (25) at easy points.
  EXPECT_DOUBLE_EQ(SensitivityZm(0, 0.5), 0.0);
  EXPECT_NEAR(SensitivityZm(1, 0.5), 2.0 * 0.5 / 0.5 * 0.5, 1e-12);  // = 1
  EXPECT_NEAR(SensitivityZm(kInfiniteSteps, 0.5), 2.0, 1e-12);
  EXPECT_NEAR(SensitivityZm(kInfiniteSteps, 0.2), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(SensitivityZm(5, 1.0), 0.0);
}

TEST(Sensitivity, MonotoneInStepsAndAlpha) {
  for (double alpha : {0.2, 0.5, 0.8}) {
    double prev = -1.0;
    for (int m : {0, 1, 2, 5, 20}) {
      const double psi = SensitivityZm(m, alpha);
      EXPECT_GT(psi, prev);
      prev = psi;
    }
    EXPECT_LE(prev, SensitivityZm(kInfiniteSteps, alpha) + 1e-12);
  }
  // Larger alpha -> smaller sensitivity at fixed m.
  EXPECT_GT(SensitivityZm(3, 0.2), SensitivityZm(3, 0.5));
  EXPECT_GT(SensitivityZm(3, 0.5), SensitivityZm(3, 0.8));
}

TEST(Sensitivity, ConcatIsMeanOfParts) {
  const std::vector<int> steps = {1, 5, kInfiniteSteps};
  const double alpha = 0.4;
  double expected = 0.0;
  for (int m : steps) expected += SensitivityZm(m, alpha);
  expected /= 3.0;
  EXPECT_NEAR(SensitivityZ(steps, alpha), expected, 1e-12);
}

TEST(Sensitivity, EmpiricalPsiOfIdenticalMatricesIsZero) {
  Matrix a(4, 3, 1.0);
  EXPECT_DOUBLE_EQ(EmpiricalPsi(a, a), 0.0);
}

TEST(Sensitivity, EmpiricalPsiKnownValue) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  b(0, 0) = 3.0;
  b(0, 1) = 4.0;  // row 0 distance 5
  b(1, 0) = 1.0;  // row 1 distance 1
  EXPECT_DOUBLE_EQ(EmpiricalPsi(a, b), 6.0);
}

}  // namespace
}  // namespace gcon
