#include <gtest/gtest.h>

#include <cmath>

#include "core/noise.h"
#include "linalg/ops.h"

namespace gcon {
namespace {

TEST(Noise, VectorHasErlangRadius) {
  // ||b|| ~ Erlang(d, beta): mean d/beta, variance d/beta².
  const int d = 24;
  const double beta = 3.0;
  Rng rng(1);
  const int n = 40000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto b = SampleNoiseVector(d, beta, &rng);
    const double r = Norm2(b);
    sum += r;
    sq += r * r;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, d / beta, 0.05 * d / beta);
  EXPECT_NEAR(var, d / (beta * beta), 0.15 * d / (beta * beta));
}

TEST(Noise, DirectionIsIsotropic) {
  const int d = 6;
  Rng rng(2);
  const int n = 30000;
  std::vector<double> mean(static_cast<std::size_t>(d), 0.0);
  for (int i = 0; i < n; ++i) {
    const auto b = SampleNoiseVector(d, 1.0, &rng);
    const double r = Norm2(b);
    for (int j = 0; j < d; ++j) {
      mean[static_cast<std::size_t>(j)] += b[static_cast<std::size_t>(j)] / r;
    }
  }
  for (int j = 0; j < d; ++j) {
    EXPECT_NEAR(mean[static_cast<std::size_t>(j)] / n, 0.0, 0.015);
  }
}

TEST(Noise, DensityDependsOnlyOnNorm) {
  // The construction (uniform direction x Erlang radius) guarantees the
  // density is a function of ||b|| alone; check rotational symmetry via the
  // first-coordinate distribution matching the last-coordinate distribution.
  const int d = 4;
  Rng rng(3);
  const int n = 40000;
  double first_abs = 0.0, last_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto b = SampleNoiseVector(d, 2.0, &rng);
    first_abs += std::abs(b[0]);
    last_abs += std::abs(b[3]);
  }
  EXPECT_NEAR(first_abs / n, last_abs / n, 0.03);
}

TEST(Noise, MatrixShapeAndColumnIndependence) {
  Rng rng(4);
  const Matrix b = SampleNoiseMatrix(10, 3, 1.5, &rng);
  EXPECT_EQ(b.rows(), 10u);
  EXPECT_EQ(b.cols(), 3u);
  // Columns are distinct draws (all-equal columns would indicate reuse).
  bool all_same = true;
  for (std::size_t i = 0; i < 10 && all_same; ++i) {
    if (std::abs(b(i, 0) - b(i, 1)) > 1e-12) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

TEST(Noise, ZeroBetaGivesZeroMatrix) {
  Rng rng(5);
  const Matrix b = SampleNoiseMatrix(8, 2, 0.0, &rng);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(b), 0.0);
}

TEST(Noise, LargerBetaMeansSmallerNoise) {
  Rng rng_a(6), rng_b(6);
  const int trials = 2000;
  double small_beta_norm = 0.0, large_beta_norm = 0.0;
  for (int i = 0; i < trials; ++i) {
    small_beta_norm += Norm2(SampleNoiseVector(16, 0.5, &rng_a));
    large_beta_norm += Norm2(SampleNoiseVector(16, 5.0, &rng_b));
  }
  EXPECT_GT(small_beta_norm, 5.0 * large_beta_norm);
}

TEST(Noise, DeterministicGivenSeed) {
  Rng a(7), b(7);
  const Matrix ma = SampleNoiseMatrix(12, 4, 2.0, &a);
  const Matrix mb = SampleNoiseMatrix(12, 4, 2.0, &b);
  EXPECT_TRUE(ma.AllClose(mb));
}

}  // namespace
}  // namespace gcon
