// Inductive (feature-carrying) serving: a query shipping an unseen node's
// raw features + edge list must be answered bitwise identically to running
// offline inference on the graph augmented with that node — across seeds,
// step configurations, batch compositions, and with the propagation cache
// both enabled and disabled. Registry models that publish a release
// artifact get the same path; models that don't must reject the query.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "graph/datasets.h"
#include "model/adapters.h"
#include "nn/mlp.h"
#include "propagation/cache.h"
#include "rng/rng.h"
#include "serve_test_util.h"
#include "serve/inference_session.h"
#include "serve/server.h"

namespace gcon {
namespace {

using serve_test::AugmentGraph;
using serve_test::SyntheticArtifact;
using serve_test::TestGraph;

std::vector<double> RandomFeatures(int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> features(static_cast<std::size_t>(dim));
  for (double& f : features) f = rng.Uniform(0.0, 1.0);
  return features;
}

bool BitwiseEqual(const double* a, const std::vector<double>& b) {
  return std::memcmp(a, b.data(), b.size() * sizeof(double)) == 0;
}

// --- The core equivalence: serve(features, edges) == offline(augmented) ---

TEST(ServeInductive, MatchesOfflineInferenceOnAugmentedGraph) {
  const Graph graph = TestGraph();
  for (const std::uint64_t seed : {3u, 11u, 29u}) {
    for (const std::vector<int>& steps :
         {std::vector<int>{2}, std::vector<int>{0, 2, 4}}) {
      const GconArtifact artifact = SyntheticArtifact(graph, steps, 8, seed);
      const InferenceSession session(artifact, graph);

      const std::vector<double> features =
          RandomFeatures(graph.feature_dim(), seed + 100);
      const std::vector<int> edges = {0, 5, static_cast<int>(seed) % 40, 77};

      ServeRequest request;
      request.has_features = true;
      request.features = features;
      request.has_edges = true;
      request.edges = edges;
      const std::vector<double> served = session.QueryLogits(request);

      const Graph augmented = AugmentGraph(graph, features, edges);
      const Matrix offline = artifact.Infer(augmented);
      ASSERT_EQ(offline.rows(),
                static_cast<std::size_t>(graph.num_nodes()) + 1);
      EXPECT_TRUE(BitwiseEqual(
          offline.RowPtr(static_cast<std::size_t>(graph.num_nodes())),
          served))
          << "seed " << seed << " steps " << steps.size();
    }
  }
}

TEST(ServeInductive, MatchesOfflineWithCacheDisabled) {
  // The bitwise contract may not depend on whether the transition came out
  // of the PropagationCache or was rebuilt from scratch, on either side.
  const Graph graph = TestGraph(13);
  const std::vector<double> features =
      RandomFeatures(graph.feature_dim(), 55);
  const std::vector<int> edges = {1, 2, 30};

  std::vector<std::vector<double>> answers;
  std::vector<std::vector<double>> offline_rows;
  for (const bool enabled : {true, false}) {
    PropagationCache::Global().set_enabled(enabled);
    const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 7);
    const InferenceSession session(artifact, graph);
    ServeRequest request;
    request.has_features = true;
    request.features = features;
    request.has_edges = true;
    request.edges = edges;
    answers.push_back(session.QueryLogits(request));
    const Matrix offline = artifact.Infer(AugmentGraph(graph, features, edges));
    offline_rows.push_back(
        offline.RowCopy(static_cast<std::size_t>(graph.num_nodes())));
  }
  PropagationCache::Global().set_enabled(true);
  EXPECT_TRUE(BitwiseEqual(answers[0].data(), offline_rows[0]));
  EXPECT_TRUE(BitwiseEqual(answers[1].data(), offline_rows[1]));
  EXPECT_EQ(answers[0], answers[1]);
}

TEST(ServeInductive, IsolatedQueryNodeServesEncoderOnlyPath) {
  // No edges: the virtual node's transition row is just its diagonal (1.0).
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {2}, 8, 17);
  const InferenceSession session(artifact, graph);
  const std::vector<double> features =
      RandomFeatures(graph.feature_dim(), 23);

  ServeRequest request;
  request.has_features = true;
  request.features = features;
  const std::vector<double> served = session.QueryLogits(request);

  const Matrix offline = artifact.Infer(AugmentGraph(graph, features, {}));
  EXPECT_TRUE(BitwiseEqual(
      offline.RowPtr(static_cast<std::size_t>(graph.num_nodes())), served));
}

TEST(ServeInductive, EdgeSanitizationMatchesCleanList) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 19);
  const InferenceSession session(artifact, graph);
  const std::vector<double> features =
      RandomFeatures(graph.feature_dim(), 31);

  ServeRequest clean;
  clean.has_features = true;
  clean.features = features;
  clean.has_edges = true;
  clean.edges = {4, 9, 60};
  ServeRequest junk = clean;
  junk.edges = {9, 60, -1, 4, graph.num_nodes(), 9, 1 << 20, 4};
  EXPECT_EQ(session.QueryLogits(clean), session.QueryLogits(junk));
}

TEST(ServeInductive, BatchCompositionDoesNotChangeInductiveBits) {
  // An inductive query coalesced with in-graph queries (the micro-batcher
  // will mix them freely) must produce the same bits as alone.
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 37);
  const InferenceSession session(artifact, graph);

  ServeRequest inductive;
  inductive.has_features = true;
  inductive.features = RandomFeatures(graph.feature_dim(), 41);
  inductive.has_edges = true;
  inductive.edges = {2, 8};
  ServeRequest node_a;
  node_a.node = 3;
  ServeRequest inductive2;
  inductive2.has_features = true;
  inductive2.features = RandomFeatures(graph.feature_dim(), 43);

  const Matrix alone = session.QueryBatch({&inductive});
  const Matrix mixed =
      session.QueryBatch({&node_a, &inductive2, &inductive});
  EXPECT_EQ(std::memcmp(alone.RowPtr(0), mixed.RowPtr(2),
                        alone.cols() * sizeof(double)),
            0);
}

// --- Through the server (micro-batched, concurrent) ------------------------

TEST(ServeInductive, ServerAnswersFeatureQueriesBitwise) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 47);
  const std::vector<double> features =
      RandomFeatures(graph.feature_dim(), 53);
  const std::vector<int> edges = {0, 10, 20};
  const Matrix offline = artifact.Infer(AugmentGraph(graph, features, edges));

  ServeOptions options;
  options.threads = 2;
  options.max_batch = 8;
  InferenceServer server(InferenceSession(artifact, graph), options);
  ServeRequest request;
  request.id = 99;
  request.has_features = true;
  request.features = features;
  request.has_edges = true;
  request.edges = edges;
  const ServeResponse response = server.Query(request);
  EXPECT_EQ(response.id, 99);
  EXPECT_EQ(response.node, -1);  // not an in-graph node
  EXPECT_TRUE(BitwiseEqual(
      offline.RowPtr(static_cast<std::size_t>(graph.num_nodes())),
      response.logits));
}

// --- Registry models -------------------------------------------------------

TEST(ServeInductive, RegistryModelsWithArtifactsServeInductively) {
  // Every registry model that publishes a release artifact
  // (GraphModel::ReleaseArtifact) must serve feature-carrying queries
  // bitwise-equal to offline inference on the augmented graph; every model
  // that doesn't must reject them. Today "gcon" is the only publisher —
  // this loop keeps that an inventory, not an assumption.
  const Graph graph = TestGraph(21);
  Rng rng(21);
  const Split split = MakeSplit(TinySpec(), graph, &rng);
  int artifact_models = 0;
  for (const std::string& name : BuiltinModelRegistry().Names()) {
    ModelConfig config;
    config.Set("seed", "4");
    if (name == "gcon") config.Set("epsilon", "2");
    auto model = BuiltinModelRegistry().Create(name, config);
    try {
      model->Train(graph, split);
    } catch (const std::exception&) {
      continue;  // a method this tiny graph cannot train is not under test
    }
    const InferenceSession session(*model, graph);
    ServeRequest request;
    request.has_features = true;
    request.features = RandomFeatures(graph.feature_dim(), 61);
    request.has_edges = true;
    request.edges = {0, 7};
    if (model->ReleaseArtifact() != nullptr) {
      ++artifact_models;
      ASSERT_TRUE(session.per_query()) << name;
      const std::vector<double> served = session.QueryLogits(request);
      const Matrix offline = model->ReleaseArtifact()->Infer(
          AugmentGraph(graph, request.features, request.edges));
      EXPECT_TRUE(BitwiseEqual(
          offline.RowPtr(static_cast<std::size_t>(graph.num_nodes())),
          served))
          << name;
    } else {
      EXPECT_FALSE(session.per_query()) << name;
      EXPECT_THROW(session.QueryLogits(request), std::invalid_argument)
          << name;
    }
  }
  EXPECT_GE(artifact_models, 1);  // gcon at minimum
}

// --- Validation ------------------------------------------------------------

TEST(ServeInductive, ValidatesFeatureQueries) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {2}, 8, 67);
  const InferenceSession session(artifact, graph);

  ServeRequest short_features;
  short_features.has_features = true;
  short_features.features = {0.5, 0.25};
  try {
    session.QueryLogits(short_features);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2 values"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(
                  std::to_string(graph.feature_dim())),
              std::string::npos)
        << e.what();
  }

  ServeRequest both;
  both.node = 1;
  both.has_features = true;
  both.features = RandomFeatures(graph.feature_dim(), 71);
  EXPECT_THROW(session.QueryLogits(both), std::invalid_argument);
}

}  // namespace
}  // namespace gcon
