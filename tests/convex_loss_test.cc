#include <gtest/gtest.h>

#include <cmath>

#include "core/convex_loss.h"
#include "rng/rng.h"

namespace gcon {
namespace {

// Dense sweep of evaluation points, including extreme logits.
std::vector<double> SweepPoints() {
  std::vector<double> xs;
  for (double x = -30.0; x <= 30.0; x += 0.37) xs.push_back(x);
  xs.push_back(-700.0);  // numerical-stability probes
  xs.push_back(700.0);
  return xs;
}

class LossFamily : public ::testing::TestWithParam<ConvexLossKind> {
 protected:
  ConvexLoss Make(int c) const {
    return GetParam() == ConvexLossKind::kMultiLabelSoftMargin
               ? ConvexLoss::MultiLabelSoftMargin(c)
               : ConvexLoss::PseudoHuber(c, 0.5);
  }
};

TEST_P(LossFamily, DerivativesMatchFiniteDifferences) {
  const ConvexLoss loss = Make(4);
  const double h = 1e-5;
  for (double y : {0.0, 1.0}) {
    for (double x = -8.0; x <= 8.0; x += 0.61) {
      const double d1_fd =
          (loss.Value(x + h, y) - loss.Value(x - h, y)) / (2.0 * h);
      EXPECT_NEAR(loss.D1(x, y), d1_fd, 1e-7) << "x=" << x << " y=" << y;
      const double d2_fd = (loss.D1(x + h, y) - loss.D1(x - h, y)) / (2.0 * h);
      EXPECT_NEAR(loss.D2(x, y), d2_fd, 1e-7) << "x=" << x << " y=" << y;
      const double d3_fd = (loss.D2(x + h, y) - loss.D2(x - h, y)) / (2.0 * h);
      EXPECT_NEAR(loss.D3(x, y), d3_fd, 1e-6) << "x=" << x << " y=" << y;
    }
  }
}

TEST_P(LossFamily, SecondDerivativeStrictlyPositive) {
  // Convexity (Lemma 4 requires ℓ'' > 0 for y in {0,1}).
  const ConvexLoss loss = Make(3);
  for (double y : {0.0, 1.0}) {
    for (double x : SweepPoints()) {
      EXPECT_GE(loss.D2(x, y), 0.0) << "x=" << x;
      if (std::abs(x) < 20.0) {
        EXPECT_GT(loss.D2(x, y), 0.0) << "x=" << x;
      }
    }
  }
}

TEST_P(LossFamily, SupremaHold) {
  // Eq. (19): |ℓ'| <= c1, |ℓ''| <= c2, |ℓ'''| <= c3 across the sweep.
  const ConvexLoss loss = Make(5);
  for (double y : {0.0, 1.0}) {
    for (double x : SweepPoints()) {
      EXPECT_LE(std::abs(loss.D1(x, y)), loss.c1() + 1e-12) << "x=" << x;
      EXPECT_LE(std::abs(loss.D2(x, y)), loss.c2() + 1e-12) << "x=" << x;
      EXPECT_LE(std::abs(loss.D3(x, y)), loss.c3() + 1e-12) << "x=" << x;
    }
  }
}

TEST_P(LossFamily, SupremaAreTight) {
  // The bounds must be attained (within 2%) somewhere — otherwise we would
  // be injecting more noise than the theory requires.
  const ConvexLoss loss = Make(2);
  double max_d1 = 0.0, max_d2 = 0.0, max_d3 = 0.0;
  for (double y : {0.0, 1.0}) {
    for (double x = -40.0; x <= 40.0; x += 0.001) {
      max_d1 = std::max(max_d1, std::abs(loss.D1(x, y)));
      max_d2 = std::max(max_d2, std::abs(loss.D2(x, y)));
      max_d3 = std::max(max_d3, std::abs(loss.D3(x, y)));
    }
  }
  EXPECT_GT(max_d1, 0.98 * loss.c1());
  EXPECT_GT(max_d2, 0.98 * loss.c2());
  EXPECT_GT(max_d3, 0.98 * loss.c3());
}

TEST_P(LossFamily, NonNegativeAndZeroAtPerfectPrediction) {
  const ConvexLoss loss = Make(4);
  for (double y : {0.0, 1.0}) {
    for (double x : SweepPoints()) {
      EXPECT_GE(loss.Value(x, y), -1e-12);
    }
  }
  if (GetParam() == ConvexLossKind::kPseudoHuber) {
    // Pseudo-Huber is exactly zero at x == y.
    EXPECT_NEAR(loss.Value(0.0, 0.0), 0.0, 1e-12);
    EXPECT_NEAR(loss.Value(1.0, 1.0), 0.0, 1e-12);
  }
}

TEST_P(LossFamily, NumericallyStableAtExtremes) {
  const ConvexLoss loss = Make(3);
  for (double y : {0.0, 1.0}) {
    for (double x : {-700.0, 700.0}) {
      EXPECT_TRUE(std::isfinite(loss.Value(x, y))) << "x=" << x;
      EXPECT_TRUE(std::isfinite(loss.D1(x, y)));
      EXPECT_TRUE(std::isfinite(loss.D2(x, y)));
      EXPECT_TRUE(std::isfinite(loss.D3(x, y)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Both, LossFamily,
                         ::testing::Values(
                             ConvexLossKind::kMultiLabelSoftMargin,
                             ConvexLossKind::kPseudoHuber));

TEST(MultiLabelSoftMargin, KnownSuprema) {
  const int c = 7;
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(c);
  EXPECT_NEAR(loss.c1(), 1.0 / c, 1e-15);
  EXPECT_NEAR(loss.c2(), 1.0 / (4.0 * c), 1e-15);
  EXPECT_NEAR(loss.c3(), 1.0 / (6.0 * std::sqrt(3.0) * c), 1e-15);
}

TEST(MultiLabelSoftMargin, MatchesDirectFormula) {
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(2);
  auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  for (double y : {0.0, 1.0}) {
    for (double x = -5.0; x <= 5.0; x += 0.5) {
      const double direct = -(y * std::log(sigmoid(x)) +
                              (1.0 - y) * std::log(1.0 - sigmoid(x))) /
                            2.0;
      EXPECT_NEAR(loss.Value(x, y), direct, 1e-10);
    }
  }
}

TEST(PseudoHuber, KnownSuprema) {
  const int c = 3;
  const double delta = 0.2;
  const ConvexLoss loss = ConvexLoss::PseudoHuber(c, delta);
  EXPECT_NEAR(loss.c1(), delta / c, 1e-15);
  EXPECT_NEAR(loss.c2(), 1.0 / c, 1e-15);
  EXPECT_NEAR(loss.c3(), 48.0 * std::sqrt(5.0) / (125.0 * c * delta), 1e-15);
}

TEST(PseudoHuber, BehavesQuadraticallyNearZeroLinearlyFar) {
  const ConvexLoss loss = ConvexLoss::PseudoHuber(1, 1.0);
  // Near x = y: ℓ ≈ (x-y)²/2.
  EXPECT_NEAR(loss.Value(0.01, 0.0), 0.5 * 0.01 * 0.01, 1e-7);
  // Far away: slope approaches δ_l / c = 1.
  const double slope = (loss.Value(101.0, 0.0) - loss.Value(100.0, 0.0));
  EXPECT_NEAR(slope, 1.0, 1e-3);
}

TEST(ConvexLoss, Names) {
  EXPECT_EQ(ConvexLoss::MultiLabelSoftMargin(2).name(),
            "multilabel_soft_margin");
  EXPECT_EQ(ConvexLoss::PseudoHuber(2, 0.1).name(), "pseudo_huber");
}

}  // namespace
}  // namespace gcon
