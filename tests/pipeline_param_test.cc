// Parameterized end-to-end sweep: every combination of loss family,
// propagation-step set, restart probability, and train-set expansion must
// produce a finite model that satisfies the Lemma 9 norm bound and beats
// chance at a generous budget. This guards the whole Algorithm 1 pipeline
// against configuration-dependent regressions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/gcon.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "propagation/appr.h"
#include "rng/rng.h"

namespace gcon {
namespace {

struct PipelineCase {
  ConvexLossKind loss;
  std::vector<int> steps;
  double alpha;
  bool expand;
};

std::string CaseName(const ::testing::TestParamInfo<PipelineCase>& info) {
  const PipelineCase& c = info.param;
  std::string name = c.loss == ConvexLossKind::kMultiLabelSoftMargin
                         ? "msm"
                         : "huber";
  name += "_s";
  for (int m : c.steps) {
    name += m == kInfiniteSteps ? "inf" : std::to_string(m);
  }
  name += "_a" + std::to_string(static_cast<int>(c.alpha * 10));
  name += c.expand ? "_expand" : "_n0";
  return name;
}

class PipelineSweep : public ::testing::TestWithParam<PipelineCase> {
 protected:
  static GconConfig MakeConfig(const PipelineCase& c) {
    GconConfig config;
    config.loss_kind = c.loss;
    config.pseudo_huber_delta = 0.2;
    config.steps = c.steps;
    config.alpha = c.alpha;
    config.expand_train_set = c.expand;
    config.encoder.hidden = 16;
    config.encoder.out_dim = 8;
    config.encoder.epochs = 100;
    config.minimize.minimizer = Minimizer::kLbfgs;
    config.minimize.max_iterations = 300;
    config.minimize.gradient_tolerance = 1e-9;
    config.seed = 31;
    return config;
  }
};

TEST_P(PipelineSweep, TrainsWithinTheoremBounds) {
  const PipelineCase c = GetParam();
  const DatasetSpec spec = TinySpec();
  Rng rng(41);
  const Graph graph = GenerateDataset(spec, &rng);
  const Split split = MakeSplit(spec, graph, &rng);
  const GconConfig config = MakeConfig(c);
  const GconPrepared prepared = PrepareGcon(graph, split, config);
  const GconModel model = TrainPrepared(prepared, 8.0, 1e-4, 53);

  // Finite parameters.
  for (std::size_t k = 0; k < model.theta.size(); ++k) {
    ASSERT_TRUE(std::isfinite(model.theta.data()[k]));
  }
  // Lemma 9 event: per-column norms within c_theta (huge margin expected).
  if (!model.params.zero_noise) {
    for (std::size_t j = 0; j < model.theta.cols(); ++j) {
      double norm_sq = 0.0;
      for (std::size_t i = 0; i < model.theta.rows(); ++i) {
        norm_sq += model.theta(i, j) * model.theta(i, j);
      }
      EXPECT_LE(std::sqrt(norm_sq), model.params.c_theta + 1e-9);
    }
  }
  // Utility at a loose budget beats chance on both inference paths.
  const double chance = 1.0 / graph.num_classes();
  const double f1_private = MicroF1FromLogits(
      PrivateInference(prepared, model), graph.labels(), split.test,
      graph.num_classes());
  const double f1_public = MicroF1FromLogits(
      PublicInference(prepared, model), graph.labels(), split.test,
      graph.num_classes());
  EXPECT_GT(f1_private, chance);
  EXPECT_GT(f1_public, chance);
  // Convergence actually reached.
  EXPECT_LT(model.opt.gradient_norm, 1e-6);
}

TEST_P(PipelineSweep, ReproducibleGivenSeeds) {
  const PipelineCase c = GetParam();
  const DatasetSpec spec = TinySpec();
  Rng rng_a(43), rng_b(43);
  const Graph graph_a = GenerateDataset(spec, &rng_a);
  const Graph graph_b = GenerateDataset(spec, &rng_b);
  Rng split_a(44), split_b(44);
  const Split sa = MakeSplit(spec, graph_a, &split_a);
  const Split sb = MakeSplit(spec, graph_b, &split_b);
  const GconConfig config = MakeConfig(c);
  const GconModel ma =
      TrainPrepared(PrepareGcon(graph_a, sa, config), 2.0, 1e-4, 59);
  const GconModel mb =
      TrainPrepared(PrepareGcon(graph_b, sb, config), 2.0, 1e-4, 59);
  EXPECT_TRUE(ma.theta.AllClose(mb.theta, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineSweep,
    ::testing::Values(
        PipelineCase{ConvexLossKind::kMultiLabelSoftMargin, {1}, 0.6, false},
        PipelineCase{ConvexLossKind::kMultiLabelSoftMargin, {2}, 0.8, true},
        PipelineCase{ConvexLossKind::kMultiLabelSoftMargin, {0, 2}, 0.6, true},
        PipelineCase{ConvexLossKind::kMultiLabelSoftMargin,
                     {kInfiniteSteps},
                     0.4,
                     true},
        PipelineCase{ConvexLossKind::kMultiLabelSoftMargin,
                     {0, 1, kInfiniteSteps},
                     0.5,
                     false},
        PipelineCase{ConvexLossKind::kPseudoHuber, {2}, 0.6, true},
        PipelineCase{ConvexLossKind::kPseudoHuber, {1}, 0.8, false},
        PipelineCase{ConvexLossKind::kPseudoHuber,
                     {2, kInfiniteSteps},
                     0.4,
                     true},
        PipelineCase{ConvexLossKind::kMultiLabelSoftMargin, {5}, 0.2, true},
        PipelineCase{ConvexLossKind::kPseudoHuber, {0, 5}, 0.7, false}),
    CaseName);

}  // namespace
}  // namespace gcon
