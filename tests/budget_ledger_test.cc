// BudgetLedger unit suite: reserve/commit/abort arithmetic, cap
// enforcement (exact equality allowed, overshoot refused with nothing
// written), persistence across reopen, the restart-no-re-spend rule of
// AccountArtifact, and the crash-recovery contract — torn trailing records
// (both hand-truncated and injected via Fault::kTornLedgerWrite) are
// dropped, newline-terminated garbage refuses to open, and reservations
// orphaned by a crash STAY charged on replay. The concurrent-reserve test
// is the TSan witness that check-and-charge happens under one lock.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dp/budget_ledger.h"
#include "serve/fault_injection.h"

namespace gcon {
namespace {

constexpr std::uint64_t kGraph = 0xFEEDFACE12345678ull;
constexpr std::uint64_t kArtifactA = 101;
constexpr std::uint64_t kArtifactB = 202;

/// Unique-per-test ledger path, removed up front so every test starts
/// from an absent file.
std::string LedgerPath(const char* name) {
  const std::string path =
      ::testing::TempDir() + "gcon_budget_ledger_test_" + name + ".ledger";
  std::remove(path.c_str());
  return path;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(BudgetLedgerTest, InMemoryReserveCommitAbortArithmetic) {
  BudgetLedger ledger;
  EXPECT_FALSE(ledger.persistent());

  const BudgetLedger::Reservation first =
      ledger.Reserve(kGraph, "m", 1.0, 1e-5, kArtifactA, /*cap=*/0);
  EXPECT_EQ(ledger.TotalEpsilon(kGraph, "m"), 1.0);  // charged at reserve
  EXPECT_EQ(ledger.Commit(first), 1.0);

  // An aborted reservation refunds: a failed publish spends nothing.
  const BudgetLedger::Reservation failed =
      ledger.Reserve(kGraph, "m", 2.0, 1e-5, kArtifactB, 0);
  EXPECT_EQ(ledger.TotalEpsilon(kGraph, "m"), 3.0);
  ledger.Abort(failed);
  const BudgetLedger::BudgetTotals totals = ledger.Totals(kGraph, "m");
  EXPECT_EQ(totals.epsilon, 1.0);
  EXPECT_EQ(totals.delta, 1e-5);
  EXPECT_EQ(totals.publishes, 1u);

  // Keys are (graph, model) pairs: another model or population is a
  // separate budget.
  EXPECT_EQ(ledger.TotalEpsilon(kGraph, "other"), 0.0);
  EXPECT_EQ(ledger.TotalEpsilon(kGraph + 1, "m"), 0.0);
}

TEST(BudgetLedgerTest, CapEnforcedAtReserveEqualityAllowed) {
  BudgetLedger ledger;
  ledger.Commit(ledger.Reserve(kGraph, "m", 1.0, 1e-5, kArtifactA, 2.0));
  // Reaching the cap exactly is allowed...
  ledger.Commit(ledger.Reserve(kGraph, "m", 1.0, 1e-5, kArtifactB, 2.0));
  EXPECT_EQ(ledger.TotalEpsilon(kGraph, "m"), 2.0);
  // ...exceeding it is refused, and the refusal charges nothing.
  EXPECT_THROW(ledger.Reserve(kGraph, "m", 0.5, 1e-5, kArtifactB, 2.0),
               BudgetExhaustedError);
  EXPECT_EQ(ledger.TotalEpsilon(kGraph, "m"), 2.0);
  // cap = 0 means unlimited.
  ledger.Commit(ledger.Reserve(kGraph, "m", 10.0, 1e-5, kArtifactB, 0));
  EXPECT_EQ(ledger.TotalEpsilon(kGraph, "m"), 12.0);
}

TEST(BudgetLedgerTest, ReopenRestoresCommittedTotals) {
  const std::string path = LedgerPath("reopen");
  {
    BudgetLedger ledger(path);
    EXPECT_TRUE(ledger.persistent());
    EXPECT_EQ(ledger.path(), path);
    ledger.Commit(ledger.Reserve(kGraph, "m", 1.0, 1e-5, kArtifactA, 0));
    ledger.Commit(ledger.Reserve(kGraph, "m", 0.5, 1e-5, kArtifactB, 0));
    ledger.Abort(ledger.Reserve(kGraph, "m", 9.0, 1e-5, kArtifactB, 0));
  }
  BudgetLedger reopened(path);
  const BudgetLedger::BudgetTotals totals = reopened.Totals(kGraph, "m");
  EXPECT_EQ(totals.epsilon, 1.5);
  EXPECT_EQ(totals.publishes, 2u);
  std::remove(path.c_str());
}

TEST(BudgetLedgerTest, AccountArtifactRestartNeverReSpends) {
  const std::string path = LedgerPath("restart");
  {
    BudgetLedger ledger(path);
    // First boot: a fresh artifact is a release, charged under the cap.
    EXPECT_EQ(ledger.AccountArtifact(kGraph, "m", 1.0, 1e-5, kArtifactA, 0),
              1.0);
    // A publish of new bits over it spends again.
    ledger.Commit(ledger.Reserve(kGraph, "m", 1.0, 1e-5, kArtifactB, 0));
  }
  {
    // Restart serving the ledger's own last release: the prior charge
    // stands — the total is RESTORED, not reset to the artifact's epsilon.
    BudgetLedger ledger(path);
    EXPECT_EQ(ledger.AccountArtifact(kGraph, "m", 1.0, 1e-5, kArtifactB, 0),
              2.0);
    EXPECT_EQ(ledger.Totals(kGraph, "m").publishes, 2u);
  }
  {
    // Restart with DIFFERENT bits (a release that never went through this
    // ledger's publish path) is a fresh charge — and the cap applies.
    BudgetLedger ledger(path);
    EXPECT_THROW(
        ledger.AccountArtifact(kGraph, "m", 1.0, 1e-5, kArtifactA, 2.5),
        BudgetExhaustedError);
    EXPECT_EQ(ledger.TotalEpsilon(kGraph, "m"), 2.0);  // refusal spent nothing
    EXPECT_EQ(ledger.AccountArtifact(kGraph, "m", 1.0, 1e-5, kArtifactA, 0),
              3.0);
  }
  std::remove(path.c_str());
}

TEST(BudgetLedgerTest, TruncatedFinalRecordIsRecovered) {
  const std::string path = LedgerPath("torn_tail");
  {
    BudgetLedger ledger(path);
    ledger.Commit(ledger.Reserve(kGraph, "m", 1.0, 1e-5, kArtifactA, 0));
  }
  // Simulate a crash mid-write: append half a record, no trailing newline.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "R 7 123 0.5";
  }
  BudgetLedger recovered(path);
  EXPECT_EQ(recovered.TotalEpsilon(kGraph, "m"), 1.0);
  // The torn tail was truncated away on disk too, so the next record
  // starts on a clean line boundary and a THIRD open replays cleanly.
  recovered.Commit(recovered.Reserve(kGraph, "m", 0.25, 1e-5, kArtifactB, 0));
  BudgetLedger third(path);
  EXPECT_EQ(third.TotalEpsilon(kGraph, "m"), 1.25);
  std::remove(path.c_str());
}

TEST(BudgetLedgerTest, NewlineTerminatedGarbageRefusesToOpen) {
  const std::string path = LedgerPath("corrupt");
  {
    BudgetLedger ledger(path);
    ledger.Commit(ledger.Reserve(kGraph, "m", 1.0, 1e-5, kArtifactA, 0));
  }
  // A complete (newline-terminated) unparseable line is corruption, not a
  // torn write — opening must refuse rather than guess a total.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "X what is this\n";
  }
  EXPECT_THROW(BudgetLedger{path}, std::runtime_error);
  std::remove(path.c_str());

  // So does a file that is not a ledger at all.
  {
    std::ofstream out(path, std::ios::binary);
    out << "#!/bin/sh\necho hello\n";
  }
  EXPECT_THROW(BudgetLedger{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(BudgetLedgerTest, CrashOrphanedReservationStaysCharged) {
  const std::string path = LedgerPath("orphan");
  {
    BudgetLedger ledger(path);
    ledger.Commit(ledger.Reserve(kGraph, "m", 1.0, 1e-5, kArtifactA, 0));
    // Reserve without resolving — the object dies (process crash) with the
    // R record durable and no C/A.
    ledger.Reserve(kGraph, "m", 2.0, 1e-5, kArtifactB, 0);
  }
  // Replay: the swap may have completed before its commit record landed,
  // so the orphaned charge STAYS (over-count, never forget a release).
  BudgetLedger recovered(path);
  const BudgetLedger::BudgetTotals totals = recovered.Totals(kGraph, "m");
  EXPECT_EQ(totals.epsilon, 3.0);
  EXPECT_EQ(totals.publishes, 2u);
  std::remove(path.c_str());
}

TEST(BudgetLedgerTest, InjectedTornWriteRecoversOnReopen) {
  const std::string path = LedgerPath("fault");
  FaultInjector::Global().Reset();
  {
    BudgetLedger ledger(path);
    ledger.Commit(ledger.Reserve(kGraph, "m", 1.0, 1e-5, kArtifactA, 0));

    // The chaos hook: half the R record lands on disk, then the write
    // "fails". Reserve must throw with the in-memory total untouched...
    FaultInjector::Global().Arm(Fault::kTornLedgerWrite, 1);
    EXPECT_THROW(ledger.Reserve(kGraph, "m", 2.0, 1e-5, kArtifactB, 0),
                 std::runtime_error);
    EXPECT_EQ(ledger.TotalEpsilon(kGraph, "m"), 1.0);

    // ...and the object is poisoned — a crashed writer does not keep
    // appending to a file whose tail it can no longer trust.
    EXPECT_THROW(ledger.Reserve(kGraph, "m", 0.5, 1e-5, kArtifactB, 0),
                 std::runtime_error);
  }
  // The file really does end in a torn half-record.
  const std::string bytes = ReadAll(path);
  ASSERT_FALSE(bytes.empty());
  EXPECT_NE(bytes.back(), '\n');

  // Reopen (the restart after the crash): the tail is truncated away and
  // the pre-crash totals replay exactly; the ledger is writable again.
  BudgetLedger recovered(path);
  EXPECT_EQ(recovered.TotalEpsilon(kGraph, "m"), 1.0);
  recovered.Commit(recovered.Reserve(kGraph, "m", 0.5, 1e-5, kArtifactB, 0));
  EXPECT_EQ(recovered.TotalEpsilon(kGraph, "m"), 1.5);
  FaultInjector::Global().Reset();
  std::remove(path.c_str());
}

TEST(BudgetLedgerTest, ConcurrentReservesCannotJointlyOvershootTheCap) {
  // Ten threads race 1.0-epsilon reserves against a cap of 5.0: exactly
  // five must win (reaching the cap exactly), five must be refused, and
  // under TSan this doubles as the data-race witness for the
  // check-and-charge critical section.
  BudgetLedger ledger;
  constexpr int kThreads = 10;
  std::vector<std::thread> threads;
  std::vector<int> won(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, &won, t] {
      try {
        ledger.Commit(ledger.Reserve(kGraph, "m", 1.0, 1e-5,
                                     static_cast<std::uint64_t>(t),
                                     /*cap=*/5.0));
        won[static_cast<std::size_t>(t)] = 1;
      } catch (const BudgetExhaustedError&) {
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  int winners = 0;
  for (const int w : won) winners += w;
  EXPECT_EQ(winners, 5);
  const BudgetLedger::BudgetTotals totals = ledger.Totals(kGraph, "m");
  EXPECT_EQ(totals.epsilon, 5.0);
  EXPECT_EQ(totals.publishes, 5u);
}

}  // namespace
}  // namespace gcon
