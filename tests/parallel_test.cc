// ParallelFor: index coverage, schedule-independent slot writes, inline
// degeneration, thread-count resolution, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "eval/parallel.h"

namespace gcon {
namespace {

TEST(ResolveThreads, PassesPositiveThrough) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(7), 7);
}

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  const int resolved = ResolveThreads(0);
  EXPECT_GE(resolved, 1);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(resolved, static_cast<int>(hw));
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 9}) {
    const int n = 37;
    std::vector<std::atomic<int>> visits(static_cast<std::size_t>(n));
    for (auto& v : visits) v.store(0);
    ParallelFor(n, threads, [&](int i) {
      visits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, SlotOutputsAreScheduleIndependent) {
  const int n = 64;
  std::vector<int> sequential(static_cast<std::size_t>(n));
  std::vector<int> parallel(static_cast<std::size_t>(n));
  auto fill = [](std::vector<int>* out) {
    return [out](int i) { (*out)[static_cast<std::size_t>(i)] = i * i + 3; };
  };
  ParallelFor(n, 1, fill(&sequential));
  ParallelFor(n, 5, fill(&parallel));
  EXPECT_EQ(sequential, parallel);
}

TEST(ParallelFor, SequentialRunsInIndexOrder) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, EmptyAndNegativeRangesAreNoOps) {
  int calls = 0;
  ParallelFor(0, 4, [&](int) { ++calls; });
  ParallelFor(-3, 4, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, MoreThreadsThanWorkIsSafe) {
  std::atomic<int> sum{0};
  ParallelFor(3, 16, [&](int i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 6);
}

TEST(ParallelFor, RethrowsFirstExceptionOnCaller) {
  for (int threads : {1, 4}) {
    EXPECT_THROW(
        ParallelFor(32, threads,
                    [](int i) {
                      if (i == 7) throw std::runtime_error("boom");
                    }),
        std::runtime_error)
        << "threads " << threads;
  }
}

TEST(ParallelFor, AbandonsRemainingWorkAfterException) {
  // With one worker the remaining indices must not run after the throw;
  // with several, only indices already claimed may still finish.
  std::atomic<int> ran{0};
  try {
    ParallelFor(1000, 2, [&](int i) {
      if (i == 0) throw std::invalid_argument("stop");
      ran.fetch_add(1);
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::invalid_argument&) {
  }
  EXPECT_LT(ran.load(), 1000);
}

}  // namespace
}  // namespace gcon
