#include <gtest/gtest.h>

#include <cmath>

#include "core/gcon.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "linalg/ops.h"
#include "propagation/appr.h"
#include "propagation/transition.h"
#include "rng/rng.h"

namespace gcon {
namespace {

struct Fixture {
  Graph graph;
  Split split;
};

Fixture MakeFixture(std::uint64_t seed) {
  const DatasetSpec spec = TinySpec();
  Rng rng(seed);
  Fixture f{GenerateDataset(spec, &rng), {}};
  f.split = MakeSplit(spec, f.graph, &rng);
  return f;
}

GconConfig FastConfig() {
  GconConfig config;
  config.epsilon = 2.0;
  config.delta = 1e-4;
  config.alpha = 0.6;
  config.steps = {2};
  config.encoder.hidden = 16;
  config.encoder.out_dim = 8;
  config.encoder.epochs = 120;
  config.minimize.max_iterations = 1500;
  config.seed = 5;
  return config;
}

TEST(Encoder, ProducesExpectedShapesAndPredictions) {
  const Fixture f = MakeFixture(1);
  EncoderOptions options;
  options.hidden = 16;
  options.out_dim = 8;
  options.epochs = 120;
  const EncodedFeatures encoded = TrainEncoder(f.graph, f.split, options);
  EXPECT_EQ(encoded.features.rows(),
            static_cast<std::size_t>(f.graph.num_nodes()));
  EXPECT_EQ(encoded.features.cols(), 8u);
  EXPECT_EQ(encoded.predictions.size(),
            static_cast<std::size_t>(f.graph.num_nodes()));
  EXPECT_GT(encoded.val_accuracy, 1.0 / f.graph.num_classes())
      << "encoder should beat random chance on the validation set";
}

TEST(Encoder, PredictionsBeatChanceOnTrainSet) {
  const Fixture f = MakeFixture(2);
  EncoderOptions options;
  options.hidden = 16;
  options.out_dim = 8;
  options.epochs = 150;
  const EncodedFeatures encoded = TrainEncoder(f.graph, f.split, options);
  int correct = 0;
  for (int v : f.split.train) {
    if (encoded.predictions[static_cast<std::size_t>(v)] == f.graph.label(v)) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / f.split.train.size(), 0.6);
}

TEST(Prepare, ShapesAndSensitivity) {
  const Fixture f = MakeFixture(3);
  GconConfig config = FastConfig();
  config.steps = {0, 2};
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const int n = f.graph.num_nodes();
  EXPECT_EQ(prepared.encoded.rows(), static_cast<std::size_t>(n));
  EXPECT_EQ(prepared.z.rows(), static_cast<std::size_t>(n));
  EXPECT_EQ(prepared.z.cols(), 2u * 8u);  // s * d1
  EXPECT_EQ(prepared.z_train.rows(), f.split.train.size());
  EXPECT_EQ(prepared.y_train.cols(),
            static_cast<std::size_t>(f.graph.num_classes()));
  // Ψ(Z) = (Ψ(Z_0) + Ψ(Z_2)) / 2 with Ψ(Z_0) = 0.
  const double expected_psi =
      (0.0 + 2.0 * (1.0 - 0.6) / 0.6 * (1.0 - std::pow(0.4, 2))) / 2.0;
  EXPECT_NEAR(prepared.psi_z, expected_psi, 1e-12);
  // Encoded rows are unit-norm after normalization (non-zero rows).
  for (std::size_t i = 0; i < prepared.encoded.rows(); ++i) {
    const double norm = RowNorm2(prepared.encoded, i);
    EXPECT_TRUE(norm < 1e-9 || std::abs(norm - 1.0) < 1e-9);
  }
}

TEST(Prepare, ExpandTrainSetUsesAllNodes) {
  const Fixture f = MakeFixture(4);
  GconConfig config = FastConfig();
  config.expand_train_set = true;
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  EXPECT_EQ(prepared.train_nodes.size(),
            static_cast<std::size_t>(f.graph.num_nodes()));
  EXPECT_EQ(prepared.z_train.rows(),
            static_cast<std::size_t>(f.graph.num_nodes()));
}

TEST(Train, ProducesFiniteTheta) {
  const Fixture f = MakeFixture(5);
  const GconConfig config = FastConfig();
  const GconModel model = TrainGcon(f.graph, f.split, config);
  EXPECT_EQ(model.theta.rows(), 8u);
  EXPECT_EQ(model.theta.cols(),
            static_cast<std::size_t>(f.graph.num_classes()));
  for (std::size_t k = 0; k < model.theta.size(); ++k) {
    EXPECT_TRUE(std::isfinite(model.theta.data()[k]));
  }
  EXPECT_GT(model.params.beta, 0.0);
  EXPECT_FALSE(model.params.zero_noise);
}

TEST(Train, ThetaNormWithinCthetaBound) {
  // Lemma 9's high-probability event: every column of Θ_priv should have
  // norm <= c_θ (failure probability δ per run; with these parameters the
  // bound holds with huge margin).
  const Fixture f = MakeFixture(6);
  const GconConfig config = FastConfig();
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel model = TrainPrepared(prepared, 2.0, 1e-4, 99);
  for (std::size_t j = 0; j < model.theta.cols(); ++j) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < model.theta.rows(); ++i) {
      norm_sq += model.theta(i, j) * model.theta(i, j);
    }
    EXPECT_LE(std::sqrt(norm_sq), model.params.c_theta + 1e-9)
        << "column " << j;
  }
}

TEST(Train, DifferentNoiseSeedsDifferentTheta) {
  const Fixture f = MakeFixture(7);
  const GconConfig config = FastConfig();
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel a = TrainPrepared(prepared, 1.0, 1e-4, 1);
  const GconModel b = TrainPrepared(prepared, 1.0, 1e-4, 2);
  EXPECT_GT(FrobeniusNorm(Sub(a.theta, b.theta)), 1e-6);
}

TEST(Train, SameSeedReproducible) {
  const Fixture f = MakeFixture(8);
  const GconConfig config = FastConfig();
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel a = TrainPrepared(prepared, 1.0, 1e-4, 42);
  const GconModel b = TrainPrepared(prepared, 1.0, 1e-4, 42);
  EXPECT_TRUE(a.theta.AllClose(b.theta, 1e-12));
}

TEST(Train, UtilityBeatsChanceAtModerateBudget) {
  const Fixture f = MakeFixture(9);
  GconConfig config = FastConfig();
  config.epsilon = 4.0;
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel model = TrainPrepared(prepared, 4.0, 1e-4, 7);
  const Matrix logits = PrivateInference(prepared, model);
  const double f1 = MicroF1FromLogits(logits, f.graph.labels(), f.split.test,
                                      f.graph.num_classes());
  EXPECT_GT(f1, 1.5 / f.graph.num_classes())
      << "should comfortably beat the 1/c random baseline";
}

TEST(Train, DisableNoiseBeatsNoisyAtTinyBudget) {
  // The non-private ablation upper-bounds the DP model (in expectation; we
  // fix seeds and use a tiny budget where the gap is large).
  const Fixture f = MakeFixture(10);
  GconConfig config = FastConfig();
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);

  GconConfig no_noise = config;
  no_noise.disable_noise = true;
  const GconPrepared prepared_clean = PrepareGcon(f.graph, f.split, no_noise);
  const GconModel clean = TrainPrepared(prepared_clean, 0.05, 1e-4, 3);
  const GconModel noisy = TrainPrepared(prepared, 0.05, 1e-4, 3);

  const double f1_clean = MicroF1FromLogits(
      PrivateInference(prepared_clean, clean), f.graph.labels(), f.split.test,
      f.graph.num_classes());
  const double f1_noisy = MicroF1FromLogits(
      PrivateInference(prepared, noisy), f.graph.labels(), f.split.test,
      f.graph.num_classes());
  EXPECT_GE(f1_clean, f1_noisy - 0.05);
}

TEST(Train, AlphaOneIsZeroNoiseCase) {
  const Fixture f = MakeFixture(11);
  GconConfig config = FastConfig();
  config.alpha = 1.0;  // no propagation: Ψ = 0
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  EXPECT_DOUBLE_EQ(prepared.psi_z, 0.0);
  const GconModel model = TrainPrepared(prepared, 0.1, 1e-4, 5);
  EXPECT_TRUE(model.params.zero_noise);
}

TEST(Inference, PrivateUsesOnlyOwnEdges) {
  // Changing an edge NOT incident to node q must leave q's private-path
  // prediction unchanged (that is the privacy argument of §IV-C6: only the
  // query node's own edges are read).
  const Fixture f = MakeFixture(12);
  GconConfig config = FastConfig();
  config.steps = {1};
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel model = TrainPrepared(prepared, 2.0, 1e-4, 13);
  const Matrix logits = PrivateInference(prepared, model);

  // Rebuild prepared artifacts on a graph with one distant edge flipped,
  // keeping the SAME encoder/theta — only the transition matrix changes.
  Graph edited = f.graph;
  int q = f.split.test.front();
  // Find an edge not touching q.
  std::pair<int, int> target{-1, -1};
  for (const auto& edge : edited.EdgeList()) {
    if (edge.first != q && edge.second != q) {
      target = edge;
      break;
    }
  }
  ASSERT_GE(target.first, 0);
  ASSERT_TRUE(edited.RemoveEdge(target.first, target.second));

  GconPrepared edited_prepared = prepared;
  edited_prepared.transition = BuildTransition(edited);
  const Matrix edited_logits = PrivateInference(edited_prepared, model);
  for (std::size_t j = 0; j < logits.cols(); ++j) {
    EXPECT_NEAR(logits(static_cast<std::size_t>(q), j),
                edited_logits(static_cast<std::size_t>(q), j), 1e-12);
  }
}

TEST(Inference, PublicPathUsesFullPropagation) {
  const Fixture f = MakeFixture(13);
  GconConfig config = FastConfig();
  config.steps = {5};
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel model = TrainPrepared(prepared, 2.0, 1e-4, 17);
  const Matrix public_logits = PublicInference(prepared, model);
  const Matrix private_logits = PrivateInference(prepared, model);
  EXPECT_EQ(public_logits.rows(), private_logits.rows());
  // With m=5 they must differ: public uses R_5, private the one-hop R̂.
  EXPECT_GT(FrobeniusNorm(Sub(public_logits, private_logits)), 1e-9);
}

TEST(Inference, StepZeroPrivateEqualsEncoderFeaturesTimesTheta) {
  const Fixture f = MakeFixture(14);
  GconConfig config = FastConfig();
  config.steps = {0};
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel model = TrainPrepared(prepared, 1.0, 1e-4, 19);
  const Matrix logits = PrivateInference(prepared, model);
  const Matrix expected = MatMul(prepared.encoded, model.theta);
  EXPECT_TRUE(logits.AllClose(expected, 1e-12));
}

TEST(Inference, OnSeparateGraphRuns) {
  const Fixture f = MakeFixture(15);
  const GconConfig config = FastConfig();
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel model = TrainPrepared(prepared, 2.0, 1e-4, 23);
  // A freshly generated graph from the same distribution (scenario ii).
  Rng rng(99);
  const Graph other = GenerateDataset(TinySpec(), &rng);
  const Matrix logits = PrivateInferenceOnGraph(prepared, model, other);
  EXPECT_EQ(logits.rows(), static_cast<std::size_t>(other.num_nodes()));
  EXPECT_EQ(logits.cols(), static_cast<std::size_t>(other.num_classes()));
  const double f1 = MicroF1FromLogits(logits, other.labels(),
                                      [&] {
                                        std::vector<int> all;
                                        for (int v = 0; v < other.num_nodes(); ++v)
                                          all.push_back(v);
                                        return all;
                                      }(),
                                      other.num_classes());
  EXPECT_GT(f1, 1.0 / other.num_classes());
}

TEST(Inference, PublicOnGraphMatchesPublicOnTrainingGraph) {
  // Running the public path "on a different graph" with the training graph
  // itself must reproduce PublicInference exactly.
  const Fixture f = MakeFixture(17);
  const GconConfig config = FastConfig();
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel model = TrainPrepared(prepared, 2.0, 1e-4, 37);
  const Matrix direct = PublicInference(prepared, model);
  const Matrix via_graph = PublicInferenceOnGraph(prepared, model, f.graph);
  EXPECT_TRUE(via_graph.AllClose(direct, 1e-9));
}

TEST(Inference, PublicOnGraphUsesFullReceptiveField) {
  const Fixture f = MakeFixture(18);
  GconConfig config = FastConfig();
  config.steps = {5};
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel model = TrainPrepared(prepared, 2.0, 1e-4, 41);
  Rng rng(123);
  const Graph other = GenerateDataset(TinySpec(), &rng);
  const Matrix pub = PublicInferenceOnGraph(prepared, model, other);
  const Matrix priv = PrivateInferenceOnGraph(prepared, model, other);
  EXPECT_EQ(pub.rows(), priv.rows());
  EXPECT_GT(FrobeniusNorm(Sub(pub, priv)), 1e-9);
}

TEST(Train, AlphaInferenceOverride) {
  // alpha_inference changes the private path but not the public one.
  const Fixture f = MakeFixture(19);
  GconConfig config = FastConfig();
  config.steps = {2};
  config.alpha_inference = 0.1;
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  const GconModel model = TrainPrepared(prepared, 2.0, 1e-4, 43);
  const Matrix with_override = PrivateInference(prepared, model);

  GconPrepared default_inf = prepared;
  default_inf.config.alpha_inference = -1.0;
  const Matrix without = PrivateInference(default_inf, model);
  EXPECT_GT(FrobeniusNorm(Sub(with_override, without)), 1e-9);
  EXPECT_TRUE(PublicInference(prepared, model)
                  .AllClose(PublicInference(default_inf, model), 1e-12));
}

TEST(Train, LbfgsMinimizerMatchesAdamPipeline) {
  const Fixture f = MakeFixture(20);
  GconConfig adam_config = FastConfig();
  adam_config.minimize.max_iterations = 6000;
  adam_config.minimize.gradient_tolerance = 1e-10;
  GconConfig lbfgs_config = adam_config;
  lbfgs_config.minimize.minimizer = Minimizer::kLbfgs;
  lbfgs_config.minimize.max_iterations = 500;

  const GconPrepared prepared = PrepareGcon(f.graph, f.split, adam_config);
  GconPrepared prepared_lbfgs = prepared;
  prepared_lbfgs.config = lbfgs_config;

  const GconModel adam_model = TrainPrepared(prepared, 2.0, 1e-4, 47);
  const GconModel lbfgs_model = TrainPrepared(prepared_lbfgs, 2.0, 1e-4, 47);
  // Same noise seed -> same objective -> same unique minimizer.
  EXPECT_TRUE(adam_model.theta.AllClose(lbfgs_model.theta, 1e-4));
  EXPECT_LT(lbfgs_model.opt.iterations, adam_model.opt.iterations);
}

TEST(Train, EpsilonSweepNoiseMonotone) {
  // The realized noise radius E||b|| = d/beta must shrink as epsilon grows.
  const Fixture f = MakeFixture(16);
  const GconConfig config = FastConfig();
  const GconPrepared prepared = PrepareGcon(f.graph, f.split, config);
  double prev_radius = 1e300;
  for (double eps : {0.5, 1.0, 2.0, 4.0}) {
    const GconModel model = TrainPrepared(prepared, eps, 1e-4, 31);
    const double radius =
        static_cast<double>(prepared.z.cols()) / model.params.beta;
    EXPECT_LT(radius, prev_radius) << "eps=" << eps;
    prev_radius = radius;
  }
}

}  // namespace
}  // namespace gcon
