#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "eval/attack.h"
#include "eval/influence_attack.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "linalg/ops.h"
#include "nn/loss.h"
#include "sparse/csr_matrix.h"
#include "rng/rng.h"

namespace gcon {
namespace {

TEST(Metrics, ArgmaxPredictions) {
  Matrix logits{{0.1, 0.9}, {2.0, -1.0}, {0.5, 0.5}};
  const auto pred = ArgmaxPredictions(logits);
  EXPECT_EQ(pred, (std::vector<int>{1, 0, 0}));
}

TEST(Metrics, MicroF1EqualsAccuracyForSingleLabel) {
  const std::vector<int> pred = {0, 1, 2, 1, 0, 2, 2};
  const std::vector<int> labels = {0, 1, 1, 1, 2, 2, 2};
  std::vector<int> idx(7);
  for (int i = 0; i < 7; ++i) idx[static_cast<std::size_t>(i)] = i;
  double correct = 0;
  for (int i : idx) {
    if (pred[static_cast<std::size_t>(i)] == labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  EXPECT_NEAR(MicroF1(pred, labels, idx, 3), correct / 7.0, 1e-12);
}

TEST(Metrics, PerfectAndWorstCase) {
  const std::vector<int> labels = {0, 1, 0, 1};
  const std::vector<int> idx = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(MicroF1(labels, labels, idx, 2), 1.0);
  const std::vector<int> wrong = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(MicroF1(wrong, labels, idx, 2), 0.0);
  EXPECT_DOUBLE_EQ(MacroF1(labels, labels, idx, 2), 1.0);
}

TEST(Metrics, MacroF1HandComputed) {
  // pred:   0 0 1 1 ; labels: 0 1 1 1.
  // class0: tp=1 fp=1 fn=0 -> f1 = 2/3. class1: tp=2 fp=0 fn=1 -> f1 = 4/5.
  const std::vector<int> pred = {0, 0, 1, 1};
  const std::vector<int> labels = {0, 1, 1, 1};
  const std::vector<int> idx = {0, 1, 2, 3};
  EXPECT_NEAR(MacroF1(pred, labels, idx, 2), 0.5 * (2.0 / 3.0 + 0.8), 1e-12);
}

TEST(Metrics, MacroSkipsAbsentClasses) {
  const std::vector<int> pred = {0, 0};
  const std::vector<int> labels = {0, 0};
  const std::vector<int> idx = {0, 1};
  // Class 1 and 2 absent entirely -> macro over class 0 only.
  EXPECT_DOUBLE_EQ(MacroF1(pred, labels, idx, 3), 1.0);
}

TEST(Metrics, EmptyIndexGivesZero) {
  EXPECT_DOUBLE_EQ(MicroF1({}, {}, {}, 3), 0.0);
  EXPECT_DOUBLE_EQ(MacroF1({}, {}, {}, 3), 0.0);
}

TEST(Metrics, SubsetEvaluation) {
  const std::vector<int> pred = {0, 1, 0};
  const std::vector<int> labels = {0, 0, 0};
  EXPECT_DOUBLE_EQ(MicroF1(pred, labels, {0, 2}, 2), 1.0);
  EXPECT_DOUBLE_EQ(MicroF1(pred, labels, {1}, 2), 0.0);
}

TEST(Experiment, SummarizeMeanStd) {
  const RunStats stats = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_NEAR(stats.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(stats.count, 4);
  const RunStats single = Summarize({7.0});
  EXPECT_DOUBLE_EQ(single.mean, 7.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
  EXPECT_EQ(Summarize({}).count, 0);
}

TEST(Experiment, SeriesTablePrints) {
  SeriesTable table("Fig X", "eps", {"gcon", "gap"});
  table.AddRow("0.5", {0.7123, 0.5011}, {0.01, 0.02});
  table.AddRow("1", {0.75, std::nan("")});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Fig X"), std::string::npos);
  EXPECT_NE(text.find("gcon"), std::string::npos);
  EXPECT_NE(text.find("0.7123"), std::string::npos);
  EXPECT_NE(text.find("±"), std::string::npos);
  EXPECT_NE(text.find("-"), std::string::npos);  // NaN cell
}

TEST(Attack, AucKnownCases) {
  // Perfect separation.
  EXPECT_DOUBLE_EQ(RankingAuc({2.0, 3.0}, {0.0, 1.0}), 1.0);
  // Reversed.
  EXPECT_DOUBLE_EQ(RankingAuc({0.0, 1.0}, {2.0, 3.0}), 0.0);
  // All tied -> 0.5.
  EXPECT_DOUBLE_EQ(RankingAuc({1.0, 1.0}, {1.0, 1.0}), 0.5);
  // Hand-computed mix: pos {3, 1}, neg {2, 0}: pairs (3>2),(3>0),(1<2),(1>0)
  // -> 3/4.
  EXPECT_DOUBLE_EQ(RankingAuc({3.0, 1.0}, {2.0, 0.0}), 0.75);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(RankingAuc({}, {1.0}), 0.5);
}

TEST(Attack, DetectsLeakyModel) {
  // Construct logits that blatantly leak edges: connected nodes get nearly
  // identical posterior vectors (propagated labels on a homophilous graph).
  Rng gen(1);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  Matrix leaky(static_cast<std::size_t>(graph.num_nodes()),
               static_cast<std::size_t>(graph.num_classes()));
  // Each node's logits = average of its and neighbors' one-hot labels.
  for (int v = 0; v < graph.num_nodes(); ++v) {
    leaky(static_cast<std::size_t>(v),
          static_cast<std::size_t>(graph.label(v))) += 2.0;
    for (int u : graph.Neighbors(v)) {
      leaky(static_cast<std::size_t>(v),
            static_cast<std::size_t>(graph.label(u))) += 1.0;
    }
  }
  Rng rng(2);
  const AttackResult result =
      PosteriorSimilarityAttack(leaky, graph, 300, &rng);
  EXPECT_GT(result.num_positive, 100);
  EXPECT_GT(result.auc, 0.6) << "attack should succeed on a leaky model";
}

TEST(InfluenceAttack, RecoversEdgesFromPropagatedInference) {
  // Forward = one-hop mean aggregation of features: v influences u iff
  // (u, v) is an edge, so the attack should separate perfectly.
  Rng gen(11);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  const CsrMatrix adjacency = graph.AdjacencyCsr();
  auto forward = [&](const Matrix& x) {
    Matrix agg = adjacency.Multiply(x);
    AxpyInPlace(1.0, x, &agg);  // self + neighbors
    return agg;
  };
  Rng rng(12);
  const auto result =
      InfluenceAttack(forward, graph.features(), graph, 150, 0.05, &rng);
  EXPECT_GT(result.num_positive, 100);
  EXPECT_GT(result.auc, 0.95);
}

TEST(InfluenceAttack, BlindAgainstEdgeFreeModel) {
  // Forward ignores the graph entirely: influence of v on u != v is zero,
  // so edges and non-edges are indistinguishable (all ties -> AUC 1/2).
  Rng gen(13);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  auto forward = [&](const Matrix& x) { return x; };
  Rng rng(14);
  const auto result =
      InfluenceAttack(forward, graph.features(), graph, 150, 0.05, &rng);
  EXPECT_NEAR(result.auc, 0.5, 0.05);
}

TEST(InfluenceAttack, TwoHopForwardLeaksMoreThanZeroHop) {
  Rng gen(15);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  const CsrMatrix adjacency = graph.AdjacencyCsr();
  auto two_hop = [&](const Matrix& x) {
    Matrix h = adjacency.Multiply(x);
    AxpyInPlace(1.0, x, &h);
    Matrix h2 = adjacency.Multiply(h);
    AxpyInPlace(1.0, h, &h2);
    return h2;
  };
  auto zero_hop = [&](const Matrix& x) { return x; };
  Rng rng_a(16), rng_b(17);
  const double auc_two =
      InfluenceAttack(two_hop, graph.features(), graph, 120, 0.05, &rng_a).auc;
  const double auc_zero =
      InfluenceAttack(zero_hop, graph.features(), graph, 120, 0.05, &rng_b)
          .auc;
  EXPECT_GT(auc_two, auc_zero + 0.2);
}

TEST(Attack, NearChanceOnEdgeFreeModel) {
  // Logits independent of the topology (pure noise) leak nothing; the AUC
  // may deviate slightly from 1/2 because homophily correlates posteriors
  // with edges even without leakage, so use pure random logits.
  Rng gen(3);
  const Graph graph = GenerateDataset(TinySpec(), &gen);
  Matrix random_logits(static_cast<std::size_t>(graph.num_nodes()),
                       static_cast<std::size_t>(graph.num_classes()));
  Rng noise(4);
  for (std::size_t k = 0; k < random_logits.size(); ++k) {
    random_logits.data()[k] = noise.Uniform(-1.0, 1.0);
  }
  Rng rng(5);
  const AttackResult result =
      PosteriorSimilarityAttack(random_logits, graph, 300, &rng);
  EXPECT_NEAR(result.auc, 0.5, 0.08);
}

}  // namespace
}  // namespace gcon
