#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/ops.h"
#include "rng/rng.h"

namespace gcon {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t k = 0; k < m.size(); ++k) {
    m.data()[k] = rng->Uniform(-1.0, 1.0);
  }
  return m;
}

// Naive O(mnk) reference product.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) {
        acc += a(i, p) * b(p, j);
      }
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t k = 0; k < m.size(); ++k) {
    EXPECT_EQ(m.data()[k], 0.0);
  }
  m(1, 2) = 5.0;
  EXPECT_EQ(m.At(1, 2), 5.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, FillAndResize) {
  Matrix m(2, 2, 7.0);
  EXPECT_EQ(m(1, 1), 7.0);
  m.Fill(-1.0);
  EXPECT_EQ(m(0, 0), -1.0);
  m.Resize(3, 1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_EQ(m(2, 0), 0.0);
}

TEST(Matrix, RowAndColCopy) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const auto row = m.RowCopy(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[2], 6.0);
  const auto col = m.ColCopy(0);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col[1], 4.0);
}

TEST(Matrix, AllClose) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0, 2.0 + 1e-12}};
  Matrix c{{1.0, 2.1}};
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(c));
  EXPECT_FALSE(a.AllClose(Matrix(2, 1)));
}

TEST(Ops, MatMulMatchesNaive) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t m = 1 + rng.UniformInt(20);
    const std::size_t k = 1 + rng.UniformInt(20);
    const std::size_t n = 1 + rng.UniformInt(20);
    const Matrix a = RandomMatrix(m, k, &rng);
    const Matrix b = RandomMatrix(k, n, &rng);
    EXPECT_TRUE(MatMul(a, b).AllClose(NaiveMatMul(a, b), 1e-10));
  }
}

TEST(Ops, MatMulTransAMatchesNaive) {
  Rng rng(11);
  const Matrix a = RandomMatrix(9, 5, &rng);
  const Matrix b = RandomMatrix(9, 7, &rng);
  EXPECT_TRUE(MatMulTransA(a, b).AllClose(NaiveMatMul(Transpose(a), b), 1e-10));
}

TEST(Ops, MatMulTransBMatchesNaive) {
  Rng rng(13);
  const Matrix a = RandomMatrix(6, 5, &rng);
  const Matrix b = RandomMatrix(8, 5, &rng);
  EXPECT_TRUE(MatMulTransB(a, b).AllClose(NaiveMatMul(a, Transpose(b)), 1e-10));
}

TEST(Ops, GemmAccumulates) {
  Rng rng(17);
  const Matrix a = RandomMatrix(4, 3, &rng);
  const Matrix b = RandomMatrix(3, 5, &rng);
  Matrix c = RandomMatrix(4, 5, &rng);
  const Matrix c0 = c;
  Gemm(2.0, a, b, 0.5, &c);
  Matrix expected = NaiveMatMul(a, b);
  ScaleInPlace(2.0, &expected);
  for (std::size_t k = 0; k < expected.size(); ++k) {
    expected.data()[k] += 0.5 * c0.data()[k];
  }
  EXPECT_TRUE(c.AllClose(expected, 1e-10));
}

TEST(Ops, MatVec) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<double> x = {1.0, -1.0};
  const auto y = MatVec(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
  const auto yt = MatVecTransA(a, {1.0, 0.0, -1.0});
  ASSERT_EQ(yt.size(), 2u);
  EXPECT_DOUBLE_EQ(yt[0], -4.0);
  EXPECT_DOUBLE_EQ(yt[1], -4.0);
}

TEST(Ops, TransposeTwiceIsIdentity) {
  Rng rng(19);
  const Matrix a = RandomMatrix(4, 7, &rng);
  EXPECT_TRUE(Transpose(Transpose(a)).AllClose(a));
}

TEST(Ops, AddSubHadamard) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  EXPECT_TRUE(Add(a, b).AllClose(Matrix{{6, 8}, {10, 12}}));
  EXPECT_TRUE(Sub(b, a).AllClose(Matrix{{4, 4}, {4, 4}}));
  EXPECT_TRUE(Hadamard(a, b).AllClose(Matrix{{5, 12}, {21, 32}}));
}

TEST(Ops, ConcatCols) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{9}, {8}};
  const Matrix c = ConcatCols(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_EQ(c(0, 2), 9.0);
  EXPECT_EQ(c(1, 0), 3.0);
  const Matrix three = ConcatCols({a, b, a});
  EXPECT_EQ(three.cols(), 5u);
  EXPECT_EQ(three(1, 4), 4.0);
}

TEST(Ops, GatherRows) {
  Matrix a{{1, 1}, {2, 2}, {3, 3}};
  const Matrix g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g(0, 0), 3.0);
  EXPECT_EQ(g(1, 0), 1.0);
  EXPECT_EQ(g(2, 1), 3.0);
}

TEST(Ops, NormsAndReductions) {
  Matrix a{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 5.0);
  EXPECT_DOUBLE_EQ(RowNorm2(a, 0), 5.0);
  EXPECT_DOUBLE_EQ(RowNorm2(a, 1), 0.0);
  EXPECT_DOUBLE_EQ(RowSum(a, 0), 7.0);
  EXPECT_DOUBLE_EQ(ColSum(a, 1), 4.0);
  Matrix b{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(DotAll(a, b), 7.0);
}

TEST(Ops, RowL2NormalizeMakesUnitRows) {
  Rng rng(23);
  Matrix a = RandomMatrix(10, 6, &rng);
  RowL2NormalizeInPlace(&a);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(RowNorm2(a, i), 1.0, 1e-12);
  }
}

TEST(Ops, RowL2NormalizeSkipsZeroRows) {
  Matrix a(2, 3);
  a(0, 0) = 2.0;
  RowL2NormalizeInPlace(&a);
  EXPECT_NEAR(RowNorm2(a, 0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(RowNorm2(a, 1), 0.0);  // untouched, no NaN
}

TEST(Ops, RowArgMaxBreaksTiesLow) {
  Matrix a{{1.0, 3.0, 3.0}};
  EXPECT_EQ(RowArgMax(a, 0), 1u);
}

TEST(Ops, VectorHelpers) {
  const std::vector<double> x = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(Norm1(x), 7.0);
  EXPECT_DOUBLE_EQ(Dot(x, {1.0, 1.0}), -1.0);
  std::vector<double> y = {1.0, 1.0};
  Axpy(2.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -7.0);
}

// Property sweep: associativity-ish identity (AB)x == A(Bx) on random data.
class MatMulProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatMulProperty, ProductVectorConsistency) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 2 + rng.UniformInt(15);
  const std::size_t k = 2 + rng.UniformInt(15);
  const std::size_t n = 2 + rng.UniformInt(15);
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix b = RandomMatrix(k, n, &rng);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  const auto lhs = MatVec(MatMul(a, b), x);
  const auto rhs = MatVec(a, MatVec(b, x));
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace gcon
