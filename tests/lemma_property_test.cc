// Property tests for the two structural lemmas that the privacy proof of
// Theorem 1 rests on. These are exercised over randomized graphs and edge
// edits, so a bug in the propagation/normalization code that broke the
// sensitivity analysis would be caught here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/datasets.h"
#include "linalg/ops.h"
#include "propagation/appr.h"
#include "propagation/sensitivity.h"
#include "propagation/transition.h"
#include "rng/rng.h"

namespace gcon {
namespace {

Graph RandomGraph(int n, int edges, std::uint64_t seed) {
  DatasetSpec spec = TinySpec();
  spec.num_nodes = n;
  spec.num_undirected_edges = static_cast<std::size_t>(edges);
  Rng rng(seed);
  return GenerateDataset(spec, &rng);
}

Matrix Identity(std::size_t n) {
  Matrix id(n, n);
  for (std::size_t i = 0; i < n; ++i) id(i, i) = 1.0;
  return id;
}

// Dense Ã^m via repeated multiplication.
Matrix DensePower(const Matrix& t, int m) {
  Matrix power = Identity(t.rows());
  for (int i = 0; i < m; ++i) power = MatMul(t, power);
  return power;
}

// ---------------------------------------------------------------------------
// Lemma 1: for the (optionally clipped) transition matrix,
//   (a) every entry of Ã^m / R_m / R_inf is non-negative,
//   (b) every row of Ã^m / R_m / R_inf sums to 1,
//   (c) the i-th column sum is <= max((k_i + 1) p, 1).
// ---------------------------------------------------------------------------

struct Lemma1Case {
  std::uint64_t seed;
  double p;      // off-diagonal clip
  double alpha;  // restart probability for R_m
  int m;         // power / propagation steps
};

class Lemma1Property : public ::testing::TestWithParam<Lemma1Case> {};

TEST_P(Lemma1Property, PowersOfTransition) {
  const Lemma1Case c = GetParam();
  const Graph graph = RandomGraph(40, 110, c.seed);
  const CsrMatrix t = BuildTransition(graph, c.p);
  const Matrix power = DensePower(t.ToDense(), c.m);
  const std::size_t n = power.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(power(i, j), -1e-12) << "negative entry (" << i << "," << j << ")";
      row_sum += power(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-9) << "row " << i;
  }
  for (std::size_t j = 0; j < n; ++j) {
    const double bound = std::max(
        (static_cast<double>(graph.Degree(static_cast<int>(j))) + 1.0) * c.p,
        1.0);
    EXPECT_LE(ColSum(power, j), bound + 1e-9) << "column " << j;
  }
}

TEST_P(Lemma1Property, PropagationMatrixRm) {
  const Lemma1Case c = GetParam();
  const Graph graph = RandomGraph(40, 110, c.seed);
  const CsrMatrix t = BuildTransition(graph, c.p);
  // R_m applied to I materializes R_m itself.
  const Matrix rm = ApprPropagate(t, Identity(t.rows()), c.m, c.alpha);
  const std::size_t n = rm.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(rm(i, j), -1e-12);
      row_sum += rm(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-9);
  }
  for (std::size_t j = 0; j < n; ++j) {
    const double bound = std::max(
        (static_cast<double>(graph.Degree(static_cast<int>(j))) + 1.0) * c.p,
        1.0);
    EXPECT_LE(ColSum(rm, j), bound + 1e-9);
  }
}

TEST_P(Lemma1Property, PropagationMatrixRInfinity) {
  const Lemma1Case c = GetParam();
  const Graph graph = RandomGraph(35, 90, c.seed);
  const CsrMatrix t = BuildTransition(graph, c.p);
  const Matrix rinf = PprPropagate(t, Identity(t.rows()), c.alpha, 1e-12);
  const std::size_t n = rinf.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(rinf(i, j), -1e-12);
      row_sum += rinf(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-8);
  }
  for (std::size_t j = 0; j < n; ++j) {
    const double bound = std::max(
        (static_cast<double>(graph.Degree(static_cast<int>(j))) + 1.0) * c.p,
        1.0);
    EXPECT_LE(ColSum(rinf, j), bound + 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Lemma1Property,
    ::testing::Values(Lemma1Case{1, 0.5, 0.3, 1}, Lemma1Case{2, 0.5, 0.3, 3},
                      Lemma1Case{3, 0.5, 0.6, 6}, Lemma1Case{4, 0.25, 0.4, 2},
                      Lemma1Case{5, 0.25, 0.4, 5}, Lemma1Case{6, 0.1, 0.5, 4},
                      Lemma1Case{7, 0.4, 0.2, 8}, Lemma1Case{8, 0.5, 0.8, 10}));

// ---------------------------------------------------------------------------
// Lemma 2: the closed-form Ψ(Z_m) dominates the empirical ψ(Z_m) for every
// single-edge edit, with unit-norm features.
// ---------------------------------------------------------------------------

struct Lemma2Case {
  std::uint64_t seed;
  double alpha;
  int m;  // >= 0 or kInfiniteSteps
};

class Lemma2Property : public ::testing::TestWithParam<Lemma2Case> {};

Matrix UnitFeatures(const Graph& graph) {
  Matrix x = graph.features();
  RowL2NormalizeInPlace(&x);
  return x;
}

TEST_P(Lemma2Property, EdgeRemovalBoundedByClosedForm) {
  const Lemma2Case c = GetParam();
  Graph graph = RandomGraph(60, 170, c.seed);
  const Matrix x = UnitFeatures(graph);
  const Matrix z = Propagate(BuildTransition(graph), x, c.m, c.alpha);
  const double bound = SensitivityZm(c.m, c.alpha);

  Rng rng(c.seed + 1000);
  const auto edges = graph.EdgeList();
  for (int trial = 0; trial < 8; ++trial) {
    const auto& [u, v] =
        edges[rng.UniformInt(static_cast<std::uint64_t>(edges.size()))];
    ASSERT_TRUE(graph.RemoveEdge(u, v));
    const Matrix z_prime =
        Propagate(BuildTransition(graph), x, c.m, c.alpha);
    ASSERT_TRUE(graph.AddEdge(u, v));  // restore
    const double psi = EmpiricalPsi(z, z_prime);
    EXPECT_LE(psi, bound + 1e-9)
        << "removal of (" << u << "," << v << ") exceeded Lemma 2";
  }
}

TEST_P(Lemma2Property, EdgeAdditionBoundedByClosedForm) {
  const Lemma2Case c = GetParam();
  Graph graph = RandomGraph(60, 170, c.seed + 77);
  const Matrix x = UnitFeatures(graph);
  const Matrix z = Propagate(BuildTransition(graph), x, c.m, c.alpha);
  const double bound = SensitivityZm(c.m, c.alpha);

  Rng rng(c.seed + 2000);
  for (int trial = 0; trial < 8; ++trial) {
    int u = 0, v = 0;
    do {
      u = static_cast<int>(rng.UniformInt(60));
      v = static_cast<int>(rng.UniformInt(60));
    } while (u == v || graph.HasEdge(u, v));
    ASSERT_TRUE(graph.AddEdge(u, v));
    const Matrix z_prime =
        Propagate(BuildTransition(graph), x, c.m, c.alpha);
    ASSERT_TRUE(graph.RemoveEdge(u, v));  // restore
    const double psi = EmpiricalPsi(z, z_prime);
    EXPECT_LE(psi, bound + 1e-9)
        << "addition of (" << u << "," << v << ") exceeded Lemma 2";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Lemma2Property,
    ::testing::Values(Lemma2Case{11, 0.2, 1}, Lemma2Case{12, 0.2, 5},
                      Lemma2Case{13, 0.2, kInfiniteSteps},
                      Lemma2Case{14, 0.4, 2}, Lemma2Case{15, 0.4, 10},
                      Lemma2Case{16, 0.6, 3},
                      Lemma2Case{17, 0.6, kInfiniteSteps},
                      Lemma2Case{18, 0.8, 4}, Lemma2Case{19, 0.8, 20},
                      Lemma2Case{20, 0.5, 0}));

// The concatenated Ψ(Z) (Eq. 26) must likewise dominate the empirical ψ of
// the concatenated features.
TEST(Lemma2Concat, ConcatenationBound) {
  Graph graph = RandomGraph(50, 140, 31);
  Matrix x = UnitFeatures(graph);
  const std::vector<int> steps = {0, 2, kInfiniteSteps};
  const double alpha = 0.4;
  const Matrix z = ConcatPropagate(BuildTransition(graph), x, steps, alpha);
  const double bound = SensitivityZ(steps, alpha);
  Rng rng(32);
  const auto edges = graph.EdgeList();
  for (int trial = 0; trial < 6; ++trial) {
    const auto& [u, v] =
        edges[rng.UniformInt(static_cast<std::uint64_t>(edges.size()))];
    ASSERT_TRUE(graph.RemoveEdge(u, v));
    const Matrix z_prime =
        ConcatPropagate(BuildTransition(graph), x, steps, alpha);
    ASSERT_TRUE(graph.AddEdge(u, v));
    EXPECT_LE(EmpiricalPsi(z, z_prime), bound + 1e-9);
  }
}

// The bound should not be vacuous: on a star graph whose hub loses an edge,
// the empirical psi gets within a constant factor of the closed form.
TEST(Lemma2Tightness, StarGraphApproachesBound) {
  const int n = 20;
  Graph graph(n, 2);
  for (int i = 1; i < n; ++i) graph.AddEdge(0, i);
  // Features: hub opposite to leaves so edits move mass maximally.
  Matrix x(static_cast<std::size_t>(n), 2);
  x(0, 0) = 1.0;
  for (int i = 1; i < n; ++i) x(static_cast<std::size_t>(i), 1) = 1.0;

  const double alpha = 0.3;
  const int m = 2;
  const Matrix z = Propagate(BuildTransition(graph), x, m, alpha);
  ASSERT_TRUE(graph.RemoveEdge(0, 1));
  const Matrix z_prime = Propagate(BuildTransition(graph), x, m, alpha);
  const double psi = EmpiricalPsi(z, z_prime);
  const double bound = SensitivityZm(m, alpha);
  EXPECT_LE(psi, bound + 1e-9);
  EXPECT_GT(psi, 0.05 * bound) << "bound is wildly loose on the star graph";
}

}  // namespace
}  // namespace gcon
