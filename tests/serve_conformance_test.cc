// Wire-protocol conformance: golden newline-JSON request/response
// transcripts replayed against the real TCP front end, byte-compared
// (memcmp via std::string ==) so the wire format can never drift silently.
// Covers the valid single-model/multi-model/inductive paths, unknown-model,
// malformed-JSON (including id recovery when the defect precedes the id
// key), feature-length-mismatch, oversized lines, the admin verbs, and
// response-format locks on exactly-representable doubles.
//
// On a transcript mismatch the test appends a "request / golden / actual"
// block to serve_conformance_failure.txt in the working directory — CI
// uploads it so a drift is diagnosable from the artifact alone.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <optional>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <locale>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.h"
#include "graph/datasets.h"
#include "linalg/ops.h"
#include "nn/mlp.h"
#include "rng/rng.h"
#include "serve_test_util.h"
#include "serve/fault_injection.h"
#include "serve/inference_session.h"
#include "serve/serve_error.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace gcon {
namespace {

constexpr const char* kFailureLog = "serve_conformance_failure.txt";

using serve_test::AugmentGraph;
using serve_test::SyntheticArtifact;

/// Blocking line-oriented client over a raw socket — the two-lines-of-any-
/// language client the wire format promises, in test form.
class WireClient {
 public:
  explicit WireClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    GCON_ASSERT_OK(fd_ >= 0, "socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    GCON_ASSERT_OK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) == 0,
                   "connect");
  }
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed";
      sent += static_cast<std::size_t>(n);
    }
  }
  void SendLine(const std::string& line) { Send(line + "\n"); }

  /// Next response line (without the newline); "" on EOF.
  std::string ReadLine() {
    for (;;) {
      const std::size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        const std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool AtEof() {
    if (!buffer_.empty()) return false;
    char byte;
    return ::recv(fd_, &byte, 1, 0) <= 0;
  }

 private:
  static void GCON_ASSERT_OK(bool ok, const char* what) {
    if (!ok) {
      FAIL() << what << ": " << std::strerror(errno);
    }
  }
  int fd_ = -1;
  std::string buffer_;
};

/// One golden exchange: the request line and the exact expected response.
struct GoldenCase {
  std::string name;
  std::string request;
  std::string expected;
};

void RecordMismatch(const GoldenCase& c, const std::string& actual) {
  std::ofstream log(kFailureLog, std::ios::app);
  log << "case:    " << c.name << "\nrequest: " << c.request
      << "\ngolden:  " << c.expected << "\nactual:  " << actual << "\n\n";
}

void ReplayGoldens(WireClient* client, const std::vector<GoldenCase>& cases) {
  for (const GoldenCase& c : cases) {
    client->SendLine(c.request);
    const std::string actual = client->ReadLine();
    if (actual != c.expected) RecordMismatch(c, actual);
    EXPECT_EQ(actual, c.expected) << c.name << " (diff appended to "
                                  << kFailureLog << ")";
  }
}

/// The expected wire line for a query answered by row `row` of `logits`.
std::string GoldenResponse(std::int64_t id, int node, const Matrix& logits,
                           std::size_t row) {
  ServeResponse response;
  response.id = id;
  response.node = node;
  response.label = static_cast<int>(RowArgMax(logits, row));
  response.logits = logits.RowCopy(row);
  return FormatWireResponse(response);
}

/// Server fixture: two synthetic models ("default", "alt") over the tiny
/// graph behind the real TCP front end on an ephemeral port.
class ServeConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = serve_test::TestGraph(9);
    default_artifact_ = SyntheticArtifact(graph_, {0, 2}, 8, 3);
    alt_artifact_ = SyntheticArtifact(graph_, {2}, 8, 101);
    offline_default_ = default_artifact_->Infer(graph_);
    offline_alt_ = alt_artifact_->Infer(graph_);

    std::vector<ModelRouter::NamedModel> models;
    models.push_back({"default", InferenceSession(*default_artifact_, graph_)});
    models.push_back({"alt", InferenceSession(*alt_artifact_, graph_)});
    ServeOptions options;
    options.threads = 2;
    options.max_batch = 8;
    // Bounded queue so the 'overloaded' rejection golden can quote a fixed
    // max_queue; large enough that no conformance stream ever fills it.
    options.max_queue = 64;
    FaultInjector::Global().Reset();
    server_ = std::make_unique<InferenceServer>(std::move(models), options);
    listener_ = std::thread([this] {
      RunTcpServer(server_.get(), /*port=*/0, &shutdown_, &port_);
    });
    while (port_.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void TearDown() override {
    shutdown_.store(true, std::memory_order_release);
    listener_.join();
    server_.reset();
    FaultInjector::Global().Reset();
  }

  int port() const { return port_.load(std::memory_order_acquire); }

  Graph graph_;
  std::optional<GconArtifact> default_artifact_;
  std::optional<GconArtifact> alt_artifact_;
  Matrix offline_default_;
  Matrix offline_alt_;
  std::unique_ptr<InferenceServer> server_;
  std::thread listener_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> port_{0};
};

// --- Response-format locks (pure, no server) -------------------------------

TEST(WireFormatLock, ResponseLineIsByteStable) {
  // Exactly-representable doubles print without rounding, so this literal
  // is the wire format — a byte of drift (key order, spacing, precision
  // policy) fails the memcmp.
  ServeResponse response;
  response.id = 3;
  response.node = 1;
  response.label = 0;
  response.logits = {0.5, -0.25, 2};
  EXPECT_EQ(FormatWireResponse(response),
            "{\"id\": 3, \"node\": 1, \"label\": 0, "
            "\"logits\": [0.5, -0.25, 2]}");
}

TEST(WireFormatLock, ErrorLineIsByteStableAndEscaped) {
  EXPECT_EQ(FormatWireError(7, "bad \"key\" with \\ and\nnewline"),
            "{\"id\": 7, \"error\": \"bad \\\"key\\\" with \\\\ and "
            "newline\"}");
}

// --- Golden transcripts over TCP -------------------------------------------

TEST_F(ServeConformanceTest, ValidQueriesMatchOfflineGoldens) {
  WireClient client(port());
  std::vector<GoldenCase> cases;
  cases.push_back({"default-model node query", "{\"id\": 1, \"node\": 12}",
                   GoldenResponse(1, 12, offline_default_, 12)});
  cases.push_back({"explicit default route",
                   "{\"id\": 2, \"model\": \"default\", \"node\": 12}",
                   GoldenResponse(2, 12, offline_default_, 12)});
  cases.push_back({"routed to alt model",
                   "{\"id\": 3, \"model\": \"alt\", \"node\": 12}",
                   GoldenResponse(3, 12, offline_alt_, 12)});
  cases.push_back({"private edge list ignored junk",
                   "{\"id\": 4, \"node\": 0, \"edges\": []}",
                   [&] {
                     ServeRequest request;
                     request.id = 4;
                     request.node = 0;
                     request.has_edges = true;
                     const InferenceSession session(*default_artifact_,
                                                    graph_);
                     ServeResponse response;
                     response.id = 4;
                     response.node = 0;
                     response.logits = session.QueryLogits(request);
                     Matrix one(1, response.logits.size());
                     std::copy(response.logits.begin(),
                               response.logits.end(), one.RowPtr(0));
                     response.label = static_cast<int>(RowArgMax(one, 0));
                     return FormatWireResponse(response);
                   }()});
  ReplayGoldens(&client, cases);
}

TEST_F(ServeConformanceTest, InductiveQueryMatchesAugmentedOfflineGolden) {
  // The feature vector is written with exactly-representable values so the
  // request line itself is byte-stable too.
  const int d0 = graph_.feature_dim();
  std::vector<double> features(static_cast<std::size_t>(d0), 0.0);
  features[0] = 0.5;
  features[1] = 1.0;
  features[2] = 0.25;
  std::ostringstream request;
  request << "{\"id\": 21, \"features\": [";
  for (int j = 0; j < d0; ++j) {
    request << (j == 0 ? "" : ", ") << features[static_cast<std::size_t>(j)];
  }
  request << "], \"edges\": [0, 5]}";

  // Offline side: the shared augmentation helper appends the query node
  // at index n — the same construction every serving suite compares
  // against.
  const int n = graph_.num_nodes();
  const Matrix offline =
      default_artifact_->Infer(AugmentGraph(graph_, features, {0, 5}));

  ServeResponse expected;
  expected.id = 21;
  expected.node = -1;
  expected.label = static_cast<int>(
      RowArgMax(offline, static_cast<std::size_t>(n)));
  expected.logits = offline.RowCopy(static_cast<std::size_t>(n));

  WireClient client(port());
  ReplayGoldens(&client, {{"inductive feature-carrying query", request.str(),
                           FormatWireResponse(expected)}});
}

TEST_F(ServeConformanceTest, ErrorGoldensIncludingRecoveredIds) {
  WireClient client(port());
  std::vector<GoldenCase> cases;
  cases.push_back({"unknown model",
                   "{\"id\": 5, \"model\": \"nope\", \"node\": 1}",
                   "{\"id\": 5, \"error\": \"unknown model 'nope' "
                   "(serving: default, alt)\"}"});
  cases.push_back({"unknown key", "{\"id\": 9, \"nodes\": 1}",
                   "{\"id\": 9, \"error\": \"unknown key 'nodes' (want id, "
                   "node, edges, features, model, deadline_us, path, or "
                   "cmd)\"}"});
  // Regression (the id used to be dropped): the defect precedes the "id"
  // key, but the error line must still echo id 12 so a pipelined client
  // can correlate the failure.
  cases.push_back({"id recovered past the defect",
                   "{\"nodes\": 1, \"id\": 12}",
                   "{\"id\": 12, \"error\": \"unknown key 'nodes' (want id, "
                   "node, edges, features, model, deadline_us, path, or "
                   "cmd)\"}"});
  cases.push_back({"not an object", "predict 5",
                   "{\"id\": 0, \"error\": \"request must be a {...} "
                   "object\"}"});
  cases.push_back({"empty object", "{}",
                   "{\"id\": 0, \"error\": \"query needs a 'node' or "
                   "'features' key\"}"});
  cases.push_back({"trailing garbage", "{\"id\": 2, \"node\": 1} trailing",
                   "{\"id\": 2, \"error\": \"trailing garbage after the "
                   "request object\"}"});
  cases.push_back({"feature length mismatch",
                   "{\"id\": 4, \"features\": [1, 2, 3]}",
                   "{\"id\": 4, \"error\": \"query features have 3 values "
                   "but the encoder expects " +
                       std::to_string(graph_.feature_dim()) + "\"}"});
  cases.push_back({"node out of range", "{\"id\": 6, \"node\": 99999}",
                   "{\"id\": 6, \"error\": \"node 99999 out of range [0, " +
                       std::to_string(graph_.num_nodes()) + ")\"}"});
  // -1 is the "no node" sentinel; letting a negative through would make
  // {"node": -1, "features": [...]} dodge the either/or validation, so
  // the parser rejects it outright.
  cases.push_back({"negative node rejected at parse",
                   "{\"id\": 7, \"node\": -1, \"features\": [1]}",
                   "{\"id\": 7, \"error\": \"key 'node' wants a "
                   "non-negative integer\"}"});
  cases.push_back({"node and features together",
                   "{\"id\": 8, \"node\": 1, \"features\": [1]}",
                   "{\"id\": 8, \"error\": \"a query carries either 'node' "
                   "or 'features', not both\"}"});
  cases.push_back({"unknown cmd", "{\"id\": 3, \"cmd\": \"reboot\"}",
                   "{\"id\": 3, \"error\": \"unknown cmd 'reboot' (want "
                   "stats, list_models, publish, budget, drain, metrics, "
                   "trace, or quit)\"}"});
  cases.push_back({"non-positive deadline",
                   "{\"id\": 13, \"node\": 1, \"deadline_us\": 0}",
                   "{\"id\": 13, \"error\": \"key 'deadline_us' wants a "
                   "positive integer\"}"});
  cases.push_back({"path without publish",
                   "{\"id\": 14, \"node\": 1, \"path\": \"/tmp/x\"}",
                   "{\"id\": 14, \"error\": \"key 'path' is only valid with "
                   "cmd 'publish'\"}"});
  ReplayGoldens(&client, cases);
}

TEST_F(ServeConformanceTest, AdminVerbGoldens) {
  WireClient client(port());
  std::ostringstream list_models;
  list_models << "{\"models\": [{\"name\": \"default\", \"nodes\": "
              << graph_.num_nodes() << ", \"classes\": "
              << graph_.num_classes() << ", \"features\": "
              << graph_.feature_dim()
              << ", \"per_query\": true}, {\"name\": \"alt\", \"nodes\": "
              << graph_.num_nodes() << ", \"classes\": "
              << graph_.num_classes() << ", \"features\": "
              << graph_.feature_dim()
              << ", \"per_query\": true}], \"default\": \"default\"}";
  ReplayGoldens(&client, {{"list_models", "{\"cmd\": \"list_models\"}",
                           list_models.str()}});

  // Stats carries timings — not goldenable byte-for-byte, but its shape is
  // locked: aggregate counters first, then the per-model array.
  client.SendLine("{\"id\": 1, \"node\": 0}");
  client.ReadLine();
  client.SendLine("{\"cmd\": \"stats\"}");
  const std::string stats = client.ReadLine();
  EXPECT_EQ(stats.rfind("{\"queries\": ", 0), 0u) << stats;
  EXPECT_NE(stats.find("\"models\": [{\"name\": \"default\", "),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("{\"name\": \"alt\", "), std::string::npos) << stats;
}

TEST_F(ServeConformanceTest, PipelinedErrorFlushesAfterEarlierResponses) {
  // A malformed line pipelined behind a valid query must not jump the
  // queue: the valid response flushes first, then the error line.
  WireClient client(port());
  client.Send("{\"id\": 40, \"node\": 7}\n{\"id\": 41, \"nodes\": 7}\n");
  EXPECT_EQ(client.ReadLine(), GoldenResponse(40, 7, offline_default_, 7));
  EXPECT_EQ(client.ReadLine(),
            "{\"id\": 41, \"error\": \"unknown key 'nodes' (want id, node, "
            "edges, features, model, deadline_us, path, or cmd)\"}");
}

TEST_F(ServeConformanceTest, OversizedLineGetsErrorAndDisconnect) {
  WireClient client(port());
  // An id early in the line is recoverable even though the line never
  // completes; the server reports the cap and hangs up.
  std::string huge = "{\"id\": 77, \"features\": [";
  huge.append(kMaxWireLineBytes + 1024, '1');
  client.Send(huge);  // no newline — the cap must trip on the partial line
  EXPECT_EQ(client.ReadLine(),
            "{\"id\": 77, \"error\": \"oversized request line (limit " +
                std::to_string(kMaxWireLineBytes) + " bytes)\"}");
  EXPECT_TRUE(client.AtEof());
}

TEST_F(ServeConformanceTest, QuitClosesTheConnection) {
  WireClient client(port());
  client.SendLine("{\"id\": 1, \"node\": 0}");
  EXPECT_EQ(client.ReadLine(), GoldenResponse(1, 0, offline_default_, 0));
  client.SendLine("{\"cmd\": \"quit\"}");
  EXPECT_TRUE(client.AtEof());
}

// --- Coded rejection goldens (overload / deadline / draining) --------------

TEST(WireFormatLock, CodedErrorLineIsByteStable) {
  EXPECT_EQ(FormatWireError(7, ServeErrorCode::kOverloaded, "full"),
            "{\"id\": 7, \"code\": \"overloaded\", \"error\": \"full\"}");
  EXPECT_EQ(
      FormatWireError(8, ServeErrorCode::kDeadlineExceeded, "late"),
      "{\"id\": 8, \"code\": \"deadline_exceeded\", \"error\": \"late\"}");
  EXPECT_EQ(FormatWireError(9, ServeErrorCode::kDraining, "bye"),
            "{\"id\": 9, \"code\": \"draining\", \"error\": \"bye\"}");
  EXPECT_EQ(
      FormatWireError(10, ServeErrorCode::kBudgetExhausted, "cap"),
      "{\"id\": 10, \"code\": \"budget_exhausted\", \"error\": \"cap\"}");
}

TEST_F(ServeConformanceTest, OverloadedRejectionGoldenAndCleanRetry) {
  WireClient client(port());
  // The injected queue-full makes the admission path deterministic; the
  // golden locks the exact coded line a throttled client must parse.
  FaultInjector::Global().Arm(Fault::kQueueFull, 1);
  ReplayGoldens(
      &client,
      {{"overloaded rejection", "{\"id\": 50, \"node\": 2}",
        "{\"id\": 50, \"code\": \"overloaded\", \"error\": \"model queue "
        "full (max_queue=64); retry later\"}"},
       // The rejection is per-submission, not per-connection: the retry on
       // the same socket is admitted and served bitwise.
       {"retry after overload", "{\"id\": 50, \"node\": 2}",
        GoldenResponse(50, 2, offline_default_, 2)}});
  // The rejection shows up in the stats counters a monitor scrapes.
  client.SendLine("{\"cmd\": \"stats\"}");
  const std::string stats = client.ReadLine();
  EXPECT_NE(stats.find("\"rejected_overload\": 1"), std::string::npos)
      << stats;
}

TEST_F(ServeConformanceTest, DeadlineExceededRejectionGolden) {
  WireClient client(port());
  // The slow-handler fault sleeps after the batch is taken and before the
  // deadline check, so a 1us deadline is deterministically expired.
  FaultInjector::Global().Arm(Fault::kSlowHandler, 1);
  ReplayGoldens(
      &client,
      {{"deadline exceeded in queue",
        "{\"id\": 51, \"node\": 3, \"deadline_us\": 1}",
        "{\"id\": 51, \"code\": \"deadline_exceeded\", \"error\": \"query "
        "deadline expired before execution\"}"},
       // A roomy deadline changes nothing about the served bits.
       {"roomy deadline serves normally",
        "{\"id\": 52, \"node\": 3, \"deadline_us\": 30000000}",
        GoldenResponse(52, 3, offline_default_, 3)}});
}

TEST_F(ServeConformanceTest, DrainGoldensThenRejectsWithCode) {
  WireClient client(port());
  ReplayGoldens(
      &client,
      {{"query before drain", "{\"id\": 60, \"node\": 1}",
        GoldenResponse(60, 1, offline_default_, 1)},
       {"drain verb", "{\"cmd\": \"drain\"}", "{\"draining\": true}"},
       {"query after drain is refused with the coded line",
        "{\"id\": 61, \"node\": 1}",
        "{\"id\": 61, \"code\": \"draining\", \"error\": \"server draining; "
        "not accepting new queries\"}"}});
}

// --- Publish (atomic hot-swap) goldens -------------------------------------

TEST_F(ServeConformanceTest, PublishGoldensAndSwappedModelServesNewBits) {
  // A third artifact on disk — the thing an offline training run hands the
  // live server.
  const GconArtifact next = SyntheticArtifact(graph_, {0, 2}, 8, 202);
  const Matrix offline_next = next.Infer(graph_);
  const std::string path = "/tmp/gcon_conformance_publish.model";
  SaveModel(next, path);

  WireClient client(port());
  std::ostringstream published;
  // Construction charged alt's artifact epsilon (1.0) against the ledger;
  // this publish charges another 1.0, so the release's own epsilon is 1 and
  // the model's cumulative total after it is 2.
  published << "{\"published\": \"alt\", \"nodes\": " << graph_.num_nodes()
            << ", \"classes\": " << graph_.num_classes()
            << ", \"features\": " << graph_.feature_dim()
            << ", \"per_query\": true, \"epsilon\": 1, "
            << "\"epsilon_total\": 2}";
  std::vector<GoldenCase> cases;
  cases.push_back({"alt before swap",
                   "{\"id\": 70, \"model\": \"alt\", \"node\": 12}",
                   GoldenResponse(70, 12, offline_alt_, 12)});
  cases.push_back({"publish over alt",
                   "{\"id\": 71, \"cmd\": \"publish\", \"model\": \"alt\", "
                   "\"path\": \"" + path + "\"}",
                   published.str()});
  cases.push_back({"alt after swap serves the new artifact's bits",
                   "{\"id\": 72, \"model\": \"alt\", \"node\": 12}",
                   GoldenResponse(72, 12, offline_next, 12)});
  // The default model is untouched by the alt swap.
  cases.push_back({"default unaffected", "{\"id\": 73, \"node\": 12}",
                   GoldenResponse(73, 12, offline_default_, 12)});
  cases.push_back({"publish unknown model",
                   "{\"id\": 74, \"cmd\": \"publish\", \"model\": \"nope\", "
                   "\"path\": \"" + path + "\"}",
                   "{\"id\": 74, \"error\": \"unknown model 'nope' "
                   "(serving: default, alt)\"}"});
  cases.push_back({"publish without path",
                   "{\"id\": 75, \"cmd\": \"publish\", \"model\": \"alt\"}",
                   "{\"id\": 75, \"error\": \"cmd 'publish' needs a 'path' "
                   "naming the artifact file\"}"});
  ReplayGoldens(&client, cases);
  std::remove(path.c_str());
}

TEST_F(ServeConformanceTest, HotSwapDuringLiveStreamDropsNothing) {
  // The tentpole acceptance scenario: a client streams pipelined queries
  // while a publish lands on a second connection mid-stream. Every one of
  // the streamed queries must be answered (zero drops), and every answer
  // must be bitwise EITHER the old version's offline row or the new one's
  // — a torn swap would produce a row matching neither.
  const GconArtifact next = SyntheticArtifact(graph_, {2}, 8, 203);
  const Matrix offline_next = next.Infer(graph_);
  const std::string path = "/tmp/gcon_conformance_swap.model";
  SaveModel(next, path);

  // Stays under the fixture's max_queue=64 so admission control (tested
  // elsewhere) cannot shed part of this stream — here every query must be
  // accepted, or the zero-drop assertion is vacuous.
  constexpr int kQueries = 60;
  const int n = graph_.num_nodes();
  WireClient streamer(port());
  std::ostringstream burst;
  for (int q = 0; q < kQueries; ++q) {
    burst << "{\"id\": " << (100 + q) << ", \"model\": \"alt\", \"node\": "
          << (q % n) << "}\n";
  }
  streamer.Send(burst.str());

  WireClient publisher(port());
  publisher.SendLine("{\"cmd\": \"publish\", \"model\": \"alt\", \"path\": "
                     "\"" + path + "\"}");

  int from_old = 0;
  int from_new = 0;
  for (int q = 0; q < kQueries; ++q) {
    const std::string line = streamer.ReadLine();
    ASSERT_FALSE(line.empty()) << "response " << q
                               << " dropped across the swap window";
    const int node = q % n;
    const std::string old_golden =
        GoldenResponse(100 + q, node, offline_alt_, node);
    const std::string new_golden =
        GoldenResponse(100 + q, node, offline_next, node);
    if (line == old_golden) {
      ++from_old;
    } else if (line == new_golden) {
      ++from_new;
    } else {
      RecordMismatch({"hot-swap stream", "(streamed)", old_golden}, line);
      ADD_FAILURE() << "response " << q
                    << " matches neither version bitwise: " << line;
    }
  }
  EXPECT_EQ(from_old + from_new, kQueries);
  // The publish response confirms the swap itself succeeded...
  EXPECT_EQ(publisher.ReadLine().rfind("{\"published\": \"alt\", ", 0), 0u);
  // ...and once it has, a fresh query is the new version, bitwise.
  streamer.SendLine("{\"id\": 999, \"model\": \"alt\", \"node\": 0}");
  EXPECT_EQ(streamer.ReadLine(),
            GoldenResponse(999, 0, offline_next, 0));
  std::remove(path.c_str());
}

// --- Budget verb + enforcement goldens -------------------------------------

TEST_F(ServeConformanceTest, BudgetVerbGoldenTracksCumulativeSpend) {
  // Construction charged each model's artifact epsilon (1.0, delta 1e-5)
  // against the server's in-memory ledger. The golden locks the response's
  // field order and number-formatting policy; publish counts and doubles
  // are streamed through the same classic-locale precision-17 formatter
  // the server uses, so a formatting-policy drift fails the byte compare.
  const auto budget_golden = [](double default_eps, int default_pubs,
                                double alt_eps, int alt_pubs) {
    std::ostringstream out;
    out.imbue(std::locale::classic());
    out.precision(17);
    out << "{\"budget\": [{\"model\": \"default\", \"epsilon\": "
        << default_eps << ", \"delta\": " << default_pubs * 1e-5
        << ", \"publishes\": " << default_pubs
        << ", \"cap\": 0}, {\"model\": \"alt\", \"epsilon\": " << alt_eps
        << ", \"delta\": " << alt_pubs * 1e-5
        << ", \"publishes\": " << alt_pubs
        << ", \"cap\": 0}], \"ledger\": \"\", \"persistent\": false}";
    return out.str();
  };

  WireClient client(port());
  ReplayGoldens(&client, {{"budget after construction",
                           "{\"cmd\": \"budget\"}",
                           budget_golden(1.0, 1, 1.0, 1)}});

  // A publish over alt adds its release to alt's cumulative spend; the
  // default model's row is untouched.
  const GconArtifact next = SyntheticArtifact(graph_, {2}, 8, 305);
  const std::string path = "/tmp/gcon_conformance_budget.model";
  SaveModel(next, path);
  client.SendLine("{\"id\": 90, \"cmd\": \"publish\", \"model\": \"alt\", "
                  "\"path\": \"" + path + "\"}");
  ASSERT_EQ(client.ReadLine().rfind("{\"published\": \"alt\", ", 0), 0u);
  ReplayGoldens(&client, {{"budget after publish", "{\"cmd\": \"budget\"}",
                           budget_golden(1.0, 1, 2.0, 2)}});
  std::remove(path.c_str());
}

TEST(ServeBudgetEnforcementConformance, OverCapPublishRefusedOldBitsServe) {
  // A capped server: construction spends 1.0 of the 1.5 cap, so the next
  // 1.0-epsilon publish must be refused with the structured coded line —
  // and the refusal must leave the old artifact serving bitwise with the
  // budget unspent.
  const Graph graph = serve_test::TestGraph(9);
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 3);
  const Matrix offline = artifact.Infer(graph);
  std::vector<ModelRouter::NamedModel> models;
  models.push_back({"default", InferenceSession(artifact, graph)});
  ServeOptions options;
  options.threads = 1;
  options.max_batch = 4;
  options.budget_cap = 1.5;
  InferenceServer server(std::move(models), options);
  std::atomic<bool> shutdown{false};
  std::atomic<int> port{0};
  std::thread listener(
      [&] { RunTcpServer(&server, /*port=*/0, &shutdown, &port); });
  while (port.load(std::memory_order_acquire) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const GconArtifact next = SyntheticArtifact(graph, {2}, 8, 404);
  const std::string path = "/tmp/gcon_conformance_overcap.model";
  SaveModel(next, path);

  WireClient client(port.load(std::memory_order_acquire));
  std::vector<GoldenCase> cases;
  cases.push_back({"over-cap publish refused with the coded line",
                   "{\"id\": 80, \"cmd\": \"publish\", \"model\": "
                   "\"default\", \"path\": \"" + path + "\"}",
                   "{\"id\": 80, \"code\": \"budget_exhausted\", \"error\": "
                   "\"release of model 'default' refused: cumulative epsilon "
                   "1 + 1 exceeds budget cap 1.5\"}"});
  cases.push_back({"old bits still serve after the refusal",
                   "{\"id\": 81, \"node\": 12}",
                   GoldenResponse(81, 12, offline, 12)});
  cases.push_back({"refused publish spent nothing",
                   "{\"cmd\": \"budget\"}",
                   "{\"budget\": [{\"model\": \"default\", \"epsilon\": 1, "
                   "\"delta\": 1.0000000000000001e-05, \"publishes\": 1, "
                   "\"cap\": 1.5, \"remaining\": 0.5}], \"ledger\": \"\", "
                   "\"persistent\": false}"});
  ReplayGoldens(&client, cases);

  shutdown.store(true, std::memory_order_release);
  listener.join();
  std::remove(path.c_str());
}

// --- Number parsing: range policy + locale independence --------------------

/// Parses a query line and exposes its features (the double-parsing path).
bool ParseFeatures(const std::string& line, ServeRequest* request) {
  WireCommand command;
  std::string error;
  return ParseWireRequest(line, &command, request, &error);
}

TEST(WireParseLock, RangePolicyMatchesStrtodEra) {
  // The std::from_chars migration must not move the goalposts the strtod
  // era set: subnormals parse exactly, magnitudes below the smallest
  // subnormal are values (signed zero), not defects; only overflow — a
  // magnitude no double can hold — rejects. from_chars reports both range
  // failures with one errc, so this lock is what keeps the
  // underflow/overflow split honest.
  ServeRequest request;
  ASSERT_TRUE(ParseFeatures("{\"id\": 1, \"features\": [1e-310]}", &request));
  EXPECT_EQ(request.features[0], 1e-310);

  ASSERT_TRUE(ParseFeatures("{\"id\": 1, \"features\": [1e-999, -1e-999]}",
                            &request));
  EXPECT_EQ(request.features[0], 0.0);
  EXPECT_FALSE(std::signbit(request.features[0]));
  EXPECT_EQ(request.features[1], 0.0);
  EXPECT_TRUE(std::signbit(request.features[1]));

  // Underflow spelled without an exponent underflows all the same.
  const std::string tiny =
      "{\"id\": 1, \"features\": [0." + std::string(400, '0') + "1]}";
  ASSERT_TRUE(ParseFeatures(tiny, &request));
  EXPECT_EQ(request.features[0], 0.0);

  EXPECT_FALSE(ParseFeatures("{\"id\": 1, \"features\": [1e999]}", &request));
  EXPECT_FALSE(ParseFeatures("{\"id\": 1, \"features\": [-1e999]}", &request));

  // strtod-era spellings stay valid: explicit leading '+', '+' exponents.
  ASSERT_TRUE(
      ParseFeatures("{\"id\": 1, \"features\": [+1.5, 1e+2]}", &request));
  EXPECT_EQ(request.features[0], 1.5);
  EXPECT_EQ(request.features[1], 100.0);

  // Half-parses still fail whole.
  EXPECT_FALSE(ParseFeatures("{\"id\": 1, \"features\": [1e]}", &request));
  EXPECT_FALSE(ParseFeatures("{\"id\": 1, \"features\": [.]}", &request));
}

/// Flips the global C++ locale (which also flips the C locale glibc's
/// strtod consulted) for one scope.
class ScopedGlobalLocale {
 public:
  explicit ScopedGlobalLocale(const std::locale& loc)
      : previous_(std::locale::global(loc)) {}
  ~ScopedGlobalLocale() { std::locale::global(previous_); }

 private:
  std::locale previous_;
};

TEST(WireLocale, ParsingAndFormattingIgnoreCommaDecimalLocale) {
  // The defect this guards against: strtod honors LC_NUMERIC, so a host
  // process in a de_DE-style locale (decimal comma) would stop parsing
  // "0.5" at the '.' and reject the line, and un-imbued ostringstreams
  // would print "0,5" back. from_chars + classic-imbued formatters make
  // the wire locale-invariant; this test proves it by flipping the global
  // locale and byte-comparing both directions against the C-locale bytes.
  const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                              "fr_FR.UTF-8", "fr_FR.utf8", "it_IT.UTF-8"};
  std::optional<std::locale> comma_locale;
  for (const char* name : candidates) {
    try {
      comma_locale.emplace(name);
      break;
    } catch (const std::runtime_error&) {
      // not installed on this host; try the next spelling
    }
  }
  if (!comma_locale.has_value()) {
    GTEST_SKIP() << "no comma-decimal locale installed on this host";
  }

  const std::string request_line =
      "{\"id\": 7, \"features\": [0.5, -2.25e1, 1234.0625]}";
  ServeResponse response;
  response.id = 7;
  response.node = 1234567;  // integer grouping would corrupt this
  response.label = 1;
  response.logits = {0.5, -22.5, 1234.0625};

  ServeRequest reference_request;
  ASSERT_TRUE(ParseFeatures(request_line, &reference_request));
  const std::string reference_response = FormatWireResponse(response);
  const std::string reference_error =
      FormatWireError(1234567, ServeErrorCode::kOverloaded, "full");

  {
    ScopedGlobalLocale flipped(*comma_locale);
    ServeRequest request;
    ASSERT_TRUE(ParseFeatures(request_line, &request))
        << "comma-decimal locale broke feature parsing";
    ASSERT_EQ(request.features.size(), reference_request.features.size());
    for (std::size_t j = 0; j < request.features.size(); ++j) {
      EXPECT_EQ(request.features[j], reference_request.features[j]);
    }
    EXPECT_EQ(FormatWireResponse(response), reference_response);
    EXPECT_EQ(FormatWireError(1234567, ServeErrorCode::kOverloaded, "full"),
              reference_error);
  }
}

}  // namespace
}  // namespace gcon
