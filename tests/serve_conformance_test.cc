// Wire-protocol conformance: golden newline-JSON request/response
// transcripts replayed against the real TCP front end, byte-compared
// (memcmp via std::string ==) so the wire format can never drift silently.
// Covers the valid single-model/multi-model/inductive paths, unknown-model,
// malformed-JSON (including id recovery when the defect precedes the id
// key), feature-length-mismatch, oversized lines, the admin verbs, and
// response-format locks on exactly-representable doubles.
//
// On a transcript mismatch the test appends a "request / golden / actual"
// block to serve_conformance_failure.txt in the working directory — CI
// uploads it so a drift is diagnosable from the artifact alone.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <optional>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.h"
#include "graph/datasets.h"
#include "linalg/ops.h"
#include "nn/mlp.h"
#include "rng/rng.h"
#include "serve_test_util.h"
#include "serve/inference_session.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace gcon {
namespace {

constexpr const char* kFailureLog = "serve_conformance_failure.txt";

using serve_test::AugmentGraph;
using serve_test::SyntheticArtifact;

/// Blocking line-oriented client over a raw socket — the two-lines-of-any-
/// language client the wire format promises, in test form.
class WireClient {
 public:
  explicit WireClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    GCON_ASSERT_OK(fd_ >= 0, "socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    GCON_ASSERT_OK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) == 0,
                   "connect");
  }
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed";
      sent += static_cast<std::size_t>(n);
    }
  }
  void SendLine(const std::string& line) { Send(line + "\n"); }

  /// Next response line (without the newline); "" on EOF.
  std::string ReadLine() {
    for (;;) {
      const std::size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        const std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool AtEof() {
    if (!buffer_.empty()) return false;
    char byte;
    return ::recv(fd_, &byte, 1, 0) <= 0;
  }

 private:
  static void GCON_ASSERT_OK(bool ok, const char* what) {
    if (!ok) {
      FAIL() << what << ": " << std::strerror(errno);
    }
  }
  int fd_ = -1;
  std::string buffer_;
};

/// One golden exchange: the request line and the exact expected response.
struct GoldenCase {
  std::string name;
  std::string request;
  std::string expected;
};

void RecordMismatch(const GoldenCase& c, const std::string& actual) {
  std::ofstream log(kFailureLog, std::ios::app);
  log << "case:    " << c.name << "\nrequest: " << c.request
      << "\ngolden:  " << c.expected << "\nactual:  " << actual << "\n\n";
}

void ReplayGoldens(WireClient* client, const std::vector<GoldenCase>& cases) {
  for (const GoldenCase& c : cases) {
    client->SendLine(c.request);
    const std::string actual = client->ReadLine();
    if (actual != c.expected) RecordMismatch(c, actual);
    EXPECT_EQ(actual, c.expected) << c.name << " (diff appended to "
                                  << kFailureLog << ")";
  }
}

/// The expected wire line for a query answered by row `row` of `logits`.
std::string GoldenResponse(std::int64_t id, int node, const Matrix& logits,
                           std::size_t row) {
  ServeResponse response;
  response.id = id;
  response.node = node;
  response.label = static_cast<int>(RowArgMax(logits, row));
  response.logits = logits.RowCopy(row);
  return FormatWireResponse(response);
}

/// Server fixture: two synthetic models ("default", "alt") over the tiny
/// graph behind the real TCP front end on an ephemeral port.
class ServeConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = serve_test::TestGraph(9);
    default_artifact_ = SyntheticArtifact(graph_, {0, 2}, 8, 3);
    alt_artifact_ = SyntheticArtifact(graph_, {2}, 8, 101);
    offline_default_ = default_artifact_->Infer(graph_);
    offline_alt_ = alt_artifact_->Infer(graph_);

    std::vector<ModelRouter::NamedModel> models;
    models.push_back({"default", InferenceSession(*default_artifact_, graph_)});
    models.push_back({"alt", InferenceSession(*alt_artifact_, graph_)});
    ServeOptions options;
    options.threads = 2;
    options.max_batch = 8;
    server_ = std::make_unique<InferenceServer>(std::move(models), options);
    listener_ = std::thread([this] {
      RunTcpServer(server_.get(), /*port=*/0, &shutdown_, &port_);
    });
    while (port_.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void TearDown() override {
    shutdown_.store(true, std::memory_order_release);
    listener_.join();
    server_.reset();
  }

  int port() const { return port_.load(std::memory_order_acquire); }

  Graph graph_;
  std::optional<GconArtifact> default_artifact_;
  std::optional<GconArtifact> alt_artifact_;
  Matrix offline_default_;
  Matrix offline_alt_;
  std::unique_ptr<InferenceServer> server_;
  std::thread listener_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> port_{0};
};

// --- Response-format locks (pure, no server) -------------------------------

TEST(WireFormatLock, ResponseLineIsByteStable) {
  // Exactly-representable doubles print without rounding, so this literal
  // is the wire format — a byte of drift (key order, spacing, precision
  // policy) fails the memcmp.
  ServeResponse response;
  response.id = 3;
  response.node = 1;
  response.label = 0;
  response.logits = {0.5, -0.25, 2};
  EXPECT_EQ(FormatWireResponse(response),
            "{\"id\": 3, \"node\": 1, \"label\": 0, "
            "\"logits\": [0.5, -0.25, 2]}");
}

TEST(WireFormatLock, ErrorLineIsByteStableAndEscaped) {
  EXPECT_EQ(FormatWireError(7, "bad \"key\" with \\ and\nnewline"),
            "{\"id\": 7, \"error\": \"bad \\\"key\\\" with \\\\ and "
            "newline\"}");
}

// --- Golden transcripts over TCP -------------------------------------------

TEST_F(ServeConformanceTest, ValidQueriesMatchOfflineGoldens) {
  WireClient client(port());
  std::vector<GoldenCase> cases;
  cases.push_back({"default-model node query", "{\"id\": 1, \"node\": 12}",
                   GoldenResponse(1, 12, offline_default_, 12)});
  cases.push_back({"explicit default route",
                   "{\"id\": 2, \"model\": \"default\", \"node\": 12}",
                   GoldenResponse(2, 12, offline_default_, 12)});
  cases.push_back({"routed to alt model",
                   "{\"id\": 3, \"model\": \"alt\", \"node\": 12}",
                   GoldenResponse(3, 12, offline_alt_, 12)});
  cases.push_back({"private edge list ignored junk",
                   "{\"id\": 4, \"node\": 0, \"edges\": []}",
                   [&] {
                     ServeRequest request;
                     request.id = 4;
                     request.node = 0;
                     request.has_edges = true;
                     const InferenceSession session(*default_artifact_,
                                                    graph_);
                     ServeResponse response;
                     response.id = 4;
                     response.node = 0;
                     response.logits = session.QueryLogits(request);
                     Matrix one(1, response.logits.size());
                     std::copy(response.logits.begin(),
                               response.logits.end(), one.RowPtr(0));
                     response.label = static_cast<int>(RowArgMax(one, 0));
                     return FormatWireResponse(response);
                   }()});
  ReplayGoldens(&client, cases);
}

TEST_F(ServeConformanceTest, InductiveQueryMatchesAugmentedOfflineGolden) {
  // The feature vector is written with exactly-representable values so the
  // request line itself is byte-stable too.
  const int d0 = graph_.feature_dim();
  std::vector<double> features(static_cast<std::size_t>(d0), 0.0);
  features[0] = 0.5;
  features[1] = 1.0;
  features[2] = 0.25;
  std::ostringstream request;
  request << "{\"id\": 21, \"features\": [";
  for (int j = 0; j < d0; ++j) {
    request << (j == 0 ? "" : ", ") << features[static_cast<std::size_t>(j)];
  }
  request << "], \"edges\": [0, 5]}";

  // Offline side: the shared augmentation helper appends the query node
  // at index n — the same construction every serving suite compares
  // against.
  const int n = graph_.num_nodes();
  const Matrix offline =
      default_artifact_->Infer(AugmentGraph(graph_, features, {0, 5}));

  ServeResponse expected;
  expected.id = 21;
  expected.node = -1;
  expected.label = static_cast<int>(
      RowArgMax(offline, static_cast<std::size_t>(n)));
  expected.logits = offline.RowCopy(static_cast<std::size_t>(n));

  WireClient client(port());
  ReplayGoldens(&client, {{"inductive feature-carrying query", request.str(),
                           FormatWireResponse(expected)}});
}

TEST_F(ServeConformanceTest, ErrorGoldensIncludingRecoveredIds) {
  WireClient client(port());
  std::vector<GoldenCase> cases;
  cases.push_back({"unknown model",
                   "{\"id\": 5, \"model\": \"nope\", \"node\": 1}",
                   "{\"id\": 5, \"error\": \"unknown model 'nope' "
                   "(serving: default, alt)\"}"});
  cases.push_back({"unknown key", "{\"id\": 9, \"nodes\": 1}",
                   "{\"id\": 9, \"error\": \"unknown key 'nodes' (want id, "
                   "node, edges, features, model, or cmd)\"}"});
  // Regression (the id used to be dropped): the defect precedes the "id"
  // key, but the error line must still echo id 12 so a pipelined client
  // can correlate the failure.
  cases.push_back({"id recovered past the defect",
                   "{\"nodes\": 1, \"id\": 12}",
                   "{\"id\": 12, \"error\": \"unknown key 'nodes' (want id, "
                   "node, edges, features, model, or cmd)\"}"});
  cases.push_back({"not an object", "predict 5",
                   "{\"id\": 0, \"error\": \"request must be a {...} "
                   "object\"}"});
  cases.push_back({"empty object", "{}",
                   "{\"id\": 0, \"error\": \"query needs a 'node' or "
                   "'features' key\"}"});
  cases.push_back({"trailing garbage", "{\"id\": 2, \"node\": 1} trailing",
                   "{\"id\": 2, \"error\": \"trailing garbage after the "
                   "request object\"}"});
  cases.push_back({"feature length mismatch",
                   "{\"id\": 4, \"features\": [1, 2, 3]}",
                   "{\"id\": 4, \"error\": \"query features have 3 values "
                   "but the encoder expects " +
                       std::to_string(graph_.feature_dim()) + "\"}"});
  cases.push_back({"node out of range", "{\"id\": 6, \"node\": 99999}",
                   "{\"id\": 6, \"error\": \"node 99999 out of range [0, " +
                       std::to_string(graph_.num_nodes()) + ")\"}"});
  // -1 is the "no node" sentinel; letting a negative through would make
  // {"node": -1, "features": [...]} dodge the either/or validation, so
  // the parser rejects it outright.
  cases.push_back({"negative node rejected at parse",
                   "{\"id\": 7, \"node\": -1, \"features\": [1]}",
                   "{\"id\": 7, \"error\": \"key 'node' wants a "
                   "non-negative integer\"}"});
  cases.push_back({"node and features together",
                   "{\"id\": 8, \"node\": 1, \"features\": [1]}",
                   "{\"id\": 8, \"error\": \"a query carries either 'node' "
                   "or 'features', not both\"}"});
  cases.push_back({"unknown cmd", "{\"id\": 3, \"cmd\": \"reboot\"}",
                   "{\"id\": 3, \"error\": \"unknown cmd 'reboot' (want "
                   "stats, list_models, or quit)\"}"});
  ReplayGoldens(&client, cases);
}

TEST_F(ServeConformanceTest, AdminVerbGoldens) {
  WireClient client(port());
  std::ostringstream list_models;
  list_models << "{\"models\": [{\"name\": \"default\", \"nodes\": "
              << graph_.num_nodes() << ", \"classes\": "
              << graph_.num_classes() << ", \"features\": "
              << graph_.feature_dim()
              << ", \"per_query\": true}, {\"name\": \"alt\", \"nodes\": "
              << graph_.num_nodes() << ", \"classes\": "
              << graph_.num_classes() << ", \"features\": "
              << graph_.feature_dim()
              << ", \"per_query\": true}], \"default\": \"default\"}";
  ReplayGoldens(&client, {{"list_models", "{\"cmd\": \"list_models\"}",
                           list_models.str()}});

  // Stats carries timings — not goldenable byte-for-byte, but its shape is
  // locked: aggregate counters first, then the per-model array.
  client.SendLine("{\"id\": 1, \"node\": 0}");
  client.ReadLine();
  client.SendLine("{\"cmd\": \"stats\"}");
  const std::string stats = client.ReadLine();
  EXPECT_EQ(stats.rfind("{\"queries\": ", 0), 0u) << stats;
  EXPECT_NE(stats.find("\"models\": [{\"name\": \"default\", "),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("{\"name\": \"alt\", "), std::string::npos) << stats;
}

TEST_F(ServeConformanceTest, PipelinedErrorFlushesAfterEarlierResponses) {
  // A malformed line pipelined behind a valid query must not jump the
  // queue: the valid response flushes first, then the error line.
  WireClient client(port());
  client.Send("{\"id\": 40, \"node\": 7}\n{\"id\": 41, \"nodes\": 7}\n");
  EXPECT_EQ(client.ReadLine(), GoldenResponse(40, 7, offline_default_, 7));
  EXPECT_EQ(client.ReadLine(),
            "{\"id\": 41, \"error\": \"unknown key 'nodes' (want id, node, "
            "edges, features, model, or cmd)\"}");
}

TEST_F(ServeConformanceTest, OversizedLineGetsErrorAndDisconnect) {
  WireClient client(port());
  // An id early in the line is recoverable even though the line never
  // completes; the server reports the cap and hangs up.
  std::string huge = "{\"id\": 77, \"features\": [";
  huge.append(kMaxWireLineBytes + 1024, '1');
  client.Send(huge);  // no newline — the cap must trip on the partial line
  EXPECT_EQ(client.ReadLine(),
            "{\"id\": 77, \"error\": \"oversized request line (limit " +
                std::to_string(kMaxWireLineBytes) + " bytes)\"}");
  EXPECT_TRUE(client.AtEof());
}

TEST_F(ServeConformanceTest, QuitClosesTheConnection) {
  WireClient client(port());
  client.SendLine("{\"id\": 1, \"node\": 0}");
  EXPECT_EQ(client.ReadLine(), GoldenResponse(1, 0, offline_default_, 0));
  client.SendLine("{\"cmd\": \"quit\"}");
  EXPECT_TRUE(client.AtEof());
}

}  // namespace
}  // namespace gcon
