#include <gtest/gtest.h>

#include <cmath>

#include "core/noise.h"
#include "core/objective.h"
#include "linalg/ops.h"
#include "rng/rng.h"

namespace gcon {
namespace {

struct Problem {
  Matrix z;
  Matrix y;
  Matrix noise;
  ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(3);
};

Problem MakeProblem(std::uint64_t seed, int n1 = 40, int d = 6, int c = 3) {
  Rng rng(seed);
  Problem p;
  p.z.Resize(static_cast<std::size_t>(n1), static_cast<std::size_t>(d));
  for (std::size_t k = 0; k < p.z.size(); ++k) {
    p.z.data()[k] = rng.Uniform(-1.0, 1.0);
  }
  RowL2NormalizeInPlace(&p.z);
  p.y.Resize(static_cast<std::size_t>(n1), static_cast<std::size_t>(c));
  for (int i = 0; i < n1; ++i) {
    p.y(static_cast<std::size_t>(i),
        rng.UniformInt(static_cast<std::uint64_t>(c))) = 1.0;
  }
  p.noise = SampleNoiseMatrix(d, c, 2.0, &rng);
  p.loss = ConvexLoss::MultiLabelSoftMargin(c);
  return p;
}

TEST(Objective, GradientMatchesFiniteDifference) {
  const Problem p = MakeProblem(1);
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, 0.3, &p.noise);
  Rng rng(2);
  Matrix theta(p.z.cols(), p.y.cols());
  for (std::size_t k = 0; k < theta.size(); ++k) {
    theta.data()[k] = rng.Uniform(-0.5, 0.5);
  }
  Matrix grad;
  const double value = objective.ValueAndGradient(theta, &grad);
  EXPECT_NEAR(value, objective.Value(theta), 1e-12);
  const double h = 1e-6;
  for (std::size_t k = 0; k < theta.size(); ++k) {
    Matrix lo = theta, hi = theta;
    lo.data()[k] -= h;
    hi.data()[k] += h;
    const double fd = (objective.Value(hi) - objective.Value(lo)) / (2.0 * h);
    EXPECT_NEAR(grad.data()[k], fd, 1e-6) << "entry " << k;
  }
}

TEST(Objective, StrongConvexityAlongRandomSegments) {
  // F(t b + (1-t) a) <= t F(b) + (1-t) F(a) - (λ/2) t(1-t) ||b-a||²
  // for a λ-strongly-convex F.
  const Problem p = MakeProblem(3);
  const double lambda_total = 0.5;
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, lambda_total,
                                     &p.noise);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a(p.z.cols(), p.y.cols()), b(p.z.cols(), p.y.cols());
    for (std::size_t k = 0; k < a.size(); ++k) {
      a.data()[k] = rng.Uniform(-1.0, 1.0);
      b.data()[k] = rng.Uniform(-1.0, 1.0);
    }
    const double t = rng.Uniform(0.1, 0.9);
    Matrix mid = a;
    ScaleInPlace(1.0 - t, &mid);
    AxpyInPlace(t, b, &mid);
    const double gap_sq = FrobeniusNorm(Sub(b, a));
    const double lhs = objective.Value(mid);
    const double rhs = t * objective.Value(b) +
                       (1.0 - t) * objective.Value(a) -
                       0.5 * lambda_total * t * (1.0 - t) * gap_sq * gap_sq;
    EXPECT_LE(lhs, rhs + 1e-9);
  }
}

TEST(Objective, HessianLowerBoundedViaGradientMonotonicity) {
  // λ-strong convexity <=> <∇F(b)-∇F(a), b-a> >= λ ||b-a||².
  const Problem p = MakeProblem(5);
  const double lambda_total = 0.7;
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, lambda_total,
                                     &p.noise);
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a(p.z.cols(), p.y.cols()), b(p.z.cols(), p.y.cols());
    for (std::size_t k = 0; k < a.size(); ++k) {
      a.data()[k] = rng.Uniform(-2.0, 2.0);
      b.data()[k] = rng.Uniform(-2.0, 2.0);
    }
    Matrix ga, gb;
    objective.ValueAndGradient(a, &ga);
    objective.ValueAndGradient(b, &gb);
    const Matrix diff = Sub(b, a);
    const double inner = DotAll(Sub(gb, ga), diff);
    const double norm_sq = DotAll(diff, diff);
    EXPECT_GE(inner, lambda_total * norm_sq - 1e-9);
  }
}

TEST(Objective, NoiseTermShiftsOptimum) {
  const Problem p = MakeProblem(7);
  Matrix zero_noise(p.z.cols(), p.y.cols());
  const PerturbedObjective clean(&p.z, &p.y, &p.loss, 0.3, &zero_noise);
  const PerturbedObjective noisy(&p.z, &p.y, &p.loss, 0.3, &p.noise);
  MinimizeOptions options;
  options.max_iterations = 4000;
  options.gradient_tolerance = 1e-10;
  const Matrix theta_clean = MinimizeAdam(clean, options).theta;
  const Matrix theta_noisy = MinimizeAdam(noisy, options).theta;
  EXPECT_GT(FrobeniusNorm(Sub(theta_clean, theta_noisy)), 1e-4);
}

TEST(Minimize, AdamReachesGradientTolerance) {
  const Problem p = MakeProblem(8);
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, 0.5, &p.noise);
  MinimizeOptions options;
  options.max_iterations = 6000;
  options.learning_rate = 0.05;
  options.gradient_tolerance = 1e-8;
  const MinimizeResult result = MinimizeAdam(objective, options);
  EXPECT_LT(result.gradient_norm, 1e-7);
  EXPECT_LT(result.iterations, options.max_iterations);
}

TEST(Minimize, GradientDescentAgreesWithAdam) {
  // Strongly convex objective has one minimizer; both algorithms must find
  // it.
  const Problem p = MakeProblem(9);
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, 0.4, &p.noise);
  MinimizeOptions options;
  options.max_iterations = 8000;
  options.gradient_tolerance = 1e-10;
  const Matrix theta_adam = MinimizeAdam(objective, options).theta;
  options.learning_rate = 1.0;
  const Matrix theta_gd = MinimizeGradientDescent(objective, options).theta;
  EXPECT_TRUE(theta_adam.AllClose(theta_gd, 1e-4));
}

TEST(Minimize, StationaryPointSatisfiesEq40) {
  // At the optimum: B = -n1 * d(L_Λ + Λ'/2||Θ||²)/dΘ — i.e. the gradient of
  // the UNperturbed part equals -B/n1 (Eq. 40 of the paper).
  const Problem p = MakeProblem(10);
  const double lambda_total = 0.6;
  const PerturbedObjective noisy(&p.z, &p.y, &p.loss, lambda_total, &p.noise);
  MinimizeOptions options;
  options.max_iterations = 8000;
  options.gradient_tolerance = 1e-11;
  const Matrix theta = MinimizeAdam(noisy, options).theta;

  Matrix zero_noise(p.z.cols(), p.y.cols());
  const PerturbedObjective clean(&p.z, &p.y, &p.loss, lambda_total,
                                 &zero_noise);
  Matrix clean_grad;
  clean.ValueAndGradient(theta, &clean_grad);
  const double n1 = static_cast<double>(p.z.rows());
  // clean_grad should equal -B/n1.
  Matrix expected = p.noise;
  ScaleInPlace(-1.0 / n1, &expected);
  EXPECT_TRUE(clean_grad.AllClose(expected, 1e-6));
}

TEST(Minimize, MoreRegularizationShrinksSolution) {
  const Problem p = MakeProblem(11);
  Matrix zero_noise(p.z.cols(), p.y.cols());
  MinimizeOptions options;
  options.max_iterations = 5000;
  const PerturbedObjective weak(&p.z, &p.y, &p.loss, 0.05, &zero_noise);
  const PerturbedObjective strong(&p.z, &p.y, &p.loss, 5.0, &zero_noise);
  const double weak_norm = FrobeniusNorm(MinimizeAdam(weak, options).theta);
  const double strong_norm =
      FrobeniusNorm(MinimizeAdam(strong, options).theta);
  EXPECT_GT(weak_norm, 2.0 * strong_norm);
}

TEST(Minimize, LbfgsAgreesWithAdam) {
  const Problem p = MakeProblem(20);
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, 0.4, &p.noise);
  MinimizeOptions options;
  options.max_iterations = 8000;
  options.gradient_tolerance = 1e-10;
  const Matrix theta_adam = MinimizeAdam(objective, options).theta;
  const MinimizeResult lbfgs = MinimizeLbfgs(objective, options);
  EXPECT_TRUE(theta_adam.AllClose(lbfgs.theta, 1e-5));
}

TEST(Minimize, LbfgsConvergesFasterThanGradientDescent) {
  const Problem p = MakeProblem(21, /*n1=*/80, /*d=*/12, /*c=*/4);
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, 0.1, &p.noise);
  MinimizeOptions options;
  options.max_iterations = 5000;
  options.gradient_tolerance = 1e-9;
  const MinimizeResult lbfgs = MinimizeLbfgs(objective, options);
  options.learning_rate = 1.0;
  const MinimizeResult gd = MinimizeGradientDescent(objective, options);
  EXPECT_LT(lbfgs.gradient_norm, 1e-8);
  EXPECT_LT(lbfgs.iterations, gd.iterations)
      << "curvature information should accelerate convergence";
  EXPECT_LT(lbfgs.iterations, 200);
}

TEST(Minimize, LbfgsDeterministic) {
  const Problem p = MakeProblem(22);
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, 0.3, &p.noise);
  MinimizeOptions options;
  options.max_iterations = 500;
  const Matrix a = MinimizeLbfgs(objective, options).theta;
  const Matrix b = MinimizeLbfgs(objective, options).theta;
  EXPECT_TRUE(a.AllClose(b, 0.0));
}

TEST(Minimize, LbfgsHandlesPseudoHuber) {
  Problem p = MakeProblem(23);
  p.loss = ConvexLoss::PseudoHuber(3, 0.2);
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, 0.5, &p.noise);
  MinimizeOptions options;
  options.max_iterations = 3000;
  options.gradient_tolerance = 1e-9;
  const MinimizeResult result = MinimizeLbfgs(objective, options);
  EXPECT_LT(result.gradient_norm, 1e-8);
}

TEST(Objective, PseudoHuberAlsoMinimizes) {
  Problem p = MakeProblem(12);
  p.loss = ConvexLoss::PseudoHuber(3, 0.5);
  const PerturbedObjective objective(&p.z, &p.y, &p.loss, 0.5, &p.noise);
  MinimizeOptions options;
  options.max_iterations = 5000;
  const MinimizeResult result = MinimizeAdam(objective, options);
  EXPECT_LT(result.gradient_norm, 1e-5);
}

}  // namespace
}  // namespace gcon
