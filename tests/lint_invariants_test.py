#!/usr/bin/env python3
"""Self-test for tools/lint_invariants.py.

Runs the linter against tests/lint_fixtures/ (a mini repo tree with one
seeded violation per rule plus non-violations in sanctioned dirs) and
asserts:
  * every seeded violation is flagged at the right file:line,
  * sanctioned-dir twins and commented-out patterns are NOT flagged,
  * a waiver entry suppresses exactly one finding,
  * stale and ambiguous waivers fail the run,
  * --json output round-trips.
Registered with ctest as lint_invariants_selftest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO_ROOT, "tools", "lint_invariants.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")

EXPECTED = [
    ("no-raw-threads", "src/core/uses_thread.cc"),
    ("no-raw-openmp", "src/core/uses_openmp.cc"),
    ("scoped-cache-stats", "src/eval/stats_diff.cc"),
    ("rng-discipline", "src/core/uses_rand.cc"),  # srand(7)
    ("rng-discipline", "src/core/uses_rand.cc"),  # rand() x2
    ("rng-discipline", "src/core/uses_rand.cc"),
    ("rng-discipline", "src/core/uses_rand.cc"),  # std::random_device
    ("baseline-layering", "bench/uses_baseline.cc"),
    ("gemm-reference", "src/core/uses_gemm_ref.cc"),
    ("nolint-reason", "src/core/bad_nolint.cc"),
    ("serve-zero-copy", "src/serve/copies_feature_view.cc"),
    ("no-hot-path-logging", "src/linalg/hot_log.cc"),
    ("no-hot-path-logging", "src/serve/batcher.cc"),
]


def run_linter(*extra_args, waivers="/nonexistent-waivers.json"):
    cmd = [sys.executable, LINTER, "--root", FIXTURES,
           "--waivers", waivers, *extra_args]
    return subprocess.run(cmd, capture_output=True, text=True, check=False)


def write_waivers(entries):
    f = tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False, encoding="utf-8")
    json.dump({"waivers": entries}, f)
    f.close()
    return f.name


class LintInvariantsTest(unittest.TestCase):
    def findings(self, waivers="/nonexistent-waivers.json"):
        proc = run_linter("--json", waivers=waivers)
        payload = json.loads(proc.stdout)
        return proc, payload

    def test_flags_every_seeded_violation(self):
        proc, payload = self.findings()
        self.assertEqual(proc.returncode, 1)
        got = sorted((f["rule"], f["file"]) for f in payload["findings"])
        self.assertEqual(got, sorted(EXPECTED))

    def test_sanctioned_dirs_and_comments_not_flagged(self):
        _, payload = self.findings()
        files = {f["file"] for f in payload["findings"]}
        self.assertNotIn("src/linalg/ok_openmp.cc", files)
        self.assertNotIn("src/serve/ok_thread.cc", files)
        # stats_diff.cc seeds one live violation and one commented-out copy.
        stats_hits = [f for f in payload["findings"]
                      if f["rule"] == "scoped-cache-stats"]
        self.assertEqual(len(stats_hits), 1)
        # The strand() decoy must not count as rand().
        rand_hits = [f for f in payload["findings"]
                     if f["rule"] == "rng-discipline"]
        self.assertEqual(len(rand_hits), 4)
        for f in rand_hits:
            self.assertNotIn("decoy", f["text"])
        # The zero-copy fixture seeds exactly one live deep copy; its
        # in-place-widening twin and the commented-out std::copy must not
        # count.
        zero_copy_hits = [f for f in payload["findings"]
                          if f["rule"] == "serve-zero-copy"]
        self.assertEqual(len(zero_copy_hits), 1)
        self.assertIn("assign", zero_copy_hits[0]["text"])
        # no-hot-path-logging applies ONLY to the batcher and src/linalg/:
        # the cold-path GCON_LOG fixture and batcher.cc's commented-out
        # copy must not count.
        hot_log_hits = [f for f in payload["findings"]
                        if f["rule"] == "no-hot-path-logging"]
        self.assertEqual(len(hot_log_hits), 2)
        self.assertNotIn("src/core/cold_log.cc", files)

    def test_waiver_suppresses_exactly_one_finding(self):
        waivers = write_waivers([{
            "rule": "no-raw-threads",
            "file": "src/core/uses_thread.cc",
            "contains": "std::thread worker",
            "reason": "fixture: prove one waiver removes one finding",
        }])
        try:
            proc, payload = self.findings(waivers=waivers)
            self.assertEqual(proc.returncode, 1)  # others remain
            self.assertEqual(payload["waiver_errors"], [])
            got = sorted((f["rule"], f["file"]) for f in payload["findings"])
            expected = sorted(EXPECTED)
            expected.remove(("no-raw-threads", "src/core/uses_thread.cc"))
            self.assertEqual(got, expected)
        finally:
            os.unlink(waivers)

    def test_waiving_everything_is_clean(self):
        entries = [
            {"rule": "no-raw-threads", "file": "src/core/uses_thread.cc",
             "contains": "std::thread worker", "reason": "fixture"},
            {"rule": "no-raw-openmp", "file": "src/core/uses_openmp.cc",
             "contains": "#pragma omp parallel for", "reason": "fixture"},
            {"rule": "scoped-cache-stats", "file": "src/eval/stats_diff.cc",
             "contains": "before", "reason": "fixture"},
            {"rule": "rng-discipline", "file": "src/core/uses_rand.cc",
             "contains": "srand(7)", "reason": "fixture"},
            {"rule": "rng-discipline", "file": "src/core/uses_rand.cc",
             "contains": "int a = rand()", "reason": "fixture"},
            {"rule": "rng-discipline", "file": "src/core/uses_rand.cc",
             "contains": "int b = rand()", "reason": "fixture"},
            {"rule": "rng-discipline", "file": "src/core/uses_rand.cc",
             "contains": "std::random_device", "reason": "fixture"},
            {"rule": "baseline-layering", "file": "bench/uses_baseline.cc",
             "contains": "baselines/gcn.h", "reason": "fixture"},
            {"rule": "gemm-reference", "file": "src/core/uses_gemm_ref.cc",
             "contains": "GemmReference(a, b, c, n)", "reason": "fixture"},
            {"rule": "nolint-reason", "file": "src/core/bad_nolint.cc",
             "contains": "return x + 1;", "reason": "fixture"},
            {"rule": "serve-zero-copy",
             "file": "src/serve/copies_feature_view.cc",
             "contains": "features.assign", "reason": "fixture"},
            {"rule": "no-hot-path-logging", "file": "src/linalg/hot_log.cc",
             "contains": "fringe tile", "reason": "fixture"},
            {"rule": "no-hot-path-logging", "file": "src/serve/batcher.cc",
             "contains": "dispatching batch", "reason": "fixture"},
        ]
        waivers = write_waivers(entries)
        try:
            proc, payload = self.findings(waivers=waivers)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertEqual(payload["findings"], [])
            self.assertEqual(payload["waiver_errors"], [])
        finally:
            os.unlink(waivers)

    def test_stale_waiver_fails(self):
        waivers = write_waivers([{
            "rule": "no-raw-threads",
            "file": "src/core/uses_thread.cc",
            "contains": "this-line-does-not-exist",
            "reason": "fixture",
        }])
        try:
            proc, payload = self.findings(waivers=waivers)
            self.assertEqual(proc.returncode, 1)
            self.assertEqual(len(payload["waiver_errors"]), 1)
            self.assertIn("stale waiver", payload["waiver_errors"][0])
        finally:
            os.unlink(waivers)

    def test_ambiguous_waiver_fails(self):
        # "rand()" appears on two seeded lines; the waiver must refuse to
        # silently pick one.
        waivers = write_waivers([{
            "rule": "rng-discipline",
            "file": "src/core/uses_rand.cc",
            "contains": "rand()",
            "reason": "fixture",
        }])
        try:
            proc, payload = self.findings(waivers=waivers)
            self.assertEqual(proc.returncode, 1)
            self.assertTrue(any("ambiguous waiver" in e
                                for e in payload["waiver_errors"]),
                            payload["waiver_errors"])
        finally:
            os.unlink(waivers)

    def test_waiver_without_reason_is_config_error(self):
        waivers = write_waivers([{
            "rule": "no-raw-threads",
            "file": "src/core/uses_thread.cc",
            "contains": "std::thread worker",
            "reason": "  ",
        }])
        try:
            proc = run_linter(waivers=waivers)
            self.assertEqual(proc.returncode, 2)
            self.assertIn("reason", proc.stderr)
        finally:
            os.unlink(waivers)

    def test_real_repo_is_clean(self):
        proc = subprocess.run(
            [sys.executable, LINTER], capture_output=True, text=True,
            check=False)
        self.assertEqual(proc.returncode, 0,
                         f"stdout={proc.stdout}\nstderr={proc.stderr}")


if __name__ == "__main__":
    unittest.main()
