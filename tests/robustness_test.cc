// API-contract robustness: invalid inputs must fail loudly (GCON_CHECK
// aborts), not silently corrupt numeric state. Uses gtest death tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/incomplete_gamma.h"
#include "core/theorem1.h"
#include "dp/graph_perturbation.h"
#include "dp/mechanisms.h"
#include "graph/datasets.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"
#include "rng/rng.h"
#include "sparse/csr_matrix.h"

namespace gcon {
namespace {

using RobustnessDeathTest = ::testing::Test;

TEST(RobustnessDeathTest, MatrixAtOutOfBounds) {
  Matrix m(2, 3);
  EXPECT_DEATH(m.At(2, 0), "CHECK FAILED");
  EXPECT_DEATH(m.At(0, 3), "CHECK FAILED");
}

TEST(RobustnessDeathTest, MatMulShapeMismatch) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_DEATH(MatMul(a, b), "inner dims mismatch");
}

TEST(RobustnessDeathTest, ConcatRowMismatch) {
  Matrix a(2, 2), b(3, 2);
  EXPECT_DEATH(ConcatCols(a, b), "row mismatch");
}

TEST(RobustnessDeathTest, GatherRowsOutOfRange) {
  Matrix a(2, 2);
  EXPECT_DEATH(GatherRows(a, {5}), "CHECK FAILED");
  EXPECT_DEATH(GatherRows(a, {-1}), "CHECK FAILED");
}

TEST(RobustnessDeathTest, CooBuilderRejectsOutOfRange) {
  CooBuilder builder(2, 2);
  EXPECT_DEATH(builder.Add(2, 0, 1.0), "CHECK FAILED");
}

TEST(RobustnessDeathTest, GraphRejectsBadLabels) {
  Graph g(3, 2);
  EXPECT_DEATH(g.set_label(0, 2), "CHECK FAILED");
  EXPECT_DEATH(g.set_label(0, -1), "CHECK FAILED");
  EXPECT_DEATH(g.set_label(5, 0), "CHECK FAILED");
}

TEST(RobustnessDeathTest, UnknownDatasetAborts) {
  EXPECT_DEATH(SpecByName("not_a_dataset"), "unknown dataset");
}

TEST(RobustnessDeathTest, LoadGraphBadMagic) {
  const std::string path = "/tmp/gcon_robustness_bad_magic.txt";
  {
    std::ofstream out(path);
    out << "something else entirely\n";
  }
  EXPECT_DEATH(LoadGraph(path), "bad magic");
  std::remove(path.c_str());
}

TEST(RobustnessDeathTest, LoadGraphMissingFile) {
  EXPECT_DEATH(LoadGraph("/tmp/gcon_no_such_file_xyz.graph"), "cannot open");
}

TEST(RobustnessDeathTest, EdgeRandRefusesExplosiveOutput) {
  // At eps=0.1 on a 2000-node graph EdgeRand would inject ~0.95M edges;
  // with a 10k cap the guard must fire.
  DatasetSpec spec = TinySpec();
  spec.num_nodes = 2000;
  spec.num_undirected_edges = 4000;
  Rng gen(1);
  const Graph graph = GenerateDataset(spec, &gen);
  Rng rng(2);
  EXPECT_DEATH(EdgeRand(graph, 0.1, &rng, /*max_edges=*/10000),
               "use LapGraph");
}

TEST(RobustnessDeathTest, MechanismsRejectBadBudgets) {
  Matrix m(2, 2);
  Rng rng(3);
  EXPECT_DEATH(LaplaceMechanismInPlace(&m, 1.0, 0.0, &rng), "CHECK FAILED");
  EXPECT_DEATH(GaussianSigma(1.0, -1.0, 1e-5), "CHECK FAILED");
  EXPECT_DEATH(ZcdpRhoFromEpsilonDelta(1.0, 2.0), "CHECK FAILED");
}

TEST(RobustnessDeathTest, Theorem1RejectsInvalidInputs) {
  const ConvexLoss loss = ConvexLoss::MultiLabelSoftMargin(3);
  PrivacyInputs in;
  in.epsilon = 1.0;
  in.delta = 1e-5;
  in.omega = 0.9;
  in.lambda = 0.2;
  in.n1 = 100;
  in.num_classes = 3;
  in.dim = 8;
  in.psi_z = 1.0;

  PrivacyInputs bad = in;
  bad.epsilon = 0.0;
  EXPECT_DEATH(ComputePrivacyParams(bad, loss), "CHECK FAILED");
  bad = in;
  bad.omega = 1.0;
  EXPECT_DEATH(ComputePrivacyParams(bad, loss), "CHECK FAILED");
  bad = in;
  bad.n1 = 0;
  EXPECT_DEATH(ComputePrivacyParams(bad, loss), "CHECK FAILED");
  bad = in;
  bad.num_classes = 5;  // mismatched with the loss's class count
  EXPECT_DEATH(ComputePrivacyParams(bad, loss), "CHECK FAILED");
}

TEST(RobustnessDeathTest, GammaQuantileRejectsProbOne) {
  EXPECT_DEATH(GammaQuantile(4.0, 1.0), "CHECK FAILED");
}

TEST(RobustnessDeathTest, RngRejectsDegenerateParameters) {
  Rng rng(5);
  EXPECT_DEATH(rng.UniformInt(0), "CHECK FAILED");
  EXPECT_DEATH(rng.Exponential(0.0), "CHECK FAILED");
  EXPECT_DEATH(rng.Gamma(-1.0, 1.0), "CHECK FAILED");
  EXPECT_DEATH(rng.Erlang(0, 1.0), "CHECK FAILED");
  EXPECT_DEATH(rng.SampleWithoutReplacement(3, 5), "CHECK FAILED");
}

// Non-death robustness: partially written graph files are detected.
TEST(Robustness, LoadGraphDetectsEdgeCountMismatch) {
  const std::string path = "/tmp/gcon_robustness_truncated.txt";
  {
    std::ofstream out(path);
    out << "gcon-graph v1\n";
    out << "nodes 2 classes 2 features 1 edges 3\n";  // claims 3 edges
    out << "L 0 0\nL 1 1\n";
    out << "F 0 0:1\nF 1 0:1\n";
    out << "E 0 1\n";  // provides only 1
  }
  EXPECT_DEATH(LoadGraph(path), "edge count mismatch");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcon
