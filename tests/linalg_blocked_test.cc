// Blocked-GEMM engine vs the kept naive reference (linalg/gemm_kernels.h):
// shape sweeps crossing every blocking boundary, alpha/beta handling, the
// transposed drivers, empty operands, the parallelized matrix-vector /
// transpose kernels, and the NaN/Inf propagation policy the old
// zero-operand short-circuits violated.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/gemm_kernels.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"
#include "rng/rng.h"

namespace gcon {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t k = 0; k < m.size(); ++k) {
    m.data()[k] = rng->Uniform(-1.0, 1.0);
  }
  return m;
}

Matrix ReferenceMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  internal::GemmReference(1.0, a, b, 0.0, &c);
  return c;
}

// Shapes straddling the register tile (4x8), one MC/KC block, and the
// fringe cases in between. 260 > KC? no — it crosses the MC=128 and the
// micro-tile boundaries; 300 exercises a second k-slab via the k=300 case.
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 1},    {3, 5, 9},     {4, 8, 8},    {5, 9, 17},
    {8, 300, 8},  {64, 3, 100}, {70, 70, 70},  {127, 31, 33}, {130, 257, 12},
    {12, 12, 260},
};

TEST(BlockedGemm, MatchesReferenceAcrossShapes) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, &rng);
    const Matrix b = RandomMatrix(s.k, s.n, &rng);
    const Matrix got = MatMul(a, b);
    const Matrix want = ReferenceMatMul(a, b);
    EXPECT_TRUE(got.AllClose(want, 1e-10))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(BlockedGemm, TransAMatchesReferenceAcrossShapes) {
  Rng rng(103);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.k, s.m, &rng);  // op(A) = A^T is m x k
    const Matrix b = RandomMatrix(s.k, s.n, &rng);
    EXPECT_TRUE(MatMulTransA(a, b).AllClose(
        ReferenceMatMul(Transpose(a), b), 1e-10))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(BlockedGemm, TransBMatchesReferenceAcrossShapes) {
  Rng rng(107);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, &rng);
    const Matrix b = RandomMatrix(s.n, s.k, &rng);  // op(B) = B^T is k x n
    EXPECT_TRUE(MatMulTransB(a, b).AllClose(
        ReferenceMatMul(a, Transpose(b)), 1e-10))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(BlockedGemm, AlphaBetaCombinations) {
  Rng rng(109);
  const Matrix a = RandomMatrix(37, 41, &rng);
  const Matrix b = RandomMatrix(41, 29, &rng);
  const Matrix c0 = RandomMatrix(37, 29, &rng);
  const double alphas[] = {0.0, 1.0, -2.5, 0.75};
  const double betas[] = {0.0, 1.0, -1.0, 0.5};
  for (double alpha : alphas) {
    for (double beta : betas) {
      Matrix got = c0;
      Gemm(alpha, a, b, beta, &got);
      Matrix want = c0;
      internal::GemmReference(alpha, a, b, beta, &want);
      EXPECT_TRUE(got.AllClose(want, 1e-10))
          << "alpha=" << alpha << " beta=" << beta;
    }
  }
}

TEST(BlockedGemm, BetaZeroOverwritesNanInC) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{3.0}, {4.0}};
  Matrix c(1, 1);
  c(0, 0) = std::numeric_limits<double>::quiet_NaN();
  Gemm(1.0, a, b, 0.0, &c);
  EXPECT_DOUBLE_EQ(c(0, 0), 11.0);
}

TEST(BlockedGemm, EmptyOperands) {
  // k == 0: the product term is empty, C = beta * C.
  Matrix c{{2.0, 4.0}};
  Gemm(1.0, Matrix(1, 0), Matrix(0, 2), 0.5, &c);
  EXPECT_TRUE(c.AllClose(Matrix{{1.0, 2.0}}));
  // m == 0 / n == 0 products are legal no-ops of the right shape.
  EXPECT_EQ(MatMul(Matrix(0, 3), Matrix(3, 2)).rows(), 0u);
  EXPECT_EQ(MatMul(Matrix(2, 3), Matrix(3, 0)).cols(), 0u);
}

TEST(BlockedGemm, RepeatedCallsAreBitwiseIdentical) {
  Rng rng(113);
  const Matrix a = RandomMatrix(97, 130, &rng);
  const Matrix b = RandomMatrix(130, 61, &rng);
  const Matrix first = MatMul(a, b);
  const Matrix second = MatMul(a, b);
  EXPECT_TRUE(first.AllClose(second, 0.0));
}

// --- NaN/Inf policy ---------------------------------------------------------
// The seed kernels skipped `av == 0` operands, so a NaN/Inf in the other
// matrix silently vanished from the product. The blocked kernels (and the
// rewritten MatVecTransA) must propagate them.

TEST(NanPolicy, GemmPropagatesNanPastZeroInA) {
  Matrix a(2, 2);  // all zeros
  Matrix b(2, 2);
  b(0, 0) = std::numeric_limits<double>::quiet_NaN();
  const Matrix c = MatMul(a, b);
  EXPECT_TRUE(std::isnan(c(0, 0)));
  EXPECT_TRUE(std::isnan(c(1, 0)));
}

TEST(NanPolicy, GemmPropagatesInfAsNanPastZero) {
  Matrix a(1, 1);  // zero
  Matrix b(1, 1);
  b(0, 0) = std::numeric_limits<double>::infinity();
  const Matrix c = MatMul(a, b);  // 0 * inf = NaN
  EXPECT_TRUE(std::isnan(c(0, 0)));
}

TEST(NanPolicy, TransAPropagatesNanPastZeroInA) {
  Matrix a(2, 2);  // zeros; op(A) = A^T
  Matrix b(2, 2);
  b(1, 1) = std::numeric_limits<double>::quiet_NaN();
  const Matrix c = MatMulTransA(a, b);
  EXPECT_TRUE(std::isnan(c(0, 1)));
}

TEST(NanPolicy, MatVecTransAPropagatesNanPastZeroWeight) {
  Matrix a{{std::numeric_limits<double>::quiet_NaN(), 1.0}};
  const auto y = MatVecTransA(a, {0.0});
  EXPECT_TRUE(std::isnan(y[0]));  // 0 * NaN
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

// --- parallelized aux kernels ----------------------------------------------

TEST(ParallelKernels, MatVecMatchesManual) {
  Rng rng(127);
  const Matrix a = RandomMatrix(83, 217, &rng);
  std::vector<double> x(217);
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  const auto y = MatVec(a, x);
  for (std::size_t i : {std::size_t{0}, std::size_t{41}, std::size_t{82}}) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(y[i], acc, 1e-10);
  }
}

TEST(ParallelKernels, MatVecTransAMatchesTransposeMatVec) {
  Rng rng(131);
  // > 512 columns crosses the column-block boundary.
  const Matrix a = RandomMatrix(37, 700, &rng);
  std::vector<double> x(37);
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  const auto got = MatVecTransA(a, x);
  const auto want = MatVec(Transpose(a), x);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t j = 0; j < got.size(); ++j) {
    EXPECT_NEAR(got[j], want[j], 1e-10);
  }
}

TEST(ParallelKernels, TransposeTiledMatchesElementwise) {
  Rng rng(137);
  const Matrix a = RandomMatrix(130, 67, &rng);  // crosses the 64-tile
  const Matrix t = Transpose(a);
  ASSERT_EQ(t.rows(), a.cols());
  ASSERT_EQ(t.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(t(j, i), a(i, j));
    }
  }
}

}  // namespace
}  // namespace gcon
