// Determinism regression for the registry plumbing: training the same
// method twice with the same seed on the same graph must produce bitwise
// identical logits. Guards against accidental hidden state in the adapters
// (shared RNGs, leftover caches) that the polymorphic interface could
// otherwise mask.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "eval/experiment.h"
#include "graph/datasets.h"
#include "model/adapters.h"
#include "rng/rng.h"

namespace gcon {
namespace {

Matrix TrainOnce(const std::string& method, const ModelConfig& config,
                 std::uint64_t data_seed) {
  const DatasetSpec spec = TinySpec();
  Rng rng(data_seed);
  const Graph graph = GenerateDataset(spec, &rng);
  const Split split = MakeSplit(spec, graph, &rng);
  std::unique_ptr<GraphModel> model =
      BuiltinModelRegistry().Create(method, config);
  return model->Train(graph, split).logits;
}

ModelConfig FastGconConfig(const std::string& seed) {
  ModelConfig config;
  config.Set("epsilon", "1.0");
  config.Set("encoder_epochs", "40");
  config.Set("max_iterations", "150");
  config.Set("seed", seed);
  return config;
}

TEST(ModelDeterminism, GconSameSeedSameLogits) {
  const Matrix first = TrainOnce("gcon", FastGconConfig("17"), /*data_seed=*/5);
  const Matrix second =
      TrainOnce("gcon", FastGconConfig("17"), /*data_seed=*/5);
  ASSERT_EQ(first.rows(), second.rows());
  ASSERT_EQ(first.cols(), second.cols());
  EXPECT_TRUE(first.AllClose(second, 0.0));
}

TEST(ModelDeterminism, GconDifferentSeedDifferentNoise) {
  const Matrix first = TrainOnce("gcon", FastGconConfig("17"), /*data_seed=*/5);
  const Matrix second =
      TrainOnce("gcon", FastGconConfig("18"), /*data_seed=*/5);
  // The Theorem 1 noise draw depends on the seed, so some logit must move.
  EXPECT_FALSE(first.AllClose(second, 1e-12));
}

TEST(ModelDeterminism, GcnSameSeedSameLogits) {
  ModelConfig config;
  config.Set("epochs", "60");
  config.Set("seed", "23");
  const Matrix first = TrainOnce("gcn", config, /*data_seed=*/5);
  const Matrix second = TrainOnce("gcn", config, /*data_seed=*/5);
  ASSERT_EQ(first.rows(), second.rows());
  ASSERT_EQ(first.cols(), second.cols());
  EXPECT_TRUE(first.AllClose(second, 0.0));
}

// The parallel engine's core guarantee: fanning the runs out across a
// worker pool must not change a single bit of the summary — each run is a
// pure function of (base_seed + r, config, spec) and writes only its own
// slot, so the schedule cannot leak into the results.
TEST(ModelDeterminism, ParallelRunsMatchSequentialBitwise) {
  const DatasetSpec spec = TinySpec();
  for (const bool share_data : {false, true}) {
    RepeatOptions sequential;
    sequential.share_data = share_data;
    sequential.threads = 1;
    RepeatOptions parallel = sequential;
    parallel.threads = 4;

    for (const std::string& method : {std::string("mlp"),
                                      std::string("gcon")}) {
      ModelConfig config;
      if (method == "gcon") {
        config.Set("epsilon", "1.0");
        config.Set("encoder_epochs", "40");
        config.Set("max_iterations", "150");
      }
      // No pinned seed: each run draws its own model seed from
      // base_seed + r, the regime where a schedule bug would surface.
      const MethodRunSummary a = RunMethodRepeated(
          method, config, spec, /*runs=*/4, /*base_seed=*/1203, sequential);
      const MethodRunSummary b = RunMethodRepeated(
          method, config, spec, /*runs=*/4, /*base_seed=*/1203, parallel);
      EXPECT_DOUBLE_EQ(a.test_micro_f1.mean, b.test_micro_f1.mean) << method;
      EXPECT_DOUBLE_EQ(a.test_micro_f1.stddev, b.test_micro_f1.stddev)
          << method;
      EXPECT_DOUBLE_EQ(a.test_macro_f1.mean, b.test_macro_f1.mean) << method;
      EXPECT_DOUBLE_EQ(a.epsilon_spent, b.epsilon_spent) << method;
      ASSERT_EQ(a.runs.size(), b.runs.size());
      for (std::size_t r = 0; r < a.runs.size(); ++r) {
        EXPECT_TRUE(a.runs[r].logits.AllClose(b.runs[r].logits, 0.0))
            << method << " run " << r << " share_data " << share_data;
      }
      // Cache totals are schedule-independent too (the hit/miss split can
      // shift only when parallel runs race on a shared cold key, which
      // needs share_data; totals never change).
      EXPECT_EQ(a.cache.csr_hits + a.cache.csr_misses,
                b.cache.csr_hits + b.cache.csr_misses)
          << method;
      EXPECT_EQ(a.cache.propagation_hits + a.cache.propagation_misses,
                b.cache.propagation_hits + b.cache.propagation_misses)
          << method;
    }
  }
}

TEST(ModelDeterminism, RunMethodRepeatedIsReproducible) {
  // The experiment-harness entry point must inherit the same guarantee:
  // identical (method, config, spec, seed) -> identical summary.
  const DatasetSpec spec = TinySpec();
  ModelConfig config;
  config.Set("epochs", "40");
  const MethodRunSummary a =
      RunMethodRepeated("mlp", config, spec, /*runs=*/2, /*base_seed=*/9);
  const MethodRunSummary b =
      RunMethodRepeated("mlp", config, spec, /*runs=*/2, /*base_seed=*/9);
  EXPECT_DOUBLE_EQ(a.test_micro_f1.mean, b.test_micro_f1.mean);
  EXPECT_DOUBLE_EQ(a.test_macro_f1.mean, b.test_macro_f1.mean);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_TRUE(a.runs[r].logits.AllClose(b.runs[r].logits, 0.0));
  }
}

}  // namespace
}  // namespace gcon
