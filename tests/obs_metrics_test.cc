// MetricsRegistry unit suite + the Prometheus exposition FORMAT LOCK.
//
// PrometheusTextIsByteStable builds a local registry with one family of
// each type and compares the whole exposition against a literal golden —
// HELP/TYPE lines, family and series ordering, label rendering and
// escaping, cumulative histogram buckets, the +Inf/_sum/_count tail, and
// the "# EOF" terminator are all byte-locked (the histogram bucket bounds
// are spelled via LatencyStats::BucketUpperBound, whose own contract is
// locked by tests/latency_stats_test.cc). The `metrics` admin verb on both
// transports returns exactly this rendering of the global registry, so a
// drift here is a drift on the wire.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "serve/latency_stats.h"

namespace gcon {
namespace obs {
namespace {

TEST(MetricsRegistryTest, PrometheusTextIsByteStable) {
  MetricsRegistry registry;
  registry.gauge("gcon_test_epsilon", "Cumulative privacy budget.")->Set(1.5);

  Histogram* latency = registry.histogram(
      "gcon_test_latency_us", "Batch latency.", {{"model", "default"}});
  latency->Observe(5.0);
  latency->Observe(5.0);
  latency->Observe(300.0);  // octave 8, sub-bucket 1 -> upper bound 319

  registry
      .counter("gcon_test_requests_total", "Requests served.",
               {{"model", "default"}})
      ->Increment(3);
  // A label value exercising the nastier escapes: a backslash and a double
  // quote (newline is covered by EscapesLabelValues).
  registry
      .counter("gcon_test_requests_total", "Requests served.",
               {{"model", "a\\b\"c"}})
      ->Increment();

  EXPECT_EQ(registry.PrometheusText(),
            "# HELP gcon_test_epsilon Cumulative privacy budget.\n"
            "# TYPE gcon_test_epsilon gauge\n"
            "gcon_test_epsilon 1.5\n"
            "# HELP gcon_test_latency_us Batch latency.\n"
            "# TYPE gcon_test_latency_us histogram\n"
            "gcon_test_latency_us_bucket{model=\"default\",le=\"5\"} 2\n"
            "gcon_test_latency_us_bucket{model=\"default\",le=\"319\"} 3\n"
            "gcon_test_latency_us_bucket{model=\"default\",le=\"+Inf\"} 3\n"
            "gcon_test_latency_us_sum{model=\"default\"} 310\n"
            "gcon_test_latency_us_count{model=\"default\"} 3\n"
            "# HELP gcon_test_requests_total Requests served.\n"
            "# TYPE gcon_test_requests_total counter\n"
            "gcon_test_requests_total{model=\"a\\\\b\\\"c\"} 1\n"
            "gcon_test_requests_total{model=\"default\"} 3\n"
            "# EOF\n");
}

TEST(MetricsRegistryTest, EmptyRegistryIsJustTheTerminator) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.PrometheusText(), "# EOF\n");
}

TEST(MetricsRegistryTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("gcon_test_total", "h", {{"k", "line\nbreak"}});
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("gcon_test_total{k=\"line\\nbreak\"} 0\n"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, ReRegistrationReturnsTheSameHandle) {
  MetricsRegistry registry;
  Counter* a =
      registry.counter("gcon_test_total", "first help wins", {{"m", "x"}});
  Counter* b = registry.counter("gcon_test_total", "ignored", {{"m", "x"}});
  EXPECT_EQ(a, b);
  Counter* other = registry.counter("gcon_test_total", "ignored",
                                    {{"m", "y"}});
  EXPECT_NE(a, other);
  a->Increment(2);
  EXPECT_EQ(b->value(), 2u);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP gcon_test_total first help wins\n"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, TypeConflictThrows) {
  MetricsRegistry registry;
  registry.counter("gcon_test_total", "h");
  EXPECT_THROW(registry.gauge("gcon_test_total", "h"), std::logic_error);
  EXPECT_THROW(registry.histogram("gcon_test_total", "h"), std::logic_error);
}

TEST(MetricsRegistryTest, DisarmedHandlesDropUpdates) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("gcon_test_total", "h");
  Gauge* gauge = registry.gauge("gcon_test_gauge", "h");
  Histogram* histogram = registry.histogram("gcon_test_us", "h");
  counter->Increment();
  gauge->Set(4.0);
  ASSERT_TRUE(MetricsEnabled());
  SetMetricsEnabled(false);
  counter->Increment(100);
  gauge->Set(9.0);
  gauge->Add(1.0);
  histogram->Observe(7.0);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter->value(), 1u);
  EXPECT_EQ(gauge->value(), 4.0);
  EXPECT_EQ(histogram->stats().TotalCount(), 0u);
}

TEST(MetricsRegistryTest, GaugeAddAccumulates) {
  MetricsRegistry registry;
  Gauge* gauge = registry.gauge("gcon_test_epsilon", "h");
  gauge->Set(1.0);
  gauge->Add(0.5);
  gauge->Add(0.25);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.75);
}

TEST(MetricsRegistryTest, GlobalRegistryCarriesTheBuiltinInstruments) {
  // The process-wide registry is shared by every subsystem; poking one
  // well-known family proves Global() wiring without depending on which
  // other suites ran first.
  Counter* counter = MetricsRegistry::Global().counter(
      "gcon_test_global_total", "Self-test counter.");
  const std::uint64_t before = counter->value();
  counter->Increment();
  EXPECT_EQ(counter->value(), before + 1);
  EXPECT_NE(MetricsRegistry::Global().PrometheusText().find(
                "gcon_test_global_total"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace gcon
