#include <gtest/gtest.h>

#include <cmath>

#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optim.h"
#include "rng/rng.h"

namespace gcon {
namespace {

TEST(Activations, ReluClampsNegative) {
  Matrix m{{-1.0, 0.0, 2.0}};
  ApplyActivationInPlace(Activation::kRelu, &m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 2.0);
}

TEST(Activations, TanhAndSigmoidRange) {
  Matrix m{{-10.0, 0.0, 10.0}};
  Matrix t = m;
  ApplyActivationInPlace(Activation::kTanh, &t);
  EXPECT_NEAR(t(0, 0), -1.0, 1e-6);
  EXPECT_DOUBLE_EQ(t(0, 1), 0.0);
  EXPECT_NEAR(t(0, 2), 1.0, 1e-6);
  Matrix s = m;
  ApplyActivationInPlace(Activation::kSigmoid, &s);
  EXPECT_NEAR(s(0, 0), 0.0, 1e-4);
  EXPECT_DOUBLE_EQ(s(0, 1), 0.5);
  EXPECT_NEAR(s(0, 2), 1.0, 1e-4);
}

TEST(Activations, IdentityNoOp) {
  Matrix m{{-3.0, 5.0}};
  const Matrix copy = m;
  ApplyActivationInPlace(Activation::kIdentity, &m);
  EXPECT_TRUE(m.AllClose(copy));
}

// Derivative-from-output must match the analytic derivative at matched
// points for every activation.
class ActivationDeriv : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationDeriv, MatchesFiniteDifference) {
  const Activation act = GetParam();
  const double h = 1e-6;
  for (double x : {-1.5, -0.3, 0.4, 2.0}) {
    Matrix fwd{{x}};
    ApplyActivationInPlace(act, &fwd);
    Matrix deriv;
    ActivationDerivFromOutput(act, fwd, &deriv);
    Matrix lo{{x - h}}, hi{{x + h}};
    ApplyActivationInPlace(act, &lo);
    ApplyActivationInPlace(act, &hi);
    const double fd = (hi(0, 0) - lo(0, 0)) / (2.0 * h);
    EXPECT_NEAR(deriv(0, 0), fd, 1e-5)
        << "activation " << static_cast<int>(act) << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(All, ActivationDeriv,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kRelu,
                                           Activation::kTanh,
                                           Activation::kSigmoid));

TEST(Activations, ByName) {
  EXPECT_EQ(ActivationByName("relu"), Activation::kRelu);
  EXPECT_EQ(ActivationByName("tanh"), Activation::kTanh);
  EXPECT_EQ(ActivationByName("sigmoid"), Activation::kSigmoid);
  EXPECT_EQ(ActivationByName("identity"), Activation::kIdentity);
}

TEST(Loss, SoftmaxRowsSumToOne) {
  Matrix logits{{1.0, 2.0, 3.0}, {-5.0, 0.0, 5.0}, {100.0, 100.0, 100.0}};
  const Matrix p = Softmax(logits);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      EXPECT_GE(p(i, j), 0.0);
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Large logits must not overflow.
  EXPECT_NEAR(p(2, 0), 1.0 / 3.0, 1e-12);
}

TEST(Loss, CrossEntropyKnownValue) {
  // Uniform logits over c classes -> loss = log(c).
  Matrix logits(1, 4);
  const std::vector<int> labels = {2};
  const double loss = SoftmaxCrossEntropy(logits, labels, {0}, nullptr);
  EXPECT_NEAR(loss, std::log(4.0), 1e-12);
}

TEST(Loss, CrossEntropyGradientMatchesFiniteDifference) {
  Rng rng(3);
  Matrix logits(3, 4);
  for (std::size_t k = 0; k < logits.size(); ++k) {
    logits.data()[k] = rng.Uniform(-2.0, 2.0);
  }
  const std::vector<int> labels = {1, 3, 0};
  const std::vector<int> idx = {0, 1, 2};
  Matrix grad;
  SoftmaxCrossEntropy(logits, labels, idx, &grad);
  const double h = 1e-6;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      Matrix lo = logits, hi = logits;
      lo(i, j) -= h;
      hi(i, j) += h;
      const double fd = (SoftmaxCrossEntropy(hi, labels, idx, nullptr) -
                         SoftmaxCrossEntropy(lo, labels, idx, nullptr)) /
                        (2.0 * h);
      EXPECT_NEAR(grad(i, j), fd, 1e-6);
    }
  }
}

TEST(Loss, GradientZeroOutsideIndex) {
  Matrix logits(3, 2);
  Matrix grad;
  SoftmaxCrossEntropy(logits, {0, 1, 0}, {1}, &grad);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_DOUBLE_EQ(grad(0, j), 0.0);
    EXPECT_DOUBLE_EQ(grad(2, j), 0.0);
  }
}

TEST(Optim, AdamMinimizesQuadratic) {
  // f(w) = 0.5 ||w - target||², grad = w - target.
  Matrix w(3, 2);
  Matrix target{{1.0, -2.0}, {0.5, 3.0}, {-1.0, 0.0}};
  Adam::Options options;
  options.learning_rate = 0.1;
  Adam adam(options);
  const std::size_t slot = adam.Register(w);
  for (int iter = 0; iter < 500; ++iter) {
    Matrix grad = Sub(w, target);
    adam.BeginStep();
    adam.Step(slot, grad, &w);
  }
  EXPECT_TRUE(w.AllClose(target, 1e-3));
}

TEST(Optim, SgdMomentumMinimizesQuadratic) {
  Matrix w(2, 2);
  Matrix target{{2.0, -1.0}, {0.0, 4.0}};
  Sgd::Options options;
  options.learning_rate = 0.05;
  options.momentum = 0.9;
  Sgd sgd(options);
  const std::size_t slot = sgd.Register(w);
  for (int iter = 0; iter < 800; ++iter) {
    Matrix grad = Sub(w, target);
    sgd.Step(slot, grad, &w);
  }
  EXPECT_TRUE(w.AllClose(target, 1e-3));
}

TEST(Optim, WeightDecayShrinksParameters) {
  Matrix w(1, 1, 10.0);
  Adam::Options options;
  options.learning_rate = 0.1;
  options.weight_decay = 1.0;
  Adam adam(options);
  const std::size_t slot = adam.Register(w);
  Matrix zero_grad(1, 1);
  for (int iter = 0; iter < 300; ++iter) {
    adam.BeginStep();
    adam.Step(slot, zero_grad, &w);
  }
  EXPECT_NEAR(w(0, 0), 0.0, 0.05);
}

TEST(Mlp, GlorotInitBounded) {
  Matrix w(20, 30);
  GlorotInit(&w, 5);
  const double limit = std::sqrt(6.0 / 50.0);
  double max_abs = 0.0;
  for (std::size_t k = 0; k < w.size(); ++k) {
    max_abs = std::max(max_abs, std::abs(w.data()[k]));
  }
  EXPECT_LE(max_abs, limit);
  EXPECT_GT(max_abs, 0.2 * limit);  // not degenerate
}

TEST(Mlp, GradientsMatchFiniteDifference) {
  MlpOptions options;
  options.dims = {3, 4, 2};
  options.hidden_activation = Activation::kTanh;
  options.seed = 7;
  Mlp mlp(options);
  Rng rng(9);
  Matrix x(5, 3);
  for (std::size_t k = 0; k < x.size(); ++k) {
    x.data()[k] = rng.Uniform(-1.0, 1.0);
  }
  const std::vector<int> labels = {0, 1, 0, 1, 1};
  const std::vector<int> idx = {0, 1, 2, 3, 4};
  std::vector<Matrix> dw, db;
  mlp.LossAndGrads(x, labels, idx, &dw, &db);

  const double h = 1e-6;
  for (int layer = 0; layer < mlp.num_layers(); ++layer) {
    Matrix* w = mlp.mutable_weight(layer);
    // Spot-check a few entries per layer.
    for (std::size_t k = 0; k < std::min<std::size_t>(w->size(), 6); ++k) {
      const double original = w->data()[k];
      w->data()[k] = original + h;
      const double hi = mlp.LossAndGrads(x, labels, idx, &dw, &db);
      // dw was overwritten; recompute gradient at the original point later.
      w->data()[k] = original - h;
      std::vector<Matrix> dw2, db2;
      const double lo = mlp.LossAndGrads(x, labels, idx, &dw2, &db2);
      w->data()[k] = original;
      std::vector<Matrix> dw3, db3;
      mlp.LossAndGrads(x, labels, idx, &dw3, &db3);
      const double fd = (hi - lo) / (2.0 * h);
      EXPECT_NEAR(dw3[static_cast<std::size_t>(layer)].data()[k], fd, 1e-5)
          << "layer " << layer << " entry " << k;
    }
  }
}

TEST(Mlp, LearnsLinearlySeparableData) {
  Rng rng(11);
  const int n = 200;
  Matrix x(static_cast<std::size_t>(n), 2);
  std::vector<int> labels(static_cast<std::size_t>(n));
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(-1.0, 1.0);
    const double b = rng.Uniform(-1.0, 1.0);
    x(static_cast<std::size_t>(i), 0) = a;
    x(static_cast<std::size_t>(i), 1) = b;
    labels[static_cast<std::size_t>(i)] = (a + b > 0.0) ? 1 : 0;
    idx[static_cast<std::size_t>(i)] = i;
  }
  MlpOptions options;
  options.dims = {2, 8, 2};
  options.epochs = 300;
  options.seed = 3;
  Mlp mlp(options);
  mlp.Train(x, labels, idx, {});
  const Matrix logits = mlp.Forward(x);
  EXPECT_GT(Accuracy(logits, labels, idx), 0.95);
}

TEST(Mlp, LearnsXorWithHiddenLayer) {
  // XOR is not linearly separable; requires the hidden layer to work.
  Matrix x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<int> labels = {0, 1, 1, 0};
  const std::vector<int> idx = {0, 1, 2, 3};
  MlpOptions options;
  options.dims = {2, 8, 2};
  options.epochs = 800;
  options.learning_rate = 0.05;
  options.weight_decay = 0.0;
  options.seed = 21;
  Mlp mlp(options);
  mlp.Train(x, labels, idx, {});
  EXPECT_EQ(mlp.Predict(x), labels);
}

TEST(Mlp, HiddenRepresentationShape) {
  MlpOptions options;
  options.dims = {6, 10, 4, 3};
  Mlp mlp(options);
  Matrix x(5, 6, 0.5);
  EXPECT_EQ(mlp.HiddenRepresentation(x, 1).cols(), 10u);
  EXPECT_EQ(mlp.HiddenRepresentation(x, 2).cols(), 4u);
  EXPECT_EQ(mlp.Forward(x).cols(), 3u);
}

TEST(Mlp, ValidationSelectionKeepsBestWeights) {
  // Train long enough to overfit tiny noise data; with validation-based
  // selection the returned model should be at least as good on val as the
  // final-epoch model would be.
  Rng rng(13);
  const int n = 60;
  Matrix x(static_cast<std::size_t>(n), 4);
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 4; ++j) {
      x(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          rng.Uniform(-1.0, 1.0);
    }
    labels[static_cast<std::size_t>(i)] =
        x(static_cast<std::size_t>(i), 0) > 0 ? 1 : 0;
  }
  std::vector<int> train_idx, val_idx;
  for (int i = 0; i < n; ++i) {
    (i < 40 ? train_idx : val_idx).push_back(i);
  }
  MlpOptions options;
  options.dims = {4, 16, 2};
  options.epochs = 200;
  options.seed = 5;
  Mlp mlp(options);
  mlp.Train(x, labels, train_idx, val_idx);
  const double val_acc = Accuracy(mlp.Forward(x), labels, val_idx);
  EXPECT_GT(val_acc, 0.7);
}

TEST(Mlp, AccuracyHelper) {
  Matrix logits{{2.0, 1.0}, {0.0, 1.0}, {3.0, 0.0}};
  const std::vector<int> labels = {0, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1, 2}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {}), 0.0);
}

}  // namespace
}  // namespace gcon
