#include <gtest/gtest.h>

#include "linalg/ops.h"
#include "rng/rng.h"
#include "sparse/csr_matrix.h"

namespace gcon {
namespace {

// Random sparse matrix with ~density fraction of nonzeros, built two ways
// (dense + builder) for cross-checking.
struct SparsePair {
  CsrMatrix sparse;
  Matrix dense;
};

SparsePair RandomSparse(std::size_t rows, std::size_t cols, double density,
                        Rng* rng) {
  CooBuilder builder(rows, cols);
  Matrix dense(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng->Bernoulli(density)) {
        const double v = rng->Uniform(-2.0, 2.0);
        builder.Add(i, j, v);
        dense(i, j) = v;
      }
    }
  }
  return {builder.Build(), std::move(dense)};
}

TEST(CooBuilder, BuildsCanonicalCsr) {
  CooBuilder builder(3, 3);
  builder.Add(2, 1, 1.0);
  builder.Add(0, 2, 3.0);
  builder.Add(0, 0, 2.0);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
  // Column indices strictly increasing per row.
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::int64_t k = m.row_ptr()[i] + 1; k < m.row_ptr()[i + 1]; ++k) {
      EXPECT_LT(m.col_idx()[static_cast<std::size_t>(k - 1)],
                m.col_idx()[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(CooBuilder, MergesDuplicates) {
  CooBuilder builder(2, 2);
  builder.Add(1, 1, 1.5);
  builder.Add(1, 1, 2.5);
  builder.Add(1, 1, -1.0);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 3.0);
}

TEST(CooBuilder, EmptyMatrix) {
  CooBuilder builder(4, 4);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_DOUBLE_EQ(m.At(2, 3), 0.0);
  const Matrix y = m.Multiply(Matrix(4, 2, 1.0));
  EXPECT_DOUBLE_EQ(FrobeniusNorm(y), 0.0);
}

TEST(CsrMatrix, ToDenseRoundTrip) {
  Rng rng(31);
  const auto [sparse, dense] = RandomSparse(8, 6, 0.3, &rng);
  EXPECT_TRUE(sparse.ToDense().AllClose(dense));
}

TEST(CsrMatrix, SpmmMatchesDense) {
  Rng rng(37);
  for (int trial = 0; trial < 5; ++trial) {
    const auto [sparse, dense] = RandomSparse(12, 9, 0.25, &rng);
    Matrix x(9, 4);
    for (std::size_t k = 0; k < x.size(); ++k) {
      x.data()[k] = rng.Uniform(-1.0, 1.0);
    }
    EXPECT_TRUE(sparse.Multiply(x).AllClose(MatMul(dense, x), 1e-10));
  }
}

TEST(CsrMatrix, SpmvMatchesDense) {
  Rng rng(41);
  const auto [sparse, dense] = RandomSparse(10, 10, 0.3, &rng);
  std::vector<double> x(10);
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  const auto y_sparse = sparse.Multiply(x);
  const auto y_dense = MatVec(dense, x);
  for (std::size_t i = 0; i < y_sparse.size(); ++i) {
    EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-10);
  }
}

TEST(CsrMatrix, RowSumAndColSum) {
  CooBuilder builder(3, 3);
  builder.Add(0, 0, 1.0);
  builder.Add(0, 2, 2.0);
  builder.Add(2, 0, 4.0);
  CsrMatrix m = builder.Build();
  EXPECT_DOUBLE_EQ(m.RowSum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 0.0);
  EXPECT_DOUBLE_EQ(m.ColSum(0), 5.0);
  EXPECT_DOUBLE_EQ(m.ColSum(1), 0.0);
  EXPECT_EQ(m.RowNnz(0), 2u);
  EXPECT_EQ(m.RowNnz(1), 0u);
}

TEST(CsrMatrix, TransposedMatchesDenseTranspose) {
  Rng rng(43);
  const auto [sparse, dense] = RandomSparse(7, 11, 0.3, &rng);
  EXPECT_TRUE(sparse.Transposed().ToDense().AllClose(Transpose(dense)));
}

TEST(CsrMatrix, ScaleRows) {
  Rng rng(47);
  auto [sparse, dense] = RandomSparse(5, 5, 0.4, &rng);
  const std::vector<double> scale = {1.0, 2.0, 0.0, -1.0, 0.5};
  sparse.ScaleRows(scale);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(sparse.At(i, j), dense(i, j) * scale[i], 1e-12);
    }
  }
}

// Property: SpMM distributes over input columns (each output column depends
// only on the matching input column).
class SpmmProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpmmProperty, ColumnIndependence) {
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const auto [sparse, dense] = RandomSparse(15, 15, 0.2, &rng);
  (void)dense;
  Matrix x(15, 3);
  for (std::size_t k = 0; k < x.size(); ++k) {
    x.data()[k] = rng.Uniform(-1.0, 1.0);
  }
  const Matrix full = sparse.Multiply(x);
  for (std::size_t j = 0; j < 3; ++j) {
    Matrix col(15, 1);
    for (std::size_t i = 0; i < 15; ++i) col(i, 0) = x(i, j);
    const Matrix yj = sparse.Multiply(col);
    for (std::size_t i = 0; i < 15; ++i) {
      EXPECT_NEAR(yj(i, 0), full(i, j), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmmProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace gcon
