// Server-level budget accounting: the regression suite for the
// resettable-gauge bug (a reconstructed/restarted server must show the
// LEDGER's cumulative epsilon, never the incoming artifact's own receipt),
// the no-spend-on-failed-publish contract (unreadable artifact, hostile
// header, population mismatch leave gauge AND ledger untouched), over-cap
// refusal with the old bits still serving bitwise, and the concurrent
// Publish-vs-Publish / Publish-vs-scrape races the TSan preset watches.
// All in-process (no TCP): the wire-visible shape of the same behavior is
// locked by the two conformance suites.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.h"
#include "dp/budget_ledger.h"
#include "graph/datasets.h"
#include "obs/metrics.h"
#include "propagation/cache.h"
#include "serve_test_util.h"
#include "serve/inference_session.h"
#include "serve/serve_error.h"
#include "serve/server.h"

namespace gcon {
namespace {

using serve_test::SyntheticArtifact;

double GaugeValue(const std::string& model) {
  return obs::MetricsRegistry::Global()
      .gauge("gcon_dp_epsilon", "", {{"model", model}})
      ->value();
}

std::string LedgerPath(const char* name) {
  const std::string path =
      ::testing::TempDir() + "gcon_serve_budget_test_" + name + ".ledger";
  std::remove(path.c_str());
  return path;
}

InferenceServer MakeServer(const std::string& model,
                           const GconArtifact& artifact, const Graph& graph,
                           const std::string& ledger_path,
                           double cap = 0.0) {
  std::vector<ModelRouter::NamedModel> models;
  models.push_back({model, InferenceSession(artifact, graph)});
  ServeOptions options;
  options.threads = 1;
  options.max_batch = 4;
  options.budget_ledger = ledger_path;
  options.budget_cap = cap;
  return InferenceServer(std::move(models), options);
}

TEST(ServeBudgetTest, ReconstructAndRestartPreserveLedgeredTotal) {
  // The original bug: the constructor Set() the process-global epsilon
  // gauge from the incoming artifact, so building a second server (or
  // restarting the process) silently wiped the cumulative repeated-release
  // total. With a ledger the gauge is RESTORED, not reset.
  const std::string path = LedgerPath("restart");
  const Graph graph = serve_test::TestGraph(9);
  const GconArtifact first = SyntheticArtifact(graph, {0, 2}, 8, 3);
  const GconArtifact second = SyntheticArtifact(graph, {2}, 8, 101);

  {
    InferenceServer server = MakeServer("rst", first, graph, path);
    EXPECT_DOUBLE_EQ(GaugeValue("rst"), 1.0);  // first release charged
    server.Publish("rst", InferenceSession(second, graph));
    EXPECT_DOUBLE_EQ(GaugeValue("rst"), 2.0);  // repeated release adds
  }

  // "Restart" serving the last-published bits: the ledger's charge for
  // those very bits stands — total 2.0, NOT the artifact's own 1.0.
  {
    InferenceServer server = MakeServer("rst", second, graph, path);
    EXPECT_DOUBLE_EQ(GaugeValue("rst"), 2.0);
    EXPECT_NE(server.BudgetJson().find("\"model\": \"rst\", \"epsilon\": 2,"),
              std::string::npos)
        << server.BudgetJson();
    EXPECT_TRUE(server.budget_ledger().persistent());
  }

  // "Restart" with bits the ledger never committed (an out-of-band
  // artifact) is a fresh release on the same population: charged on top.
  {
    InferenceServer server = MakeServer("rst", first, graph, path);
    EXPECT_DOUBLE_EQ(GaugeValue("rst"), 3.0);
  }
  std::remove(path.c_str());
}

TEST(ServeBudgetTest, FailedPublishLeavesGaugeAndLedgerUntouched) {
  const std::string path = LedgerPath("nospend");
  const Graph graph = serve_test::TestGraph(9);
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 3);
  InferenceServer server = MakeServer("ns", artifact, graph, path);
  const std::uint64_t fp = FingerprintGraph(graph);
  ASSERT_DOUBLE_EQ(server.budget_ledger().TotalEpsilon(fp, "ns"), 1.0);

  // Unreadable artifact: fails while loading, before any ledger touch.
  EXPECT_THROW(server.PublishFromFile("ns", "/nonexistent/no.model"),
               std::exception);
  EXPECT_DOUBLE_EQ(server.budget_ledger().TotalEpsilon(fp, "ns"), 1.0);
  EXPECT_DOUBLE_EQ(GaugeValue("ns"), 1.0);

  // Hostile header: a file that is not a model artifact.
  const std::string hostile = ::testing::TempDir() + "gcon_hostile.model";
  {
    std::ofstream out(hostile, std::ios::binary);
    out << "#!/bin/sh\nrm -rf importance\n";
  }
  EXPECT_THROW(server.PublishFromFile("ns", hostile), std::exception);
  EXPECT_DOUBLE_EQ(server.budget_ledger().TotalEpsilon(fp, "ns"), 1.0);
  EXPECT_DOUBLE_EQ(GaugeValue("ns"), 1.0);
  std::remove(hostile.c_str());

  // Population mismatch: a session over a different node count reserves,
  // fails the swap, and must be refunded (the reserve→abort path).
  const Graph bigger = serve_test::AugmentGraph(
      graph, std::vector<double>(
                 static_cast<std::size_t>(graph.feature_dim()), 0.0),
      {0});
  const GconArtifact mismatched = SyntheticArtifact(bigger, {2}, 8, 7);
  EXPECT_THROW(
      server.Publish("ns", InferenceSession(mismatched, bigger)),
      std::invalid_argument);
  const BudgetLedger::BudgetTotals totals =
      server.budget_ledger().Totals(fp, "ns");
  EXPECT_DOUBLE_EQ(totals.epsilon, 1.0);
  EXPECT_EQ(totals.publishes, 1u);
  EXPECT_DOUBLE_EQ(GaugeValue("ns"), 1.0);

  // The refunds were durable too: a reopened ledger replays to the same
  // totals (no phantom charge from the aborted reservations).
  std::remove(path.c_str());
}

TEST(ServeBudgetTest, OverCapPublishRefusedOldBitsKeepServing) {
  const Graph graph = serve_test::TestGraph(9);
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 3);
  const Matrix offline = artifact.Infer(graph);
  InferenceServer server =
      MakeServer("cap", artifact, graph, /*ledger_path=*/"", /*cap=*/1.5);

  const GconArtifact next = SyntheticArtifact(graph, {2}, 8, 404);
  try {
    server.Publish("cap", InferenceSession(next, graph));
    FAIL() << "over-cap publish was not refused";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kBudgetExhausted);
  }
  EXPECT_DOUBLE_EQ(GaugeValue("cap"), 1.0);

  // The refusal left the OLD artifact serving, bitwise.
  ServeRequest request;
  request.id = 1;
  request.model = "cap";
  request.node = 12;
  const ServeResponse response = server.Query(request);
  EXPECT_TRUE(serve_test::BitwiseEqualRow(offline, 12, response.logits));
}

TEST(ServeBudgetTest, ConcurrentPublishesAndScrapesAccountExactly) {
  // Publish-vs-Publish and Publish-vs-scrape under the sanitizer matrix:
  // two threads republish concurrently while a third scrapes the metrics
  // and budget documents. Every commit must land in the total exactly once
  // — publish_mu_ serializes reserve→swap→commit, and the gauge ends at
  // construction + one charge per publish.
  const std::string path = LedgerPath("race");
  const Graph graph = serve_test::TestGraph(9);
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 3);
  const GconArtifact other = SyntheticArtifact(graph, {2}, 8, 101);
  constexpr int kPublishesPerThread = 8;
  {
    InferenceServer server = MakeServer("race", artifact, graph, path);
    std::thread scraper([&server] {
      for (int i = 0; i < 40; ++i) {
        server.MetricsText();
        server.BudgetJson();
        server.StatsJson();
      }
    });
    std::thread publisher_a([&server, &other, &graph] {
      for (int i = 0; i < kPublishesPerThread; ++i) {
        server.Publish("race", InferenceSession(other, graph));
      }
    });
    std::thread publisher_b([&server, &artifact, &graph] {
      for (int i = 0; i < kPublishesPerThread; ++i) {
        server.Publish("race", InferenceSession(artifact, graph));
      }
    });
    scraper.join();
    publisher_a.join();
    publisher_b.join();
    const double expected = 1.0 + 2 * kPublishesPerThread;
    EXPECT_DOUBLE_EQ(GaugeValue("race"), expected);
    EXPECT_DOUBLE_EQ(server.budget_ledger().TotalEpsilon(
                         FingerprintGraph(graph), "race"),
                     expected);
  }
  // And the whole interleaving was durable: replay agrees.
  BudgetLedger replay(path);
  EXPECT_DOUBLE_EQ(replay.TotalEpsilon(FingerprintGraph(graph), "race"),
                   1.0 + 2 * kPublishesPerThread);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcon
