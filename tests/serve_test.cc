// Serving subsystem: bitwise identity of served vs offline inference
// (single, batched, under concurrent clients), multi-model routing over
// the shared-worker batcher, the micro-batcher's lifecycle (single- and
// multi-queue), the wire format, option validation, the latency histogram,
// and malformed-artifact error reporting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.h"
#include "eval/parallel.h"
#include "graph/datasets.h"
#include "model/adapters.h"
#include "nn/mlp.h"
#include "rng/rng.h"
#include "serve_test_util.h"
#include "serve/batcher.h"
#include "serve/inference_session.h"
#include "serve/latency_stats.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace gcon {
namespace {

using serve_test::BitwiseEqualRow;
using serve_test::SyntheticArtifact;
using serve_test::TestGraph;

// --- InferenceSession: the bitwise contract --------------------------------

TEST(InferenceSession, SingleQueryMatchesOfflineInferBitwise) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 3);
  const Matrix offline = artifact.Infer(graph);
  const InferenceSession session(artifact, graph);
  for (int v = 0; v < graph.num_nodes(); ++v) {
    ServeRequest request;
    request.node = v;
    EXPECT_TRUE(BitwiseEqualRow(offline, static_cast<std::size_t>(v),
                                session.QueryLogits(request)))
        << "node " << v;
  }
}

TEST(InferenceSession, BatchedQueriesMatchOfflineInferBitwise) {
  const Graph graph = TestGraph();
  // Pure one-hop steps (no 0 block) and a multi-block mix both matter.
  for (const std::vector<int>& steps :
       {std::vector<int>{2}, std::vector<int>{0, 2, 4}}) {
    const GconArtifact artifact = SyntheticArtifact(graph, steps, 8, 5);
    const Matrix offline = artifact.Infer(graph);
    const InferenceSession session(artifact, graph);
    std::vector<ServeRequest> requests(
        static_cast<std::size_t>(graph.num_nodes()));
    std::vector<const ServeRequest*> batch;
    for (int v = 0; v < graph.num_nodes(); ++v) {
      requests[static_cast<std::size_t>(v)].node = v;
      batch.push_back(&requests[static_cast<std::size_t>(v)]);
    }
    const Matrix served = session.QueryBatch(batch);
    ASSERT_EQ(served.rows(), offline.rows());
    ASSERT_EQ(served.cols(), offline.cols());
    EXPECT_EQ(std::memcmp(served.data(), offline.data(),
                          served.size() * sizeof(double)),
              0)
        << "steps size " << steps.size();
  }
}

TEST(InferenceSession, BatchCompositionDoesNotChangeBits) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 7);
  const InferenceSession session(artifact, graph);
  ServeRequest a, b, c;
  a.node = 1;
  b.node = 4;
  c.node = 1;
  const Matrix alone = session.QueryBatch({&a});
  const Matrix together = session.QueryBatch({&b, &c, &a});
  EXPECT_EQ(std::memcmp(alone.RowPtr(0), together.RowPtr(1),
                        alone.cols() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(alone.RowPtr(0), together.RowPtr(2),
                        alone.cols() * sizeof(double)),
            0);
}

TEST(InferenceSession, ExplicitEdgeListMatchesGraphAdjacency) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {2}, 8, 11);
  const InferenceSession session(artifact, graph);
  int v = 0;
  for (int u = 0; u < graph.num_nodes(); ++u) {
    if (graph.Degree(u) > 1) v = u;
  }
  ServeRequest plain;
  plain.node = v;
  ServeRequest with_edges;
  with_edges.node = v;
  with_edges.has_edges = true;
  with_edges.edges = graph.Neighbors(v);
  // Same edges (plus junk that sanitization must drop) -> same bits.
  with_edges.edges.push_back(v);    // self
  with_edges.edges.push_back(-3);   // out of range
  with_edges.edges.push_back(graph.Neighbors(v).front());  // duplicate
  EXPECT_EQ(session.QueryLogits(plain), session.QueryLogits(with_edges));

  // A different edge list must change the answer (it changes Ã_v).
  ServeRequest pruned;
  pruned.node = v;
  pruned.has_edges = true;
  EXPECT_NE(session.QueryLogits(plain), session.QueryLogits(pruned));
}

TEST(InferenceSession, ValidatesRequests) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {2}, 8, 13);
  const InferenceSession session(artifact, graph);
  ServeRequest bad;
  bad.node = graph.num_nodes();
  EXPECT_THROW(session.QueryLogits(bad), std::invalid_argument);
  bad.node = -1;
  EXPECT_THROW(session.QueryLogits(bad), std::invalid_argument);
}

TEST(InferenceSession, GenericModeServesAnyRegistryModel) {
  const Graph graph = TestGraph();
  Rng rng(21);
  const Split split = MakeSplit(TinySpec(), graph, &rng);
  auto model = BuiltinModelRegistry().Create(
      "mlp", ModelConfig{{"epochs", "30"}, {"seed", "4"}});
  model->Train(graph, split);
  const Matrix offline = model->Predict(graph);
  const InferenceSession session(*model, graph);
  EXPECT_FALSE(session.per_query());
  ServeRequest request;
  request.node = 2;
  EXPECT_TRUE(BitwiseEqualRow(offline, 2, session.QueryLogits(request)));
  request.has_edges = true;
  EXPECT_THROW(session.QueryLogits(request), std::invalid_argument);
}

// --- InferenceServer: micro-batching under concurrency ---------------------

TEST(InferenceServer, ConcurrentClientsGetBitwiseOfflineAnswers) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 17);
  const Matrix offline = artifact.Infer(graph);

  ServeOptions options;
  options.threads = 2;
  options.max_batch = 8;
  options.max_wait_us = 200;
  InferenceServer server(InferenceSession(artifact, graph), options);

  const int kClients = 4;
  const int kRounds = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        const int v = (c * 31 + r * 7) % graph.num_nodes();
        ServeRequest request;
        request.id = c * 1000 + r;
        request.node = v;
        const ServeResponse response = server.Query(request);
        if (response.id != request.id || response.node != v ||
            !BitwiseEqualRow(offline, static_cast<std::size_t>(v),
                             response.logits)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.queries_served(),
            static_cast<std::uint64_t>(kClients * kRounds));
  EXPECT_GE(server.batches_run(), 1u);
  EXPECT_LE(server.batches_run(), server.queries_served());
  const LatencyStats::Snapshot lat = server.latency();
  EXPECT_EQ(lat.count, static_cast<std::uint64_t>(kClients * kRounds));
  EXPECT_GE(lat.p99_us, lat.p50_us);
}

TEST(InferenceServer, AsyncPipelineCoalescesAndPreservesIdentity) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 19);
  const Matrix offline = artifact.Infer(graph);
  ServeOptions options;
  options.threads = 1;
  options.max_batch = 16;
  options.max_wait_us = 2000;
  InferenceServer server(InferenceSession(artifact, graph), options);

  std::vector<std::future<ServeResponse>> futures;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    ServeRequest request;
    request.id = v;
    request.node = v;
    futures.push_back(server.QueryAsync(request));
  }
  for (int v = 0; v < graph.num_nodes(); ++v) {
    const ServeResponse response =
        futures[static_cast<std::size_t>(v)].get();
    EXPECT_TRUE(BitwiseEqualRow(offline, static_cast<std::size_t>(v),
                                response.logits))
        << "node " << v;
  }
  // A pipelined burst into an idle single worker must actually batch.
  EXPECT_LT(server.batches_run(), server.queries_served());
}

TEST(InferenceServer, RejectsBadRequestsAtSubmitTime) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {2}, 8, 23);
  InferenceServer server(InferenceSession(artifact, graph), ServeOptions{});
  ServeRequest bad;
  bad.node = -5;
  EXPECT_THROW(server.Query(bad), std::invalid_argument);
  EXPECT_EQ(server.queries_served(), 0u);
}

TEST(ServeOptions, ValidateNamesTheOffendingKnob) {
  auto message_of = [](ServeOptions options) {
    try {
      options.Validate();
      return std::string();
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
  };
  ServeOptions zero_threads;
  zero_threads.threads = 0;
  EXPECT_NE(message_of(zero_threads).find("threads"), std::string::npos);
  ServeOptions negative_batch;
  negative_batch.max_batch = -4;
  EXPECT_NE(message_of(negative_batch).find("max_batch"), std::string::npos);
  ServeOptions zero_wait;
  zero_wait.max_wait_us = 0;
  EXPECT_NE(message_of(zero_wait).find("max_wait_us"), std::string::npos);
  EXPECT_TRUE(message_of(ServeOptions{}).empty());
}

TEST(MicroBatcher, StopDrainsAndRejectsLateSubmissions) {
  ServeOptions options;
  options.threads = 2;
  options.max_batch = 4;
  MicroBatcher batcher(options, [](std::vector<PendingQuery*>& batch) {
    for (PendingQuery* p : batch) {
      p->response.label = p->request.node;
    }
  });
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 20; ++i) {
    ServeRequest request;
    request.node = i;
    futures.push_back(batcher.Submit(request));
  }
  batcher.Stop();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().label, i);
  }
  ServeRequest late;
  late.node = 0;
  EXPECT_THROW(batcher.Submit(late), std::runtime_error);
}

// --- Multi-model routing ---------------------------------------------------

TEST(ModelRouter, ResolvesNamesAndRejectsBadSets) {
  const Graph graph = TestGraph();
  auto make = [&](std::vector<std::pair<std::string, std::uint64_t>> specs) {
    std::vector<ModelRouter::NamedModel> models;
    for (const auto& [name, seed] : specs) {
      models.push_back(
          {name, InferenceSession(SyntheticArtifact(graph, {2}, 8, seed),
                                  graph)});
    }
    return models;
  };
  const ModelRouter router(make({{"a", 1}, {"b", 2}}));
  EXPECT_EQ(router.size(), 2);
  EXPECT_EQ(router.Resolve(""), 0);  // default = first-listed
  EXPECT_EQ(router.Resolve("a"), 0);
  EXPECT_EQ(router.Resolve("b"), 1);
  EXPECT_EQ(router.Find("zzz"), -1);
  EXPECT_EQ(router.default_model(), "a");
  EXPECT_EQ(router.NameList(), "a, b");
  try {
    router.Resolve("zzz");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("zzz"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("a, b"), std::string::npos);
  }

  EXPECT_THROW(ModelRouter({}), std::invalid_argument);
  EXPECT_THROW(ModelRouter(make({{"a", 1}, {"a", 2}})),
               std::invalid_argument);
  EXPECT_THROW(ModelRouter(make({{"", 1}})), std::invalid_argument);
  EXPECT_THROW(ModelRouter(make({{"bad name", 1}})), std::invalid_argument);
  EXPECT_THROW(ModelRouter(make({{"bad\"quote", 1}})),
               std::invalid_argument);
}

TEST(InferenceServer, RoutesQueriesToNamedModelsBitwise) {
  // Two different artifacts served from one process; every response must be
  // bitwise identical to ITS model's offline inference — a routing slip
  // would surface as the other model's (different) bits.
  const Graph graph = TestGraph();
  const GconArtifact artifact_a = SyntheticArtifact(graph, {0, 2}, 8, 51);
  const GconArtifact artifact_b = SyntheticArtifact(graph, {2}, 8, 151);
  const Matrix offline_a = artifact_a.Infer(graph);
  const Matrix offline_b = artifact_b.Infer(graph);

  std::vector<ModelRouter::NamedModel> models;
  models.push_back({"a", InferenceSession(artifact_a, graph)});
  models.push_back({"b", InferenceSession(artifact_b, graph)});
  ServeOptions options;
  options.threads = 2;
  options.max_batch = 8;
  InferenceServer server(std::move(models), options);

  const int kClients = 4;
  const int kRounds = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        const int v = (c * 29 + r * 5) % graph.num_nodes();
        ServeRequest request;
        request.id = c * 1000 + r;
        request.node = v;
        const bool use_b = (c + r) % 2 == 1;
        request.model = use_b ? "b" : "a";
        const ServeResponse response = server.Query(request);
        const Matrix& offline = use_b ? offline_b : offline_a;
        if (!BitwiseEqualRow(offline, static_cast<std::size_t>(v),
                             response.logits)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.queries_served(),
            static_cast<std::uint64_t>(kClients * kRounds));
  // Aggregate latency merges both models' histograms.
  EXPECT_EQ(server.latency().count,
            static_cast<std::uint64_t>(kClients * kRounds));
  EXPECT_EQ(server.latency(0).count + server.latency(1).count,
            server.latency().count);

  // Unknown model: rejected at submit with the serving list, not queued.
  ServeRequest unknown;
  unknown.node = 0;
  unknown.model = "zzz";
  EXPECT_THROW(server.Query(unknown), std::invalid_argument);

  // Per-model breakdown appears in the stats line.
  const std::string stats = server.StatsJson();
  EXPECT_NE(stats.find("\"models\": [{\"name\": \"a\", "), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("{\"name\": \"b\", "), std::string::npos) << stats;
}

TEST(InferenceServer, EmptyModelFieldRoutesToDefault) {
  const Graph graph = TestGraph();
  const GconArtifact artifact_a = SyntheticArtifact(graph, {2}, 8, 61);
  const GconArtifact artifact_b = SyntheticArtifact(graph, {2}, 8, 161);
  const Matrix offline_a = artifact_a.Infer(graph);
  std::vector<ModelRouter::NamedModel> models;
  models.push_back({"first", InferenceSession(artifact_a, graph)});
  models.push_back({"second", InferenceSession(artifact_b, graph)});
  InferenceServer server(std::move(models), ServeOptions{});
  ServeRequest request;
  request.node = 5;  // no model named: the first-listed one answers
  EXPECT_TRUE(BitwiseEqualRow(offline_a, 5, server.Query(request).logits));
}

TEST(MicroBatcher, MultiQueueSharesWorkersAndKeepsPerQueueCounters) {
  ServeOptions options;
  options.threads = 2;
  options.max_batch = 4;
  // Queue handlers stamp which queue ran the batch; a cross-queue batch
  // would mislabel every query in it.
  std::vector<MicroBatcher::BatchHandler> handlers;
  for (int q = 0; q < 3; ++q) {
    handlers.push_back([q](std::vector<PendingQuery*>& batch) {
      for (PendingQuery* p : batch) p->response.label = q;
    });
  }
  MicroBatcher batcher(options, std::move(handlers));
  ASSERT_EQ(batcher.num_queues(), 3u);
  std::vector<std::pair<std::size_t, std::future<ServeResponse>>> futures;
  for (int i = 0; i < 60; ++i) {
    const std::size_t queue = static_cast<std::size_t>(i % 3);
    ServeRequest request;
    request.node = i;
    futures.emplace_back(queue, batcher.Submit(queue, request));
  }
  for (auto& [queue, future] : futures) {
    EXPECT_EQ(future.get().label, static_cast<int>(queue));
  }
  EXPECT_EQ(batcher.queries_served(), 60u);
  EXPECT_EQ(batcher.queries_served(0), 20u);
  EXPECT_EQ(batcher.queries_served(1), 20u);
  EXPECT_EQ(batcher.queries_served(2), 20u);
  EXPECT_EQ(batcher.batches_run(),
            batcher.batches_run(0) + batcher.batches_run(1) +
                batcher.batches_run(2));
  EXPECT_EQ(batcher.latency(0).Summarize().count, 20u);
  batcher.Stop();
}

// --- Wire format -----------------------------------------------------------

TEST(Wire, ParsesQueryWithEdges) {
  WireCommand command;
  ServeRequest request;
  std::string error;
  ASSERT_TRUE(ParseWireRequest(
      "{\"id\": 42, \"node\": 7, \"edges\": [1, 5, 9]}", &command, &request,
      &error))
      << error;
  EXPECT_EQ(command, WireCommand::kQuery);
  EXPECT_EQ(request.id, 42);
  EXPECT_EQ(request.node, 7);
  EXPECT_TRUE(request.has_edges);
  EXPECT_EQ(request.edges, (std::vector<int>{1, 5, 9}));
}

TEST(Wire, ParsesMinimalAndCommandForms) {
  WireCommand command;
  ServeRequest request;
  std::string error;
  ASSERT_TRUE(ParseWireRequest("{\"node\":3}", &command, &request, &error));
  EXPECT_EQ(request.node, 3);
  EXPECT_FALSE(request.has_edges);
  ASSERT_TRUE(ParseWireRequest("{\"edges\": [], \"node\": 0}", &command,
                               &request, &error));
  EXPECT_TRUE(request.has_edges);
  EXPECT_TRUE(request.edges.empty());
  ASSERT_TRUE(
      ParseWireRequest("{\"cmd\": \"stats\"}", &command, &request, &error));
  EXPECT_EQ(command, WireCommand::kStats);
  ASSERT_TRUE(
      ParseWireRequest("{\"cmd\": \"quit\"}", &command, &request, &error));
  EXPECT_EQ(command, WireCommand::kQuit);
}

TEST(Wire, RejectsMalformedLinesWithReasonAndRecoveredId) {
  WireCommand command;
  ServeRequest request;
  std::string error;
  EXPECT_FALSE(ParseWireRequest("predict 5", &command, &request, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseWireRequest("{\"id\": 9, \"nodes\": 1}", &command,
                                &request, &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_EQ(request.id, 9);  // recovered for the error response
  EXPECT_FALSE(ParseWireRequest("{}", &command, &request, &error));
  EXPECT_NE(error.find("node"), std::string::npos);
  EXPECT_FALSE(ParseWireRequest("{\"node\": 1} trailing", &command, &request,
                                &error));
}

TEST(Wire, ResponseRoundTripsDoublesExactly) {
  ServeResponse response;
  response.id = 3;
  response.node = 1;
  response.label = 0;
  response.logits = {1.0 / 3.0, -123456.789012345678, 1e-17};
  const std::string line = FormatWireResponse(response);
  // A client parsing the 17-digit decimals must recover the exact bits.
  std::istringstream nums(line.substr(line.find('[') + 1));
  double a = 0, b = 0, c = 0;
  char comma;
  nums >> a >> comma >> b >> comma >> c;
  EXPECT_EQ(a, response.logits[0]);
  EXPECT_EQ(b, response.logits[1]);
  EXPECT_EQ(c, response.logits[2]);
}

// --- Latency histogram -----------------------------------------------------

TEST(LatencyStats, BucketsBoundRelativeError) {
  for (std::uint64_t us :
       {0ull, 1ull, 7ull, 8ull, 100ull, 4096ull, 1000000ull}) {
    const int bucket = LatencyStats::BucketIndex(us);
    EXPECT_GE(LatencyStats::BucketUpperBound(bucket), us) << us;
    if (us >= 8) {
      EXPECT_LE(static_cast<double>(LatencyStats::BucketUpperBound(bucket)),
                static_cast<double>(us) * 1.125 + 1.0)
          << us;
    }
  }
}

TEST(LatencyStats, PercentilesOrderAndCount) {
  LatencyStats stats;
  for (int i = 1; i <= 1000; ++i) stats.Record(static_cast<double>(i));
  const LatencyStats::Snapshot snap = stats.Summarize();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_LE(snap.p50_us, snap.p95_us);
  EXPECT_LE(snap.p95_us, snap.p99_us);
  EXPECT_LE(snap.p99_us, snap.max_us);
  EXPECT_NEAR(snap.p50_us, 500.0, 500.0 * 0.15);
  EXPECT_NEAR(snap.p99_us, 990.0, 990.0 * 0.15);
  EXPECT_NEAR(snap.mean_us, 500.5, 1.0);
  EXPECT_EQ(snap.max_us, 1000.0);
}

// --- WorkerPool (the persistent pool ParallelFor now rides on) -------------

TEST(WorkerPool, ReusesResidentThreadsAcrossJobs) {
  WorkerPool pool;
  std::atomic<int> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.Run(16, 4, [&](int i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 50 * (15 * 16 / 2));
  // 4-way jobs need 3 extra workers; the pool must not have spawned one
  // thread per job.
  EXPECT_EQ(pool.resident_workers(), 3);
}

TEST(WorkerPool, NestedRunExecutesInline) {
  WorkerPool pool;
  std::atomic<int> inner_total{0};
  pool.Run(4, 4, [&](int) {
    // A nested Run on a pool thread must not deadlock on the job lock.
    pool.Run(8, 4, [&](int j) { inner_total.fetch_add(j); });
  });
  EXPECT_EQ(inner_total.load(), 4 * (7 * 8 / 2));
}

// --- Malformed artifacts (LoadModel error reporting) -----------------------

TEST(InferenceSession, InconsistentArtifactThrowsNotAborts) {
  const Graph graph = TestGraph();
  GconArtifact no_steps = SyntheticArtifact(graph, {0, 2}, 8, 31);
  no_steps.steps.clear();
  EXPECT_THROW(InferenceSession(std::move(no_steps), graph),
               std::runtime_error);
  GconArtifact bad_theta = SyntheticArtifact(graph, {0, 2}, 8, 31);
  bad_theta.theta = Matrix(3, 3);
  EXPECT_THROW(InferenceSession(std::move(bad_theta), graph),
               std::runtime_error);
}

TEST(InferenceSession, FromFileNamesPathOnInconsistentArtifact) {
  // Parseable but unservable ("steps 0"): the error must carry the file
  // path, not abort past the CLI's reporting.
  const Graph graph = TestGraph();
  GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 33);
  artifact.steps.clear();
  const std::string path = "/tmp/gcon_serve_no_steps.model";
  SaveModel(artifact, path);
  try {
    InferenceSession::FromFile(path, graph);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("steps"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ModelIoErrors, MissingFileThrowsWithPath) {
  try {
    LoadModel("/tmp/gcon_no_such_artifact.model");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/tmp/gcon_no_such_artifact.model"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(ModelIoErrors, WrongMagicNamesTheProblem) {
  const std::string path = "/tmp/gcon_serve_bad_magic.model";
  {
    std::ofstream out(path);
    out << "not-a-model v9\njunk\n";
  }
  try {
    LoadModel(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ModelIoErrors, TruncatedArtifactThrowsNotAborts) {
  const Graph graph = TestGraph();
  const GconArtifact artifact = SyntheticArtifact(graph, {0, 2}, 8, 29);
  const std::string path = "/tmp/gcon_serve_truncated.model";
  SaveModel(artifact, path);
  std::ifstream in(path);
  std::stringstream whole;
  whole << in.rdbuf();
  const std::string full = whole.str();
  in.close();
  // Cut inside the theta block and inside the embedded MLP block: both
  // sides of the LoadMlp boundary must throw, with the path attached.
  for (double fraction : {0.35, 0.9}) {
    std::ofstream out(path);
    out << full.substr(0, static_cast<std::size_t>(
                              static_cast<double>(full.size()) * fraction));
    out.close();
    try {
      LoadModel(path);
      FAIL() << "expected std::runtime_error at fraction " << fraction;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
          << e.what();
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcon
