// Wire-parser fuzz/property suite: a seeded generator throws random byte
// strings and near-valid JSON mutations at the serve/wire.cc parse path.
// Properties, for every input:
//   * no crash, no hang (the suite's own runtime is the watchdog — every
//     parse is O(line length) or the 10k-iteration loops would time out);
//   * a rejected line always carries a non-empty error naming the defect,
//     and the error formats into a wire line with an "error" field;
//   * an accepted line is internally consistent (a query has a node or
//     features; a command is one of the known verbs);
//   * parsing is deterministic (same line -> same outcome twice);
//   * RecoverWireId never crashes and agrees with the full parser on
//     well-formed ids.
// Runs under the ThreadSanitizer CI job too — the parser must stay free of
// global mutable state.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rng/rng.h"
#include "serve/wire.h"

namespace gcon {
namespace {

/// Valid lines the mutator starts from — one per request shape the
/// protocol supports.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string> corpus = {
      "{\"id\": 7, \"node\": 12}",
      "{\"node\":3}",
      "{\"id\": 8, \"node\": 3, \"edges\": [1, 5, 9]}",
      "{\"edges\": [], \"node\": 0}",
      "{\"id\": 21, \"features\": [0.5, 1.0, 0.25], \"edges\": [0, 5]}",
      "{\"id\": 1, \"features\": [1e-3, -2.5E2, +4., 0]}",
      "{\"id\": 9, \"model\": \"alt\", \"node\": 4}",
      "{\"model\": \"default\", \"features\": [1, 2]}",
      "{\"cmd\": \"stats\"}",
      "{\"cmd\": \"list_models\"}",
      "{\"cmd\": \"quit\"}",
      "{\"cmd\": \"drain\"}",
      "{\"cmd\": \"publish\", \"model\": \"alt\", \"path\": \"/tmp/a.model\"}",
      "{\"id\": 5, \"node\": 2, \"deadline_us\": 2500}",
      "{\"id\": -3, \"node\": 0}",
      "{}",
  };
  return corpus;
}

/// Checks every property a single parse must uphold, whatever the input.
void CheckParseProperties(const std::string& line) {
  WireCommand command = WireCommand::kQuery;
  ServeRequest request;
  std::string error;
  const bool ok = ParseWireRequest(line, &command, &request, &error);
  if (ok) {
    if (command == WireCommand::kQuery) {
      // The parser's acceptance contract: a query line named a node or
      // carried features (range/length checks are the session's job), and
      // any deadline it carries is positive.
      EXPECT_TRUE(request.node != -1 || request.has_features) << line;
      EXPECT_GE(request.deadline_us, 0) << line;
    } else {
      EXPECT_TRUE(command == WireCommand::kStats ||
                  command == WireCommand::kListModels ||
                  command == WireCommand::kQuit ||
                  command == WireCommand::kPublish ||
                  command == WireCommand::kDrain)
          << line;
      // publish is the only verb that may carry a path, and must.
      EXPECT_EQ(command == WireCommand::kPublish, !request.path.empty())
          << line;
    }
  } else {
    // Every rejection names its defect, and the defect formats into an
    // error line a client can parse.
    EXPECT_FALSE(error.empty()) << "silent rejection of: " << line;
    const std::string wire = FormatWireError(request.id, error);
    EXPECT_NE(wire.find("\"error\": \""), std::string::npos) << line;
    EXPECT_EQ(wire.back(), '}') << line;
  }

  // Determinism: a second parse agrees byte-for-byte in outcome.
  WireCommand command2 = WireCommand::kQuery;
  ServeRequest request2;
  std::string error2;
  EXPECT_EQ(ParseWireRequest(line, &command2, &request2, &error2), ok);
  EXPECT_EQ(error2, error);
  if (ok) {
    EXPECT_EQ(command2, command);
    EXPECT_EQ(request2.id, request.id);
    EXPECT_EQ(request2.node, request.node);
    EXPECT_EQ(request2.edges, request.edges);
    EXPECT_EQ(request2.features, request.features);
    EXPECT_EQ(request2.model, request.model);
    EXPECT_EQ(request2.deadline_us, request.deadline_us);
    EXPECT_EQ(request2.path, request.path);
  }

  // The id recovery scan must accept anything without crashing.
  std::int64_t id = 0;
  RecoverWireId(line, &id);
}

TEST(ServeWireFuzz, RandomByteStringsNeverCrashAndAlwaysExplain) {
  Rng rng(0xF0220527u);  // seeded: a failure reproduces exactly
  for (int i = 0; i < 10000; ++i) {
    const int length = static_cast<int>(rng.NextUint64() % 160);
    std::string line;
    line.reserve(static_cast<std::size_t>(length));
    for (int b = 0; b < length; ++b) {
      // Any byte but '\n' (the framing layer strips newlines) and '\0'
      // only because std::string inputs in production arrive NUL-free.
      char c = static_cast<char>(rng.NextUint64() % 255 + 1);
      if (c == '\n') c = ' ';
      line.push_back(c);
    }
    CheckParseProperties(line);
  }
}

TEST(ServeWireFuzz, StructuredGarbageStaysRejectedWithReasons) {
  // Random splices of JSON-ish tokens: closer to the parser's branches
  // than raw bytes, so the error paths all, not just the first, get hit.
  static const char* kTokens[] = {
      "{",    "}",        "[",       "]",      ":",       ",",
      "\"id\"", "\"node\"", "\"edges\"", "\"features\"", "\"model\"",
      "\"cmd\"", "\"stats\"", "\"quit\"", "\"list_models\"", "\"\"",
      "\"deadline_us\"", "\"path\"", "\"publish\"", "\"drain\"",
      "0",    "1",        "-7",      "3.5",    "1e9",     "nan",
      " ",    "\t",       "\"x",     "x\"",    "null",    "--",
  };
  constexpr int kTokenCount =
      static_cast<int>(sizeof(kTokens) / sizeof(kTokens[0]));
  Rng rng(0xBADC0DEu);
  for (int i = 0; i < 10000; ++i) {
    const int pieces = 1 + static_cast<int>(rng.NextUint64() % 12);
    std::string line;
    for (int p = 0; p < pieces; ++p) {
      line += kTokens[rng.NextUint64() % kTokenCount];
    }
    CheckParseProperties(line);
  }
}

TEST(ServeWireFuzz, MutatedValidLinesNeverCrashAndAlwaysExplain) {
  Rng rng(0x5EEDF00Du);
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 10000; ++i) {
    std::string line = Corpus()[rng.NextUint64() % Corpus().size()];
    const int mutations = 1 + static_cast<int>(rng.NextUint64() % 4);
    for (int m = 0; m < mutations && !line.empty(); ++m) {
      const std::size_t at = rng.NextUint64() % line.size();
      switch (rng.NextUint64() % 4) {
        case 0:  // substitute a random byte
          line[at] = static_cast<char>(rng.NextUint64() % 255 + 1);
          if (line[at] == '\n') line[at] = '{';
          break;
        case 1:  // delete
          line.erase(at, 1);
          break;
        case 2:  // insert a random byte
          line.insert(at, 1, static_cast<char>(rng.NextUint64() % 94 + 33));
          break;
        case 3:  // truncate (the torn-write shape)
          line.resize(at);
          break;
      }
    }
    WireCommand command;
    ServeRequest request;
    std::string error;
    if (ParseWireRequest(line, &command, &request, &error)) {
      ++accepted;
    } else {
      ++rejected;
    }
    CheckParseProperties(line);
  }
  // Sanity on the generator itself: mutations must both break lines (the
  // error paths get exercised) and sometimes leave them valid (the happy
  // path stays in the loop too).
  EXPECT_GT(rejected, 1000);
  EXPECT_GT(accepted, 100);
}

TEST(ServeWireFuzz, RecoveredIdAgreesWithFullParserOnValidLines) {
  Rng rng(0x1D5EEDu);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t id =
        static_cast<std::int64_t>(rng.NextUint64() % 1000000);
    const std::string line =
        "{\"id\": " + std::to_string(id) + ", \"node\": 3}";
    WireCommand command;
    ServeRequest request;
    std::string error;
    ASSERT_TRUE(ParseWireRequest(line, &command, &request, &error)) << error;
    EXPECT_EQ(request.id, id);
    std::int64_t recovered = 0;
    ASSERT_TRUE(RecoverWireId(line, &recovered));
    EXPECT_EQ(recovered, id);
  }
}

TEST(ServeWireFuzz, DeepOrLongInputsStayLinear) {
  // Pathological shapes that would expose quadratic scans or unbounded
  // recursion: a very long key, a huge flat array, a run of braces. The
  // parse must finish (fast) and reject with a reason.
  std::string long_key = "{\"";
  long_key.append(100000, 'k');
  long_key += "\": 1}";
  CheckParseProperties(long_key);

  std::string big_array = "{\"node\": 1, \"edges\": [";
  for (int i = 0; i < 50000; ++i) {
    big_array += (i == 0 ? "" : ",");
    big_array += std::to_string(i % 977);
  }
  big_array += "]}";
  CheckParseProperties(big_array);

  CheckParseProperties(std::string(200000, '{'));
  CheckParseProperties("{\"features\": [" + std::string(100000, '.') + "]}");
}

}  // namespace
}  // namespace gcon
