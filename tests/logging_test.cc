// Pins the logging contract stated in common/logging.h: each record is
// buffered in full and flushed to stderr as a SINGLE write(), so records
// from concurrent threads never interleave mid-line. N threads log M
// records each through a pipe dup2'd over stderr; every captured line must
// be exactly one intact record. Runs under the TSan preset like every
// test, which also covers the flush path for data races.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace gcon {
namespace {

TEST(LoggingTest, ConcurrentRecordsNeverInterleave) {
  // 8 * 40 records of ~90 bytes ≈ 29 KB — comfortably inside the default
  // 64 KB pipe buffer, so the writers cannot block on a full pipe while
  // the test is not yet reading.
  constexpr int kThreads = 8;
  constexpr int kMessages = 40;

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const int saved_stderr = ::dup(STDERR_FILENO);
  ASSERT_GE(saved_stderr, 0);
  ASSERT_GE(::dup2(pipe_fds[1], STDERR_FILENO), 0);
  ::close(pipe_fds[1]);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int m = 0; m < kMessages; ++m) {
        // ERROR so the record passes any configured threshold.
        GCON_LOG(ERROR) << "marker t=" << t << " m=" << m
                        << " pad=0123456789abcdef tail";
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Restore stderr (closing the pipe's last write end) BEFORE reading so
  // the capture read loop sees EOF.
  ASSERT_GE(::dup2(saved_stderr, STDERR_FILENO), 0);
  ::close(saved_stderr);

  std::string captured;
  char chunk[4096];
  ssize_t got;
  while ((got = ::read(pipe_fds[0], chunk, sizeof(chunk))) > 0) {
    captured.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(pipe_fds[0]);

  // Split into lines; every line holding a marker must hold exactly one,
  // intact from "marker" to the trailing "tail".
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < captured.size()) {
    const std::size_t eol = captured.find('\n', start);
    if (eol == std::string::npos) {
      lines.push_back(captured.substr(start));
      break;
    }
    lines.push_back(captured.substr(start, eol - start));
    start = eol + 1;
  }

  int marker_lines = 0;
  for (const std::string& line : lines) {
    const std::size_t first = line.find("marker t=");
    if (first == std::string::npos) continue;
    ++marker_lines;
    EXPECT_EQ(line.find("marker t=", first + 1), std::string::npos)
        << "two records share a line: " << line;
    EXPECT_EQ(line.substr(line.size() - 4), "tail")
        << "record truncated mid-line: " << line;
  }
  EXPECT_EQ(marker_lines, kThreads * kMessages);

  // Every (thread, message) pair landed exactly once.
  for (int t = 0; t < kThreads; ++t) {
    for (int m = 0; m < kMessages; ++m) {
      const std::string needle = "marker t=" + std::to_string(t) +
                                 " m=" + std::to_string(m) + " pad=";
      int count = 0;
      for (std::size_t pos = captured.find(needle); pos != std::string::npos;
           pos = captured.find(needle, pos + 1)) {
        ++count;
      }
      ASSERT_EQ(count, 1) << needle;
    }
  }
}

}  // namespace
}  // namespace gcon
