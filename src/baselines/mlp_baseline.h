// MLP baseline: features-only classifier.
//
// Never reads the edge set, so it satisfies edge DP at every budget — the
// paper uses it as the "no graph information" floor in Figure 1.
#ifndef GCON_BASELINES_MLP_BASELINE_H_
#define GCON_BASELINES_MLP_BASELINE_H_

#include <cstdint>
#include <memory>

#include "graph/graph.h"
#include "graph/splits.h"
#include "linalg/matrix.h"
#include "nn/mlp.h"

namespace gcon {

struct MlpBaselineOptions {
  int hidden = 32;
  int epochs = 200;
  double learning_rate = 0.01;
  double weight_decay = 1e-5;
  std::uint64_t seed = 1;
};

/// Trains a 2-layer MLP on node features and returns logits for all nodes
/// (computed as one Forward on the final weights). When `trained` is
/// non-null it receives the fitted network, so callers can persist it or
/// serve other feature matrices — recomputing Forward on the same inputs
/// reproduces the returned logits bitwise.
Matrix TrainMlpAndPredict(const Graph& graph, const Split& split,
                          const MlpBaselineOptions& options,
                          std::unique_ptr<Mlp>* trained = nullptr);

}  // namespace gcon

#endif  // GCON_BASELINES_MLP_BASELINE_H_
