// MLP baseline: features-only classifier.
//
// Never reads the edge set, so it satisfies edge DP at every budget — the
// paper uses it as the "no graph information" floor in Figure 1.
#ifndef GCON_BASELINES_MLP_BASELINE_H_
#define GCON_BASELINES_MLP_BASELINE_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/splits.h"
#include "linalg/matrix.h"

namespace gcon {

struct MlpBaselineOptions {
  int hidden = 32;
  int epochs = 200;
  double learning_rate = 0.01;
  double weight_decay = 1e-5;
  std::uint64_t seed = 1;
};

/// Trains a 2-layer MLP on node features and returns logits for all nodes.
Matrix TrainMlpAndPredict(const Graph& graph, const Split& split,
                          const MlpBaselineOptions& options);

}  // namespace gcon

#endif  // GCON_BASELINES_MLP_BASELINE_H_
