#include "baselines/mlp_baseline.h"

namespace gcon {

Matrix TrainMlpAndPredict(const Graph& graph, const Split& split,
                          const MlpBaselineOptions& options,
                          std::unique_ptr<Mlp>* trained) {
  MlpOptions mlp_options;
  mlp_options.dims = {graph.feature_dim(), options.hidden,
                      graph.num_classes()};
  mlp_options.hidden_activation = Activation::kRelu;
  mlp_options.learning_rate = options.learning_rate;
  mlp_options.weight_decay = options.weight_decay;
  mlp_options.epochs = options.epochs;
  mlp_options.seed = options.seed;
  auto mlp = std::make_unique<Mlp>(mlp_options);
  mlp->Train(graph.features(), graph.labels(), split.train, split.val);
  Matrix logits = mlp->Forward(graph.features());
  if (trained != nullptr) {
    *trained = std::move(mlp);
  }
  return logits;
}

}  // namespace gcon
