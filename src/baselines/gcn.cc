#include "baselines/gcn.h"

#include <cmath>

#include "common/check.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optim.h"
#include "propagation/cache.h"

namespace gcon {

CsrMatrix SymmetricNormalizedAdjacency(const Graph& graph) {
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  std::vector<double> inv_sqrt_deg(n);
  for (int v = 0; v < graph.num_nodes(); ++v) {
    inv_sqrt_deg[static_cast<std::size_t>(v)] =
        1.0 / std::sqrt(static_cast<double>(graph.Degree(v)) + 1.0);
  }
  CooBuilder builder(n, n);
  builder.Reserve(2 * graph.num_edges() + n);
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const double di = inv_sqrt_deg[static_cast<std::size_t>(i)];
    builder.Add(static_cast<std::size_t>(i), static_cast<std::size_t>(i),
                di * di);
    for (int j : graph.Neighbors(i)) {
      builder.Add(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                  di * inv_sqrt_deg[static_cast<std::size_t>(j)]);
    }
  }
  return builder.Build();
}

Matrix TrainGcnAndPredict(const Graph& graph, const Split& split,
                          const GcnOptions& options) {
  GCON_CHECK(!split.train.empty());
  // Memoized through the generic cache hook: GCN repeats on the same graph
  // hit; DPGCN's per-(seed, epsilon) perturbed graphs mostly miss and age
  // out of the LRU — correctness is by fingerprint either way. Hold the
  // CachedCsr (not a copy, not a bare reference): it shares ownership with
  // the cache and may be the sole owner when the cache is disabled.
  const PropagationCache::CachedCsr cached_adj =
      PropagationCache::Global().Csr(
          "sym_norm_adj", FingerprintGraph(graph),
          [&] { return SymmetricNormalizedAdjacency(graph); });
  const CsrMatrix& adj = *cached_adj.csr;
  const Matrix& x = graph.features();
  const int c = graph.num_classes();

  // Layer parameters.
  Matrix w1(static_cast<std::size_t>(graph.feature_dim()),
            static_cast<std::size_t>(options.hidden));
  Matrix b1(1, static_cast<std::size_t>(options.hidden));
  Matrix w2(static_cast<std::size_t>(options.hidden),
            static_cast<std::size_t>(c));
  Matrix b2(1, static_cast<std::size_t>(c));
  GlorotInit(&w1, options.seed + 11);
  GlorotInit(&w2, options.seed + 23);

  // S = Â X is constant across epochs — precompute.
  const Matrix s = adj.Multiply(x);

  Adam::Options adam_options;
  adam_options.learning_rate = options.learning_rate;
  adam_options.weight_decay = options.weight_decay;
  Adam adam(adam_options);
  const std::size_t w1_slot = adam.Register(w1);
  const std::size_t b1_slot = adam.Register(b1);
  const std::size_t w2_slot = adam.Register(w2);
  const std::size_t b2_slot = adam.Register(b2);

  auto forward = [&](Matrix* hidden_out) -> Matrix {
    Matrix h = MatMul(s, w1);
    for (std::size_t i = 0; i < h.rows(); ++i) {
      double* row = h.RowPtr(i);
      for (std::size_t j = 0; j < h.cols(); ++j) row[j] += b1(0, j);
    }
    ApplyActivationInPlace(Activation::kRelu, &h);
    Matrix s2 = adj.Multiply(h);
    Matrix logits = MatMul(s2, w2);
    for (std::size_t i = 0; i < logits.rows(); ++i) {
      double* row = logits.RowPtr(i);
      for (std::size_t j = 0; j < logits.cols(); ++j) row[j] += b2(0, j);
    }
    if (hidden_out != nullptr) *hidden_out = std::move(h);
    return logits;
  };

  double best_val = -1.0;
  Matrix best_w1 = w1, best_b1 = b1, best_w2 = w2, best_b2 = b2;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Matrix h;
    const Matrix logits = forward(&h);
    Matrix dlogits;
    SoftmaxCrossEntropy(logits, graph.labels(), split.train, &dlogits);

    // Backward. logits = Â h W2 + b2; Â is symmetric.
    const Matrix da_dlogits = adj.Multiply(dlogits);  // Âᵀ dlogits = Â dlogits
    const Matrix s2 = adj.Multiply(h);
    Matrix dw2 = MatMulTransA(s2, dlogits);
    Matrix db2(1, dlogits.cols());
    for (std::size_t j = 0; j < dlogits.cols(); ++j) {
      db2(0, j) = ColSum(dlogits, j);
    }
    Matrix dh = MatMulTransB(da_dlogits, w2);
    Matrix relu_mask;
    ActivationDerivFromOutput(Activation::kRelu, h, &relu_mask);
    dh = Hadamard(dh, relu_mask);
    Matrix dw1 = MatMulTransA(s, dh);
    Matrix db1(1, dh.cols());
    for (std::size_t j = 0; j < dh.cols(); ++j) {
      db1(0, j) = ColSum(dh, j);
    }

    adam.BeginStep();
    adam.Step(w1_slot, dw1, &w1);
    adam.Step(b1_slot, db1, &b1);
    adam.Step(w2_slot, dw2, &w2);
    adam.Step(b2_slot, db2, &b2);

    if (!split.val.empty() &&
        (epoch % options.eval_every == 0 || epoch + 1 == options.epochs)) {
      const Matrix val_logits = forward(nullptr);
      const double acc = Accuracy(val_logits, graph.labels(), split.val);
      if (acc > best_val) {
        best_val = acc;
        best_w1 = w1;
        best_b1 = b1;
        best_w2 = w2;
        best_b2 = b2;
      }
    }
  }
  if (!split.val.empty() && best_val >= 0.0) {
    w1 = std::move(best_w1);
    b1 = std::move(best_b1);
    w2 = std::move(best_w2);
    b2 = std::move(best_b2);
  }
  return forward(nullptr);
}

}  // namespace gcon
