// ProGAP-EDP baseline (Sajadmanesh & Gatica-Perez, WSDM 2024).
//
// Progressive variant of GAP: a sequence of stages, each consisting of a
// noisy aggregation of the previous stage's representation followed by an
// MLP trained on the concatenation of the previous representation and the
// noisy aggregate. The S aggregation releases (L2 sensitivity sqrt(2) with
// unit-norm rows, like GAP) are composed with zCDP.
#ifndef GCON_BASELINES_PROGAP_H_
#define GCON_BASELINES_PROGAP_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/splits.h"
#include "linalg/matrix.h"

namespace gcon {

struct ProgapOptions {
  int stages = 2;  // S noisy aggregations
  int hidden = 32;
  int dim = 16;  // stage representation width
  int stage_epochs = 150;
  double learning_rate = 0.01;
  double weight_decay = 1e-5;
  std::uint64_t seed = 1;
};

/// Trains ProGAP-EDP at (epsilon, delta) and returns logits for all nodes.
Matrix TrainProgapAndPredict(const Graph& graph, const Split& split,
                             double epsilon, double delta,
                             const ProgapOptions& options);

}  // namespace gcon

#endif  // GCON_BASELINES_PROGAP_H_
