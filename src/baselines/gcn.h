// Two-layer graph convolutional network (Kipf & Welling 2017).
//
// The non-private GCN is the utility upper bound in Figure 1
// ("GCN (non-DP)"); the same implementation trained on a perturbed graph is
// the DPGCN baseline. Architecture:
//   S  = Â X,  H = ReLU(S W1 + b1),  logits = Â H W2 + b2,
// with Â the symmetrically normalized adjacency with self-loops
// D^{-1/2}(A+I)D^{-1/2}. Training is full-batch Adam on softmax
// cross-entropy with validation-based model selection; backprop is
// hand-derived (Â is symmetric, so Âᵀ = Â in the backward pass).
#ifndef GCON_BASELINES_GCN_H_
#define GCON_BASELINES_GCN_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/splits.h"
#include "linalg/matrix.h"
#include "sparse/csr_matrix.h"

namespace gcon {

struct GcnOptions {
  int hidden = 32;
  int epochs = 200;
  double learning_rate = 0.01;
  double weight_decay = 5e-4;
  int eval_every = 5;
  std::uint64_t seed = 1;
};

/// Â = D^{-1/2}(A + I)D^{-1/2} (symmetric GCN normalization).
CsrMatrix SymmetricNormalizedAdjacency(const Graph& graph);

/// Trains the 2-layer GCN on `graph` and returns logits for every node.
/// The adjacency used for training and inference is `graph`'s own — pass a
/// perturbed graph to obtain the DPGCN baseline.
Matrix TrainGcnAndPredict(const Graph& graph, const Split& split,
                          const GcnOptions& options);

}  // namespace gcon

#endif  // GCON_BASELINES_GCN_H_
