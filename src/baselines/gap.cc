#include "baselines/gap.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "dp/mechanisms.h"
#include "linalg/ops.h"
#include "nn/mlp.h"
#include "propagation/cache.h"
#include "rng/rng.h"

namespace gcon {

Matrix TrainGapAndPredict(const Graph& graph, const Split& split,
                          double epsilon, double delta,
                          const GapOptions& options) {
  GCON_CHECK_GE(options.hops, 0);

  // 1. Edge-free encoder.
  MlpOptions enc_options;
  enc_options.dims = {graph.feature_dim(), options.encoder_hidden,
                      options.encoder_dim, graph.num_classes()};
  enc_options.hidden_activation = Activation::kTanh;
  enc_options.learning_rate = options.learning_rate;
  enc_options.weight_decay = options.weight_decay;
  enc_options.epochs = options.encoder_epochs;
  enc_options.seed = options.seed;
  Mlp encoder(enc_options);
  encoder.Train(graph.features(), graph.labels(), split.train, split.val);
  Matrix x0 = encoder.HiddenRepresentation(graph.features(),
                                           encoder.num_layers() - 1);
  RowL2NormalizeInPlace(&x0);

  // 2. PMA: K noisy aggregation hops over the raw adjacency.
  std::vector<Matrix> hops;
  hops.push_back(x0);
  if (options.hops > 0) {
    // The aggregation matrix is reused across runs/budget points; the noisy
    // hops themselves are fresh randomness every run and never cached. The
    // CachedCsr must outlive every use of the reference — it may be the
    // sole owner (cache disabled, or evicted).
    const PropagationCache::CachedCsr cached_adjacency =
        PropagationCache::Global().Adjacency(graph);
    const CsrMatrix& adjacency = *cached_adjacency.csr;
    const double sigma = ZcdpSigmaForComposition(
        options.hops, std::sqrt(2.0), epsilon, delta);
    Rng rng(options.seed + 0x6A9);
    Matrix current = x0;
    for (int k = 0; k < options.hops; ++k) {
      Matrix aggregate = adjacency.Multiply(current);
      RowL2NormalizeInPlace(&aggregate);
      GaussianNoiseInPlace(&aggregate, sigma, &rng);
      // Normalizing the noisy release is post-processing; it bounds the
      // feature scale the classification head sees (as in the GAP paper)
      // and keeps the next hop's sensitivity at sqrt(2).
      RowL2NormalizeInPlace(&aggregate);
      current = aggregate;
      hops.push_back(std::move(aggregate));
    }
  }

  // 3. Classification head on the concatenated cached hops.
  const Matrix features = ConcatCols(hops);
  MlpOptions head_options;
  head_options.dims = {static_cast<int>(features.cols()), options.head_hidden,
                       graph.num_classes()};
  head_options.hidden_activation = Activation::kRelu;
  head_options.learning_rate = options.learning_rate;
  head_options.weight_decay = options.weight_decay;
  head_options.epochs = options.head_epochs;
  head_options.seed = options.seed + 0x6AA;
  Mlp head(head_options);
  head.Train(features, graph.labels(), split.train, split.val);
  return head.Forward(features);
}

}  // namespace gcon
