// DPGCN baseline: perturb the topology, then train a standard GCN.
//
// Following Wu et al. (LinkTeller, IEEE S&P 2022), the input graph's
// adjacency is randomized under edge DP — LapGraph by default (EdgeRand is
// available for small graphs via dp/graph_perturbation.h) — and the plain
// 2-layer GCN is trained and evaluated on the perturbed graph. Everything
// downstream of the perturbation is post-processing, so the released model
// (and its predictions through the perturbed adjacency) are ε-edge-DP.
#ifndef GCON_BASELINES_DPGCN_H_
#define GCON_BASELINES_DPGCN_H_

#include "baselines/gcn.h"
#include "graph/graph.h"
#include "graph/splits.h"
#include "linalg/matrix.h"

namespace gcon {

struct DpgcnOptions {
  GcnOptions gcn;
  /// Fraction of epsilon spent on the LapGraph noisy edge count.
  double count_split = 0.01;
};

/// Perturbs `graph` with LapGraph(epsilon) and trains/evaluates the GCN on
/// the result. Returns logits for all nodes.
Matrix TrainDpgcnAndPredict(const Graph& graph, const Split& split,
                            double epsilon, const DpgcnOptions& options);

}  // namespace gcon

#endif  // GCON_BASELINES_DPGCN_H_
