// LPGNet baseline (Kolluri et al., CCS 2022).
//
// Stacked MLPs that see the topology only through noisy per-class degree
// vectors: after an edge-free MLP predicts labels, each stack counts every
// node's neighbors per predicted class (n x c "degree vectors"), perturbs
// the counts with Laplace noise — one edge changes two entries by one each,
// so L1 sensitivity is 2 — normalizes them, and trains the next MLP on
// [features ⊕ all degree vectors so far]. The budget is split evenly
// across stacks.
#ifndef GCON_BASELINES_LPGNET_H_
#define GCON_BASELINES_LPGNET_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/splits.h"
#include "linalg/matrix.h"

namespace gcon {

struct LpgnetOptions {
  int stacks = 2;  // noisy degree-vector rounds
  int hidden = 32;
  int epochs = 200;
  double learning_rate = 0.01;
  double weight_decay = 1e-5;
  std::uint64_t seed = 1;
};

/// Trains LPGNet at budget epsilon and returns logits for all nodes.
Matrix TrainLpgnetAndPredict(const Graph& graph, const Split& split,
                             double epsilon, const LpgnetOptions& options);

}  // namespace gcon

#endif  // GCON_BASELINES_LPGNET_H_
