// GAP-EDP baseline (Sajadmanesh et al., USENIX Security 2023).
//
// Three modules:
//   1. Encoder MLP trained on features/labels only (edge-free).
//   2. Private Multi-hop Aggregation (PMA): starting from row-normalized
//      encoded features X_0, each hop computes A·X_{k-1}, row-normalizes,
//      and adds Gaussian noise. With unit-norm rows, one undirected edge
//      changes two rows of A·X by one unit vector each — L2 sensitivity
//      sqrt(2). The K releases are composed with zCDP and calibrated to the
//      total (epsilon, delta).
//   3. Classification MLP on the concatenation of all cached hops
//      (post-processing of DP releases; trainable without privacy cost).
#ifndef GCON_BASELINES_GAP_H_
#define GCON_BASELINES_GAP_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/splits.h"
#include "linalg/matrix.h"

namespace gcon {

struct GapOptions {
  int hops = 2;  // K (the paper's DP-GNN baselines degrade fast above 2)
  int encoder_hidden = 32;
  int encoder_dim = 16;
  int encoder_epochs = 150;
  int head_hidden = 32;
  int head_epochs = 200;
  double learning_rate = 0.01;
  double weight_decay = 1e-5;
  std::uint64_t seed = 1;
};

/// Trains GAP-EDP at (epsilon, delta) and returns logits for all nodes.
Matrix TrainGapAndPredict(const Graph& graph, const Split& split,
                          double epsilon, double delta,
                          const GapOptions& options);

}  // namespace gcon

#endif  // GCON_BASELINES_GAP_H_
