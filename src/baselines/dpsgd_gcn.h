// DP-SGD baseline (Abadi et al., CCS 2016) adapted to edge DP on a GCN.
//
// Model: one-layer SGC — logits = (Ã X) W with Ã = D^{-1}(A+I) — trained
// with per-node gradient clipping and Gaussian noise. The row-normalized
// Ã is used (not the symmetric one) so that adding/removing an edge only
// changes the aggregated features — and therefore the per-node gradients —
// of its two endpoints. Following the paper's §I analysis, one edge then
// perturbs two clipped gradients, so the L2 sensitivity of the summed batch
// gradient is 2τ (vs τ for i.i.d. records): the noise is scaled by 2τ·σ
// where σ comes from the subsampled-Gaussian RDP accountant at the given
// (ε, δ), Poisson rate q, and step count.
#ifndef GCON_BASELINES_DPSGD_GCN_H_
#define GCON_BASELINES_DPSGD_GCN_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/splits.h"
#include "linalg/matrix.h"

namespace gcon {

struct DpsgdOptions {
  double clip = 1.0;         // per-node gradient clip τ
  int steps = 300;           // optimization steps T
  double sample_rate = 0.2;  // Poisson sampling rate q
  double learning_rate = 0.05;
  std::uint64_t seed = 1;
};

/// Trains with DP-SGD at (epsilon, delta) and returns logits for all nodes.
Matrix TrainDpsgdGcnAndPredict(const Graph& graph, const Split& split,
                               double epsilon, double delta,
                               const DpsgdOptions& options);

}  // namespace gcon

#endif  // GCON_BASELINES_DPSGD_GCN_H_
