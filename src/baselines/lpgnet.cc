#include "baselines/lpgnet.h"

#include <vector>

#include "common/check.h"
#include "dp/mechanisms.h"
#include "linalg/ops.h"
#include "nn/mlp.h"
#include "rng/rng.h"

namespace gcon {
namespace {

// n x c matrix of neighbor counts per predicted class.
Matrix DegreeVectors(const Graph& graph, const std::vector<int>& predicted) {
  Matrix dv(static_cast<std::size_t>(graph.num_nodes()),
            static_cast<std::size_t>(graph.num_classes()));
  for (int v = 0; v < graph.num_nodes(); ++v) {
    for (int u : graph.Neighbors(v)) {
      dv(static_cast<std::size_t>(v),
         static_cast<std::size_t>(predicted[static_cast<std::size_t>(u)])) +=
          1.0;
    }
  }
  return dv;
}

Mlp MakeStackMlp(const Graph& graph, int in_dim, const LpgnetOptions& options,
                 std::uint64_t seed) {
  MlpOptions mlp_options;
  mlp_options.dims = {in_dim, options.hidden, graph.num_classes()};
  mlp_options.hidden_activation = Activation::kRelu;
  mlp_options.learning_rate = options.learning_rate;
  mlp_options.weight_decay = options.weight_decay;
  mlp_options.epochs = options.epochs;
  mlp_options.seed = seed;
  return Mlp(mlp_options);
}

}  // namespace

Matrix TrainLpgnetAndPredict(const Graph& graph, const Split& split,
                             double epsilon, const LpgnetOptions& options) {
  GCON_CHECK_GE(options.stacks, 0);

  // Stack 0: edge-free MLP.
  Mlp mlp0 = MakeStackMlp(graph, graph.feature_dim(), options, options.seed);
  mlp0.Train(graph.features(), graph.labels(), split.train, split.val);
  Matrix logits = mlp0.Forward(graph.features());
  std::vector<int> predicted = mlp0.Predict(graph.features());
  if (options.stacks == 0) return logits;

  const double eps_per_stack = epsilon / options.stacks;
  Rng rng(options.seed + 0x196);
  // Subsequent stacks see the graph ONLY through the noisy degree vectors,
  // plus the previous stack's hidden embedding (the "smaller matrix that
  // compresses the information" of the original features) — raw features are
  // not re-fed, which is why LPGNet can fall below the plain MLP when the
  // degree vectors are noise-dominated, as the paper's Figure 1 shows.
  Matrix embedding = mlp0.HiddenRepresentation(graph.features(), 1);
  std::vector<Matrix> degree_blocks;

  for (int stack = 1; stack <= options.stacks; ++stack) {
    Matrix dv = DegreeVectors(graph, predicted);
    // One edge changes two cells by 1 each -> L1 sensitivity 2.
    LaplaceMechanismInPlace(&dv, 2.0, eps_per_stack, &rng);
    RowL2NormalizeInPlace(&dv);
    degree_blocks.push_back(std::move(dv));

    std::vector<Matrix> blocks = {embedding};
    for (const Matrix& block : degree_blocks) blocks.push_back(block);
    const Matrix stacked = ConcatCols(blocks);
    Mlp mlp = MakeStackMlp(graph, static_cast<int>(stacked.cols()), options,
                           options.seed + static_cast<std::uint64_t>(stack));
    mlp.Train(stacked, graph.labels(), split.train, split.val);
    logits = mlp.Forward(stacked);
    predicted = mlp.Predict(stacked);
    embedding = mlp.HiddenRepresentation(stacked, 1);
  }
  return logits;
}

}  // namespace gcon
