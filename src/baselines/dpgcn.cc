#include "baselines/dpgcn.h"

#include "dp/graph_perturbation.h"
#include "rng/rng.h"

namespace gcon {

Matrix TrainDpgcnAndPredict(const Graph& graph, const Split& split,
                            double epsilon, const DpgcnOptions& options) {
  Rng rng(options.gcn.seed + 0xD9);
  const Graph perturbed = LapGraph(graph, epsilon, &rng, options.count_split);
  return TrainGcnAndPredict(perturbed, split, options.gcn);
}

}  // namespace gcon
