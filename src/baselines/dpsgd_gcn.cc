#include "baselines/dpsgd_gcn.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "dp/rdp_accountant.h"
#include "linalg/ops.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "propagation/cache.h"
#include "rng/rng.h"

namespace gcon {

Matrix TrainDpsgdGcnAndPredict(const Graph& graph, const Split& split,
                               double epsilon, double delta,
                               const DpsgdOptions& options) {
  GCON_CHECK(!split.train.empty());
  GCON_CHECK_GT(options.clip, 0.0);

  // Aggregated features S = Ã X (constant; 1-layer SGC). The CachedCsr
  // keeps the matrix alive — it may be the sole owner (cache disabled).
  const PropagationCache::CachedCsr cached_transition =
      PropagationCache::Global().Transition(graph);
  const Matrix s = cached_transition.csr->Multiply(graph.features());
  const int c = graph.num_classes();
  const std::size_t d = s.cols();

  // Noise multiplier from the RDP accountant; sensitivity 2τ per step.
  const double sigma = DpSgdSigma(epsilon, delta, options.sample_rate,
                                  options.steps);
  const double noise_std = sigma * 2.0 * options.clip;
  GCON_LOG(DEBUG) << "DP-SGD: sigma=" << sigma << " noise_std=" << noise_std;

  Matrix w(d, static_cast<std::size_t>(c));
  Adam::Options adam_options;
  adam_options.learning_rate = options.learning_rate;
  Adam adam(adam_options);
  const std::size_t w_slot = adam.Register(w);

  Rng rng(options.seed + 0xD5);
  const double expected_batch =
      options.sample_rate * static_cast<double>(split.train.size());

  for (int step = 0; step < options.steps; ++step) {
    // Poisson sampling of the training nodes.
    std::vector<int> batch;
    for (int v : split.train) {
      if (rng.Bernoulli(options.sample_rate)) batch.push_back(v);
    }
    Matrix grad(d, static_cast<std::size_t>(c));
    if (!batch.empty()) {
      // Per-node gradient of CE(softmax(s_i W), y_i) w.r.t. W is the outer
      // product s_i (p_i - y_i)^T with Frobenius norm ||s_i|| * ||p_i - y_i||;
      // clip each to τ and sum. The clipped sum is Σ κ_i s_i (p_i - y_i)^T,
      // computed as (κ ⊙ S_batch)^T (P - Y).
      const Matrix s_batch = GatherRows(s, batch);
      const Matrix logits = MatMul(s_batch, w);
      const Matrix probs = Softmax(logits);
      Matrix residual = probs;  // p_i - y_i
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const int y = graph.label(batch[i]);
        residual(i, static_cast<std::size_t>(y)) -= 1.0;
      }
      Matrix scaled = s_batch;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const double grad_norm = RowNorm2(s_batch, i) * RowNorm2(residual, i);
        const double kappa =
            grad_norm > options.clip ? options.clip / grad_norm : 1.0;
        double* row = scaled.RowPtr(i);
        for (std::size_t j = 0; j < d; ++j) row[j] *= kappa;
      }
      grad = MatMulTransA(scaled, residual);
    }
    // Gaussian noise on the summed gradient, then mean normalization.
    for (std::size_t k = 0; k < grad.size(); ++k) {
      grad.data()[k] += rng.Normal(0.0, noise_std);
    }
    ScaleInPlace(1.0 / expected_batch, &grad);
    adam.BeginStep();
    adam.Step(w_slot, grad, &w);
  }
  return MatMul(s, w);
}

}  // namespace gcon
