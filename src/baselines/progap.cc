#include "baselines/progap.h"

#include <cmath>

#include "common/check.h"
#include "dp/mechanisms.h"
#include "linalg/ops.h"
#include "nn/mlp.h"
#include "propagation/cache.h"
#include "rng/rng.h"

namespace gcon {

Matrix TrainProgapAndPredict(const Graph& graph, const Split& split,
                             double epsilon, double delta,
                             const ProgapOptions& options) {
  GCON_CHECK_GE(options.stages, 0);

  auto make_mlp_options = [&](int in_dim, std::uint64_t seed) {
    MlpOptions mlp_options;
    mlp_options.dims = {in_dim, options.hidden, options.dim,
                        graph.num_classes()};
    mlp_options.hidden_activation = Activation::kTanh;
    mlp_options.learning_rate = options.learning_rate;
    mlp_options.weight_decay = options.weight_decay;
    mlp_options.epochs = options.stage_epochs;
    mlp_options.seed = seed;
    return mlp_options;
  };

  // Stage 0: edge-free MLP on the raw features.
  Mlp stage0(make_mlp_options(graph.feature_dim(), options.seed));
  stage0.Train(graph.features(), graph.labels(), split.train, split.val);
  Matrix representation = stage0.HiddenRepresentation(
      graph.features(), stage0.num_layers() - 1);
  Matrix logits = stage0.Forward(graph.features());
  if (options.stages == 0) return logits;

  const PropagationCache::CachedCsr cached_adjacency =
      PropagationCache::Global().Adjacency(graph);
  const CsrMatrix& adjacency = *cached_adjacency.csr;
  const double sigma = ZcdpSigmaForComposition(options.stages, std::sqrt(2.0),
                                               epsilon, delta);
  Rng rng(options.seed + 0x960);

  for (int stage = 1; stage <= options.stages; ++stage) {
    // Noisy aggregation of the (unit-norm) previous representation.
    Matrix normalized = representation;
    RowL2NormalizeInPlace(&normalized);
    Matrix aggregate = adjacency.Multiply(normalized);
    RowL2NormalizeInPlace(&aggregate);
    GaussianNoiseInPlace(&aggregate, sigma, &rng);
    // Post-processing normalization bounds the noisy features' scale.
    RowL2NormalizeInPlace(&aggregate);

    // Stage MLP on [previous representation ⊕ noisy aggregate]
    // (post-processing: no extra privacy cost).
    const Matrix stage_input = ConcatCols(representation, aggregate);
    Mlp stage_mlp(make_mlp_options(static_cast<int>(stage_input.cols()),
                                   options.seed + static_cast<std::uint64_t>(stage)));
    stage_mlp.Train(stage_input, graph.labels(), split.train, split.val);
    representation = stage_mlp.HiddenRepresentation(stage_input,
                                                    stage_mlp.num_layers() - 1);
    logits = stage_mlp.Forward(stage_input);
  }
  return logits;
}

}  // namespace gcon
