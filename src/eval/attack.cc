#include "eval/attack.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/loss.h"

namespace gcon {
namespace {

double CosineSimilarity(const double* a, const double* b, std::size_t n) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    dot += a[k] * b[k];
    na += a[k] * a[k];
    nb += b[k] * b[k];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom == 0.0 ? 0.0 : dot / denom;
}

}  // namespace

double RankingAuc(const std::vector<double>& positive_scores,
                  const std::vector<double>& negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) return 0.5;
  // Rank-sum (Mann-Whitney) formulation with midranks for ties:
  // AUC = (R_pos - n_pos(n_pos+1)/2) / (n_pos * n_neg).
  struct Item {
    double score;
    bool positive;
  };
  std::vector<Item> items;
  items.reserve(positive_scores.size() + negative_scores.size());
  for (double s : positive_scores) items.push_back({s, true});
  for (double s : negative_scores) items.push_back({s, false});
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.score < b.score; });
  double rank_sum_positive = 0.0;
  std::size_t i = 0;
  while (i < items.size()) {
    std::size_t j = i;
    while (j < items.size() && items[j].score == items[i].score) ++j;
    // Midrank of the tie group [i, j): ranks are 1-based.
    const double midrank = 0.5 * (static_cast<double>(i + 1) +
                                  static_cast<double>(j));
    for (std::size_t k = i; k < j; ++k) {
      if (items[k].positive) rank_sum_positive += midrank;
    }
    i = j;
  }
  const double np = static_cast<double>(positive_scores.size());
  const double nn = static_cast<double>(negative_scores.size());
  return (rank_sum_positive - np * (np + 1.0) / 2.0) / (np * nn);
}

AttackResult PosteriorSimilarityAttack(const Matrix& logits,
                                       const Graph& graph, int max_pairs,
                                       Rng* rng) {
  GCON_CHECK_EQ(logits.rows(), static_cast<std::size_t>(graph.num_nodes()));
  const Matrix posteriors = Softmax(logits);
  const std::size_t c = posteriors.cols();

  // Positive pairs: sample true edges.
  const auto edges = graph.EdgeList();
  std::vector<double> positive;
  {
    const int take =
        std::min<int>(max_pairs, static_cast<int>(edges.size()));
    const std::vector<int> chosen =
        rng->SampleWithoutReplacement(static_cast<int>(edges.size()), take);
    positive.reserve(static_cast<std::size_t>(take));
    for (int idx : chosen) {
      const auto& [u, v] = edges[static_cast<std::size_t>(idx)];
      positive.push_back(CosineSimilarity(
          posteriors.RowPtr(static_cast<std::size_t>(u)),
          posteriors.RowPtr(static_cast<std::size_t>(v)), c));
    }
  }

  // Negative pairs: random non-edges.
  std::vector<double> negative;
  negative.reserve(positive.size());
  const std::uint64_t n = static_cast<std::uint64_t>(graph.num_nodes());
  int attempts = 0;
  while (negative.size() < positive.size() && attempts < 100 * max_pairs) {
    ++attempts;
    const int u = static_cast<int>(rng->UniformInt(n));
    const int v = static_cast<int>(rng->UniformInt(n));
    if (u == v || graph.HasEdge(u, v)) continue;
    negative.push_back(CosineSimilarity(
        posteriors.RowPtr(static_cast<std::size_t>(u)),
        posteriors.RowPtr(static_cast<std::size_t>(v)), c));
  }

  AttackResult result;
  result.num_positive = static_cast<int>(positive.size());
  result.num_negative = static_cast<int>(negative.size());
  result.auc = RankingAuc(positive, negative);
  return result;
}

}  // namespace gcon
