// LinkTeller-style influence attack (Wu et al., IEEE S&P 2022 — the
// paper's reference [9] and the origin of its DPGCN baseline).
//
// Threat model: the adversary can query an inference API for predictions of
// arbitrary nodes AND can perturb node features (e.g. controls some user
// profiles). For a candidate pair (u, v) it rescales v's features by
// (1 + delta), re-queries, and measures how much u's prediction moved —
// the "influence". Under graph-propagated inference, influence flows only
// along paths from v to u, so ranking pairs by influence recovers edges.
//
// This is complementary to the posterior-similarity attack (attack.h): that
// one needs only passive observation but is confounded by homophily; this
// one needs feature control but isolates the model's structural leakage
// exactly (an edge-free model has influence identically zero off-diagonal).
#ifndef GCON_EVAL_INFLUENCE_ATTACK_H_
#define GCON_EVAL_INFLUENCE_ATTACK_H_

#include <functional>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "rng/rng.h"

namespace gcon {

struct InfluenceAttackResult {
  double auc = 0.0;      ///< edge vs non-edge ranking AUC of influence
  int num_positive = 0;  ///< edge pairs evaluated
  int num_negative = 0;  ///< non-edge pairs evaluated
};

/// `forward` maps a (possibly perturbed) full feature matrix to all-node
/// logits — the attacker's query interface. Samples up to `max_pairs` true
/// edges and as many random non-edges; influence of v on u is the L2
/// change of u's logits when v's features are scaled by (1 + delta).
/// Queries are batched per perturbed node.
InfluenceAttackResult InfluenceAttack(
    const std::function<Matrix(const Matrix&)>& forward,
    const Matrix& features, const Graph& graph, int max_pairs, double delta,
    Rng* rng);

}  // namespace gcon

#endif  // GCON_EVAL_INFLUENCE_ATTACK_H_
