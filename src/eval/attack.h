// Edge-inference attack (the threat the paper defends against, §I).
//
// Posterior-similarity attack in the style of He et al. (USENIX Security
// 2021): the adversary queries the released model for class posteriors and
// scores node pairs by posterior similarity — connected nodes in a
// homophilous graph tend to receive more similar posteriors. The attack's
// AUC over (true edges vs. random non-edges) quantifies empirical edge
// leakage: ~0.5 means the model reveals nothing about edges.
#ifndef GCON_EVAL_ATTACK_H_
#define GCON_EVAL_ATTACK_H_

#include <cstdint>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "rng/rng.h"

namespace gcon {

struct AttackResult {
  double auc = 0.0;      // ranking AUC of edge vs non-edge scores
  int num_positive = 0;  // true edges scored
  int num_negative = 0;  // non-edges scored
};

/// Runs the posterior-similarity attack against `logits` (model outputs for
/// every node). Samples up to `max_pairs` true edges and as many random
/// non-edges; similarity is cosine between softmax posteriors.
AttackResult PosteriorSimilarityAttack(const Matrix& logits,
                                       const Graph& graph, int max_pairs,
                                       Rng* rng);

/// Ranking AUC of positives vs negatives (ties count 1/2).
double RankingAuc(const std::vector<double>& positive_scores,
                  const std::vector<double>& negative_scores);

}  // namespace gcon

#endif  // GCON_EVAL_ATTACK_H_
