#include "eval/experiment.h"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/check.h"

namespace gcon {

RunStats Summarize(const std::vector<double>& values) {
  RunStats stats;
  stats.count = static_cast<int>(values.size());
  if (values.empty()) return stats;
  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) {
      const double d = v - stats.mean;
      sq += d * d;
    }
    stats.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return stats;
}

SeriesTable::SeriesTable(std::string title, std::string x_name,
                         std::vector<std::string> series_names)
    : title_(std::move(title)),
      x_name_(std::move(x_name)),
      series_names_(std::move(series_names)) {}

void SeriesTable::AddRow(const std::string& x,
                         const std::vector<double>& values,
                         const std::vector<double>& stddevs) {
  GCON_CHECK_EQ(values.size(), series_names_.size());
  if (!stddevs.empty()) {
    GCON_CHECK_EQ(stddevs.size(), series_names_.size());
  }
  rows_.push_back(Row{x, values, stddevs});
}

void SeriesTable::PrintCsv(std::ostream& out) const {
  out << "# " << title_ << "\n";
  out << x_name_;
  for (const auto& name : series_names_) {
    out << "," << name << "," << name << "_std";
  }
  out << "\n";
  for (const auto& row : rows_) {
    out << row.x;
    for (std::size_t j = 0; j < row.values.size(); ++j) {
      out << ",";
      if (!std::isnan(row.values[j])) out << row.values[j];
      out << ",";
      if (!row.stddevs.empty() && !std::isnan(row.stddevs[j])) {
        out << row.stddevs[j];
      }
    }
    out << "\n";
  }
  out.flush();
}

void SeriesTable::Print(std::ostream& out) const {
  const int x_width = 10;
  const int cell_width = 16;
  out << "=== " << title_ << " ===\n";
  out << std::left << std::setw(x_width) << x_name_;
  for (const auto& name : series_names_) {
    out << std::setw(cell_width) << name;
  }
  out << "\n";
  out << std::string(
             static_cast<std::size_t>(x_width) +
                 series_names_.size() * static_cast<std::size_t>(cell_width),
             '-')
      << "\n";
  for (const auto& row : rows_) {
    out << std::left << std::setw(x_width) << row.x;
    for (std::size_t j = 0; j < row.values.size(); ++j) {
      std::ostringstream cell;
      if (std::isnan(row.values[j])) {
        cell << "-";
      } else {
        cell << std::fixed << std::setprecision(4) << row.values[j];
        if (!row.stddevs.empty() && !std::isnan(row.stddevs[j])) {
          cell << "±" << std::setprecision(3) << row.stddevs[j];
        }
      }
      out << std::setw(cell_width) << cell.str();
    }
    out << "\n";
  }
  out.flush();
}

}  // namespace gcon
