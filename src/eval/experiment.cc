#include "eval/experiment.h"

#include <cmath>
#include <iomanip>
#include <memory>
#include <ostream>

#include "common/check.h"
#include "eval/parallel.h"
#include "model/adapters.h"
#include "rng/rng.h"

namespace gcon {

void PropagationCacheDelta::Add(const PropagationCacheStats& stats) {
  csr_hits += stats.csr_hits;
  csr_misses += stats.csr_misses;
  propagation_hits += stats.propagation_hits;
  propagation_misses += stats.propagation_misses;
  miss_build_seconds += stats.miss_build_seconds;
  hit_seconds_saved += stats.hit_seconds_saved;
}

RunStats Summarize(const std::vector<double>& values) {
  RunStats stats;
  stats.count = static_cast<int>(values.size());
  if (values.empty()) return stats;
  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) {
      const double d = v - stats.mean;
      sq += d * d;
    }
    stats.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return stats;
}

MethodRunSummary RunMethodRepeated(const std::string& method,
                                   const ModelConfig& config,
                                   const DatasetSpec& spec, int runs,
                                   std::uint64_t base_seed,
                                   const RepeatOptions& options) {
  GCON_CHECK_GT(runs, 0) << "RunMethodRepeated needs at least one run";
  MethodRunSummary summary;
  summary.method = method;

  Graph shared_graph;
  Split shared_split;
  if (options.share_data) {
    Rng rng(base_seed);
    shared_graph = GenerateDataset(spec, &rng);
    shared_split = MakeSplit(spec, shared_graph, &rng);
  }

  // Every run writes only its own slot, so the fan-out below cannot affect
  // the aggregated summary: run r's inputs are a pure function of
  // (base_seed + r, config, spec) and its cache events are tallied by a
  // scope on the worker thread executing it.
  std::vector<TrainResult> results(static_cast<std::size_t>(runs));
  std::vector<PropagationCacheStats> run_cache(
      static_cast<std::size_t>(runs));
  ParallelFor(runs, options.threads, [&](int r) {
    PropagationCacheStatsScope scope;
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(r);
    Graph local_graph;
    Split local_split;
    if (!options.share_data) {
      Rng rng(seed);
      local_graph = GenerateDataset(spec, &rng);
      local_split = MakeSplit(spec, local_graph, &rng);
    }
    const Graph& graph = options.share_data ? shared_graph : local_graph;
    const Split& split = options.share_data ? shared_split : local_split;
    ModelConfig run_config = config;
    // A caller-pinned "seed" wins (e.g. `--set seed=N`); otherwise each run
    // gets its own model seed alongside its own data draw.
    if (!run_config.Has("seed")) {
      run_config.Set("seed", std::to_string(seed));
    }
    std::unique_ptr<GraphModel> model =
        BuiltinModelRegistry().Create(method, run_config);
    results[static_cast<std::size_t>(r)] = model->Train(graph, split);
    run_cache[static_cast<std::size_t>(r)] = scope.stats();
  });

  std::vector<double> micro, macro, seconds;
  for (TrainResult& result : results) {
    micro.push_back(result.test_micro_f1);
    macro.push_back(result.test_macro_f1);
    seconds.push_back(result.train_seconds);
    summary.epsilon_spent = result.epsilon_spent;
    summary.delta_spent = result.delta_spent;
    summary.runs.push_back(std::move(result));
  }
  summary.test_micro_f1 = Summarize(micro);
  summary.test_macro_f1 = Summarize(macro);
  summary.train_seconds = Summarize(seconds);

  for (const PropagationCacheStats& stats : run_cache) {
    summary.cache.Add(stats);
  }
  return summary;
}

SeriesTable::SeriesTable(std::string title, std::string x_name,
                         std::vector<std::string> series_names)
    : title_(std::move(title)),
      x_name_(std::move(x_name)),
      series_names_(std::move(series_names)) {}

void SeriesTable::AddRow(const std::string& x,
                         const std::vector<double>& values,
                         const std::vector<double>& stddevs) {
  GCON_CHECK_EQ(values.size(), series_names_.size());
  if (!stddevs.empty()) {
    GCON_CHECK_EQ(stddevs.size(), series_names_.size());
  }
  rows_.push_back(Row{x, values, stddevs});
}

void SeriesTable::PrintCsv(std::ostream& out) const {
  out << "# " << title_ << "\n";
  out << x_name_;
  for (const auto& name : series_names_) {
    out << "," << name << "," << name << "_std";
  }
  out << "\n";
  for (const auto& row : rows_) {
    out << row.x;
    for (std::size_t j = 0; j < row.values.size(); ++j) {
      out << ",";
      if (!std::isnan(row.values[j])) out << row.values[j];
      out << ",";
      if (!row.stddevs.empty() && !std::isnan(row.stddevs[j])) {
        out << row.stddevs[j];
      }
    }
    out << "\n";
  }
  out.flush();
}

void SeriesTable::Print(std::ostream& out) const {
  const int x_width = 10;
  const int cell_width = 16;
  out << "=== " << title_ << " ===\n";
  out << std::left << std::setw(x_width) << x_name_;
  for (const auto& name : series_names_) {
    out << std::setw(cell_width) << name;
  }
  out << "\n";
  out << std::string(
             static_cast<std::size_t>(x_width) +
                 series_names_.size() * static_cast<std::size_t>(cell_width),
             '-')
      << "\n";
  for (const auto& row : rows_) {
    out << std::left << std::setw(x_width) << row.x;
    for (std::size_t j = 0; j < row.values.size(); ++j) {
      std::ostringstream cell;
      if (std::isnan(row.values[j])) {
        cell << "-";
      } else {
        cell << std::fixed << std::setprecision(4) << row.values[j];
        if (!row.stddevs.empty() && !std::isnan(row.stddevs[j])) {
          cell << "±" << std::setprecision(3) << row.stddevs[j];
        }
      }
      out << std::setw(cell_width) << cell.str();
    }
    out << "\n";
  }
  out.flush();
}

}  // namespace gcon
