#include "eval/influence_attack.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "eval/attack.h"

namespace gcon {
namespace {

double RowDistance(const Matrix& a, const Matrix& b, int row) {
  const double* ra = a.RowPtr(static_cast<std::size_t>(row));
  const double* rb = b.RowPtr(static_cast<std::size_t>(row));
  double acc = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const double d = ra[j] - rb[j];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

InfluenceAttackResult InfluenceAttack(
    const std::function<Matrix(const Matrix&)>& forward,
    const Matrix& features, const Graph& graph, int max_pairs, double delta,
    Rng* rng) {
  GCON_CHECK_GT(delta, 0.0);
  GCON_CHECK_EQ(features.rows(), static_cast<std::size_t>(graph.num_nodes()));

  // Sample candidate pairs: true edges + random non-edges.
  std::vector<std::pair<int, int>> positives;  // (observer u, perturbed v)
  {
    const auto edges = graph.EdgeList();
    const int take = std::min<int>(max_pairs, static_cast<int>(edges.size()));
    for (int idx : rng->SampleWithoutReplacement(
             static_cast<int>(edges.size()), take)) {
      positives.push_back(edges[static_cast<std::size_t>(idx)]);
    }
  }
  std::vector<std::pair<int, int>> negatives;
  {
    const std::uint64_t n = static_cast<std::uint64_t>(graph.num_nodes());
    int attempts = 0;
    while (negatives.size() < positives.size() &&
           attempts < 100 * max_pairs) {
      ++attempts;
      const int u = static_cast<int>(rng->UniformInt(n));
      const int v = static_cast<int>(rng->UniformInt(n));
      if (u == v || graph.HasEdge(u, v)) continue;
      negatives.emplace_back(u, v);
    }
  }

  // Group pairs by the perturbed node so each node costs one query.
  std::map<int, std::vector<std::pair<int, bool>>> by_target;  // v -> (u, pos)
  for (const auto& [u, v] : positives) by_target[v].emplace_back(u, true);
  for (const auto& [u, v] : negatives) by_target[v].emplace_back(u, false);

  const Matrix baseline = forward(features);
  std::vector<double> pos_scores, neg_scores;
  pos_scores.reserve(positives.size());
  neg_scores.reserve(negatives.size());
  Matrix perturbed = features;
  for (const auto& [v, observers] : by_target) {
    // Scale v's features by (1 + delta), query, restore.
    double* row = perturbed.RowPtr(static_cast<std::size_t>(v));
    const double* orig = features.RowPtr(static_cast<std::size_t>(v));
    bool nonzero = false;
    for (std::size_t j = 0; j < features.cols(); ++j) {
      row[j] = orig[j] * (1.0 + delta);
      nonzero = nonzero || orig[j] != 0.0;
    }
    if (!nonzero) {
      // All-zero feature row cannot be rescaled; nudge uniformly instead.
      for (std::size_t j = 0; j < features.cols(); ++j) row[j] = delta;
    }
    const Matrix response = forward(perturbed);
    for (const auto& [u, positive] : observers) {
      const double influence = RowDistance(response, baseline, u);
      (positive ? pos_scores : neg_scores).push_back(influence);
    }
    for (std::size_t j = 0; j < features.cols(); ++j) row[j] = orig[j];
  }

  InfluenceAttackResult result;
  result.num_positive = static_cast<int>(pos_scores.size());
  result.num_negative = static_cast<int>(neg_scores.size());
  result.auc = RankingAuc(pos_scores, neg_scores);
  return result;
}

}  // namespace gcon
