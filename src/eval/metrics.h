// Classification metrics.
//
// The paper reports micro-averaged F1. For single-label multi-class
// prediction micro-F1 equals accuracy, but both micro and macro are
// implemented in full generality (per-class TP/FP/FN aggregation) so the
// tests can assert the identity rather than assume it.
#ifndef GCON_EVAL_METRICS_H_
#define GCON_EVAL_METRICS_H_

#include <vector>

#include "linalg/matrix.h"

namespace gcon {

/// Row-wise argmax of logits.
std::vector<int> ArgmaxPredictions(const Matrix& logits);

/// Micro-averaged F1 of `pred` vs `labels` over the nodes in `idx`.
double MicroF1(const std::vector<int>& pred, const std::vector<int>& labels,
               const std::vector<int>& idx, int num_classes);

/// Macro-averaged F1 (unweighted mean of per-class F1; classes absent from
/// both predictions and ground truth are skipped).
double MacroF1(const std::vector<int>& pred, const std::vector<int>& labels,
               const std::vector<int>& idx, int num_classes);

/// Convenience: micro-F1 straight from logits.
double MicroF1FromLogits(const Matrix& logits, const std::vector<int>& labels,
                         const std::vector<int>& idx, int num_classes);

}  // namespace gcon

#endif  // GCON_EVAL_METRICS_H_
