// Deterministic worker pool for embarrassingly parallel experiment loops.
//
// The repeat/sweep drivers (RunMethodRepeated, the bench_fig1/bench_table2
// cell loops, the epsilon_sweep example) execute many independent units of
// work — one per run or per (method, epsilon) cell — whose outputs land in
// preassigned slots. ParallelFor fans those indices out across a pool of
// std::threads: workers pull indices from a shared atomic counter, so the
// schedule is dynamic but the *outputs* are schedule-independent as long as
// fn(i) writes only to slot i (each unit derives its own Rng from
// base_seed + i and owns its model instance). threads <= 1 degenerates to
// the plain sequential loop, in index order, with no pool spun up.
//
// Exceptions: the first exception thrown by any fn(i) is captured, the
// remaining indices are abandoned, every worker is joined, and the
// exception is rethrown on the calling thread — same observable contract
// as the sequential loop, minus which index got to throw first.
#ifndef GCON_EVAL_PARALLEL_H_
#define GCON_EVAL_PARALLEL_H_

#include <functional>

namespace gcon {

/// Worker count to actually use for a requested thread count: values >= 1
/// pass through, 0 (and negatives) mean "one per hardware thread".
int ResolveThreads(int requested);

/// Executes fn(i) for every i in [0, n), fanning the indices out across
/// `threads` workers (the calling thread participates, so `threads` is the
/// total concurrency). fn must be safe to call concurrently from distinct
/// threads for distinct indices and must write only to per-index state.
/// threads <= 1 (after ResolveThreads) runs inline in index order.
void ParallelFor(int n, int threads, const std::function<void(int)>& fn);

}  // namespace gcon

#endif  // GCON_EVAL_PARALLEL_H_
