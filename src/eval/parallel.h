// Deterministic worker pool for embarrassingly parallel experiment loops
// and long-lived serving workers.
//
// The repeat/sweep drivers (RunMethodRepeated, the bench_fig1/bench_table2
// cell loops, the epsilon_sweep example) execute many independent units of
// work — one per run or per (method, epsilon) cell — whose outputs land in
// preassigned slots. ParallelFor fans those indices out across the
// process-wide WorkerPool: workers pull indices from a shared atomic
// counter, so the schedule is dynamic but the *outputs* are
// schedule-independent as long as fn(i) writes only to slot i (each unit
// derives its own Rng from base_seed + i and owns its model instance).
// threads <= 1 degenerates to the plain sequential loop, in index order.
//
// The pool threads are persistent: they are spawned on first use (growing
// on demand up to the largest concurrency ever requested) and parked on a
// condition variable between jobs, so a sweep driver's back-to-back
// ParallelFor calls pay a wakeup instead of a thread spawn. This retires
// the old per-call std::thread-spawning implementation. (The serving
// tier's batch workers in src/serve/batcher.h are separately resident —
// they park on the request queue, a different wait discipline.)
//
// Exceptions: the first exception thrown by any fn(i) is captured, the
// remaining indices are abandoned, the job is drained, and the exception
// is rethrown on the calling thread — same observable contract as the
// sequential loop, minus which index got to throw first.
#ifndef GCON_EVAL_PARALLEL_H_
#define GCON_EVAL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcon {

/// Worker count to actually use for a requested thread count: values >= 1
/// pass through, 0 (and negatives) mean "one per hardware thread".
int ResolveThreads(int requested);

/// A pool of resident worker threads executing fork-join index jobs.
/// One job runs at a time (concurrent Run calls from distinct threads
/// serialize); a Run issued from *inside* a running job executes inline on
/// the calling thread instead of deadlocking on the job lock, so nested
/// ParallelFor is safe (and sequential, which matches how the sweep
/// drivers configure their inner loops).
class WorkerPool {
 public:
  /// The process-wide pool every ParallelFor shares.
  static WorkerPool& Global();

  WorkerPool() = default;
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Executes fn(i) for every i in [0, n) with total concurrency
  /// min(threads, n): the calling thread participates and up to threads-1
  /// resident workers join it. Blocks until every claimed index finished;
  /// rethrows the first exception thrown by any fn(i).
  void Run(int n, int threads, const std::function<void(int)>& fn);

  /// Resident worker threads spawned so far (diagnostics/tests).
  int resident_workers() const;

 private:
  void EnsureWorkersLocked(int needed);
  void WorkerMain();
  /// Pulls indices from next_ and runs fn until exhausted or failed.
  void Drain(int n, const std::function<void(int)>& fn);

  /// Serializes Run callers (one job at a time).
  std::mutex job_mu_;

  /// Guards the job fields and worker bookkeeping below.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers park here between jobs
  std::condition_variable done_cv_;  ///< Run waits here for claimed workers
  std::uint64_t generation_ = 0;     ///< bumped once per job
  bool open_ = false;                ///< job still accepting claimants
  int max_claims_ = 0;               ///< workers allowed on this job
  int claimed_ = 0;
  int active_ = 0;                   ///< workers currently draining
  int n_ = 0;
  const std::function<void(int)>* fn_ = nullptr;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  std::atomic<int> next_{0};
  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

/// Executes fn(i) for every i in [0, n), fanning the indices out across
/// `threads` workers of WorkerPool::Global() (the calling thread
/// participates, so `threads` is the total concurrency). fn must be safe to
/// call concurrently from distinct threads for distinct indices and must
/// write only to per-index state. threads <= 1 (after ResolveThreads) runs
/// inline in index order.
void ParallelFor(int n, int threads, const std::function<void(int)>& fn);

}  // namespace gcon

#endif  // GCON_EVAL_PARALLEL_H_
