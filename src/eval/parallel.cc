#include "eval/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gcon {

int ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(int n, int threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  threads = ResolveThreads(threads);
  if (threads > n) threads = n;
  if (threads <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&] {
    while (!failed.load(std::memory_order_acquire)) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 0; t < threads - 1; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is the last member of the pool
  for (std::thread& t : pool) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace gcon
