#include "eval/parallel.h"

#include <exception>

namespace gcon {
namespace {

// True while the current thread is executing inside a WorkerPool job
// (as the caller or as a pool worker). A nested Run on such a thread must
// not wait on job_mu_ — the outer job holds it — so it runs inline.
thread_local bool t_inside_pool_job = false;

}  // namespace

int ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

WorkerPool& WorkerPool::Global() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

int WorkerPool::resident_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void WorkerPool::EnsureWorkersLocked(int needed) {
  while (static_cast<int>(workers_.size()) < needed) {
    workers_.emplace_back(&WorkerPool::WorkerMain, this);
  }
}

void WorkerPool::Drain(int n, const std::function<void(int)>& fn) {
  while (!failed_.load(std::memory_order_acquire)) {
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
      failed_.store(true, std::memory_order_release);
      return;
    }
  }
}

void WorkerPool::WorkerMain() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    if (!open_ || claimed_ >= max_claims_) continue;
    ++claimed_;
    ++active_;
    const int n = n_;
    const std::function<void(int)>* fn = fn_;
    lock.unlock();
    t_inside_pool_job = true;
    Drain(n, *fn);
    t_inside_pool_job = false;
    lock.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::Run(int n, int threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (threads > n) threads = n;
  if (threads <= 1 || t_inside_pool_job) {
    // Sequential degeneration, and the nested case: the outer job owns
    // job_mu_, so run the indices on this thread in order.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureWorkersLocked(threads - 1);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    claimed_ = 0;
    active_ = 0;
    max_claims_ = threads - 1;
    open_ = true;
    ++generation_;
    work_cv_.notify_all();
  }

  t_inside_pool_job = true;
  Drain(n, fn);
  t_inside_pool_job = false;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    open_ = false;  // late-waking workers must not claim a finished job
    done_cv_.wait(lock, [&] { return active_ == 0; });
    fn_ = nullptr;
    error = first_error_;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ParallelFor(int n, int threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  threads = ResolveThreads(threads);
  if (threads > n) threads = n;
  if (threads <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool::Global().Run(n, threads, fn);
}

}  // namespace gcon
