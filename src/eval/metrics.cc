#include "eval/metrics.h"

#include "common/check.h"
#include "linalg/ops.h"

namespace gcon {
namespace {

struct ClassCounts {
  std::vector<double> tp;
  std::vector<double> fp;
  std::vector<double> fn;
};

ClassCounts CountPerClass(const std::vector<int>& pred,
                          const std::vector<int>& labels,
                          const std::vector<int>& idx, int num_classes) {
  ClassCounts counts;
  counts.tp.assign(static_cast<std::size_t>(num_classes), 0.0);
  counts.fp.assign(static_cast<std::size_t>(num_classes), 0.0);
  counts.fn.assign(static_cast<std::size_t>(num_classes), 0.0);
  for (int node : idx) {
    const std::size_t i = static_cast<std::size_t>(node);
    GCON_CHECK_LT(i, pred.size());
    GCON_CHECK_LT(i, labels.size());
    const int p = pred[i];
    const int y = labels[i];
    GCON_CHECK_GE(p, 0);
    GCON_CHECK_LT(p, num_classes);
    if (p == y) {
      counts.tp[static_cast<std::size_t>(p)] += 1.0;
    } else {
      counts.fp[static_cast<std::size_t>(p)] += 1.0;
      counts.fn[static_cast<std::size_t>(y)] += 1.0;
    }
  }
  return counts;
}

}  // namespace

std::vector<int> ArgmaxPredictions(const Matrix& logits) {
  std::vector<int> pred(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    pred[i] = static_cast<int>(RowArgMax(logits, i));
  }
  return pred;
}

double MicroF1(const std::vector<int>& pred, const std::vector<int>& labels,
               const std::vector<int>& idx, int num_classes) {
  if (idx.empty()) return 0.0;
  const ClassCounts counts = CountPerClass(pred, labels, idx, num_classes);
  double tp = 0.0, fp = 0.0, fn = 0.0;
  for (int c = 0; c < num_classes; ++c) {
    tp += counts.tp[static_cast<std::size_t>(c)];
    fp += counts.fp[static_cast<std::size_t>(c)];
    fn += counts.fn[static_cast<std::size_t>(c)];
  }
  const double denom = 2.0 * tp + fp + fn;
  return denom == 0.0 ? 0.0 : 2.0 * tp / denom;
}

double MacroF1(const std::vector<int>& pred, const std::vector<int>& labels,
               const std::vector<int>& idx, int num_classes) {
  if (idx.empty()) return 0.0;
  const ClassCounts counts = CountPerClass(pred, labels, idx, num_classes);
  double total = 0.0;
  int active = 0;
  for (int c = 0; c < num_classes; ++c) {
    const double tp = counts.tp[static_cast<std::size_t>(c)];
    const double fp = counts.fp[static_cast<std::size_t>(c)];
    const double fn = counts.fn[static_cast<std::size_t>(c)];
    if (tp + fp + fn == 0.0) continue;  // class absent everywhere
    total += 2.0 * tp / (2.0 * tp + fp + fn);
    ++active;
  }
  return active == 0 ? 0.0 : total / active;
}

double MicroF1FromLogits(const Matrix& logits, const std::vector<int>& labels,
                         const std::vector<int>& idx, int num_classes) {
  return MicroF1(ArgmaxPredictions(logits), labels, idx, num_classes);
}

}  // namespace gcon
