// Experiment-harness utilities: repeated-run statistics and the ASCII
// series tables the bench binaries print (one row per x-value, one column
// per method/series — the same axes as the paper's figures).
#ifndef GCON_EVAL_EXPERIMENT_H_
#define GCON_EVAL_EXPERIMENT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace gcon {

struct RunStats {
  double mean = 0.0;
  double stddev = 0.0;
  int count = 0;
};

/// Mean and sample standard deviation (n-1 denominator; 0 for n < 2).
RunStats Summarize(const std::vector<double>& values);

/// Fixed-width table keyed by an x column, used to print figure series.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_name,
              std::vector<std::string> series_names);

  /// Adds a row; `values` must have one entry per series (NaN allowed for
  /// "not run", printed as "-"). Optional per-cell stddevs.
  void AddRow(const std::string& x, const std::vector<double>& values,
              const std::vector<double>& stddevs = {});

  void Print(std::ostream& out) const;

  /// Machine-readable CSV (header row, mean and stddev columns per series);
  /// bench binaries emit this next to the table when GCON_BENCH_CSV is set,
  /// so plots can be regenerated without scraping the aligned output.
  void PrintCsv(std::ostream& out) const;

 private:
  std::string title_;
  std::string x_name_;
  std::vector<std::string> series_names_;
  struct Row {
    std::string x;
    std::vector<double> values;
    std::vector<double> stddevs;
  };
  std::vector<Row> rows_;
};

}  // namespace gcon

#endif  // GCON_EVAL_EXPERIMENT_H_
