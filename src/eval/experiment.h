// Experiment-harness utilities: repeated-run statistics and the ASCII
// series tables the bench binaries print (one row per x-value, one column
// per method/series — the same axes as the paper's figures).
#ifndef GCON_EVAL_EXPERIMENT_H_
#define GCON_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "model/model.h"
#include "propagation/cache.h"

namespace gcon {

struct RunStats {
  double mean = 0.0;
  double stddev = 0.0;
  int count = 0;
};

/// Mean and sample standard deviation (n-1 denominator; 0 for n < 2).
RunStats Summarize(const std::vector<double>& values);

/// What the propagation cache did during one RunMethodRepeated call:
/// the sum of the per-run PropagationCacheStatsScope tallies, so it counts
/// exactly this call's events even when other RunMethodRepeated calls (or
/// any other cache users) are in flight on other threads. (The previous
/// scheme — diffing PropagationCache::Global().stats() across the call —
/// attributed every concurrent caller's events to this delta.) With
/// share_data (and, for methods whose pre-propagation stage is seeded, a
/// pinned "seed"), sequential execution gives `propagation_hits` =
/// runs - 1 and `hit_seconds_saved` is the propagation wall-clock the
/// cache amortized down to a single run's worth; with threads > 1 the
/// hit/miss *split* can shift (two runs racing on a cold key both build
/// it) but the total hits + misses — and every training result — cannot.
struct PropagationCacheDelta {
  std::uint64_t csr_hits = 0;
  std::uint64_t csr_misses = 0;
  std::uint64_t propagation_hits = 0;
  std::uint64_t propagation_misses = 0;
  double miss_build_seconds = 0.0;
  double hit_seconds_saved = 0.0;

  /// Merges one run's scope tally (PropagationCacheStatsScope::stats()).
  void Add(const PropagationCacheStats& stats);
};

/// Aggregate of RunMethodRepeated: per-run TrainResults plus summary
/// statistics over the test metrics.
struct MethodRunSummary {
  std::string method;
  RunStats test_micro_f1;
  RunStats test_macro_f1;
  RunStats train_seconds;
  /// Privacy budget reported by the method (identical across runs).
  double epsilon_spent = 0.0;
  double delta_spent = 0.0;
  /// Propagation-cache activity attributable to this call.
  PropagationCacheDelta cache;
  std::vector<TrainResult> runs;
};

/// Knobs for RunMethodRepeated beyond the paper's default protocol.
struct RepeatOptions {
  /// Paper protocol (false): every run draws its own graph and split from
  /// base_seed + r. True: one dataset drawn from base_seed is shared by all
  /// runs and only the model seed varies — the repeated-measurement setting
  /// where the propagation cache amortizes the per-run precomputation.
  bool share_data = false;

  /// Worker threads the runs fan out across (eval/parallel.h): 1 (default)
  /// is the plain sequential loop, 0 means one per hardware thread. Every
  /// run owns its model instance and derives its Rng from base_seed + r, so
  /// the MethodRunSummary — per-run logits, metrics, and their order — is
  /// bitwise identical for any thread count; only wall clock changes.
  int threads = 1;
};

/// Trains the registered method `runs` times, each on an independently
/// generated instance of `spec` (graph, split, and — unless the caller
/// pinned a "seed" key — the model seed all re-drawn from base_seed + r),
/// and aggregates the test metrics.
/// `config` keys override the method's defaults; an absent "delta" means
/// the paper's auto rule (1/|directed E|) for the (eps, delta)-DP methods.
/// Any bench can call this instead of hand-rolling its repeat loop.
/// Throws std::invalid_argument for unknown methods or config keys.
MethodRunSummary RunMethodRepeated(const std::string& method,
                                   const ModelConfig& config,
                                   const DatasetSpec& spec, int runs,
                                   std::uint64_t base_seed,
                                   const RepeatOptions& options = {});

/// Fixed-width table keyed by an x column, used to print figure series.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_name,
              std::vector<std::string> series_names);

  /// Adds a row; `values` must have one entry per series (NaN allowed for
  /// "not run", printed as "-"). Optional per-cell stddevs.
  void AddRow(const std::string& x, const std::vector<double>& values,
              const std::vector<double>& stddevs = {});

  void Print(std::ostream& out) const;

  /// Machine-readable CSV (header row, mean and stddev columns per series);
  /// bench binaries emit this next to the table when GCON_BENCH_CSV is set,
  /// so plots can be regenerated without scraping the aligned output.
  void PrintCsv(std::ostream& out) const;

 private:
  std::string title_;
  std::string x_name_;
  std::vector<std::string> series_names_;
  struct Row {
    std::string x;
    std::vector<double> values;
    std::vector<double> stddevs;
  };
  std::vector<Row> rows_;
};

}  // namespace gcon

#endif  // GCON_EVAL_EXPERIMENT_H_
