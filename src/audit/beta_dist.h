// Regularized incomplete beta function and Clopper–Pearson intervals.
//
// The empirical privacy audit needs exact binomial confidence bounds; the
// Clopper–Pearson interval for k successes in n trials at confidence 1-a is
//   lower = BetaInv(a/2; k, n-k+1),  upper = BetaInv(1-a/2; k+1, n-k),
// where BetaInv is the quantile of the Beta distribution, computed here by
// bisection on the regularized incomplete beta I_x(a, b) (continued
// fraction, Numerical-Recipes style).
#ifndef GCON_AUDIT_BETA_DIST_H_
#define GCON_AUDIT_BETA_DIST_H_

namespace gcon {

/// Regularized incomplete beta I_x(a, b), a,b > 0, x in [0, 1].
double RegularizedBetaI(double a, double b, double x);

/// Quantile of Beta(a, b): smallest x with I_x(a, b) >= prob.
double BetaQuantile(double a, double b, double prob);

struct BinomialInterval {
  double lower = 0.0;
  double upper = 1.0;
};

/// Exact (Clopper–Pearson) two-sided confidence interval for the success
/// probability after observing `successes` out of `trials`, at confidence
/// level `confidence` (e.g. 0.95).
BinomialInterval ClopperPearson(int successes, int trials, double confidence);

}  // namespace gcon

#endif  // GCON_AUDIT_BETA_DIST_H_
