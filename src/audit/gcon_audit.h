// Applies the empirical DP audit to GCON's release mechanism.
//
// The audited mechanism is the full edge-dependent pipeline
//   D = (V, E, X, Y)  ->  Theta_priv
// with the encoder held fixed (it never reads edges, so it is part of the
// "public preprocessing" shared by D and its neighbor D'). D' removes one
// edge — by default one incident to the highest-degree node, which moves
// the propagated features the most (the near-adversarial case of Lemma 2).
// Theta is projected onto the direction separating the two noise-free
// optima (the most distinguishing linear statistic), and the threshold
// attack of audit.h yields a sound lower bound eps_hat <= eps.
//
// eps_hat > eps (beyond confidence slack) would demonstrate a bug in the
// Theorem 1 calibration; eps_hat well below eps is expected — audits only
// certify violations, not compliance.
#ifndef GCON_AUDIT_GCON_AUDIT_H_
#define GCON_AUDIT_GCON_AUDIT_H_

#include <cstdint>
#include <utility>

#include "audit/audit.h"
#include "core/gcon.h"

namespace gcon {

struct GconAuditOptions {
  int trials = 300;          ///< Theta samples per world (D and D')
  double confidence = 0.95;  ///< statistical confidence of the bound
  int threshold_grid = 16;
  std::uint64_t seed = 1;
  /// Edge to remove for D'; {-1, -1} = auto-pick a hub edge.
  std::pair<int, int> edge = {-1, -1};
};

struct GconAuditResult {
  AuditResult attack;          ///< eps_hat and the winning threshold event
  double configured_epsilon = 0.0;
  double configured_delta = 0.0;
  std::pair<int, int> edge = {-1, -1};  ///< the edge actually flipped
  int trials = 0;
};

/// Runs the audit of GCON at (epsilon, delta) on `graph`. `config`'s own
/// epsilon/delta are ignored in favor of the explicit arguments.
GconAuditResult AuditGcon(const Graph& graph, const Split& split,
                          const GconConfig& config, double epsilon,
                          double delta, const GconAuditOptions& options);

}  // namespace gcon

#endif  // GCON_AUDIT_GCON_AUDIT_H_
