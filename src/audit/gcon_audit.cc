#include "audit/gcon_audit.h"

#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "linalg/ops.h"

namespace gcon {
namespace {

// Edge incident to the highest-degree node (its removal shifts the
// normalized aggregation of the most rows).
std::pair<int, int> PickHubEdge(const Graph& graph) {
  int hub = 0;
  for (int v = 1; v < graph.num_nodes(); ++v) {
    if (graph.Degree(v) > graph.Degree(hub)) hub = v;
  }
  GCON_CHECK_GT(graph.Degree(hub), 0) << "graph has no edges to audit";
  return {hub, graph.Neighbors(hub).front()};
}

}  // namespace

GconAuditResult AuditGcon(const Graph& graph, const Split& split,
                          const GconConfig& config, double epsilon,
                          double delta, const GconAuditOptions& options) {
  GCON_CHECK_GT(options.trials, 1);

  GconAuditResult result;
  result.configured_epsilon = epsilon;
  result.configured_delta = delta;
  result.trials = options.trials;
  result.edge = options.edge;
  if (result.edge.first < 0) {
    result.edge = PickHubEdge(graph);
  }

  // Shared encoder (edge-free), then the two neighboring worlds.
  EncoderOptions encoder_options = config.encoder;
  encoder_options.seed = config.seed;
  const EncodedFeatures encoded = TrainEncoder(graph, split, encoder_options);

  Graph neighbor = graph;
  GCON_CHECK(neighbor.RemoveEdge(result.edge.first, result.edge.second))
      << "audit edge does not exist";

  const GconPrepared prep_d =
      PrepareGconFromEncoded(graph, split, config, encoded);
  const GconPrepared prep_dp =
      PrepareGconFromEncoded(neighbor, split, config, encoded);

  // Projection direction: difference of the noise-free optima.
  GconConfig clean_config = config;
  clean_config.disable_noise = true;
  GconPrepared clean_d = prep_d;
  clean_d.config = clean_config;
  GconPrepared clean_dp = prep_dp;
  clean_dp.config = clean_config;
  const Matrix theta_d = TrainPrepared(clean_d, epsilon, delta, 0).theta;
  const Matrix theta_dp = TrainPrepared(clean_dp, epsilon, delta, 0).theta;
  Matrix direction = Sub(theta_d, theta_dp);
  const double norm = FrobeniusNorm(direction);
  if (norm < 1e-14) {
    GCON_LOG(WARNING) << "audit: worlds are indistinguishable even without "
                         "noise; eps_hat will be 0";
  } else {
    ScaleInPlace(1.0 / norm, &direction);
  }

  // Sample the mechanism in both worlds and project.
  std::vector<double> scores_d, scores_dp;
  scores_d.reserve(static_cast<std::size_t>(options.trials));
  scores_dp.reserve(static_cast<std::size_t>(options.trials));
  for (int trial = 0; trial < options.trials; ++trial) {
    const std::uint64_t seed_base =
        options.seed + 1000003ULL * static_cast<std::uint64_t>(trial);
    scores_d.push_back(DotAll(
        TrainPrepared(prep_d, epsilon, delta, seed_base).theta, direction));
    scores_dp.push_back(DotAll(
        TrainPrepared(prep_dp, epsilon, delta, seed_base + 7).theta,
        direction));
  }

  AuditOptions audit_options;
  audit_options.delta = delta;
  audit_options.confidence = options.confidence;
  audit_options.threshold_grid = options.threshold_grid;
  result.attack = AuditFromSamples(scores_d, scores_dp, audit_options);
  return result;
}

}  // namespace gcon
