#include "audit/audit.h"

#include <algorithm>
#include <cmath>

#include "audit/beta_dist.h"
#include "common/check.h"

namespace gcon {
namespace {

int CountAbove(const std::vector<double>& sorted, double t) {
  // # of elements strictly greater than t.
  return static_cast<int>(sorted.end() -
                          std::upper_bound(sorted.begin(), sorted.end(), t));
}

}  // namespace

AuditResult AuditFromSamples(const std::vector<double>& scores_d,
                             const std::vector<double>& scores_d_prime,
                             const AuditOptions& options) {
  GCON_CHECK(!scores_d.empty());
  GCON_CHECK(!scores_d_prime.empty());
  GCON_CHECK_GE(options.delta, 0.0);
  GCON_CHECK_GT(options.threshold_grid, 0);

  std::vector<double> d_sorted = scores_d;
  std::vector<double> dp_sorted = scores_d_prime;
  std::sort(d_sorted.begin(), d_sorted.end());
  std::sort(dp_sorted.begin(), dp_sorted.end());

  // Candidate thresholds: quantiles of the pooled sample.
  std::vector<double> pooled = d_sorted;
  pooled.insert(pooled.end(), dp_sorted.begin(), dp_sorted.end());
  std::sort(pooled.begin(), pooled.end());
  std::vector<double> thresholds;
  thresholds.reserve(static_cast<std::size_t>(options.threshold_grid));
  for (int g = 1; g <= options.threshold_grid; ++g) {
    const std::size_t idx = std::min(
        pooled.size() - 1,
        pooled.size() * static_cast<std::size_t>(g) /
            static_cast<std::size_t>(options.threshold_grid + 1));
    thresholds.push_back(pooled[idx]);
  }
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  // Bonferroni across (threshold, direction, which-side-is-numerator):
  // 4 Clopper–Pearson bounds per threshold.
  const double per_test_confidence =
      1.0 - (1.0 - options.confidence) /
                (4.0 * static_cast<double>(thresholds.size()));

  const int n_d = static_cast<int>(d_sorted.size());
  const int n_dp = static_cast<int>(dp_sorted.size());

  AuditResult best;
  auto consider = [&](double t, bool greater, int k_d, int k_dp) {
    const BinomialInterval ci_d = ClopperPearson(k_d, n_d, per_test_confidence);
    const BinomialInterval ci_dp =
        ClopperPearson(k_dp, n_dp, per_test_confidence);
    // Direction 1: D as numerator.
    if (ci_d.lower - options.delta > 0.0 && ci_dp.upper > 0.0) {
      const double eps = std::log((ci_d.lower - options.delta) / ci_dp.upper);
      if (eps > best.eps_lower_bound) {
        best = AuditResult{eps, t, greater, ci_d.lower, ci_dp.upper};
      }
    }
    // Direction 2: D' as numerator (DP is symmetric in the pair).
    if (ci_dp.lower - options.delta > 0.0 && ci_d.upper > 0.0) {
      const double eps = std::log((ci_dp.lower - options.delta) / ci_d.upper);
      if (eps > best.eps_lower_bound) {
        best = AuditResult{eps, t, greater, ci_dp.lower, ci_d.upper};
      }
    }
  };

  for (double t : thresholds) {
    const int above_d = CountAbove(d_sorted, t);
    const int above_dp = CountAbove(dp_sorted, t);
    consider(t, /*greater=*/true, above_d, above_dp);
    consider(t, /*greater=*/false, n_d - above_d, n_dp - above_dp);
  }
  return best;
}

}  // namespace gcon
