#include "audit/beta_dist.h"

#include <cmath>

#include "common/check.h"
#include "common/lgamma_safe.h"

namespace gcon {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEps = 1e-15;
constexpr double kTiny = 1e-300;

// Continued fraction for the incomplete beta (Lentz's algorithm).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedBetaI(double a, double b, double x) {
  GCON_CHECK_GT(a, 0.0);
  GCON_CHECK_GT(b, 0.0);
  GCON_CHECK_GE(x, 0.0);
  GCON_CHECK_LE(x, 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = LGammaSafe(a + b) - LGammaSafe(a) -
                           LGammaSafe(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the continued fraction directly where it converges fast, and the
  // symmetry I_x(a,b) = 1 - I_{1-x}(b,a) elsewhere.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(LGammaSafe(a + b) - LGammaSafe(a) -
                        LGammaSafe(b) + a * std::log(x) +
                        b * std::log1p(-x)) *
                   BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double BetaQuantile(double a, double b, double prob) {
  GCON_CHECK_GE(prob, 0.0);
  GCON_CHECK_LE(prob, 1.0);
  if (prob == 0.0) return 0.0;
  if (prob == 1.0) return 1.0;
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (RegularizedBetaI(a, b, mid) >= prob) {
      hi = mid;
    } else {
      lo = mid;
    }
    if (hi - lo < 1e-14) break;
  }
  return hi;
}

BinomialInterval ClopperPearson(int successes, int trials, double confidence) {
  GCON_CHECK_GE(successes, 0);
  GCON_CHECK_LE(successes, trials);
  GCON_CHECK_GT(trials, 0);
  GCON_CHECK_GT(confidence, 0.0);
  GCON_CHECK_LT(confidence, 1.0);
  const double alpha = 1.0 - confidence;
  BinomialInterval interval;
  if (successes == 0) {
    interval.lower = 0.0;
  } else {
    interval.lower = BetaQuantile(static_cast<double>(successes),
                                  static_cast<double>(trials - successes + 1),
                                  alpha / 2.0);
  }
  if (successes == trials) {
    interval.upper = 1.0;
  } else {
    interval.upper = BetaQuantile(static_cast<double>(successes + 1),
                                  static_cast<double>(trials - successes),
                                  1.0 - alpha / 2.0);
  }
  return interval;
}

}  // namespace gcon
