// Empirical differential-privacy audit via hypothesis-testing lower bounds.
//
// For any randomized mechanism M, neighboring inputs D, D', and measurable
// event S, (epsilon, delta)-DP implies
//   P[M(D) in S] <= e^eps * P[M(D') in S] + delta,
// so  eps >= log( (P[M(D) in S] - delta) / P[M(D') in S] ).
// Given Monte-Carlo samples of a scalar *projection* of M's output under D
// and D', this module scans threshold events S = {score > t} over a grid of
// candidate thresholds (pooled-sample quantiles, both tail directions) and
// reports the largest statistically sound lower bound:
//   * numerator probability -> Clopper–Pearson LOWER bound,
//   * denominator probability -> Clopper–Pearson UPPER bound,
//   * confidence Bonferroni-corrected across the grid,
// so eps_lower_bound <= true epsilon with probability >= confidence.
//
// An audit CANNOT prove a mechanism private — but a lower bound exceeding
// the configured epsilon proves the implementation broken, which is exactly
// the regression signal we want for the Theorem 1 plumbing.
#ifndef GCON_AUDIT_AUDIT_H_
#define GCON_AUDIT_AUDIT_H_

#include <vector>

namespace gcon {

struct AuditOptions {
  double delta = 0.0;        ///< the mechanism's delta
  double confidence = 0.95;  ///< overall confidence of the reported bound
  int threshold_grid = 16;   ///< candidate thresholds per direction
};

struct AuditResult {
  /// Largest sound lower bound on epsilon found (0 if no event separates
  /// the two sample sets).
  double eps_lower_bound = 0.0;
  /// The threshold and direction achieving it (score > t or score < t).
  double threshold = 0.0;
  bool greater_than = true;
  /// The bound's ingredients at the winning threshold.
  double p_d_lower = 0.0;   ///< CP lower bound of P[score(M(D)) in S]
  double p_dp_upper = 1.0;  ///< CP upper bound of P[score(M(D')) in S]
};

/// Audits from scalar samples of the mechanism's projected output under D
/// (`scores_d`) and D' (`scores_d_prime`).
AuditResult AuditFromSamples(const std::vector<double>& scores_d,
                             const std::vector<double>& scores_d_prime,
                             const AuditOptions& options);

}  // namespace gcon

#endif  // GCON_AUDIT_AUDIT_H_
