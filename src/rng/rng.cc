#include "rng/rng.h"

#include <cmath>

#include "common/check.h"

namespace gcon {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: expands one 64-bit seed into a stream of well-mixed values.
inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
  // xoshiro must not be seeded with all zeros; SplitMix64 of any seed makes
  // that astronomically unlikely, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  double u = NextDouble();
  while (u == 0.0) {
    u = NextDouble();
  }
  return u;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  GCON_CHECK_GT(n, 0ULL);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~0ULL) / n);
  std::uint64_t x = NextUint64();
  while (x >= limit) {
    x = NextUint64();
  }
  return x % n;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) {
  GCON_CHECK_GT(lambda, 0.0);
  return -std::log(NextDoubleOpen()) / lambda;
}

double Rng::Laplace(double scale) {
  GCON_CHECK_GT(scale, 0.0);
  const double u = NextDouble() - 0.5;  // (-0.5, 0.5)
  const double sign = u < 0.0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double Rng::Gamma(double shape, double scale) {
  GCON_CHECK_GT(shape, 0.0);
  GCON_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
    const double u = NextDoubleOpen();
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDoubleOpen();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v * scale;
    }
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::Beta(double a, double b) {
  GCON_CHECK_GT(a, 0.0);
  GCON_CHECK_GT(b, 0.0);
  const double x = Gamma(a, 1.0);
  const double y = Gamma(b, 1.0);
  const double sum = x + y;
  return sum > 0.0 ? x / sum : 0.5;
}

double Rng::Erlang(int shape, double rate) {
  GCON_CHECK_GT(shape, 0);
  GCON_CHECK_GT(rate, 0.0);
  // Gamma with integer shape; for small shapes, summing exponentials is both
  // exact and fast; fall back to the general sampler for large shapes.
  if (shape <= 16) {
    double acc = 0.0;
    for (int i = 0; i < shape; ++i) {
      acc += Exponential(rate);
    }
    return acc;
  }
  return Gamma(static_cast<double>(shape), 1.0 / rate);
}

std::int64_t Rng::Binomial(std::int64_t n, double p) {
  GCON_CHECK_GE(n, 0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - Binomial(n, 1.0 - p);
  const double mean = static_cast<double>(n) * p;
  if (n <= 64) {
    std::int64_t count = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      count += Bernoulli(p) ? 1 : 0;
    }
    return count;
  }
  // The header promises the normal approximation only where np(1-p) > 100;
  // the old `mean >= 64` switch reached it with variance as low as 32,
  // where the binomial is still visibly skewed. Anywhere below that
  // threshold the mean is at most 100/(1-p) <= 200, so P(0) = (1-p)^n >=
  // e^-300 stays comfortably above double underflow and the exact walk is
  // both correct and cheap.
  if (mean * (1.0 - p) <= 100.0) {
    // Inverse-CDF walk: P(k) follows the recurrence
    // P(k+1) = P(k) * (n-k)/(k+1) * p/(1-p).
    const double q = 1.0 - p;
    const double ratio = p / q;
    double pk = std::pow(q, static_cast<double>(n));  // P(0)
    double cdf = pk;
    const double u = NextDouble();
    std::int64_t k = 0;
    while (u > cdf && k < n) {
      pk *= ratio * static_cast<double>(n - k) / static_cast<double>(k + 1);
      cdf += pk;
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction, clamped to [0, n].
  const double stddev = std::sqrt(mean * (1.0 - p));
  const double sample = std::round(Normal(mean, stddev));
  if (sample < 0.0) return 0;
  if (sample > static_cast<double>(n)) return n;
  return static_cast<std::int64_t>(sample);
}

std::vector<double> Rng::SphereDirection(int d) {
  GCON_CHECK_GE(d, 1);
  std::vector<double> v(static_cast<std::size_t>(d));
  double norm_sq = 0.0;
  do {
    norm_sq = 0.0;
    for (auto& x : v) {
      x = Normal();
      norm_sq += x * x;
    }
  } while (norm_sq == 0.0);
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (auto& x : v) {
    x *= inv;
  }
  return v;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(UniformInt(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  GCON_CHECK_LE(k, n);
  // Partial Fisher–Yates on an index array; O(n) memory, O(n + k) time.
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const int j =
        i + static_cast<int>(UniformInt(static_cast<std::uint64_t>(n - i)));
    std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
    out.push_back(pool[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace gcon
