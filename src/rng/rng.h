// Deterministic, seedable random number generation.
//
// The engine is xoshiro256** (public-domain algorithm by Blackman & Vigna),
// implemented from scratch. All distribution samplers are written here
// rather than taken from <random> so the exact sampling procedures used by
// the DP mechanisms (Erlang radius, sphere direction, Laplace tails) are
// visible, auditable, and reproducible across standard libraries.
#ifndef GCON_RNG_RNG_H_
#define GCON_RNG_RNG_H_

#include <cstdint>
#include <vector>

namespace gcon {

class Rng {
 public:
  /// Seeds the engine deterministically from a single 64-bit seed via
  /// SplitMix64 (the recommended seeding procedure for xoshiro).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in (0, 1) — never returns exactly 0 (safe for log()).
  double NextDoubleOpen();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// Standard normal via the Marsaglia polar method.
  double Normal();

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev);

  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda);

  /// Laplace(0, scale b): density (1/2b)·exp(-|x|/b).
  double Laplace(double scale);

  /// Gamma(shape k > 0, scale θ) via Marsaglia–Tsang squeeze
  /// (with the boosting trick for k < 1).
  double Gamma(double shape, double scale);

  /// Beta(a, b) via the ratio of gammas.
  double Beta(double a, double b);

  /// Erlang(shape d, rate β): sum of d Exp(β), i.e. Gamma(d, 1/β).
  /// This is the radius distribution of Eq. (14) in the paper.
  double Erlang(int shape, double rate);

  /// Binomial(n, p). Exact summation for small n; inverse-CDF walk while
  /// the variance np(1-p) is at most 100; normal approximation (rounded,
  /// clamped) otherwise. The approximation regime is only entered when
  /// np(1-p) > 100, where the relative error is negligible for simulation
  /// purposes.
  std::int64_t Binomial(std::int64_t n, double p);

  /// Uniform direction on the unit sphere in R^d (d >= 1).
  std::vector<double> SphereDirection(int d);

  /// Fisher–Yates shuffle of [0, n) indices.
  std::vector<int> Permutation(int n);

  /// Samples k distinct values from [0, n) (k <= n), unsorted.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  std::uint64_t state_[4];
  // Cached second output of the polar method.
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gcon

#endif  // GCON_RNG_RNG_H_
