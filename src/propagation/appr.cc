#include "propagation/appr.h"

#include <cmath>

#include "common/check.h"
#include "linalg/ops.h"

namespace gcon {
namespace {

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  double best = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double d = std::abs(a.data()[k] - b.data()[k]);
    if (d > best) best = d;
  }
  return best;
}

}  // namespace

Matrix ApprPropagate(const CsrMatrix& transition, const Matrix& x, int m,
                     double alpha) {
  GCON_CHECK_GE(m, 0);
  GCON_CHECK_GT(alpha, 0.0);
  GCON_CHECK_LE(alpha, 1.0);
  if (m == 0) return x;
  // Double-buffered fused rounds: z' <- (1-alpha) T z + alpha x is one
  // SpmmAxpby pass per round, ping-ponging between two buffers instead of
  // allocating a fresh matrix each round.
  Matrix z = x;
  Matrix next(x.rows(), x.cols());
  for (int t = 0; t < m; ++t) {
    transition.SpmmAxpby(1.0 - alpha, z, alpha, x, &next);
    std::swap(z, next);
  }
  return z;
}

Matrix PprPropagate(const CsrMatrix& transition, const Matrix& x, double alpha,
                    double tolerance, int max_rounds) {
  GCON_CHECK_GT(alpha, 0.0);
  GCON_CHECK_LE(alpha, 1.0);
  if (alpha == 1.0) return x;  // R_inf = I when the walk restarts always.
  Matrix z = x;
  Matrix next(x.rows(), x.cols());
  for (int t = 0; t < max_rounds; ++t) {
    transition.SpmmAxpby(1.0 - alpha, z, alpha, x, &next);
    const double diff = MaxAbsDiff(next, z);
    std::swap(z, next);
    if (diff < tolerance) break;
  }
  return z;
}

Matrix Propagate(const CsrMatrix& transition, const Matrix& x, int m,
                 double alpha) {
  if (m == kInfiniteSteps) {
    return PprPropagate(transition, x, alpha);
  }
  return ApprPropagate(transition, x, m, alpha);
}

Matrix ConcatPropagate(const CsrMatrix& transition, const Matrix& x,
                       const std::vector<int>& steps, double alpha) {
  GCON_CHECK(!steps.empty());
  std::vector<Matrix> blocks;
  blocks.reserve(steps.size());
  for (int m : steps) {
    blocks.push_back(Propagate(transition, x, m, alpha));
  }
  Matrix z = ConcatCols(blocks);
  ScaleInPlace(1.0 / static_cast<double>(steps.size()), &z);
  return z;
}

}  // namespace gcon
