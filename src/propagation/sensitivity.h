// Closed-form sensitivity bounds of the aggregate features (Lemma 2).
//
//   Ψ(Z_m)   = 2(1-alpha)/alpha * (1 - (1-alpha)^m)      (Eq. 25)
//   Ψ(Z_inf) = 2(1-alpha)/alpha                          (limit of Eq. 25)
//   Ψ(Z)     = (1/s) * sum_i Ψ(Z_{m_i})                  (Eq. 26)
//
// The sensitivity metric is Definition 3: the max over edge-level
// neighboring graphs of sum_i ||z_i - z'_i||_2 (features row-normalized to
// unit L2 norm beforehand). These values calibrate the objective
// perturbation noise in Theorem 1; property tests verify that empirically
// measured ψ(Z) never exceeds them.
#ifndef GCON_PROPAGATION_SENSITIVITY_H_
#define GCON_PROPAGATION_SENSITIVITY_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"

namespace gcon {

/// Ψ(Z_m). `m` >= 0 or kInfiniteSteps; alpha in (0, 1].
double SensitivityZm(int m, double alpha);

/// Ψ(Z) for the concatenation over `steps` (Eq. 26).
double SensitivityZ(const std::vector<int>& steps, double alpha);

/// Empirical ψ(Z) between two same-shape feature matrices
/// (sum of row-wise L2 distances, Definition 3). Test/diagnostic helper.
double EmpiricalPsi(const Matrix& z, const Matrix& z_prime);

}  // namespace gcon

#endif  // GCON_PROPAGATION_SENSITIVITY_H_
