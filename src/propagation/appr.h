// PPR / APPR feature propagation (Eqs. (4)–(6), (9)–(11) of the paper).
//
// APPR with m steps computes Z_m = R_m X through the recursion
//   Z_0 = X,   Z_t = (1-alpha) Ã Z_{t-1} + alpha X,
// which is exactly R_m X by Eq. (4) and costs m SpMMs — the n x n matrix
// R_m is never materialized. PPR (m = infinity) iterates the same recursion
// to a fixed point; the iteration contracts at rate (1-alpha), so the
// number of rounds needed for tolerance tau is log(tau) / log(1-alpha).
#ifndef GCON_PROPAGATION_APPR_H_
#define GCON_PROPAGATION_APPR_H_

#include <vector>

#include "linalg/matrix.h"
#include "sparse/csr_matrix.h"

namespace gcon {

/// Sentinel step count meaning m = infinity (the PPR scheme, Eq. (5)).
inline constexpr int kInfiniteSteps = -1;

/// Z_m = R_m X for finite m >= 0 (Eq. (9), middle case; m = 0 returns X).
Matrix ApprPropagate(const CsrMatrix& transition, const Matrix& x, int m,
                     double alpha);

/// Z_inf = R_inf X (Eq. (9), last case), iterated to `tolerance` in the
/// max-abs sense (plus a hard cap of `max_rounds`).
Matrix PprPropagate(const CsrMatrix& transition, const Matrix& x, double alpha,
                    double tolerance = 1e-10, int max_rounds = 10000);

/// Dispatches on m (kInfiniteSteps -> PPR).
Matrix Propagate(const CsrMatrix& transition, const Matrix& x, int m,
                 double alpha);

/// The concatenated multi-scale feature matrix of Eq. (11):
///   Z = (1/s) (Z_{m_1} ⊕ ... ⊕ Z_{m_s}).
/// `steps` entries are >= 0 or kInfiniteSteps.
Matrix ConcatPropagate(const CsrMatrix& transition, const Matrix& x,
                       const std::vector<int>& steps, double alpha);

}  // namespace gcon

#endif  // GCON_PROPAGATION_APPR_H_
