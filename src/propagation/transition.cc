#include "propagation/transition.h"

#include <algorithm>

#include "common/check.h"

namespace gcon {

CsrMatrix BuildTransition(const Graph& graph, double p) {
  GCON_CHECK_GT(p, 0.0);
  GCON_CHECK_LE(p, 0.5);
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  CooBuilder builder(n, n);
  builder.Reserve(2 * graph.num_edges() + n);
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const double k = static_cast<double>(graph.Degree(i));
    const double off = std::min(1.0 / (k + 1.0), p);
    double diag = 1.0;
    for (int j : graph.Neighbors(i)) {
      builder.Add(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                  off);
      diag -= off;
    }
    builder.Add(static_cast<std::size_t>(i), static_cast<std::size_t>(i),
                diag);
  }
  return builder.Build();
}

}  // namespace gcon
