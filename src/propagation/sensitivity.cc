#include "propagation/sensitivity.h"

#include <cmath>

#include "common/check.h"
#include "propagation/appr.h"

namespace gcon {

double SensitivityZm(int m, double alpha) {
  GCON_CHECK_GT(alpha, 0.0);
  GCON_CHECK_LE(alpha, 1.0);
  if (m == kInfiniteSteps) {
    return 2.0 * (1.0 - alpha) / alpha;
  }
  GCON_CHECK_GE(m, 0);
  if (alpha == 1.0) return 0.0;  // no mass ever leaves the node
  return 2.0 * (1.0 - alpha) / alpha *
         (1.0 - std::pow(1.0 - alpha, static_cast<double>(m)));
}

double SensitivityZ(const std::vector<int>& steps, double alpha) {
  GCON_CHECK(!steps.empty());
  double total = 0.0;
  for (int m : steps) {
    total += SensitivityZm(m, alpha);
  }
  return total / static_cast<double>(steps.size());
}

double EmpiricalPsi(const Matrix& z, const Matrix& z_prime) {
  GCON_CHECK_EQ(z.rows(), z_prime.rows());
  GCON_CHECK_EQ(z.cols(), z_prime.cols());
  double total = 0.0;
  for (std::size_t i = 0; i < z.rows(); ++i) {
    const double* a = z.RowPtr(i);
    const double* b = z_prime.RowPtr(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < z.cols(); ++j) {
      const double d = a[j] - b[j];
      acc += d * d;
    }
    total += std::sqrt(acc);
  }
  return total;
}

}  // namespace gcon
