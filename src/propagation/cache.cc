#include "propagation/cache.h"

#include <cstdlib>
#include <cstring>
#include <tuple>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"
#include "propagation/appr.h"
#include "propagation/transition.h"

namespace gcon {
namespace {

/// Registry handles for the cache, fetched once. Event counters are
/// Prometheus-monotonic (ResetStats() clears the JSON-visible stats_, not
/// these); bytes/entries gauges track the stores' current footprint.
struct CacheMetrics {
  obs::Counter* csr_hits;
  obs::Counter* csr_misses;
  obs::Counter* prop_hits;
  obs::Counter* prop_misses;
  obs::Counter* evictions;
  obs::Gauge* bytes;
  obs::Gauge* entries;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    const auto event = [&](const char* kind) {
      return registry.counter("gcon_cache_events_total",
                              "PropagationCache events, by kind.",
                              {{"kind", kind}});
    };
    return CacheMetrics{
        event("csr_hit"),      event("csr_miss"), event("prop_hit"),
        event("prop_miss"),    event("evict"),
        registry.gauge("gcon_cache_bytes",
                       "Resident bytes across both cache stores."),
        registry.gauge("gcon_cache_entries",
                       "Resident entries across both cache stores."),
    };
  }();
  return metrics;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t FnvMix(std::uint64_t h, std::uint64_t v) {
  // splitmix64-style word mix: far cheaper than byte-wise FNV (the matrix
  // hash runs over every element on every cache lookup, so it must be much
  // faster than the propagation it short-circuits) while still diffusing
  // every input bit across the state.
  v *= 0x9E3779B97F4A7C15ull;
  v ^= v >> 32;
  h = (h ^ v) * 0xBF58476D1CE4E5B9ull;
  return h ^ (h >> 29);
}

inline std::uint64_t DoubleBits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::uint64_t HashString(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t FingerprintGraph(const Graph& graph) {
  std::uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<std::uint64_t>(graph.num_nodes()));
  h = FnvMix(h, static_cast<std::uint64_t>(graph.num_classes()));
  h = FnvMix(h, static_cast<std::uint64_t>(graph.num_edges()));
  for (int v = 0; v < graph.num_nodes(); ++v) {
    for (int u : graph.Neighbors(v)) {
      h = FnvMix(h, static_cast<std::uint64_t>(u));
    }
    h = FnvMix(h, ~static_cast<std::uint64_t>(v));  // row separator
  }
  return h;
}

std::uint64_t HashMatrix(const Matrix& m) {
  std::uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<std::uint64_t>(m.rows()));
  h = FnvMix(h, static_cast<std::uint64_t>(m.cols()));
  const double* d = m.data();
  for (std::size_t k = 0; k < m.size(); ++k) {
    h = FnvMix(h, DoubleBits(d[k]));
  }
  return h;
}

void PropagationCacheStats::AddEvents(const PropagationCacheStats& o) {
  csr_hits += o.csr_hits;
  csr_misses += o.csr_misses;
  propagation_hits += o.propagation_hits;
  propagation_misses += o.propagation_misses;
  miss_build_seconds += o.miss_build_seconds;
  hit_seconds_saved += o.hit_seconds_saved;
}

thread_local PropagationCacheStatsScope* PropagationCacheStatsScope::current_ =
    nullptr;

PropagationCacheStatsScope::PropagationCacheStatsScope() : prev_(current_) {
  current_ = this;
}

PropagationCacheStatsScope::~PropagationCacheStatsScope() { current_ = prev_; }

void PropagationCache::RecordScoped(const PropagationCacheStats& event) {
  for (PropagationCacheStatsScope* scope = PropagationCacheStatsScope::current_;
       scope != nullptr; scope = scope->prev_) {
    scope->stats_.AddEvents(event);
  }
}

bool PropagationCache::PropKey::operator<(const PropKey& o) const {
  return std::tie(transition_key, x_hash, x_rows, x_cols, alpha, steps) <
         std::tie(o.transition_key, o.x_hash, o.x_rows, o.x_cols, o.alpha,
                  o.steps);
}

PropagationCache& PropagationCache::Global() {
  static PropagationCache* cache = [] {
    auto* c = new PropagationCache();
    const char* env = std::getenv("GCON_PROPAGATION_CACHE");
    if (env != nullptr && std::string(env) == "0") c->set_enabled(false);
    return c;
  }();
  return *cache;
}

PropagationCache::CachedCsr PropagationCache::Transition(const Graph& graph,
                                                         double p) {
  const std::uint64_t fp = FingerprintGraph(graph);
  return CsrLocked("transition", fp, p,
                   [&] { return BuildTransition(graph, p); });
}

PropagationCache::CachedCsr PropagationCache::Adjacency(const Graph& graph) {
  const std::uint64_t fp = FingerprintGraph(graph);
  return CsrLocked("adjacency", fp, 0.0, [&] { return graph.AdjacencyCsr(); });
}

PropagationCache::CachedCsr PropagationCache::Csr(
    const std::string& tag, std::uint64_t fingerprint,
    const std::function<CsrMatrix()>& build) {
  return CsrLocked(tag, fingerprint, 0.0, build);
}

PropagationCache::CachedCsr PropagationCache::CsrLocked(
    const std::string& tag, std::uint64_t fingerprint, double param,
    const std::function<CsrMatrix()>& build) {
  std::uint64_t key = HashString(tag);
  key = FnvMix(key, fingerprint);
  key = FnvMix(key, DoubleBits(param));

  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled_) {
    lock.unlock();
    return CachedCsr{std::make_shared<const CsrMatrix>(build()), /*key=*/0};
  }
  auto it = csr_store_.find(key);
  if (it != csr_store_.end()) {
    PropagationCacheStats event;
    event.csr_hits = 1;
    event.hit_seconds_saved = it->second.build_seconds;
    stats_.AddEvents(event);
    RecordScoped(event);
    Metrics().csr_hits->Increment();
    it->second.last_use = ++clock_;
    return CachedCsr{it->second.csr, key};
  }
  lock.unlock();
  Timer timer;
  auto csr = std::make_shared<const CsrMatrix>(build());
  const double seconds = timer.Seconds();
  lock.lock();
  PropagationCacheStats event;
  event.csr_misses = 1;
  event.miss_build_seconds = seconds;
  stats_.AddEvents(event);
  RecordScoped(event);
  Metrics().csr_misses->Increment();
  csr_store_[key] = CsrEntry{csr, seconds, ++clock_};
  EvictIfNeededLocked();
  return CachedCsr{std::move(csr), key};
}

Matrix PropagationCache::ConcatPropagate(const CsrMatrix& transition,
                                         std::uint64_t transition_key,
                                         const Matrix& x,
                                         const std::vector<int>& steps,
                                         double alpha) {
  std::unique_lock<std::mutex> lock(mu_);
  // transition_key == 0 marks a transition the cache did not produce; the
  // key could not distinguish it from another such matrix, so skip
  // memoization rather than risk a false hit.
  if (!enabled_ || transition_key == 0) {
    lock.unlock();
    return gcon::ConcatPropagate(transition, x, steps, alpha);
  }
  lock.unlock();

  PropKey key{transition_key, HashMatrix(x), x.rows(), x.cols(), steps, alpha};

  lock.lock();
  auto it = prop_store_.find(key);
  if (it != prop_store_.end()) {
    PropagationCacheStats event;
    event.propagation_hits = 1;
    event.hit_seconds_saved = it->second.build_seconds;
    stats_.AddEvents(event);
    RecordScoped(event);
    Metrics().prop_hits->Increment();
    it->second.last_use = ++clock_;
    return *it->second.z;
  }
  lock.unlock();
  Timer timer;
  auto z = std::make_shared<const Matrix>(
      gcon::ConcatPropagate(transition, x, steps, alpha));
  const double seconds = timer.Seconds();
  lock.lock();
  PropagationCacheStats event;
  event.propagation_misses = 1;
  event.miss_build_seconds = seconds;
  stats_.AddEvents(event);
  RecordScoped(event);
  Metrics().prop_misses->Increment();
  Matrix result = *z;
  prop_store_[std::move(key)] = PropEntry{std::move(z), seconds, ++clock_};
  EvictIfNeededLocked();
  return result;
}

std::size_t PropagationCache::BytesLocked() const {
  std::size_t bytes = 0;
  for (const auto& kv : csr_store_) {
    const CsrMatrix& m = *kv.second.csr;
    bytes += m.row_ptr().size() * sizeof(std::int64_t) +
             m.nnz() * (sizeof(std::int32_t) + sizeof(double));
  }
  for (const auto& kv : prop_store_) {
    bytes += kv.second.z->size() * sizeof(double);
  }
  return bytes;
}

void PropagationCache::EvictIfNeededLocked() {
  auto evict_lru_csr = [this] {
    auto victim = csr_store_.begin();
    for (auto it = csr_store_.begin(); it != csr_store_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    csr_store_.erase(victim);
    Metrics().evictions->Increment();
  };
  auto evict_lru_prop = [this] {
    auto victim = prop_store_.begin();
    for (auto it = prop_store_.begin(); it != prop_store_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    prop_store_.erase(victim);
    Metrics().evictions->Increment();
  };
  while (csr_store_.size() > max_entries_per_store_) evict_lru_csr();
  while (prop_store_.size() > max_entries_per_store_) evict_lru_prop();
  // Byte budget: propagation entries dominate (dense n x sd), evict them
  // first, then CSRs.
  while (BytesLocked() > max_bytes_ && !prop_store_.empty()) evict_lru_prop();
  while (BytesLocked() > max_bytes_ && !csr_store_.empty()) evict_lru_csr();
  Metrics().bytes->Set(static_cast<double>(BytesLocked()));
  Metrics().entries->Set(
      static_cast<double>(csr_store_.size() + prop_store_.size()));
}

PropagationCacheStats PropagationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PropagationCacheStats out = stats_;
  out.entries = csr_store_.size() + prop_store_.size();
  out.bytes = BytesLocked();
  return out;
}

void PropagationCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = PropagationCacheStats{};
}

void PropagationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  csr_store_.clear();
  prop_store_.clear();
  Metrics().bytes->Set(0.0);
  Metrics().entries->Set(0.0);
}

bool PropagationCache::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void PropagationCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
  if (!enabled_) {
    csr_store_.clear();
    prop_store_.clear();
    Metrics().bytes->Set(0.0);
    Metrics().entries->Set(0.0);
  }
}

void PropagationCache::set_capacity(std::size_t max_entries_per_store,
                                    std::size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_per_store_ = max_entries_per_store;
  max_bytes_ = max_bytes;
  EvictIfNeededLocked();
}

}  // namespace gcon
