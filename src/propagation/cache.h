// Cross-run propagation cache.
//
// GCON's decoupled design (and GAP/ProGAP's, after them) makes everything
// before the privacy budget enters a pure function of (graph structure,
// encoder output, steps, alpha): the transition matrix Ã and the propagated
// features Z can be computed once and reused. Repeated-run drivers —
// RunMethodRepeated, the bench_fig1/fig4 epsilon sweeps, the gcon adapter's
// alpha_grid search — would otherwise rebuild Ã and re-propagate identical
// features on every run; this process-wide cache memoizes both.
//
// Keying and invalidation:
//   * CSR entries (transition / adjacency / caller-tagged builds) are keyed
//     on a structural graph fingerprint — a 64-bit hash of (n, classes,
//     degrees, neighbor lists) — plus a builder tag and scalar parameter.
//     Features do not enter the fingerprint because none of the cached
//     builders read them. Mutating a graph (Add/RemoveEdge) changes the
//     fingerprint, so stale entries are never returned; they simply age out
//     of the LRU.
//   * Propagation entries are keyed on (CSR entry key, 64-bit content hash
//     of X plus its shape, steps, alpha). A hash collision would require two
//     distinct same-shape feature matrices with equal 64-bit hashes —
//     negligible against the ~1e-3 scale of the statistics involved.
//   * Both stores are LRU-bounded (entry count and total bytes); there is
//     no time-based invalidation because entries are immutable pure values.
//
// Hits return copies (callers own their matrices, public APIs unchanged).
// A hit is bitwise identical to the recompute it replaces, so determinism
// guarantees pass through the cache unchanged. Disable with
// GCON_PROPAGATION_CACHE=0 in the environment or set_enabled(false).
//
// Thread safety: every public method is safe to call concurrently (one
// internal mutex; builds run outside it, so two threads missing the same
// key both build — last insert wins, and both get bitwise-identical
// values). stats() is the process-wide tally; per-call attribution under
// concurrency goes through PropagationCacheStatsScope below.
#ifndef GCON_PROPAGATION_CACHE_H_
#define GCON_PROPAGATION_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "sparse/csr_matrix.h"

namespace gcon {

/// 64-bit structural fingerprint (nodes, classes, edges); features excluded.
std::uint64_t FingerprintGraph(const Graph& graph);

/// 64-bit content hash of a Matrix (shape + raw element bit patterns).
std::uint64_t HashMatrix(const Matrix& m);

/// Counters exposed to benches and RunMethodRepeated. csr_* covers every
/// CSR build kind (transition, adjacency, caller-tagged); propagation_*
/// covers ConcatPropagate. *_misses time the builds actually executed
/// (miss_build_seconds); *_hits credit the build time of the entry they
/// avoided recomputing (hit_seconds_saved).
struct PropagationCacheStats {
  std::uint64_t csr_hits = 0;
  std::uint64_t csr_misses = 0;
  std::uint64_t propagation_hits = 0;
  std::uint64_t propagation_misses = 0;
  double miss_build_seconds = 0.0;
  double hit_seconds_saved = 0.0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  /// Accumulates the event counters of `o` (hits/misses/seconds). The
  /// store-snapshot fields (entries, bytes) describe a moment, not events,
  /// and are left untouched. Every tally in the codebase — the global
  /// stats_, the per-thread scopes, RunMethodRepeated's per-run merge —
  /// goes through this one place.
  void AddEvents(const PropagationCacheStats& o);
};

/// RAII scope that counts the cache events performed *by the constructing
/// thread* while it is alive — the per-call accounting that replaced the
/// old "diff PropagationCache::Global().stats() across the call" scheme,
/// which silently attributed every concurrent caller's events to whoever
/// diffed (see RunMethodRepeated). Scopes nest: an event is credited to
/// every scope on the current thread's stack, so an outer scope sees the
/// sum of its inner scopes plus its own direct events. A scope never
/// observes events from other threads; a worker that should contribute to
/// a caller's tally opens its own scope and the caller merges the
/// per-worker stats() snapshots (what RunMethodRepeated does per run).
/// `entries`/`bytes` stay zero — they describe the store, not a call.
/// Must be destroyed on the thread that constructed it, in LIFO order.
class PropagationCacheStatsScope {
 public:
  PropagationCacheStatsScope();
  ~PropagationCacheStatsScope();
  PropagationCacheStatsScope(const PropagationCacheStatsScope&) = delete;
  PropagationCacheStatsScope& operator=(const PropagationCacheStatsScope&) =
      delete;

  /// Events recorded so far; readable while the scope is still open (only
  /// from the owning thread — there is no synchronization).
  const PropagationCacheStats& stats() const { return stats_; }

 private:
  friend class PropagationCache;

  /// Innermost open scope of the current thread (nullptr outside any
  /// scope); chained through prev_ for nesting.
  static thread_local PropagationCacheStatsScope* current_;

  PropagationCacheStats stats_;
  PropagationCacheStatsScope* prev_ = nullptr;
};

class PropagationCache {
 public:
  /// The process-wide instance every training path shares. Enabled unless
  /// the environment sets GCON_PROPAGATION_CACHE=0.
  static PropagationCache& Global();

  PropagationCache() = default;
  PropagationCache(const PropagationCache&) = delete;
  PropagationCache& operator=(const PropagationCache&) = delete;

  /// A cached CSR build: the matrix plus the entry key that identifies it
  /// when keying dependent propagation results.
  struct CachedCsr {
    std::shared_ptr<const CsrMatrix> csr;
    std::uint64_t key = 0;
  };

  /// Memoized BuildTransition(graph, p).
  CachedCsr Transition(const Graph& graph, double p = 0.5);

  /// Memoized graph.AdjacencyCsr() (GAP/ProGAP aggregation matrix).
  CachedCsr Adjacency(const Graph& graph);

  /// Generic memoized CSR build for callers outside this layer (e.g. the
  /// GCN/DPGCN symmetric normalization): `tag` namespaces the builder,
  /// `fingerprint` is FingerprintGraph of the source graph, `build` runs on
  /// a miss.
  CachedCsr Csr(const std::string& tag, std::uint64_t fingerprint,
                const std::function<CsrMatrix()>& build);

  /// Memoized ConcatPropagate(transition, x, steps, alpha). `transition_key`
  /// is the key of the CachedCsr holding `transition`. A key of 0 (a
  /// transition the cache did not produce) disables memoization for the
  /// call — the key could not tell two such transitions apart.
  Matrix ConcatPropagate(const CsrMatrix& transition,
                         std::uint64_t transition_key, const Matrix& x,
                         const std::vector<int>& steps, double alpha);

  PropagationCacheStats stats() const;
  void ResetStats();

  /// Drops every entry (stats are kept; see ResetStats).
  void Clear();

  bool enabled() const;
  /// Disabling clears the stores; every call then recomputes.
  void set_enabled(bool enabled);

  /// LRU bounds. Defaults: 32 entries per store, 512 MiB total.
  void set_capacity(std::size_t max_entries_per_store, std::size_t max_bytes);

 private:
  struct CsrEntry {
    std::shared_ptr<const CsrMatrix> csr;
    double build_seconds = 0.0;
    std::uint64_t last_use = 0;
  };
  struct PropKey {
    std::uint64_t transition_key;
    std::uint64_t x_hash;
    std::size_t x_rows;
    std::size_t x_cols;
    std::vector<int> steps;
    double alpha;
    bool operator<(const PropKey& o) const;
  };
  struct PropEntry {
    std::shared_ptr<const Matrix> z;
    double build_seconds = 0.0;
    std::uint64_t last_use = 0;
  };

  CachedCsr CsrLocked(const std::string& tag, std::uint64_t fingerprint,
                      double param, const std::function<CsrMatrix()>& build);
  void EvictIfNeededLocked();
  std::size_t BytesLocked() const;

  /// Credits a cache event (counter deltas in `event`) to every
  /// PropagationCacheStatsScope open on the current thread.
  static void RecordScoped(const PropagationCacheStats& event);

  mutable std::mutex mu_;
  bool enabled_ = true;
  std::size_t max_entries_per_store_ = 32;
  std::size_t max_bytes_ = 512u << 20;
  std::uint64_t clock_ = 0;
  std::map<std::uint64_t, CsrEntry> csr_store_;
  std::map<PropKey, PropEntry> prop_store_;
  PropagationCacheStats stats_;
};

}  // namespace gcon

#endif  // GCON_PROPAGATION_CACHE_H_
