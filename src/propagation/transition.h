// Message-passing (transition) matrix construction.
//
// Ã = D^{-1}(A + I) with D the degree matrix of A + I (paper §IV-C2 with
// r = 0): row-stochastic, off-diagonal entries 1/(k_i+1), diagonal
// 1/(k_i+1). The generalized form of Lemma 1 clips off-diagonal entries at
// p <= 1/2 and routes the clipped mass back to the diagonal; p = 1/2
// reproduces the standard normalization exactly (1/(k_i+1) <= 1/2 whenever
// k_i >= 1). The clipped variant exists so the Lemma 1 property tests can
// exercise the general statement.
#ifndef GCON_PROPAGATION_TRANSITION_H_
#define GCON_PROPAGATION_TRANSITION_H_

#include "graph/graph.h"
#include "sparse/csr_matrix.h"

namespace gcon {

/// Builds the row-stochastic transition matrix Ã. `p` is the Lemma 1
/// off-diagonal clip (default 1/2 = standard normalization).
CsrMatrix BuildTransition(const Graph& graph, double p = 0.5);

}  // namespace gcon

#endif  // GCON_PROPAGATION_TRANSITION_H_
