// Process-wide metrics registry for the observability tier.
//
// Instruments register Counter/Gauge/Histogram handles once (by metric name
// + label set) and then update them lock-free from hot paths:
//   * Counter    — monotonically increasing, relaxed fetch_add;
//   * Gauge      — last-written double, relaxed store (Set) or CAS (Add);
//   * Histogram  — the LatencyStats octave/sub-bucket scheme, one relaxed
//                  fetch_add per observation.
// Registration takes a mutex (it happens once per call site, at startup or
// first use); updates through a held handle never do. Handles are stable
// pointers into deque-backed storage and stay valid for the registry's
// lifetime, so call sites cache them in function-local statics.
//
// The whole tier can be disarmed for A/B overhead measurement:
// SetMetricsEnabled(false) turns every handle update into a single relaxed
// load + branch (bench_serve's obs_overhead_qps_ratio measures exactly
// this on/off delta). Updates are dropped while disarmed; the registry's
// contents are not cleared.
//
// PrometheusText() renders the classic text exposition format — families
// sorted by name, series sorted by label string, locale-pinned numbers —
// terminated by a "# EOF" line that doubles as the end-of-response
// sentinel on the newline-JSON admin transport.
#ifndef GCON_OBS_METRICS_H_
#define GCON_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/latency_stats.h"

namespace gcon {
namespace obs {

/// Global arm switch for every metric handle. Relaxed load: the only
/// consistency a monitoring counter needs is that updates eventually land.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// label name -> value pairs, e.g. {{"model", "default"}}. Order given at
/// registration is preserved in the exposition.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (!MetricsEnabled()) return;
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  void Observe(double v) {
    if (!MetricsEnabled()) return;
    stats_.Record(v);
  }
  const LatencyStats& stats() const { return stats_; }

 private:
  LatencyStats stats_;
};

/// Name + label registry. Global() is the process-wide instance every
/// instrument uses; tests build local instances for deterministic
/// exposition goldens.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Each getter registers the (name, labels) series on first call and
  /// returns the same stable handle on every later call. `help` is the
  /// family's HELP text; the first registration wins. Registering one name
  /// as two different metric types throws std::logic_error — that is a
  /// programming error, not a runtime condition.
  Counter* counter(const std::string& name, const std::string& help,
                   const MetricLabels& labels = {});
  Gauge* gauge(const std::string& name, const std::string& help,
               const MetricLabels& labels = {});
  Histogram* histogram(const std::string& name, const std::string& help,
                       const MetricLabels& labels = {});

  /// Prometheus text exposition of every registered series, deterministic
  /// (sorted families, sorted series) and terminated by "# EOF\n".
  std::string PrometheusText() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    std::string label_string;  ///< rendered "{k=\"v\",...}" or ""
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::map<std::string, Series> series;  ///< keyed by label_string
  };

  Family* FamilyLocked(const std::string& name, const std::string& help,
                       Type type);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  // Handle storage: unique_ptrs give stable addresses across map growth.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace gcon

#endif  // GCON_OBS_METRICS_H_
