// Per-request trace recorder for the serving tier.
//
// A sampled ServeRequest carries a RequestTrace: a span timeline stamped at
// the stations a query passes through —
//   parse -> enqueue -> batch-form -> gather -> gemm -> respond
// — each mark an offset in microseconds from the trace's start (the moment
// the wire layer finished parsing the request). Marks are plain doubles,
// not atomics: every stamp site is ordered by the synchronization the
// query already rides (the batcher mutex between enqueue and batch-form,
// the promise/future handoff between gemm and respond), so there is no
// concurrent access to a mark.
//
// Sampling is decided once, at the wire layer, by TraceRecorder::MaybeStart.
// The disarmed fast path (sample_every == 0, or this request not selected)
// is one relaxed atomic load (+ one relaxed fetch_add when armed) and
// returns a null shared_ptr; every downstream stamp site is then a single
// null-pointer check. Default is disarmed; `gcon_cli serve` arms 1/64 via
// --trace-sample.
//
// Completed traces land in a fixed-size lock-free ring (a per-slot seqlock
// over atomic fields — writers never block, torn reads are detected and
// skipped), served back by the `trace` admin verb as JSON. Traces slower
// than the configured --slow-query-us threshold are additionally logged
// with their spans inline.
#ifndef GCON_OBS_TRACE_H_
#define GCON_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/timer.h"

namespace gcon {
namespace obs {

enum TraceMark : int {
  kMarkParse = 0,
  kMarkEnqueue,
  kMarkBatchForm,
  kMarkGather,
  kMarkGemm,
  kMarkRespond,
};
inline constexpr int kNumTraceMarks = 6;

/// Stable span names, indexed by TraceMark; shared by the JSON exposition,
/// the slow-query log, and the README glossary.
const char* TraceMarkName(int mark);

/// Transport tags for RequestTrace::transport.
inline constexpr int kTransportJson = 0;
inline constexpr int kTransportBinary = 1;
const char* TransportName(int transport);

struct RequestTrace {
  std::int64_t id = 0;
  int transport = kTransportJson;
  Timer timer;  ///< starts at MaybeStart (parse time)
  std::array<double, kNumTraceMarks> offset_us;

  RequestTrace() { offset_us.fill(-1.0); }

  void Stamp(TraceMark mark) {
    offset_us[static_cast<std::size_t>(mark)] = timer.Seconds() * 1e6;
  }
};

class TraceRecorder {
 public:
  static constexpr std::size_t kRingSize = 256;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  /// sample_every == 0 disarms tracing entirely; N samples every Nth
  /// request. slow_query_us == 0 disables the slow-query log.
  void Configure(std::uint32_t sample_every, std::int64_t slow_query_us);
  std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  std::int64_t slow_query_us() const {
    return slow_query_us_.load(std::memory_order_relaxed);
  }

  /// Sampling decision for one parsed request. Returns a live trace (parse
  /// already stamped) for selected requests, null otherwise.
  std::shared_ptr<RequestTrace> MaybeStart(std::int64_t id, int transport);

  /// Stamps `respond`, pushes the completed trace into the ring, counts it,
  /// and emits the slow-query log line if the total crossed the threshold.
  /// Null trace is a no-op.
  void Finish(const std::shared_ptr<RequestTrace>& trace);

  /// Last `last_n` completed traces (oldest first), one line of JSON:
  /// {"sample_every":.., "slow_query_us":.., "sampled":.., "traces":[..]}.
  std::string TracesJson(std::size_t last_n = 32) const;

  /// Completed (sampled) traces since process start.
  std::uint64_t sampled() const {
    return cursor_.load(std::memory_order_relaxed);
  }

 private:
  /// One ring slot: a seqlock over atomic fields. `version` is odd while a
  /// writer is mid-flight and 2*seq+2 once the push of sequence `seq` has
  /// landed; readers that observe anything else discard the slot.
  struct Slot {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::int64_t> id{0};
    std::atomic<int> transport{0};
    std::array<std::atomic<double>, kNumTraceMarks> offset_us{};
  };

  std::atomic<std::uint32_t> sample_every_{0};
  std::atomic<std::int64_t> slow_query_us_{0};
  std::atomic<std::uint64_t> request_counter_{0};
  std::atomic<std::uint64_t> cursor_{0};  ///< completed pushes
  std::array<Slot, kRingSize> slots_;
};

}  // namespace obs
}  // namespace gcon

#endif  // GCON_OBS_TRACE_H_
