#include "obs/trace.h"

#include <algorithm>
#include <locale>
#include <sstream>

#include "common/logging.h"
#include "obs/metrics.h"

namespace gcon {
namespace obs {
namespace {

struct TraceCounters {
  Counter* sampled;
  Counter* slow;
};

const TraceCounters& Counters() {
  static const TraceCounters counters = [] {
    auto& registry = MetricsRegistry::Global();
    return TraceCounters{
        registry.counter("gcon_trace_sampled_total",
                         "Requests selected by trace sampling."),
        registry.counter("gcon_trace_slow_total",
                         "Sampled requests over the slow-query threshold."),
    };
  }();
  return counters;
}

void AppendSpans(std::ostringstream* out,
                 const std::array<double, kNumTraceMarks>& offsets) {
  *out << "{";
  for (int m = 0; m < kNumTraceMarks; ++m) {
    if (m > 0) *out << ", ";
    *out << "\"" << TraceMarkName(m)
         << "\": " << offsets[static_cast<std::size_t>(m)];
  }
  *out << "}";
}

}  // namespace

const char* TraceMarkName(int mark) {
  switch (mark) {
    case kMarkParse:
      return "parse_us";
    case kMarkEnqueue:
      return "enqueue_us";
    case kMarkBatchForm:
      return "batch_form_us";
    case kMarkGather:
      return "gather_us";
    case kMarkGemm:
      return "gemm_us";
    case kMarkRespond:
      return "respond_us";
    default:
      return "unknown_us";
  }
}

const char* TransportName(int transport) {
  switch (transport) {
    case kTransportJson:
      return "json";
    case kTransportBinary:
      return "binary";
    default:
      return "unknown";
  }
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Configure(std::uint32_t sample_every,
                              std::int64_t slow_query_us) {
  sample_every_.store(sample_every, std::memory_order_relaxed);
  slow_query_us_.store(slow_query_us, std::memory_order_relaxed);
}

std::shared_ptr<RequestTrace> TraceRecorder::MaybeStart(std::int64_t id,
                                                        int transport) {
  // Disarmed fast path: one relaxed load, no allocation, no counter bump.
  const std::uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return nullptr;
  if (request_counter_.fetch_add(1, std::memory_order_relaxed) % every != 0) {
    return nullptr;
  }
  auto trace = std::make_shared<RequestTrace>();
  trace->id = id;
  trace->transport = transport;
  trace->timer.Reset();
  trace->Stamp(kMarkParse);
  return trace;
}

void TraceRecorder::Finish(const std::shared_ptr<RequestTrace>& trace) {
  if (!trace) return;
  trace->Stamp(kMarkRespond);

  // Seqlock push: claim a sequence number, mark the slot dirty (odd
  // version), publish the fields, then seal it with the even version a
  // reader of sequence `seq` expects. Writers never block each other on the
  // same slot unless they are a full ring apart, in which case the version
  // check makes one of them invisible rather than torn.
  //
  // Ordering rides the field accesses themselves (release stores here,
  // acquire loads in TracesJson) rather than standalone fences: a reader
  // that observes any field from this write synchronizes-with its release
  // store, which makes the odd version-mark (program-order earlier here)
  // visible to the reader's version recheck — torn reads are detected
  // without atomic_thread_fence, which GCC's TSan instrumentation does not
  // support. On x86 release stores and acquire loads are plain moves.
  const std::uint64_t seq =
      cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kRingSize];
  slot.version.store(2 * seq + 1, std::memory_order_relaxed);
  slot.id.store(trace->id, std::memory_order_release);
  slot.transport.store(trace->transport, std::memory_order_release);
  for (int m = 0; m < kNumTraceMarks; ++m) {
    slot.offset_us[static_cast<std::size_t>(m)].store(
        trace->offset_us[static_cast<std::size_t>(m)],
        std::memory_order_release);
  }
  slot.version.store(2 * seq + 2, std::memory_order_release);

  Counters().sampled->Increment();

  const std::int64_t slow_us =
      slow_query_us_.load(std::memory_order_relaxed);
  const double total_us =
      trace->offset_us[static_cast<std::size_t>(kMarkRespond)];
  if (slow_us > 0 && total_us >= static_cast<double>(slow_us)) {
    Counters().slow->Increment();
    std::ostringstream spans;
    spans.imbue(std::locale::classic());
    AppendSpans(&spans, trace->offset_us);
    GCON_LOG(WARNING) << "slow query id=" << trace->id
                      << " transport=" << TransportName(trace->transport)
                      << " total_us=" << total_us
                      << " spans=" << spans.str();
  }
}

std::string TraceRecorder::TracesJson(std::size_t last_n) const {
  last_n = std::min(last_n, kRingSize);
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > last_n ? end - last_n : 0;

  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "{\"sample_every\": " << sample_every()
      << ", \"slow_query_us\": " << slow_query_us()
      << ", \"sampled\": " << end << ", \"traces\": [";
  bool first = true;
  for (std::uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq % kRingSize];
    // Seqlock read: the slot must carry exactly this sequence's sealed
    // version before and after the field reads, or it was overwritten (or
    // is mid-write) and gets skipped. Acquire loads pair with the writer's
    // release field stores: reading any field of a later write makes that
    // writer's odd version-mark visible to the recheck below (see the
    // ordering note in Finish).
    const std::uint64_t expect = 2 * seq + 2;
    if (slot.version.load(std::memory_order_acquire) != expect) continue;
    const std::int64_t id = slot.id.load(std::memory_order_acquire);
    const int transport = slot.transport.load(std::memory_order_acquire);
    std::array<double, kNumTraceMarks> offsets;
    for (int m = 0; m < kNumTraceMarks; ++m) {
      offsets[static_cast<std::size_t>(m)] =
          slot.offset_us[static_cast<std::size_t>(m)].load(
              std::memory_order_acquire);
    }
    if (slot.version.load(std::memory_order_relaxed) != expect) continue;

    if (!first) out << ", ";
    first = false;
    out << "{\"id\": " << id << ", \"transport\": \""
        << TransportName(transport) << "\", \"spans_us\": ";
    AppendSpans(&out, offsets);
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace obs
}  // namespace gcon
