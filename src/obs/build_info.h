// Build identity for the serving tier: git sha (stamped at configure time
// into this TU only, so an sha change recompiles one file), compiler
// version, and the GEMM SIMD dispatch tier resolved at process start.
// Surfaces in the `gcon_cli serve` startup banner, the `stats` admin verb,
// and the metrics exposition's gcon_build_info gauge labels.
#ifndef GCON_OBS_BUILD_INFO_H_
#define GCON_OBS_BUILD_INFO_H_

#include <string>

namespace gcon {
namespace obs {

/// Short git sha of the checkout this binary was configured from, or
/// "unknown" outside a git work tree.
const char* GitSha();

/// Compiler identification string (__VERSION__).
const char* CompilerVersion();

/// GEMM dispatch tier actually selected on this machine.
const char* SimdTier();

/// {"git_sha": "...", "compiler": "...", "simd": "..."} — embedded in the
/// stats admin verb's JSON.
std::string BuildInfoJson();

/// "sha=... compiler=... simd=..." one-liner for the startup banner.
std::string BuildSummary();

}  // namespace obs
}  // namespace gcon

#endif  // GCON_OBS_BUILD_INFO_H_
