#include "obs/metrics.h"

#include <array>
#include <locale>
#include <sstream>
#include <stdexcept>

namespace gcon {
namespace obs {
namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Splices an `le="bound"` label into an already-rendered label string.
std::string WithLe(const std::string& label_string, const std::string& le) {
  if (label_string.empty()) return "{le=\"" + le + "\"}";
  return label_string.substr(0, label_string.size() - 1) + ",le=\"" + le +
         "\"}";
}

/// Locale-pinned number rendering; shortest round-trip-ish form is not
/// required, only determinism on one process.
std::string FormatDouble(double v) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(17);
  out << v;
  return out.str();
}

const char* TypeName(int type) {
  switch (type) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Family* MetricsRegistry::FamilyLocked(const std::string& name,
                                                       const std::string& help,
                                                       Type type) {
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.type = type;
    family.help = help;
  } else if (family.type != type) {
    throw std::logic_error("metric '" + name +
                           "' registered with conflicting types");
  }
  return &family;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyLocked(name, help, Type::kCounter);
  const std::string label_string = RenderLabels(labels);
  auto [it, inserted] = family->series.try_emplace(label_string);
  if (inserted) {
    counters_.push_back(std::make_unique<Counter>());
    it->second.label_string = label_string;
    it->second.counter = counters_.back().get();
  }
  return it->second.counter;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyLocked(name, help, Type::kGauge);
  const std::string label_string = RenderLabels(labels);
  auto [it, inserted] = family->series.try_emplace(label_string);
  if (inserted) {
    gauges_.push_back(std::make_unique<Gauge>());
    it->second.label_string = label_string;
    it->second.gauge = gauges_.back().get();
  }
  return it->second.gauge;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyLocked(name, help, Type::kHistogram);
  const std::string label_string = RenderLabels(labels);
  auto [it, inserted] = family->series.try_emplace(label_string);
  if (inserted) {
    histograms_.push_back(std::make_unique<Histogram>());
    it->second.label_string = label_string;
    it->second.histogram = histograms_.back().get();
  }
  return it->second.histogram;
}

std::string MetricsRegistry::PrometheusText() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    out << "# HELP " << name << " " << family.help << "\n";
    out << "# TYPE " << name << " " << TypeName(static_cast<int>(family.type))
        << "\n";
    for (const auto& [label_string, series] : family.series) {
      switch (family.type) {
        case Type::kCounter:
          out << name << label_string << " " << series.counter->value()
              << "\n";
          break;
        case Type::kGauge:
          out << name << label_string << " "
              << FormatDouble(series.gauge->value()) << "\n";
          break;
        case Type::kHistogram: {
          // Cumulative counts at each *occupied* bucket's upper bound, then
          // the mandatory +Inf bucket; empty buckets are elided to keep the
          // exposition proportional to the data, not to kBuckets.
          const LatencyStats& stats = series.histogram->stats();
          const auto counts = stats.BucketCounts();
          std::uint64_t cumulative = 0;
          for (int b = 0; b < LatencyStats::kBuckets; ++b) {
            const std::uint64_t n = counts[static_cast<std::size_t>(b)];
            if (n == 0) continue;
            cumulative += n;
            out << name << "_bucket"
                << WithLe(label_string,
                          std::to_string(LatencyStats::BucketUpperBound(b)))
                << " " << cumulative << "\n";
          }
          out << name << "_bucket" << WithLe(label_string, "+Inf") << " "
              << cumulative << "\n";
          out << name << "_sum" << label_string << " " << stats.SumUs()
              << "\n";
          out << name << "_count" << label_string << " " << stats.TotalCount()
              << "\n";
          break;
        }
      }
    }
  }
  out << "# EOF\n";
  return out.str();
}

}  // namespace obs
}  // namespace gcon
