#include "obs/build_info.h"

#include "linalg/gemm_kernels.h"

#ifndef GCON_GIT_SHA
#define GCON_GIT_SHA "unknown"
#endif

namespace gcon {
namespace obs {
namespace {

/// Minimal JSON string escaping; the inputs are compiler/version strings,
/// not user data, but __VERSION__ can contain anything a vendor likes.
std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

const char* GitSha() { return GCON_GIT_SHA; }

const char* CompilerVersion() { return __VERSION__; }

const char* SimdTier() {
  return internal::GemmUsesAvx2() ? "avx2+fma" : "portable";
}

std::string BuildInfoJson() {
  return std::string("{\"git_sha\": \"") + JsonEscape(GitSha()) +
         "\", \"compiler\": \"" + JsonEscape(CompilerVersion()) +
         "\", \"simd\": \"" + SimdTier() + "\"}";
}

std::string BuildSummary() {
  return std::string("sha=") + GitSha() + " compiler=" + CompilerVersion() +
         " simd=" + SimdTier();
}

}  // namespace obs
}  // namespace gcon
