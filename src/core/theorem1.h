// Theorem 1 parameter chain (Eqs. (17)–(24)).
//
// Given the privacy budget (ε, δ), the budget allocator ω, the loss
// derivative suprema (c1, c2, c3), the feature sensitivity Ψ(Z), and the
// model dimensions, computes:
//   c_sf  (Eq. 21)  Erlang tail quantile for the ‖θ_j‖ <= c_θ event,
//   Λ̄    (Eq. 22)  effective regularization coefficient,
//   c_θ   (Eq. 23)  bound on ‖θ_j‖_2 that holds except with prob. δ,
//   ε_Λ   (Eq. 24)  privacy cost of the Jacobian-determinant ratio,
//   Λ′    (Eq. 17)  extra quadratic perturbation coefficient,
//   β     (Eq. 18)  Erlang rate of the linear perturbation noise B.
//
// Note on Eq. (22): the paper overloads Λ. We use the self-consistent
// reading where Λ̄ = max(Λ, c·c2·Ψ·c_sf/(n1·ω·ε) + ξ) replaces Λ in the
// training objective and in Eqs. (17)/(23)/(24); without this, c_θ's
// denominator (Eq. 23) can be non-positive and Lemma 7 fails. ξ = 1e-6.
#ifndef GCON_CORE_THEOREM1_H_
#define GCON_CORE_THEOREM1_H_

#include <vector>

#include "core/convex_loss.h"

namespace gcon {

struct PrivacyInputs {
  double epsilon = 1.0;   // total budget ε
  double delta = 1e-5;    // failure probability δ
  double omega = 0.9;     // budget divider ω ∈ (0, 1)
  double lambda = 0.2;    // user-chosen regularization Λ
  int n1 = 0;             // number of training rows
  int num_classes = 0;    // c
  int dim = 0;            // d = s * d1 (columns of Z)
  double psi_z = 0.0;     // Ψ(Z) from Lemma 2
};

struct PrivacyParams {
  double c1 = 0.0, c2 = 0.0, c3 = 0.0;  // Eq. (19)
  double c_sf = 0.0;                    // Eq. (21)
  double lambda_bar = 0.0;              // Eq. (22), used in the objective
  double c_theta = 0.0;                 // Eq. (23)
  double eps_lambda = 0.0;              // Eq. (24)
  double lambda_prime = 0.0;            // Eq. (17)
  double beta = 0.0;                    // Eq. (18)
  /// True when Ψ(Z) = 0 (α = 1 or all steps 0): the features carry no edge
  /// information, so no perturbation is needed at all.
  bool zero_noise = false;

  /// Total quadratic coefficient Λ̄ + Λ′ used by the perturbed objective.
  double lambda_total() const { return lambda_bar + lambda_prime; }
};

/// Runs the full Eq. (17)–(24) chain. Aborts on invalid inputs
/// (ε <= 0, ω outside (0,1), n1 <= 0, ...).
PrivacyParams ComputePrivacyParams(const PrivacyInputs& in,
                                   const ConvexLoss& loss);

}  // namespace gcon

#endif  // GCON_CORE_THEOREM1_H_
