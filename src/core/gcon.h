// GCON end-to-end training (Algorithm 1) and inference (Algorithm 4).
//
// Pipeline:
//   1. feature encoder (Algorithm 3; edges never touched)     [ε-independent]
//   2. row-L2-normalize encoded features                      [ε-independent]
//   3. Ã = D^{-1}(A+I); Z = (1/s)(Z_{m_1} ⊕ ... ⊕ Z_{m_s})    [ε-independent]
//   4. Ψ(Z) (Lemma 2) → Theorem 1 parameters (Λ̄, Λ′, β)
//   5. sample B (Algorithm 2); minimize L_priv (Eq. 13/15)
//
// The ε-independent prefix is factored into GconPrepared so privacy-budget
// sweeps (Figures 1 and 4) and repeated noise draws reuse it.
//
// Inference (Algorithm 4):
//   * private:  Ŷ = (R̂_{m_1}X̄ ⊕ ... ⊕ R̂_{m_s}X̄) Θ_priv with the one-hop
//     R̂ = (1-α_I)Ã + α_I·I (Eq. 16) — only the query node's own edges are
//     read, so no extra privacy cost;
//   * public:   Ŷ = Z Θ_priv (test-graph edges considered public).
#ifndef GCON_CORE_GCON_H_
#define GCON_CORE_GCON_H_

#include <cstdint>
#include <vector>

#include "core/convex_loss.h"
#include "core/encoder.h"
#include "core/objective.h"
#include "core/theorem1.h"
#include "graph/graph.h"
#include "graph/splits.h"
#include "sparse/csr_matrix.h"

namespace gcon {

struct GconConfig {
  // Privacy budget.
  double epsilon = 1.0;
  double delta = 1e-5;
  double omega = 0.9;  // budget divider (Appendix Q fixes 0.9)

  // Propagation (Eq. 9-11).
  double alpha = 0.6;
  std::vector<int> steps = {2};  // entries >= 0 or kInfiniteSteps
  /// Restart probability at inference (Eq. 16); < 0 means "use alpha".
  double alpha_inference = -1.0;

  // Loss (§IV-C4) and regularization.
  ConvexLossKind loss_kind = ConvexLossKind::kMultiLabelSoftMargin;
  double pseudo_huber_delta = 0.5;
  double lambda = 0.2;

  // Encoder (Algorithm 3).
  EncoderOptions encoder;
  /// Expand the convex-stage training set to all nodes with encoder
  /// pseudo-labels (the paper's n1 = n option).
  bool expand_train_set = false;

  // Convex minimization (Eq. 15).
  MinimizeOptions minimize;

  std::uint64_t seed = 1;
  /// Ablation switch: skip the noise (B = 0, Λ′ = 0). NOT differentially
  /// private — exists to isolate the cost of the perturbation.
  bool disable_noise = false;
};

/// Everything on the ε-independent path of Algorithm 1.
struct GconPrepared {
  GconConfig config;
  int num_classes = 0;
  Matrix encoded;             ///< X̄ after row normalization (n x d1)
  CsrMatrix transition;       ///< Ã
  Matrix z;                   ///< Eq. (11), all nodes (n x d)
  Matrix z_train;             ///< training rows of z (n1 x d)
  Matrix y_train;             ///< one-hot targets (n1 x c)
  std::vector<int> train_nodes;
  double psi_z = 0.0;         ///< Ψ(Z), Lemma 2
  double encoder_val_accuracy = -1.0;
  Mlp encoder_mlp;            ///< for encoding other graphs
};

struct GconModel {
  Matrix theta;           ///< Θ_priv (d x c)
  PrivacyParams params;   ///< Theorem 1 outputs actually used
  MinimizeResult opt;     ///< minimizer diagnostics
};

/// Runs steps 1-3 of the pipeline (everything before the privacy budget
/// enters).
GconPrepared PrepareGcon(const Graph& graph, const Split& split,
                         const GconConfig& config);

/// Like PrepareGcon but reuses an already-trained encoder (the encoder does
/// not depend on alpha/steps/epsilon, so sweeps over those — Figures 2-4 —
/// train it once and call this).
GconPrepared PrepareGconFromEncoded(const Graph& graph, const Split& split,
                                    const GconConfig& config,
                                    const EncodedFeatures& encoded);

/// Runs steps 4-5: Theorem 1 parameters at (epsilon, delta) from `prepared`,
/// noise draw with `noise_seed`, convex minimization.
GconModel TrainPrepared(const GconPrepared& prepared, double epsilon,
                        double delta, std::uint64_t noise_seed);

/// Convenience: Prepare + TrainPrepared with the config's budget and seed.
GconModel TrainGcon(const Graph& graph, const Split& split,
                    const GconConfig& config);

/// Eq. (16) logits for every node of the training graph (private path).
Matrix PrivateInference(const GconPrepared& prepared, const GconModel& model);

/// Ŷ = ZΘ logits for every node (public test-graph path).
Matrix PublicInference(const GconPrepared& prepared, const GconModel& model);

/// Private-path logits on a *different* graph: encodes `graph` with the
/// trained encoder, then applies Eq. (16) (inference scenario (ii) with
/// private edges).
Matrix PrivateInferenceOnGraph(const GconPrepared& prepared,
                               const GconModel& model, const Graph& graph);

/// Public-path logits on a *different* graph whose edges are public:
/// full Eq. (11) propagation on that graph, then Ŷ = ZΘ (Algorithm 4's
/// "else" branch in scenario (ii)).
Matrix PublicInferenceOnGraph(const GconPrepared& prepared,
                              const GconModel& model, const Graph& graph);

}  // namespace gcon

#endif  // GCON_CORE_GCON_H_
