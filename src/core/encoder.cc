#include "core/encoder.h"

#include "common/check.h"
#include "linalg/ops.h"

namespace gcon {

EncodedFeatures TrainEncoder(const Graph& graph, const Split& split,
                             const EncoderOptions& options) {
  GCON_CHECK(!split.train.empty());
  GCON_CHECK_GT(graph.feature_dim(), 0);

  MlpOptions mlp_options;
  mlp_options.dims = {graph.feature_dim(), options.hidden, options.out_dim,
                      graph.num_classes()};
  mlp_options.hidden_activation = options.activation;
  mlp_options.learning_rate = options.learning_rate;
  mlp_options.weight_decay = options.weight_decay;
  mlp_options.epochs = options.epochs;
  mlp_options.seed = options.seed;

  EncodedFeatures out{Matrix(), {}, -1.0, Mlp(mlp_options)};
  out.mlp.Train(graph.features(), graph.labels(), split.train, split.val);

  const Matrix logits = out.mlp.Forward(graph.features());
  out.predictions.resize(static_cast<std::size_t>(graph.num_nodes()));
  for (int v = 0; v < graph.num_nodes(); ++v) {
    out.predictions[static_cast<std::size_t>(v)] =
        static_cast<int>(RowArgMax(logits, static_cast<std::size_t>(v)));
  }
  if (!split.val.empty()) {
    out.val_accuracy = Accuracy(logits, graph.labels(), split.val);
  }
  // Penultimate layer = last hidden representation (d1-dimensional).
  out.features = out.mlp.HiddenRepresentation(graph.features(),
                                              out.mlp.num_layers() - 1);
  return out;
}

}  // namespace gcon
