// GCON model (de)serialization — the release artifact of the paper's
// deployment story: the server trains under edge DP, then *publishes* the
// model; an untrusted consumer loads it and queries predictions.
//
// The artifact contains everything inference needs and nothing else:
//   * Θ_priv (the DP-protected parameters),
//   * the feature-encoder MLP (edge-free, hence publishable),
//   * the propagation configuration (α, steps, α_I) — hyperparameters,
//   * the privacy receipt (ε, δ and the Theorem 1 parameters used).
// Publishing all of this is safe: Θ_priv is (ε, δ)-DP and the rest never
// touched the edge set.
//
// Format: "gcon-model v1" header, key-value config lines, the Θ block, and
// the embedded MLP (nn/mlp_io.h format).
#ifndef GCON_CORE_MODEL_IO_H_
#define GCON_CORE_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "core/gcon.h"

namespace gcon {

/// Self-contained released model.
struct GconArtifact {
  Matrix theta;             ///< Θ_priv (d x c)
  Mlp encoder;              ///< trained feature encoder
  std::vector<int> steps;   ///< propagation steps {m_i}
  double alpha = 0.6;       ///< training restart probability
  double alpha_inference = -1.0;
  double epsilon = 0.0;     ///< privacy receipt
  double delta = 0.0;
  PrivacyParams params;     ///< Theorem 1 outputs actually used

  /// Eq. (16) logits on `graph` (private edges; only each node's own edges
  /// are read). Mirrors PrivateInferenceOnGraph.
  Matrix Infer(const Graph& graph) const;
};

/// Extracts the release artifact from a trained pipeline.
GconArtifact MakeArtifact(const GconPrepared& prepared, const GconModel& model,
                          double epsilon, double delta);

/// Writes the artifact to `path`. Throws std::runtime_error naming the path
/// when the file cannot be opened or the write fails.
void SaveModel(const GconArtifact& artifact, const std::string& path);

/// Reads an artifact previously written by SaveModel. Throws
/// std::runtime_error naming `path` and the defect — missing file, wrong
/// magic/version, out-of-order key, truncated theta/MLP block, or a header
/// whose declared sizes exceed the sanity bounds below — so a bad artifact
/// is a reportable condition instead of an abort (or an OOM).
GconArtifact LoadModel(const std::string& path);

/// Stream variant: parses one artifact from `in`; `name` labels error
/// messages the way the path does for the file overload. This is the
/// surface the artifact fuzz harness drives.
GconArtifact LoadModel(std::istream& in, const std::string& name);

/// Sanity bounds on a declared artifact header. A well-formed artifact is
/// nowhere near them; a corrupt or hostile one must not be able to make
/// LoadModel allocate unbounded memory before the truncation check fires.
inline constexpr std::size_t kMaxArtifactSteps = 256;
inline constexpr std::size_t kMaxArtifactMatrixDim = 1u << 24;
inline constexpr std::size_t kMaxArtifactMatrixElems = 1u << 26;

}  // namespace gcon

#endif  // GCON_CORE_MODEL_IO_H_
