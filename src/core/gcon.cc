#include "core/gcon.h"

#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "core/noise.h"
#include "linalg/ops.h"
#include "propagation/appr.h"
#include "propagation/cache.h"
#include "propagation/sensitivity.h"
#include "rng/rng.h"

namespace gcon {
namespace {

ConvexLoss MakeLoss(const GconConfig& config, int num_classes) {
  if (config.loss_kind == ConvexLossKind::kMultiLabelSoftMargin) {
    return ConvexLoss::MultiLabelSoftMargin(num_classes);
  }
  return ConvexLoss::PseudoHuber(num_classes, config.pseudo_huber_delta);
}

// One-hot matrix for the given nodes; labels come from the graph for split
// members and from encoder pseudo-labels otherwise.
Matrix BuildTargets(const std::vector<int>& nodes,
                    const std::vector<int>& labels, int num_classes) {
  Matrix y(nodes.size(), static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const int label = labels[static_cast<std::size_t>(nodes[i])];
    GCON_CHECK_GE(label, 0);
    GCON_CHECK_LT(label, num_classes);
    y(i, static_cast<std::size_t>(label)) = 1.0;
  }
  return y;
}

// Eq. (16): concatenated one-hop blocks (no 1/s factor — argmax is
// scale-invariant and the paper's Eq. (16) omits it).
Matrix InferenceFeatures(const CsrMatrix& transition, const Matrix& encoded,
                         const std::vector<int>& steps, double alpha_inf) {
  Matrix hop;  // (1-α_I) Ã X̄ + α_I X̄, computed lazily
  bool have_hop = false;
  std::vector<Matrix> blocks;
  blocks.reserve(steps.size());
  for (int m : steps) {
    if (m == 0) {
      blocks.push_back(encoded);
      continue;
    }
    if (!have_hop) {
      transition.SpmmAxpby(1.0 - alpha_inf, encoded, alpha_inf, encoded,
                           &hop);
      have_hop = true;
    }
    blocks.push_back(hop);
  }
  return ConcatCols(blocks);
}

}  // namespace

GconPrepared PrepareGcon(const Graph& graph, const Split& split,
                         const GconConfig& config) {
  // Step 1: encoder (Algorithm 3). Uses features/labels only.
  EncoderOptions encoder_options = config.encoder;
  encoder_options.seed = config.seed;
  return PrepareGconFromEncoded(graph, split, config,
                                TrainEncoder(graph, split, encoder_options));
}

GconPrepared PrepareGconFromEncoded(const Graph& graph, const Split& split,
                                    const GconConfig& config,
                                    const EncodedFeatures& encoded_in) {
  GCON_CHECK(!split.train.empty());
  GCON_CHECK(!config.steps.empty());
  GCON_CHECK_GT(config.alpha, 0.0);
  GCON_CHECK_LE(config.alpha, 1.0);
  EncodedFeatures encoded = encoded_in;

  GconPrepared prepared{config,
                        graph.num_classes(),
                        std::move(encoded.features),
                        CsrMatrix(),
                        Matrix(),
                        Matrix(),
                        Matrix(),
                        {},
                        0.0,
                        encoded.val_accuracy,
                        std::move(encoded.mlp)};

  // Step 2: row L2 normalization (Algorithm 1, line 2).
  RowL2NormalizeInPlace(&prepared.encoded);

  // Step 3: transition matrix and multi-scale propagation (lines 4-7),
  // memoized across runs/sweeps — both are pure functions of the graph
  // structure and the (normalized) encoder output.
  PropagationCache& cache = PropagationCache::Global();
  const PropagationCache::CachedCsr transition = cache.Transition(graph);
  prepared.transition = *transition.csr;
  prepared.z = cache.ConcatPropagate(*transition.csr, transition.key,
                                     prepared.encoded, config.steps,
                                     config.alpha);

  // Training rows: the labeled set, optionally expanded to all nodes with
  // encoder pseudo-labels (paper's n1 = n option). Pseudo-labels never leak
  // validation/test ground truth — they come from the encoder.
  std::vector<int> labels = graph.labels();
  prepared.train_nodes = split.train;
  if (config.expand_train_set) {
    std::vector<bool> in_train(static_cast<std::size_t>(graph.num_nodes()),
                               false);
    for (int v : split.train) in_train[static_cast<std::size_t>(v)] = true;
    for (int v = 0; v < graph.num_nodes(); ++v) {
      if (!in_train[static_cast<std::size_t>(v)]) {
        labels[static_cast<std::size_t>(v)] =
            encoded.predictions[static_cast<std::size_t>(v)];
        prepared.train_nodes.push_back(v);
      }
    }
  }
  prepared.z_train = GatherRows(prepared.z, prepared.train_nodes);
  prepared.y_train =
      BuildTargets(prepared.train_nodes, labels, graph.num_classes());

  // Lemma 2 closed form.
  prepared.psi_z = SensitivityZ(config.steps, config.alpha);
  return prepared;
}

GconModel TrainPrepared(const GconPrepared& prepared, double epsilon,
                        double delta, std::uint64_t noise_seed) {
  const GconConfig& config = prepared.config;
  const ConvexLoss loss = MakeLoss(config, prepared.num_classes);
  const int d = static_cast<int>(prepared.z.cols());
  const int c = prepared.num_classes;

  PrivacyInputs inputs;
  inputs.epsilon = epsilon;
  inputs.delta = delta;
  inputs.omega = config.omega;
  inputs.lambda = config.lambda;
  inputs.n1 = static_cast<int>(prepared.train_nodes.size());
  inputs.num_classes = c;
  inputs.dim = d;
  inputs.psi_z = prepared.psi_z;

  GconModel model;
  model.params = ComputePrivacyParams(inputs, loss);

  double lambda_total = model.params.lambda_total();
  double beta = model.params.beta;
  if (config.disable_noise) {
    // Ablation: same objective with B = 0, Λ′ = 0 (NOT differentially
    // private; measures the pure cost of the perturbation).
    beta = 0.0;
    lambda_total = config.lambda;
  } else if (model.params.zero_noise) {
    beta = 0.0;
  }

  Rng rng(noise_seed);
  const Matrix noise = SampleNoiseMatrix(d, c, beta, &rng);

  const PerturbedObjective objective(&prepared.z_train, &prepared.y_train,
                                     &loss, lambda_total, &noise);
  MinimizeResult opt = Minimize(objective, config.minimize);
  GCON_LOG(DEBUG) << "GCON minimize: " << opt.iterations
                  << " iters, |grad|=" << opt.gradient_norm
                  << ", obj=" << opt.objective_value;
  model.theta = std::move(opt.theta);
  opt.theta = Matrix();
  model.opt = std::move(opt);
  return model;
}

GconModel TrainGcon(const Graph& graph, const Split& split,
                    const GconConfig& config) {
  const GconPrepared prepared = PrepareGcon(graph, split, config);
  return TrainPrepared(prepared, config.epsilon, config.delta,
                       config.seed + 0x5eed);
}

Matrix PrivateInference(const GconPrepared& prepared, const GconModel& model) {
  const GconConfig& config = prepared.config;
  const double alpha_inf =
      config.alpha_inference >= 0.0 ? config.alpha_inference : config.alpha;
  const Matrix features = InferenceFeatures(prepared.transition,
                                            prepared.encoded, config.steps,
                                            alpha_inf);
  return MatMul(features, model.theta);
}

Matrix PublicInference(const GconPrepared& prepared, const GconModel& model) {
  return MatMul(prepared.z, model.theta);
}

Matrix PrivateInferenceOnGraph(const GconPrepared& prepared,
                               const GconModel& model, const Graph& graph) {
  const GconConfig& config = prepared.config;
  const double alpha_inf =
      config.alpha_inference >= 0.0 ? config.alpha_inference : config.alpha;
  Matrix encoded = prepared.encoder_mlp.HiddenRepresentation(
      graph.features(), prepared.encoder_mlp.num_layers() - 1);
  RowL2NormalizeInPlace(&encoded);
  const PropagationCache::CachedCsr transition =
      PropagationCache::Global().Transition(graph);
  const Matrix features =
      InferenceFeatures(*transition.csr, encoded, config.steps, alpha_inf);
  return MatMul(features, model.theta);
}

Matrix PublicInferenceOnGraph(const GconPrepared& prepared,
                              const GconModel& model, const Graph& graph) {
  const GconConfig& config = prepared.config;
  Matrix encoded = prepared.encoder_mlp.HiddenRepresentation(
      graph.features(), prepared.encoder_mlp.num_layers() - 1);
  RowL2NormalizeInPlace(&encoded);
  PropagationCache& cache = PropagationCache::Global();
  const PropagationCache::CachedCsr transition = cache.Transition(graph);
  const Matrix z = cache.ConcatPropagate(*transition.csr, transition.key,
                                         encoded, config.steps, config.alpha);
  return MatMul(z, model.theta);
}

}  // namespace gcon
