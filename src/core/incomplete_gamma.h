// Regularized incomplete gamma function and the Erlang quantile.
//
// Eq. (21) of the paper defines
//   c_sf = min{ u > 0 : ∫_0^u x^{d-1} e^{-x} / (d-1)! dx >= 1 - δ/c },
// i.e. the (1 - δ/c)-quantile of a Gamma(d, 1) (= Erlang-d) distribution.
// We implement P(a, x) (regularized lower incomplete gamma) with the
// classic series / continued-fraction split and invert it by bisection.
#ifndef GCON_CORE_INCOMPLETE_GAMMA_H_
#define GCON_CORE_INCOMPLETE_GAMMA_H_

namespace gcon {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0,
/// x >= 0. Accurate to ~1e-12 relative.
double RegularizedGammaP(double a, double x);

/// Quantile: smallest u with P(a, u) >= prob (prob in [0, 1)).
double GammaQuantile(double a, double prob);

/// c_sf of Eq. (21): the (1 - delta/c)-quantile of Gamma(d, 1).
double ComputeCsf(int d, double delta, int num_classes);

}  // namespace gcon

#endif  // GCON_CORE_INCOMPLETE_GAMMA_H_
