#include "core/convex_loss.h"

#include <cmath>

#include "common/check.h"

namespace gcon {
namespace {

// Numerically stable softplus: log(1 + e^t).
double Softplus(double t) {
  const double abs_t = std::abs(t);
  return std::max(t, 0.0) + std::log1p(std::exp(-abs_t));
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

ConvexLoss::ConvexLoss(ConvexLossKind kind, int num_classes, double delta_l)
    : kind_(kind), num_classes_(num_classes), delta_l_(delta_l) {
  GCON_CHECK_GE(num_classes, 1);
  const double c = static_cast<double>(num_classes);
  if (kind_ == ConvexLossKind::kMultiLabelSoftMargin) {
    c1_ = 1.0 / c;
    c2_ = 1.0 / (4.0 * c);
    c3_ = 1.0 / (6.0 * std::sqrt(3.0) * c);
  } else {
    GCON_CHECK_GT(delta_l, 0.0);
    c1_ = delta_l / c;
    c2_ = 1.0 / c;
    c3_ = 48.0 * std::sqrt(5.0) / (125.0 * c * delta_l);
  }
}

ConvexLoss ConvexLoss::MultiLabelSoftMargin(int num_classes) {
  return ConvexLoss(ConvexLossKind::kMultiLabelSoftMargin, num_classes, 0.0);
}

ConvexLoss ConvexLoss::PseudoHuber(int num_classes, double delta_l) {
  return ConvexLoss(ConvexLossKind::kPseudoHuber, num_classes, delta_l);
}

double ConvexLoss::Value(double x, double y) const {
  const double c = static_cast<double>(num_classes_);
  if (kind_ == ConvexLossKind::kMultiLabelSoftMargin) {
    // -(1/c)[y log σ(x) + (1-y) log(1-σ(x))]
    //   = (1/c)[softplus(-x) + (1-y) x].
    return (Softplus(-x) + (1.0 - y) * x) / c;
  }
  const double u = (x - y) / delta_l_;
  return delta_l_ * delta_l_ / c * (std::sqrt(1.0 + u * u) - 1.0);
}

double ConvexLoss::D1(double x, double y) const {
  const double c = static_cast<double>(num_classes_);
  if (kind_ == ConvexLossKind::kMultiLabelSoftMargin) {
    return (Sigmoid(x) - y) / c;
  }
  const double u = (x - y) / delta_l_;
  return (x - y) / (c * std::sqrt(u * u + 1.0));
}

double ConvexLoss::D2(double x, double y) const {
  const double c = static_cast<double>(num_classes_);
  if (kind_ == ConvexLossKind::kMultiLabelSoftMargin) {
    const double s = Sigmoid(x);
    (void)y;  // ℓ'' does not depend on y for this loss
    return s * (1.0 - s) / c;
  }
  const double u = (x - y) / delta_l_;
  return 1.0 / (c * std::pow(u * u + 1.0, 1.5));
}

double ConvexLoss::D3(double x, double y) const {
  const double c = static_cast<double>(num_classes_);
  if (kind_ == ConvexLossKind::kMultiLabelSoftMargin) {
    const double s = Sigmoid(x);
    (void)y;
    return s * (1.0 - s) * (1.0 - 2.0 * s) / c;
  }
  const double u = (x - y) / delta_l_;
  return -3.0 * u / (c * delta_l_ * std::pow(u * u + 1.0, 2.5));
}

std::string ConvexLoss::name() const {
  return kind_ == ConvexLossKind::kMultiLabelSoftMargin
             ? "multilabel_soft_margin"
             : "pseudo_huber";
}

}  // namespace gcon
