// The perturbed training objective L_priv (Eq. (13)) and its minimizer.
//
//   L_priv(Θ) = (1/n1) Σ_i Σ_j ℓ(z_i^T θ_j; y_ij)
//             + (Λ̄/2) ||Θ||_F² + (1/n1) B ⊙ Θ + (Λ′/2) ||Θ||_F²
//
// The objective is (Λ̄+Λ′)-strongly convex and smooth, so any first-order
// method converges to the unique minimizer; per the paper's remark after
// Theorem 1, the optimizer choice does not affect privacy. We provide
// full-batch Adam (the paper's choice) with a gradient-norm stopping rule,
// plus plain gradient descent with backtracking line search for
// deterministic tests.
#ifndef GCON_CORE_OBJECTIVE_H_
#define GCON_CORE_OBJECTIVE_H_

#include "core/convex_loss.h"
#include "linalg/matrix.h"

namespace gcon {

class PerturbedObjective {
 public:
  /// `z`: training features (n1 x d), `y`: one-hot targets (n1 x c) with
  /// entries in {0,1}, `noise`: B (d x c), `lambda_total`: Λ̄ + Λ′.
  /// All matrices are borrowed; they must outlive the objective.
  PerturbedObjective(const Matrix* z, const Matrix* y, const ConvexLoss* loss,
                     double lambda_total, const Matrix* noise);

  double Value(const Matrix& theta) const;

  /// Writes the full gradient into `grad` (resized to d x c) and returns
  /// the objective value.
  double ValueAndGradient(const Matrix& theta, Matrix* grad) const;

  std::size_t dim() const { return z_->cols(); }
  std::size_t num_classes() const { return y_->cols(); }
  std::size_t n1() const { return z_->rows(); }
  double lambda_total() const { return lambda_total_; }

 private:
  const Matrix* z_;
  const Matrix* y_;
  const ConvexLoss* loss_;
  double lambda_total_;
  const Matrix* noise_;
};

enum class Minimizer {
  kAdam,             // the paper's choice
  kLbfgs,            // much faster on this smooth strongly convex problem
  kGradientDescent,  // simplest; used by tests
};

struct MinimizeOptions {
  Minimizer minimizer = Minimizer::kAdam;
  int max_iterations = 2000;
  double learning_rate = 0.05;
  /// Stop when ||grad||_F falls below this.
  double gradient_tolerance = 1e-7;
};

struct MinimizeResult {
  Matrix theta;
  double objective_value = 0.0;
  double gradient_norm = 0.0;
  int iterations = 0;
};

/// Full-batch Adam from the zero matrix (Eq. (15)).
MinimizeResult MinimizeAdam(const PerturbedObjective& objective,
                            const MinimizeOptions& options);

/// Deterministic gradient descent with backtracking (Armijo) line search;
/// slower but exactly reproducible, used by tests.
MinimizeResult MinimizeGradientDescent(const PerturbedObjective& objective,
                                       const MinimizeOptions& options);

/// Limited-memory BFGS (two-loop recursion, history 10) with Armijo
/// backtracking. On this smooth strongly convex objective it typically
/// reaches tolerance in 5-20x fewer iterations than Adam; deterministic.
MinimizeResult MinimizeLbfgs(const PerturbedObjective& objective,
                             const MinimizeOptions& options);

/// Dispatches on options.minimizer. All three converge to the same unique
/// minimizer (strong convexity); the choice does not affect the privacy
/// guarantee (Theorem 1's remark).
MinimizeResult Minimize(const PerturbedObjective& objective,
                        const MinimizeOptions& options);

}  // namespace gcon

#endif  // GCON_CORE_OBJECTIVE_H_
