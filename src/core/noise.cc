#include "core/noise.h"

#include "common/check.h"

namespace gcon {

std::vector<double> SampleNoiseVector(int d, double beta, Rng* rng) {
  GCON_CHECK_GT(d, 0);
  GCON_CHECK_GT(beta, 0.0);
  const double radius = rng->Erlang(d, beta);
  std::vector<double> b = rng->SphereDirection(d);
  for (double& x : b) {
    x *= radius;
  }
  return b;
}

Matrix SampleNoiseMatrix(int d, int c, double beta, Rng* rng) {
  GCON_CHECK_GT(d, 0);
  GCON_CHECK_GT(c, 0);
  Matrix b(static_cast<std::size_t>(d), static_cast<std::size_t>(c));
  if (beta == 0.0) return b;  // zero-noise degenerate case (Ψ(Z) = 0)
  for (int j = 0; j < c; ++j) {
    const std::vector<double> column = SampleNoiseVector(d, beta, rng);
    for (int i = 0; i < d; ++i) {
      b(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          column[static_cast<std::size_t>(i)];
    }
  }
  return b;
}

}  // namespace gcon
