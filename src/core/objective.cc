#include "core/objective.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "linalg/ops.h"
#include "nn/optim.h"

namespace gcon {

PerturbedObjective::PerturbedObjective(const Matrix* z, const Matrix* y,
                                       const ConvexLoss* loss,
                                       double lambda_total,
                                       const Matrix* noise)
    : z_(z), y_(y), loss_(loss), lambda_total_(lambda_total), noise_(noise) {
  GCON_CHECK_EQ(z_->rows(), y_->rows());
  GCON_CHECK_EQ(noise_->rows(), z_->cols());
  GCON_CHECK_EQ(noise_->cols(), y_->cols());
  GCON_CHECK_GT(lambda_total_, 0.0);
  GCON_CHECK_GT(z_->rows(), 0u);
}

double PerturbedObjective::Value(const Matrix& theta) const {
  GCON_CHECK_EQ(theta.rows(), z_->cols());
  GCON_CHECK_EQ(theta.cols(), y_->cols());
  const Matrix scores = MatMul(*z_, theta);  // n1 x c
  const double inv_n1 = 1.0 / static_cast<double>(z_->rows());
  double loss_sum = 0.0;
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    const double* srow = scores.RowPtr(i);
    const double* yrow = y_->RowPtr(i);
    for (std::size_t j = 0; j < scores.cols(); ++j) {
      loss_sum += loss_->Value(srow[j], yrow[j]);
    }
  }
  const double frob = FrobeniusNorm(theta);
  return inv_n1 * loss_sum + 0.5 * lambda_total_ * frob * frob +
         inv_n1 * DotAll(*noise_, theta);
}

double PerturbedObjective::ValueAndGradient(const Matrix& theta,
                                            Matrix* grad) const {
  GCON_CHECK_EQ(theta.rows(), z_->cols());
  GCON_CHECK_EQ(theta.cols(), y_->cols());
  const Matrix scores = MatMul(*z_, theta);  // n1 x c
  const double inv_n1 = 1.0 / static_cast<double>(z_->rows());
  Matrix dscores(scores.rows(), scores.cols());
  double loss_sum = 0.0;
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    const double* srow = scores.RowPtr(i);
    const double* yrow = y_->RowPtr(i);
    double* drow = dscores.RowPtr(i);
    for (std::size_t j = 0; j < scores.cols(); ++j) {
      loss_sum += loss_->Value(srow[j], yrow[j]);
      drow[j] = loss_->D1(srow[j], yrow[j]);
    }
  }
  // grad = (1/n1) Z^T dscores + Λ_total Θ + (1/n1) B.
  *grad = MatMulTransA(*z_, dscores);
  ScaleInPlace(inv_n1, grad);
  AxpyInPlace(lambda_total_, theta, grad);
  AxpyInPlace(inv_n1, *noise_, grad);

  const double frob = FrobeniusNorm(theta);
  return inv_n1 * loss_sum + 0.5 * lambda_total_ * frob * frob +
         inv_n1 * DotAll(*noise_, theta);
}

MinimizeResult Minimize(const PerturbedObjective& objective,
                        const MinimizeOptions& options) {
  switch (options.minimizer) {
    case Minimizer::kAdam:
      return MinimizeAdam(objective, options);
    case Minimizer::kLbfgs:
      return MinimizeLbfgs(objective, options);
    case Minimizer::kGradientDescent:
      return MinimizeGradientDescent(objective, options);
  }
  return MinimizeAdam(objective, options);
}

MinimizeResult MinimizeAdam(const PerturbedObjective& objective,
                            const MinimizeOptions& options) {
  MinimizeResult result;
  result.theta.Resize(objective.dim(), objective.num_classes());
  Adam::Options adam_options;
  adam_options.learning_rate = options.learning_rate;
  Adam adam(adam_options);
  const std::size_t slot = adam.Register(result.theta);
  Matrix grad;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.objective_value = objective.ValueAndGradient(result.theta, &grad);
    result.gradient_norm = FrobeniusNorm(grad);
    result.iterations = iter + 1;
    if (result.gradient_norm < options.gradient_tolerance) break;
    adam.BeginStep();
    adam.Step(slot, grad, &result.theta);
  }
  return result;
}

MinimizeResult MinimizeLbfgs(const PerturbedObjective& objective,
                             const MinimizeOptions& options) {
  constexpr int kHistory = 10;
  MinimizeResult result;
  result.theta.Resize(objective.dim(), objective.num_classes());
  Matrix grad;
  double value = objective.ValueAndGradient(result.theta, &grad);

  // Curvature history: s_k = x_{k+1} - x_k, y_k = g_{k+1} - g_k.
  std::vector<Matrix> s_hist, y_hist;
  std::vector<double> rho_hist;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.objective_value = value;
    result.gradient_norm = FrobeniusNorm(grad);
    result.iterations = iter + 1;
    if (result.gradient_norm < options.gradient_tolerance) break;

    // Two-loop recursion: direction = -H_k * grad.
    Matrix q = grad;
    std::vector<double> alpha_coef(s_hist.size());
    for (std::size_t i = s_hist.size(); i-- > 0;) {
      alpha_coef[i] = rho_hist[i] * DotAll(s_hist[i], q);
      AxpyInPlace(-alpha_coef[i], y_hist[i], &q);
    }
    if (!s_hist.empty()) {
      // Initial Hessian scaling gamma = <s,y>/<y,y> of the latest pair.
      const Matrix& s_last = s_hist.back();
      const Matrix& y_last = y_hist.back();
      const double gamma = DotAll(s_last, y_last) / DotAll(y_last, y_last);
      ScaleInPlace(gamma, &q);
    }
    for (std::size_t i = 0; i < s_hist.size(); ++i) {
      const double beta = rho_hist[i] * DotAll(y_hist[i], q);
      AxpyInPlace(alpha_coef[i] - beta, s_hist[i], &q);
    }
    // q now approximates H*grad; descend along -q (safeguarded: fall back
    // to steepest descent if the curvature estimate went bad).
    if (DotAll(grad, q) <= 0.0) {
      q = grad;
    }

    // Armijo backtracking on F(x - t q).
    const double slope = DotAll(grad, q);
    double step = 1.0;
    Matrix trial;
    for (int bt = 0; bt < 60; ++bt) {
      trial = result.theta;
      AxpyInPlace(-step, q, &trial);
      if (objective.Value(trial) <= value - 1e-4 * step * slope) break;
      step *= 0.5;
    }

    Matrix new_grad;
    const double new_value = objective.ValueAndGradient(trial, &new_grad);
    Matrix s_k = Sub(trial, result.theta);
    Matrix y_k = Sub(new_grad, grad);
    const double sy = DotAll(s_k, y_k);
    if (sy > 1e-14) {  // keep the inverse-Hessian estimate positive definite
      s_hist.push_back(std::move(s_k));
      y_hist.push_back(std::move(y_k));
      rho_hist.push_back(1.0 / sy);
      if (static_cast<int>(s_hist.size()) > kHistory) {
        s_hist.erase(s_hist.begin());
        y_hist.erase(y_hist.begin());
        rho_hist.erase(rho_hist.begin());
      }
    }
    result.theta = std::move(trial);
    grad = std::move(new_grad);
    value = new_value;
  }
  result.objective_value = value;
  result.gradient_norm = FrobeniusNorm(grad);
  return result;
}

MinimizeResult MinimizeGradientDescent(const PerturbedObjective& objective,
                                       const MinimizeOptions& options) {
  MinimizeResult result;
  result.theta.Resize(objective.dim(), objective.num_classes());
  Matrix grad;
  double value = objective.ValueAndGradient(result.theta, &grad);
  double step = options.learning_rate;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.objective_value = value;
    result.gradient_norm = FrobeniusNorm(grad);
    result.iterations = iter + 1;
    if (result.gradient_norm < options.gradient_tolerance) break;
    // Backtracking (Armijo): shrink until sufficient decrease.
    const double grad_sq = result.gradient_norm * result.gradient_norm;
    double trial_step = step;
    Matrix trial;
    double trial_value = 0.0;
    for (int bt = 0; bt < 60; ++bt) {
      trial = result.theta;
      AxpyInPlace(-trial_step, grad, &trial);
      trial_value = objective.Value(trial);
      if (trial_value <= value - 0.5 * trial_step * grad_sq) break;
      trial_step *= 0.5;
    }
    result.theta = std::move(trial);
    // Allow the step to grow back (adaptive): halved steps stay sticky
    // otherwise and convergence stalls on well-conditioned problems.
    step = trial_step * 2.0;
    value = objective.ValueAndGradient(result.theta, &grad);
  }
  result.objective_value = value;
  result.gradient_norm = FrobeniusNorm(grad);
  return result;
}

}  // namespace gcon
