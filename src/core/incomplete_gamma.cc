#include "core/incomplete_gamma.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/lgamma_safe.h"

namespace gcon {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEps = 1e-15;
constexpr double kTiny = 1e-300;

// Series representation: P(a,x) = x^a e^{-x} / Γ(a+1) * Σ_n x^n / ((a+1)...(a+n)).
// Converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LGammaSafe(a));
}

// Continued fraction for Q(a,x) = 1 - P(a,x) (Lentz's algorithm).
// Converges fast for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - LGammaSafe(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  GCON_CHECK_GT(a, 0.0);
  GCON_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    return GammaPSeries(a, x);
  }
  return 1.0 - GammaQContinuedFraction(a, x);
}

double GammaQuantile(double a, double prob) {
  GCON_CHECK_GE(prob, 0.0);
  GCON_CHECK_LT(prob, 1.0);
  if (prob == 0.0) return 0.0;
  // Bracket: mean + k*stddev grows past any sub-1 quantile quickly.
  double lo = 0.0;
  double hi = a + 10.0 * std::sqrt(a) + 10.0;
  while (RegularizedGammaP(a, hi) < prob) {
    hi *= 2.0;
    GCON_CHECK_LT(hi, 1e18) << "quantile bracket blew up";
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (RegularizedGammaP(a, mid) >= prob) {
      hi = mid;
    } else {
      lo = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return hi;
}

double ComputeCsf(int d, double delta, int num_classes) {
  GCON_CHECK_GT(d, 0);
  GCON_CHECK_GT(delta, 0.0);
  GCON_CHECK_LT(delta, 1.0);
  GCON_CHECK_GE(num_classes, 1);
  const double prob = 1.0 - delta / static_cast<double>(num_classes);
  return GammaQuantile(static_cast<double>(d), prob);
}

}  // namespace gcon
