// The two strongly-convex-compatible loss families of §IV-C4 / Appendix F.
//
// Both losses are per-(node, class) scalar functions ℓ(x; y) with y ∈ {0,1}
// (one-hot targets) and x = z_i^T θ_j, summed over classes (Eq. (12)). The
// objective-perturbation analysis needs the suprema of the first three
// derivatives (Eq. (19)):
//
//   MultiLabel Soft Margin (Eq. 27):
//     ℓ(x;y) = -(1/c) [ y log σ(x) + (1-y) log(1-σ(x)) ]
//     c1 = 1/c,  c2 = 1/(4c),  c3 = 1/(6√3 c)
//
//   Pseudo-Huber (Eq. 28), width δ_l:
//     ℓ(x;y) = (δ_l²/c) ( sqrt(1 + (x-y)²/δ_l²) - 1 )
//     c1 = δ_l/c,  c2 = 1/c,  c3 = 48√5/(125 c δ_l)
//
// ℓ''(x;y) > 0 everywhere, so the per-node loss is convex in Θ and the
// regularized objective is strongly convex (Lemma 4).
#ifndef GCON_CORE_CONVEX_LOSS_H_
#define GCON_CORE_CONVEX_LOSS_H_

#include <string>

namespace gcon {

enum class ConvexLossKind {
  kMultiLabelSoftMargin,
  kPseudoHuber,
};

class ConvexLoss {
 public:
  /// MultiLabel Soft Margin loss for `num_classes` classes.
  static ConvexLoss MultiLabelSoftMargin(int num_classes);

  /// Pseudo-Huber loss with width `delta_l` (paper tunes {0.1, 0.2, 0.5}).
  static ConvexLoss PseudoHuber(int num_classes, double delta_l);

  double Value(double x, double y) const;
  /// First derivative ℓ'(x; y) w.r.t. x.
  double D1(double x, double y) const;
  /// Second derivative ℓ''(x; y).
  double D2(double x, double y) const;
  /// Third derivative ℓ'''(x; y).
  double D3(double x, double y) const;

  /// Eq. (19) suprema over all x and y ∈ {0,1}.
  double c1() const { return c1_; }
  double c2() const { return c2_; }
  double c3() const { return c3_; }

  ConvexLossKind kind() const { return kind_; }
  int num_classes() const { return num_classes_; }
  double delta_l() const { return delta_l_; }
  std::string name() const;

 private:
  ConvexLoss(ConvexLossKind kind, int num_classes, double delta_l);

  ConvexLossKind kind_;
  int num_classes_;
  double delta_l_;
  double c1_, c2_, c3_;
};

}  // namespace gcon

#endif  // GCON_CORE_CONVEX_LOSS_H_
