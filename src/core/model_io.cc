#include "core/model_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "linalg/ops.h"
#include "nn/mlp_io.h"
#include "propagation/appr.h"
#include "propagation/cache.h"

namespace gcon {
namespace {

// All artifact I/O failures are environmental (missing file, truncation,
// version skew), not programming errors: report them with the path and the
// specific defect so `gcon_cli predict/serve` and GraphModel::Load callers
// can print something actionable instead of aborting.
[[noreturn]] void BadArtifact(const std::string& path,
                              const std::string& what) {
  throw std::runtime_error("model artifact '" + path + "': " + what);
}

}  // namespace

Matrix GconArtifact::Infer(const Graph& graph) const {
  Matrix encoded = encoder.HiddenRepresentation(graph.features(),
                                                encoder.num_layers() - 1);
  RowL2NormalizeInPlace(&encoded);
  const PropagationCache::CachedCsr transition =
      PropagationCache::Global().Transition(graph);
  const double alpha_inf = alpha_inference >= 0.0 ? alpha_inference : alpha;

  Matrix hop;
  bool have_hop = false;
  std::vector<Matrix> blocks;
  blocks.reserve(steps.size());
  for (int m : steps) {
    if (m == 0) {
      blocks.push_back(encoded);
      continue;
    }
    if (!have_hop) {
      transition.csr->SpmmAxpby(1.0 - alpha_inf, encoded, alpha_inf, encoded,
                                &hop);
      have_hop = true;
    }
    blocks.push_back(hop);
  }
  return MatMul(ConcatCols(blocks), theta);
}

void SaveModel(const GconArtifact& artifact, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    BadArtifact(path, "cannot open for writing");
  }
  out << std::setprecision(17);
  out << "gcon-model v1\n";
  out << "alpha " << artifact.alpha << "\n";
  out << "alpha_inference " << artifact.alpha_inference << "\n";
  out << "epsilon " << artifact.epsilon << "\n";
  out << "delta " << artifact.delta << "\n";
  out << "beta " << artifact.params.beta << "\n";
  out << "lambda_bar " << artifact.params.lambda_bar << "\n";
  out << "lambda_prime " << artifact.params.lambda_prime << "\n";
  out << "steps " << artifact.steps.size();
  for (int m : artifact.steps) {
    out << " " << m;
  }
  out << "\n";
  out << "theta " << artifact.theta.rows() << " " << artifact.theta.cols()
      << "\n";
  for (std::size_t i = 0; i < artifact.theta.rows(); ++i) {
    const double* row = artifact.theta.RowPtr(i);
    for (std::size_t j = 0; j < artifact.theta.cols(); ++j) {
      out << row[j] << (j + 1 == artifact.theta.cols() ? "" : " ");
    }
    out << "\n";
  }
  SaveMlp(artifact.encoder, &out);
  if (!out.good()) {
    BadArtifact(path, "write failure (disk full or file removed mid-write?)");
  }
}

GconArtifact MakeArtifact(const GconPrepared& prepared, const GconModel& model,
                          double epsilon, double delta) {
  GconArtifact artifact{model.theta,
                        prepared.encoder_mlp,
                        prepared.config.steps,
                        prepared.config.alpha,
                        prepared.config.alpha_inference,
                        epsilon,
                        delta,
                        model.params};
  return artifact;
}

GconArtifact LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    BadArtifact(path, "cannot open (missing file or no read permission)");
  }
  return LoadModel(in, path);
}

GconArtifact LoadModel(std::istream& in, const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    BadArtifact(path, "empty file (want a 'gcon-model v1' header)");
  }
  if (line != "gcon-model v1") {
    BadArtifact(path, "bad magic '" + line +
                          "' (want 'gcon-model v1' — not a model artifact, "
                          "or written by an incompatible version)");
  }

  auto read_kv = [&in, &path](const char* key) {
    std::string word;
    double value = 0.0;
    if (!(in >> word >> value)) {
      BadArtifact(path, std::string("truncated before key '") + key + "'");
    }
    if (word != key) {
      BadArtifact(path, "expected key '" + std::string(key) + "', got '" +
                            word + "' (out-of-order or corrupted header)");
    }
    return value;
  };
  const double alpha = read_kv("alpha");
  const double alpha_inference = read_kv("alpha_inference");
  const double epsilon = read_kv("epsilon");
  const double delta = read_kv("delta");
  PrivacyParams params;
  params.beta = read_kv("beta");
  params.lambda_bar = read_kv("lambda_bar");
  params.lambda_prime = read_kv("lambda_prime");

  std::string word;
  std::size_t step_count = 0;
  if (!(in >> word >> step_count) || word != "steps") {
    BadArtifact(path, "missing 'steps' section");
  }
  if (step_count > kMaxArtifactSteps) {
    // Bound declared sizes BEFORE allocating: a corrupt header must not be
    // able to request unbounded memory (found by the artifact fuzzer).
    BadArtifact(path, "implausible steps count " + std::to_string(step_count) +
                          " (max " + std::to_string(kMaxArtifactSteps) + ")");
  }
  std::vector<int> steps(step_count);
  for (auto& m : steps) {
    if (!(in >> m)) {
      BadArtifact(path, "truncated steps list (want " +
                            std::to_string(step_count) + " entries)");
    }
  }

  std::size_t rows = 0, cols = 0;
  if (!(in >> word >> rows >> cols) || word != "theta") {
    BadArtifact(path, "missing 'theta' section header");
  }
  if (rows > kMaxArtifactMatrixDim || cols > kMaxArtifactMatrixDim ||
      (rows != 0 && cols > kMaxArtifactMatrixElems / rows)) {
    BadArtifact(path, "implausible theta shape " + std::to_string(rows) + "x" +
                          std::to_string(cols) +
                          " (declared size would exceed the artifact bound)");
  }
  Matrix theta(rows, cols);
  for (std::size_t k = 0; k < theta.size(); ++k) {
    if (!(in >> theta.data()[k])) {
      BadArtifact(path, "truncated theta block (want " +
                            std::to_string(theta.size()) + " values, got " +
                            std::to_string(k) + ")");
    }
  }

  try {
    Mlp encoder = LoadMlp(&in);
    return GconArtifact{std::move(theta), std::move(encoder), std::move(steps),
                        alpha,            alpha_inference,    epsilon,
                        delta,            params};
  } catch (const std::runtime_error& e) {
    BadArtifact(path, e.what());
  }
}

}  // namespace gcon
