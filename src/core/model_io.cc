#include "core/model_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "linalg/ops.h"
#include "nn/mlp_io.h"
#include "propagation/appr.h"
#include "propagation/cache.h"

namespace gcon {

Matrix GconArtifact::Infer(const Graph& graph) const {
  Matrix encoded = encoder.HiddenRepresentation(graph.features(),
                                                encoder.num_layers() - 1);
  RowL2NormalizeInPlace(&encoded);
  const PropagationCache::CachedCsr transition =
      PropagationCache::Global().Transition(graph);
  const double alpha_inf = alpha_inference >= 0.0 ? alpha_inference : alpha;

  Matrix hop;
  bool have_hop = false;
  std::vector<Matrix> blocks;
  blocks.reserve(steps.size());
  for (int m : steps) {
    if (m == 0) {
      blocks.push_back(encoded);
      continue;
    }
    if (!have_hop) {
      transition.csr->SpmmAxpby(1.0 - alpha_inf, encoded, alpha_inf, encoded,
                                &hop);
      have_hop = true;
    }
    blocks.push_back(hop);
  }
  return MatMul(ConcatCols(blocks), theta);
}

GconArtifact MakeArtifact(const GconPrepared& prepared, const GconModel& model,
                          double epsilon, double delta) {
  GconArtifact artifact{model.theta,
                        prepared.encoder_mlp,
                        prepared.config.steps,
                        prepared.config.alpha,
                        prepared.config.alpha_inference,
                        epsilon,
                        delta,
                        model.params};
  return artifact;
}

void SaveModel(const GconArtifact& artifact, const std::string& path) {
  std::ofstream out(path);
  GCON_CHECK(out.good()) << "cannot open " << path << " for writing";
  out << std::setprecision(17);
  out << "gcon-model v1\n";
  out << "alpha " << artifact.alpha << "\n";
  out << "alpha_inference " << artifact.alpha_inference << "\n";
  out << "epsilon " << artifact.epsilon << "\n";
  out << "delta " << artifact.delta << "\n";
  out << "beta " << artifact.params.beta << "\n";
  out << "lambda_bar " << artifact.params.lambda_bar << "\n";
  out << "lambda_prime " << artifact.params.lambda_prime << "\n";
  out << "steps " << artifact.steps.size();
  for (int m : artifact.steps) {
    out << " " << m;
  }
  out << "\n";
  out << "theta " << artifact.theta.rows() << " " << artifact.theta.cols()
      << "\n";
  for (std::size_t i = 0; i < artifact.theta.rows(); ++i) {
    const double* row = artifact.theta.RowPtr(i);
    for (std::size_t j = 0; j < artifact.theta.cols(); ++j) {
      out << row[j] << (j + 1 == artifact.theta.cols() ? "" : " ");
    }
    out << "\n";
  }
  SaveMlp(artifact.encoder, &out);
  GCON_CHECK(out.good()) << "write failure on " << path;
}

GconArtifact LoadModel(const std::string& path) {
  std::ifstream in(path);
  GCON_CHECK(in.good()) << "cannot open " << path;
  std::string line;
  GCON_CHECK(static_cast<bool>(std::getline(in, line)));
  GCON_CHECK_EQ(line, std::string("gcon-model v1")) << "bad magic: " << line;

  auto read_kv = [&in](const char* key) {
    std::string word;
    double value = 0.0;
    in >> word >> value;
    GCON_CHECK_EQ(word, std::string(key)) << "expected " << key;
    return value;
  };
  const double alpha = read_kv("alpha");
  const double alpha_inference = read_kv("alpha_inference");
  const double epsilon = read_kv("epsilon");
  const double delta = read_kv("delta");
  PrivacyParams params;
  params.beta = read_kv("beta");
  params.lambda_bar = read_kv("lambda_bar");
  params.lambda_prime = read_kv("lambda_prime");

  std::string word;
  std::size_t step_count = 0;
  in >> word >> step_count;
  GCON_CHECK_EQ(word, std::string("steps"));
  std::vector<int> steps(step_count);
  for (auto& m : steps) {
    in >> m;
  }

  std::size_t rows = 0, cols = 0;
  in >> word >> rows >> cols;
  GCON_CHECK_EQ(word, std::string("theta"));
  Matrix theta(rows, cols);
  for (std::size_t k = 0; k < theta.size(); ++k) {
    GCON_CHECK(static_cast<bool>(in >> theta.data()[k])) << "truncated theta";
  }

  Mlp encoder = LoadMlp(&in);
  return GconArtifact{std::move(theta), std::move(encoder), std::move(steps),
                      alpha,            alpha_inference,    epsilon,
                      delta,            params};
}

}  // namespace gcon
