#include "core/theorem1.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/incomplete_gamma.h"

namespace gcon {

PrivacyParams ComputePrivacyParams(const PrivacyInputs& in,
                                   const ConvexLoss& loss) {
  GCON_CHECK_GT(in.epsilon, 0.0);
  GCON_CHECK_GT(in.delta, 0.0);
  GCON_CHECK_LT(in.delta, 1.0);
  GCON_CHECK_GT(in.omega, 0.0);
  GCON_CHECK_LT(in.omega, 1.0);
  GCON_CHECK_GT(in.lambda, 0.0);
  GCON_CHECK_GT(in.n1, 0);
  GCON_CHECK_GT(in.num_classes, 0);
  GCON_CHECK_GT(in.dim, 0);
  GCON_CHECK_GE(in.psi_z, 0.0);
  GCON_CHECK_EQ(in.num_classes, loss.num_classes());

  constexpr double kXi = 1e-6;  // the ξ > 0 of Eq. (22)

  PrivacyParams out;
  out.c1 = loss.c1();
  out.c2 = loss.c2();
  out.c3 = loss.c3();

  const double c = static_cast<double>(in.num_classes);
  const double d = static_cast<double>(in.dim);
  const double n1 = static_cast<double>(in.n1);
  const double eps = in.epsilon;
  const double omega_eps = in.omega * eps;
  const double psi = in.psi_z;

  if (psi <= 0.0) {
    // Features are edge-independent; the mechanism degenerates to exact
    // (non-noisy) release, which trivially satisfies any (ε, δ).
    out.zero_noise = true;
    out.lambda_bar = in.lambda;
    out.lambda_prime = 0.0;
    out.beta = 0.0;
    out.c_sf = ComputeCsf(in.dim, in.delta, in.num_classes);
    out.c_theta = 0.0;
    out.eps_lambda = 0.0;
    return out;
  }

  // Eq. (21).
  out.c_sf = ComputeCsf(in.dim, in.delta, in.num_classes);

  // Eq. (22): Λ̄ = max(Λ, c·c2·Ψ·c_sf / (n1·ω·ε) + ξ).
  const double lambda_floor = c * out.c2 * psi * out.c_sf / (n1 * omega_eps);
  out.lambda_bar = std::max(in.lambda, lambda_floor + kXi);

  // Eq. (23): c_θ = (n1·ω·ε·c1 + c·c1·Ψ·c_sf) / (n1·ω·ε·Λ̄ - c·c2·Ψ·c_sf).
  const double c_theta_num = n1 * omega_eps * out.c1 + c * out.c1 * psi * out.c_sf;
  const double c_theta_den = n1 * omega_eps * out.lambda_bar -
                             c * out.c2 * psi * out.c_sf;
  GCON_CHECK_GT(c_theta_den, 0.0) << "Eq. (22) floor failed to hold";
  out.c_theta = c_theta_num / c_theta_den;

  // Eq. (24): ε_Λ = c·d·log(1 + (2c2 + c3·c_θ)·Ψ / (d·n1·Λ̄)).
  const double jac_term = (2.0 * out.c2 + out.c3 * out.c_theta) * psi;
  out.eps_lambda = c * d * std::log1p(jac_term / (d * n1 * out.lambda_bar));

  // Eq. (17): Λ′ = 0 if ε_Λ <= (1-ω)ε, else shrink the Jacobian budget by
  // adding quadratic regularization.
  const double jac_budget = (1.0 - in.omega) * eps;
  if (out.eps_lambda <= jac_budget) {
    out.lambda_prime = 0.0;
  } else {
    out.lambda_prime =
        std::max(0.0, c * jac_term / (n1 * jac_budget) - out.lambda_bar);
  }

  // Eq. (18): β = max(ε - ε_Λ, ω·ε) / (c·(c1 + c2·c_θ)·Ψ).
  const double noise_budget = std::max(eps - out.eps_lambda, omega_eps);
  out.beta = noise_budget / (c * (out.c1 + out.c2 * out.c_theta) * psi);
  GCON_CHECK_GT(out.beta, 0.0);
  return out;
}

}  // namespace gcon
