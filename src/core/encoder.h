// MLP feature encoder (Algorithm 3, §IV-C1).
//
// Trains an MLP on node features and labels ONLY (no edges touch this
// stage, so it is edge-DP for free), then maps every node's features
// through the trained hidden layers to obtain the reduced representation
// X̄ ∈ R^{n x d1}. Also returns argmax predictions for every node; these
// serve as pseudo-labels when the training set is expanded to all nodes
// (the paper's n1 ∈ {n0, n} hyperparameter, Appendix Q).
#ifndef GCON_CORE_ENCODER_H_
#define GCON_CORE_ENCODER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/splits.h"
#include "nn/mlp.h"

namespace gcon {

struct EncoderOptions {
  int hidden = 32;    // width of the first hidden layer (paper: {8,16,64})
  int out_dim = 16;   // d1, the encoded dimension
  int epochs = 200;
  double learning_rate = 0.01;
  double weight_decay = 1e-5;
  Activation activation = Activation::kTanh;
  std::uint64_t seed = 1;
};

struct EncodedFeatures {
  /// X̄: n x d1 hidden representation of every node.
  Matrix features;
  /// Encoder argmax prediction for every node (pseudo-label source).
  std::vector<int> predictions;
  /// Accuracy of the encoder on the validation split (model selection
  /// metric); -1 when no validation nodes were provided.
  double val_accuracy = -1.0;
  /// The trained network, kept so callers can encode *other* graphs
  /// (inference scenario (ii) of §IV-C6).
  Mlp mlp;
};

/// Trains the encoder on `split.train` (+ model selection on `split.val`)
/// and encodes all nodes of `graph`.
EncodedFeatures TrainEncoder(const Graph& graph, const Split& split,
                             const EncoderOptions& options);

}  // namespace gcon

#endif  // GCON_CORE_ENCODER_H_
