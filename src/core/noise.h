// Objective-perturbation noise sampling (Algorithm 2 + Eq. (14)).
//
// Each column b_j of the noise matrix B (d x c) is drawn independently:
// radius a ~ Erlang(shape d, rate β) (pdf x^{d-1} e^{-βx} β^d / (d-1)!),
// direction uniform on the unit d-sphere. The density of b is then
// proportional to exp(-β ||b||_2), which is exactly what Lemma 8's density
// ratio argument requires.
#ifndef GCON_CORE_NOISE_H_
#define GCON_CORE_NOISE_H_

#include "linalg/matrix.h"
#include "rng/rng.h"

namespace gcon {

/// One column: d-dimensional vector with ||b|| ~ Erlang(d, beta) and
/// uniform direction (Algorithm 2).
std::vector<double> SampleNoiseVector(int d, double beta, Rng* rng);

/// The full noise matrix B = (b_1 ... b_c), d x c, columns independent.
/// beta = 0 (the zero_noise case) yields an all-zero matrix.
Matrix SampleNoiseMatrix(int d, int c, double beta, Rng* rng);

}  // namespace gcon

#endif  // GCON_CORE_NOISE_H_
