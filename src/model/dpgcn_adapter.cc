// "dpgcn": LapGraph topology perturbation + plain GCN (LinkTeller's DPGCN
// baseline). Pure epsilon-edge-DP: delta is accepted but not spent.
#include <memory>
#include <sstream>

#include "baselines/dpgcn.h"
#include "common/timer.h"
#include "model/adapters.h"

namespace gcon {
namespace {

class DpgcnModel : public internal::CachedLogitsModel {
 public:
  explicit DpgcnModel(const ModelConfig& config)
      : budget_(internal::ReadBudgetKeys(config)) {
    options_.gcn.hidden = config.GetInt("hidden", options_.gcn.hidden);
    options_.gcn.epochs = config.GetInt("epochs", options_.gcn.epochs);
    options_.gcn.learning_rate =
        config.GetDouble("learning_rate", options_.gcn.learning_rate);
    options_.gcn.weight_decay =
        config.GetDouble("weight_decay", options_.gcn.weight_decay);
    options_.gcn.eval_every =
        config.GetInt("eval_every", options_.gcn.eval_every);
    options_.gcn.seed = config.GetSeed("seed", options_.gcn.seed);
    options_.count_split = config.GetDouble("count_split", options_.count_split);
  }

  std::string name() const override { return "dpgcn"; }

  std::string Describe() const override {
    std::ostringstream out;
    out << "dpgcn epsilon=" << budget_.epsilon
        << " count_split=" << options_.count_split
        << " hidden=" << options_.gcn.hidden
        << " epochs=" << options_.gcn.epochs
        << " learning_rate=" << options_.gcn.learning_rate
        << " weight_decay=" << options_.gcn.weight_decay
        << " eval_every=" << options_.gcn.eval_every
        << " seed=" << options_.gcn.seed;
    return out.str();
  }

  bool UsesPrivacyBudget() const override { return true; }

  TrainResult Train(const Graph& graph, const Split& split) override {
    Timer timer;
    Matrix logits =
        TrainDpgcnAndPredict(graph, split, budget_.epsilon, options_);
    CacheLogits(logits, graph);
    return MakeResult(graph, split, std::move(logits), timer.Seconds(),
                      budget_.epsilon, 0.0);  // pure eps-DP mechanism
  }

 private:
  internal::BudgetKeys budget_;
  DpgcnOptions options_;
};

}  // namespace

namespace internal {

void RegisterDpgcnModel(ModelRegistry* registry) {
  registry->Register(
      "dpgcn",
      [](const ModelConfig& config) -> std::unique_ptr<GraphModel> {
        return std::make_unique<DpgcnModel>(config);
      },
      "LapGraph-perturbed topology + GCN (LinkTeller baseline)");
}

}  // namespace internal
}  // namespace gcon
