#include "model/model.h"

#include <sstream>
#include <stdexcept>

#include "common/string_util.h"
#include "eval/metrics.h"
#include "propagation/appr.h"

namespace gcon {
namespace {

[[noreturn]] void ThrowParse(const std::string& key, const std::string& value,
                             const char* type) {
  throw std::invalid_argument("config key '" + key + "': cannot parse '" +
                              value + "' as " + type);
}

}  // namespace

void ModelConfig::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void ModelConfig::SetFromFlag(const std::string& key_equals_value) {
  const auto eq = key_equals_value.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("--set expects key=value, got '" +
                                key_equals_value + "'");
  }
  Set(key_equals_value.substr(0, eq), key_equals_value.substr(eq + 1));
}

bool ModelConfig::Has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

std::string ModelConfig::GetString(const std::string& key,
                                   const std::string& default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int ModelConfig::GetInt(const std::string& key, int default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  try {
    std::size_t pos = 0;
    const int v = std::stoi(it->second, &pos);
    if (pos != it->second.size()) ThrowParse(key, it->second, "int");
    return v;
  } catch (const std::invalid_argument&) {
    ThrowParse(key, it->second, "int");
  } catch (const std::out_of_range&) {
    ThrowParse(key, it->second, "int");
  }
}

double ModelConfig::GetDouble(const std::string& key,
                              double default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) ThrowParse(key, it->second, "double");
    return v;
  } catch (const std::invalid_argument&) {
    ThrowParse(key, it->second, "double");
  } catch (const std::out_of_range&) {
    ThrowParse(key, it->second, "double");
  }
}

bool ModelConfig::GetBool(const std::string& key, bool default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  ThrowParse(key, v, "bool");
}

std::uint64_t ModelConfig::GetSeed(const std::string& key,
                                   std::uint64_t default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(it->second, &pos);
    if (pos != it->second.size()) ThrowParse(key, it->second, "seed");
    return static_cast<std::uint64_t>(v);
  } catch (const std::invalid_argument&) {
    ThrowParse(key, it->second, "seed");
  } catch (const std::out_of_range&) {
    ThrowParse(key, it->second, "seed");
  }
}

std::vector<int> ModelConfig::GetSteps(
    const std::string& key, const std::vector<int>& default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return ParseStepsOrThrow(it->second);
}

std::vector<double> ModelConfig::GetDoubleList(
    const std::string& key, const std::vector<double>& default_value) const {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  std::vector<double> out;
  for (const std::string& piece : SplitString(it->second, ',')) {
    try {
      std::size_t pos = 0;
      out.push_back(std::stod(piece, &pos));
      if (pos != piece.size()) ThrowParse(key, it->second, "double list");
    } catch (const std::invalid_argument&) {
      ThrowParse(key, it->second, "double list");
    } catch (const std::out_of_range&) {
      ThrowParse(key, it->second, "double list");
    }
  }
  if (out.empty()) ThrowParse(key, it->second, "double list");
  return out;
}

std::vector<std::string> ModelConfig::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (consumed_.find(key) == consumed_.end()) unused.push_back(key);
  }
  return unused;
}

void ModelConfig::CheckAllKeysUsed(const std::string& method) const {
  const std::vector<std::string> unused = UnusedKeys();
  if (unused.empty()) return;
  throw std::invalid_argument("unknown config key" +
                              std::string(unused.size() > 1 ? "s" : "") +
                              " for method '" + method +
                              "': " + Join(unused, ", "));
}

std::string ModelConfig::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [key, value] : values_) {
    parts.push_back(key + "=" + value);
  }
  return Join(parts, " ");
}

std::vector<int> ParseStepsOrThrow(const std::string& text) {
  std::vector<int> steps;
  for (const std::string& piece : SplitString(text, ',')) {
    if (piece == "inf") {
      steps.push_back(kInfiniteSteps);
      continue;
    }
    int value = 0;
    try {
      std::size_t pos = 0;
      value = std::stoi(piece, &pos);
      if (pos != piece.size()) throw std::invalid_argument(piece);
    } catch (const std::exception&) {
      throw std::invalid_argument("invalid steps entry '" + piece + "' in '" +
                                  text + "' (want integers >= 0 or 'inf')");
    }
    if (value < 0) {
      throw std::invalid_argument("invalid steps entry '" + piece + "' in '" +
                                  text + "' (want integers >= 0 or 'inf')");
    }
    steps.push_back(value);
  }
  if (steps.empty()) {
    throw std::invalid_argument("empty steps list '" + text + "'");
  }
  return steps;
}

bool GraphModel::Save(const std::string& /*path*/) const { return false; }

bool GraphModel::Load(const std::string& /*path*/) { return false; }

TrainResult GraphModel::MakeResult(const Graph& graph, const Split& split,
                                   Matrix logits, double seconds,
                                   double epsilon_spent,
                                   double delta_spent) const {
  TrainResult result;
  result.method = name();
  result.description = Describe();
  const std::vector<int> pred = ArgmaxPredictions(logits);
  const std::vector<int>& labels = graph.labels();
  const int c = graph.num_classes();
  result.train_micro_f1 = MicroF1(pred, labels, split.train, c);
  result.val_micro_f1 = MicroF1(pred, labels, split.val, c);
  result.test_micro_f1 = MicroF1(pred, labels, split.test, c);
  result.test_macro_f1 = MacroF1(pred, labels, split.test, c);
  result.logits = std::move(logits);
  result.train_seconds = seconds;
  result.epsilon_spent = epsilon_spent;
  result.delta_spent = delta_spent;
  return result;
}

}  // namespace gcon
