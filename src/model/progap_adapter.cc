// "progap": ProGAP-EDP (Sajadmanesh & Gatica-Perez) — progressive stages of
// noisy aggregation + MLP, composed with zCDP.
#include <memory>
#include <sstream>

#include "baselines/progap.h"
#include "common/timer.h"
#include "model/adapters.h"

namespace gcon {
namespace {

class ProgapModel : public internal::CachedLogitsModel {
 public:
  explicit ProgapModel(const ModelConfig& config)
      : budget_(internal::ReadBudgetKeys(config)) {
    options_.stages = config.GetInt("stages", options_.stages);
    options_.hidden = config.GetInt("hidden", options_.hidden);
    options_.dim = config.GetInt("dim", options_.dim);
    options_.stage_epochs = config.GetInt("stage_epochs", options_.stage_epochs);
    options_.learning_rate =
        config.GetDouble("learning_rate", options_.learning_rate);
    options_.weight_decay =
        config.GetDouble("weight_decay", options_.weight_decay);
    options_.seed = config.GetSeed("seed", options_.seed);
  }

  std::string name() const override { return "progap"; }

  std::string Describe() const override {
    std::ostringstream out;
    out << "progap epsilon=" << budget_.epsilon << " delta=" << internal::DeltaLabel(budget_)
        << " stages=" << options_.stages << " hidden=" << options_.hidden
        << " dim=" << options_.dim
        << " stage_epochs=" << options_.stage_epochs
        << " learning_rate=" << options_.learning_rate
        << " weight_decay=" << options_.weight_decay
        << " seed=" << options_.seed;
    return out.str();
  }

  bool UsesPrivacyBudget() const override { return true; }

  TrainResult Train(const Graph& graph, const Split& split) override {
    Timer timer;
    const double delta = internal::ResolveDelta(budget_, graph);
    Matrix logits =
        TrainProgapAndPredict(graph, split, budget_.epsilon, delta, options_);
    CacheLogits(logits, graph);
    return MakeResult(graph, split, std::move(logits), timer.Seconds(),
                      budget_.epsilon, delta);
  }

 private:
  internal::BudgetKeys budget_;
  ProgapOptions options_;
};

}  // namespace

namespace internal {

void RegisterProgapModel(ModelRegistry* registry) {
  registry->Register(
      "progap",
      [](const ModelConfig& config) -> std::unique_ptr<GraphModel> {
        return std::make_unique<ProgapModel>(config);
      },
      "ProGAP-EDP: progressive noisy-aggregation stages (zCDP)");
}

}  // namespace internal
}  // namespace gcon
