// "lpgnet": LPGNet (Kolluri et al.) — stacked MLPs over Laplace-noised
// per-class degree vectors. Pure epsilon-edge-DP: delta accepted, not spent.
#include <memory>
#include <sstream>

#include "baselines/lpgnet.h"
#include "common/timer.h"
#include "model/adapters.h"

namespace gcon {
namespace {

class LpgnetModel : public internal::CachedLogitsModel {
 public:
  explicit LpgnetModel(const ModelConfig& config)
      : budget_(internal::ReadBudgetKeys(config)) {
    options_.stacks = config.GetInt("stacks", options_.stacks);
    options_.hidden = config.GetInt("hidden", options_.hidden);
    options_.epochs = config.GetInt("epochs", options_.epochs);
    options_.learning_rate =
        config.GetDouble("learning_rate", options_.learning_rate);
    options_.weight_decay =
        config.GetDouble("weight_decay", options_.weight_decay);
    options_.seed = config.GetSeed("seed", options_.seed);
  }

  std::string name() const override { return "lpgnet"; }

  std::string Describe() const override {
    std::ostringstream out;
    out << "lpgnet epsilon=" << budget_.epsilon
        << " stacks=" << options_.stacks << " hidden=" << options_.hidden
        << " epochs=" << options_.epochs
        << " learning_rate=" << options_.learning_rate
        << " weight_decay=" << options_.weight_decay
        << " seed=" << options_.seed;
    return out.str();
  }

  bool UsesPrivacyBudget() const override { return true; }

  TrainResult Train(const Graph& graph, const Split& split) override {
    Timer timer;
    Matrix logits =
        TrainLpgnetAndPredict(graph, split, budget_.epsilon, options_);
    CacheLogits(logits, graph);
    return MakeResult(graph, split, std::move(logits), timer.Seconds(),
                      budget_.epsilon, 0.0);  // pure eps-DP mechanism
  }

 private:
  internal::BudgetKeys budget_;
  LpgnetOptions options_;
};

}  // namespace

namespace internal {

void RegisterLpgnetModel(ModelRegistry* registry) {
  registry->Register(
      "lpgnet",
      [](const ModelConfig& config) -> std::unique_ptr<GraphModel> {
        return std::make_unique<LpgnetModel>(config);
      },
      "LPGNet: stacked MLPs over Laplace-noised degree vectors");
}

}  // namespace internal
}  // namespace gcon
