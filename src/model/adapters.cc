#include "model/adapters.h"

#include <sstream>

#include "common/check.h"

namespace gcon {

ModelRegistry& BuiltinModelRegistry() {
  static const bool registered = [] {
    ModelRegistry* registry = &ModelRegistry::Global();
    internal::RegisterGconModel(registry);
    internal::RegisterGcnModel(registry);
    internal::RegisterDpgcnModel(registry);
    internal::RegisterDpsgdModel(registry);
    internal::RegisterGapModel(registry);
    internal::RegisterProgapModel(registry);
    internal::RegisterLpgnetModel(registry);
    internal::RegisterMlpModel(registry);
    return true;
  }();
  (void)registered;
  return ModelRegistry::Global();
}

namespace internal {

BudgetKeys ReadBudgetKeys(const ModelConfig& config) {
  BudgetKeys keys;
  keys.epsilon = config.GetDouble("epsilon", keys.epsilon);
  keys.delta = config.GetDouble("delta", keys.delta);
  return keys;
}

double ResolveDelta(const BudgetKeys& keys, const Graph& graph) {
  if (keys.delta > 0.0) return keys.delta;
  // The paper's convention: delta = 1/|E| with |E| the directed edge count.
  return 1.0 / static_cast<double>(2 * graph.num_edges());
}

std::string DeltaLabel(const BudgetKeys& keys) {
  if (keys.delta <= 0.0) return "auto";
  std::ostringstream out;
  out << keys.delta;
  return out.str();
}

Matrix CachedLogitsModel::Predict(const Graph& graph) const {
  GCON_CHECK_GT(trained_nodes_, 0) << "Predict called before Train on '"
                                   << name() << "'";
  GCON_CHECK_EQ(graph.num_nodes(), trained_nodes_)
      << "'" << name()
      << "' trains and predicts in one shot; Predict accepts only the "
         "training graph";
  return cached_logits_;
}

void CachedLogitsModel::CacheLogits(const Matrix& logits, const Graph& graph) {
  cached_logits_ = logits;
  trained_nodes_ = graph.num_nodes();
}

}  // namespace internal
}  // namespace gcon
