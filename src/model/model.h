// Polymorphic model API: every method of the paper's comparison suite
// (GCON and the seven baselines of Figures 1-4 / Table III) behind one
// interface, so the CLI, the bench binaries, and the experiment harness
// dispatch by name instead of hand-rolling per-method plumbing.
//
// The three pieces:
//   * ModelConfig  — uniform key-value configuration ("--set key=value"),
//     mapped by each adapter onto its method's existing options struct.
//     Reads are tracked so a typo'd key is a hard error, not a silent
//     default run.
//   * TrainResult  — what every method reports: logits for all nodes,
//     micro/macro-F1 on the split, the privacy budget actually spent, and
//     wall-clock training time.
//   * GraphModel   — Train / Predict / Save / Load / Describe. Instances
//     come from the ModelRegistry (registry.h) keyed by method name.
#ifndef GCON_MODEL_MODEL_H_
#define GCON_MODEL_MODEL_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/splits.h"
#include "linalg/matrix.h"

namespace gcon {

struct GconArtifact;  // core/model_io.h — the published release artifact

/// String-keyed configuration shared by every GraphModel. Values are stored
/// as strings (exactly as given on the command line) and converted on
/// access; conversion failures throw std::invalid_argument naming the key.
/// Every Get* marks its key as consumed so ModelRegistry::Create can reject
/// keys no adapter ever read (CheckAllKeysUsed).
class ModelConfig {
 public:
  ModelConfig() = default;
  ModelConfig(
      std::initializer_list<std::pair<const std::string, std::string>> kv)
      : values_(kv) {}

  /// Sets `key` to `value`, overwriting any previous value.
  void Set(const std::string& key, const std::string& value);

  /// Parses "key=value" (as passed to --set) and applies it. Throws
  /// std::invalid_argument when the '=' is missing or the key is empty.
  void SetFromFlag(const std::string& key_equals_value);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int GetInt(const std::string& key, int default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;
  std::uint64_t GetSeed(const std::string& key,
                        std::uint64_t default_value) const;
  /// Comma-separated propagation steps, "inf" allowed ("0,2,inf").
  std::vector<int> GetSteps(const std::string& key,
                            const std::vector<int>& default_value) const;
  /// Comma-separated list of doubles ("0.4,0.6,0.8").
  std::vector<double> GetDoubleList(
      const std::string& key, const std::vector<double>& default_value) const;

  /// Keys that were Set but never read by any accessor.
  std::vector<std::string> UnusedKeys() const;

  /// Throws std::invalid_argument listing UnusedKeys() (typo protection;
  /// called by ModelRegistry::Create after the factory consumed the config).
  void CheckAllKeysUsed(const std::string& method) const;

  /// "k1=v1 k2=v2 ..." in key order; empty string for an empty config.
  std::string ToString() const;

  const std::map<std::string, std::string>& entries() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

/// Parses a comma-separated step list ("2", "0,2", "inf"); entries must be
/// non-negative integers or "inf" (kInfiniteSteps). Throws
/// std::invalid_argument on anything else. Shared by ModelConfig::GetSteps
/// and the CLI's --steps flag.
std::vector<int> ParseStepsOrThrow(const std::string& text);

/// Everything a method reports from one training run.
struct TrainResult {
  std::string method;       ///< registry key that produced this result
  std::string description;  ///< resolved configuration (GraphModel::Describe)

  Matrix logits;  ///< one row per node of the training graph (n x c)

  double train_micro_f1 = 0.0;
  double val_micro_f1 = 0.0;
  double test_micro_f1 = 0.0;
  double test_macro_f1 = 0.0;

  /// Privacy budget actually spent: (0, 0) for the edge-free MLP, infinity
  /// for the non-private GCN, the configured (epsilon, delta) for the DP
  /// methods.
  double epsilon_spent = 0.0;
  double delta_spent = 0.0;

  double train_seconds = 0.0;  ///< wall clock (common/timer)
};

/// A trainable node-classification method. Implementations are stateful:
/// Train fits the model on (graph, split), after which Predict returns
/// logits. Adapters live in src/model/ and are created through the
/// ModelRegistry; see registry.h.
class GraphModel {
 public:
  virtual ~GraphModel() = default;

  /// Registry key ("gcon", "gcn", ...).
  virtual std::string name() const = 0;

  /// One-line summary of the resolved options (every value an override
  /// could have changed), e.g. "gcn hidden=32 epochs=200 ...".
  virtual std::string Describe() const = 0;

  /// True when the method consumes a privacy budget (reads config keys
  /// "epsilon"/"delta"). False for the non-DP GCN ceiling and the edge-free
  /// MLP floor — benches use this to run those once per seed instead of
  /// once per budget point.
  virtual bool UsesPrivacyBudget() const = 0;

  /// Trains on `graph` using `split` and reports metrics on that split.
  virtual TrainResult Train(const Graph& graph, const Split& split) = 0;

  /// Logits for every node of `graph`; requires a prior Train. Adapters
  /// whose underlying method cannot transfer to a new graph accept only the
  /// training graph (same node count) and abort otherwise.
  virtual Matrix Predict(const Graph& graph) const = 0;

  /// Persists the trained model; returns false when the method has no
  /// serialization format (today GCON publishes its release artifact and
  /// the edge-free MLP persists its network; the other baselines return
  /// false). Implementations throw std::runtime_error naming the path on
  /// I/O failure.
  virtual bool Save(const std::string& path) const;

  /// Loads a model previously written by Save; returns false when
  /// unsupported.
  virtual bool Load(const std::string& path);

  /// The "gcon-model v1" release artifact backing this model, when the
  /// method publishes one and has been trained/loaded; nullptr otherwise.
  /// The serving tier uses this to give registry models the per-query
  /// Eq. (16) path — private edge lists and feature-carrying (inductive)
  /// queries — instead of falling back to precomputed Predict logits.
  /// The pointer stays valid while the model is alive and untrained state
  /// is not re-entered (serving copies the artifact anyway).
  virtual const GconArtifact* ReleaseArtifact() const { return nullptr; }

 protected:
  /// Fills the metric/bookkeeping fields of a TrainResult from logits and
  /// the graph's labels (micro-F1 per split, macro-F1 on test).
  TrainResult MakeResult(const Graph& graph, const Split& split,
                         Matrix logits, double seconds, double epsilon_spent,
                         double delta_spent) const;
};

}  // namespace gcon

#endif  // GCON_MODEL_MODEL_H_
