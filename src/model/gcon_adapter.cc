// "gcon": the paper's method (Algorithm 1) behind the GraphModel interface.
//
// Extras over the baselines:
//   * alpha_grid=0.4,0.6,0.8 — trains one model per candidate restart
//     probability (encoder reused across candidates; it is
//     alpha-independent) and keeps the best validation micro-F1, mirroring
//     the per-setting hyperparameter search of Appendix Q. The search is
//     not charged to the privacy budget, exactly as in the paper.
//   * Predict on a *different* graph via the release artifact (Eq. (16)
//     private inference; only each query node's own edges are read).
//   * Save/Load of the "gcon-model v1" release artifact (core/model_io.h).
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/encoder.h"
#include "core/gcon.h"
#include "core/model_io.h"
#include "eval/metrics.h"
#include "model/adapters.h"
#include "propagation/appr.h"

namespace gcon {
namespace {

std::string StepsToString(const std::vector<int>& steps) {
  std::vector<std::string> parts;
  for (int m : steps) {
    parts.push_back(m == kInfiniteSteps ? "inf" : std::to_string(m));
  }
  return Join(parts, ",");
}

class GconGraphModel : public GraphModel {
 public:
  explicit GconGraphModel(const ModelConfig& config)
      : budget_(internal::ReadBudgetKeys(config)) {
    config_.omega = config.GetDouble("omega", config_.omega);
    config_.alpha = config.GetDouble("alpha", 0.6);
    config_.steps = config.GetSteps("steps", {2});
    config_.alpha_inference =
        config.GetDouble("alpha_inference", config_.alpha_inference);
    config_.lambda = config.GetDouble("lambda", config_.lambda);
    const std::string loss = config.GetString("loss", "soft_margin");
    if (loss == "soft_margin") {
      config_.loss_kind = ConvexLossKind::kMultiLabelSoftMargin;
    } else if (loss == "pseudo_huber") {
      config_.loss_kind = ConvexLossKind::kPseudoHuber;
    } else {
      throw std::invalid_argument(
          "config key 'loss': want soft_margin or pseudo_huber, got '" + loss +
          "'");
    }
    config_.pseudo_huber_delta =
        config.GetDouble("pseudo_huber_delta", config_.pseudo_huber_delta);
    config_.encoder.hidden = config.GetInt("hidden", config_.encoder.hidden);
    config_.encoder.out_dim = config.GetInt("d1", config_.encoder.out_dim);
    config_.encoder.epochs =
        config.GetInt("encoder_epochs", config_.encoder.epochs);
    config_.expand_train_set =
        config.GetBool("expand", true);  // n1 = n, the stronger configuration
    config_.disable_noise =
        config.GetBool("disable_noise", config_.disable_noise);
    const std::string minimizer = config.GetString("minimizer", "lbfgs");
    if (minimizer == "lbfgs") {
      config_.minimize.minimizer = Minimizer::kLbfgs;
    } else if (minimizer == "adam") {
      config_.minimize.minimizer = Minimizer::kAdam;
    } else if (minimizer == "gd") {
      config_.minimize.minimizer = Minimizer::kGradientDescent;
    } else {
      throw std::invalid_argument(
          "config key 'minimizer': want lbfgs, adam, or gd, got '" +
          minimizer + "'");
    }
    config_.minimize.max_iterations =
        config.GetInt("max_iterations", 400);
    config_.minimize.gradient_tolerance = 1e-8;
    config_.seed = config.GetSeed("seed", config_.seed);
    alpha_grid_ = config.GetDoubleList("alpha_grid", {});
    config_.epsilon = budget_.epsilon;
  }

  std::string name() const override { return "gcon"; }

  std::string Describe() const override {
    std::ostringstream out;
    out << "gcon epsilon=" << budget_.epsilon << " delta=" << internal::DeltaLabel(budget_)
        << " omega=" << config_.omega << " alpha=" << config_.alpha
        << " steps=" << StepsToString(config_.steps)
        << " lambda=" << config_.lambda << " loss="
        << (config_.loss_kind == ConvexLossKind::kMultiLabelSoftMargin
                ? "soft_margin"
                : "pseudo_huber")
        << " hidden=" << config_.encoder.hidden
        << " d1=" << config_.encoder.out_dim
        << " encoder_epochs=" << config_.encoder.epochs
        << " expand=" << (config_.expand_train_set ? "true" : "false")
        << " minimizer="
        << (config_.minimize.minimizer == Minimizer::kLbfgs    ? "lbfgs"
            : config_.minimize.minimizer == Minimizer::kAdam   ? "adam"
                                                               : "gd")
        << " max_iterations=" << config_.minimize.max_iterations
        << " seed=" << config_.seed;
    if (!alpha_grid_.empty()) {
      std::vector<std::string> parts;
      for (double a : alpha_grid_) parts.push_back(FormatDouble(a, 2));
      out << " alpha_grid=" << Join(parts, ",");
    }
    if (config_.disable_noise) out << " disable_noise=true (NOT private)";
    return out.str();
  }

  bool UsesPrivacyBudget() const override { return true; }

  TrainResult Train(const Graph& graph, const Split& split) override {
    Timer timer;
    const double delta = internal::ResolveDelta(budget_, graph);
    config_.delta = delta;

    if (alpha_grid_.empty()) {
      prepared_ = PrepareGcon(graph, split, config_);
      model_ = TrainPrepared(*prepared_, budget_.epsilon, delta,
                             config_.seed + 0x5eed);
    } else {
      // The encoder depends on neither alpha nor epsilon: train it once and
      // sweep the restart probability, selecting on validation micro-F1.
      EncoderOptions encoder_options = config_.encoder;
      encoder_options.seed = config_.seed;
      const EncodedFeatures encoded =
          TrainEncoder(graph, split, encoder_options);
      double best_val = -1.0;
      for (std::size_t i = 0; i < alpha_grid_.size(); ++i) {
        GconConfig candidate = config_;
        candidate.alpha = alpha_grid_[i];
        GconPrepared prepared =
            PrepareGconFromEncoded(graph, split, candidate, encoded);
        GconModel model = TrainPrepared(prepared, budget_.epsilon, delta,
                                        config_.seed + 0x5eed + 7919 * i);
        const double val_f1 = MicroF1FromLogits(
            PrivateInference(prepared, model), graph.labels(), split.val,
            graph.num_classes());
        if (val_f1 > best_val) {
          best_val = val_f1;
          config_.alpha = candidate.alpha;
          prepared_ = std::move(prepared);
          model_ = std::move(model);
        }
      }
    }
    trained_ = true;
    artifact_ = MakeArtifact(*prepared_, model_, budget_.epsilon, delta);
    Matrix logits = PrivateInference(*prepared_, model_);
    return MakeResult(graph, split, std::move(logits), timer.Seconds(),
                      config_.disable_noise
                          ? std::numeric_limits<double>::infinity()
                          : budget_.epsilon,
                      config_.disable_noise ? 0.0 : delta);
  }

  Matrix Predict(const Graph& graph) const override {
    GCON_CHECK(trained_) << "Predict called before Train/Load on 'gcon'";
    return artifact_->Infer(graph);
  }

  bool Save(const std::string& path) const override {
    GCON_CHECK(trained_) << "Save called before Train on 'gcon'";
    SaveModel(*artifact_, path);
    return true;
  }

  bool Load(const std::string& path) override {
    artifact_ = LoadModel(path);
    trained_ = true;
    return true;
  }

  const GconArtifact* ReleaseArtifact() const override {
    return trained_ ? &*artifact_ : nullptr;
  }

 private:
  internal::BudgetKeys budget_;
  GconConfig config_;
  std::vector<double> alpha_grid_;
  bool trained_ = false;
  std::optional<GconPrepared> prepared_;
  GconModel model_;
  std::optional<GconArtifact> artifact_;
};

}  // namespace

namespace internal {

void RegisterGconModel(ModelRegistry* registry) {
  registry->Register(
      "gcon",
      [](const ModelConfig& config) -> std::unique_ptr<GraphModel> {
        return std::make_unique<GconGraphModel>(config);
      },
      "GCON: DP GCN via objective perturbation (the paper's method)");
}

}  // namespace internal
}  // namespace gcon
