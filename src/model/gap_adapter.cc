// "gap": GAP-EDP (Sajadmanesh et al.) — encoder MLP, private multi-hop
// aggregation with zCDP composition, classification head.
#include <memory>
#include <sstream>

#include "baselines/gap.h"
#include "common/timer.h"
#include "model/adapters.h"

namespace gcon {
namespace {

class GapModel : public internal::CachedLogitsModel {
 public:
  explicit GapModel(const ModelConfig& config)
      : budget_(internal::ReadBudgetKeys(config)) {
    options_.hops = config.GetInt("hops", options_.hops);
    options_.encoder_hidden =
        config.GetInt("encoder_hidden", options_.encoder_hidden);
    options_.encoder_dim = config.GetInt("encoder_dim", options_.encoder_dim);
    options_.encoder_epochs =
        config.GetInt("encoder_epochs", options_.encoder_epochs);
    options_.head_hidden = config.GetInt("head_hidden", options_.head_hidden);
    options_.head_epochs = config.GetInt("head_epochs", options_.head_epochs);
    options_.learning_rate =
        config.GetDouble("learning_rate", options_.learning_rate);
    options_.weight_decay =
        config.GetDouble("weight_decay", options_.weight_decay);
    options_.seed = config.GetSeed("seed", options_.seed);
  }

  std::string name() const override { return "gap"; }

  std::string Describe() const override {
    std::ostringstream out;
    out << "gap epsilon=" << budget_.epsilon << " delta=" << internal::DeltaLabel(budget_)
        << " hops=" << options_.hops
        << " encoder_hidden=" << options_.encoder_hidden
        << " encoder_dim=" << options_.encoder_dim
        << " encoder_epochs=" << options_.encoder_epochs
        << " head_hidden=" << options_.head_hidden
        << " head_epochs=" << options_.head_epochs
        << " learning_rate=" << options_.learning_rate
        << " weight_decay=" << options_.weight_decay
        << " seed=" << options_.seed;
    return out.str();
  }

  bool UsesPrivacyBudget() const override { return true; }

  TrainResult Train(const Graph& graph, const Split& split) override {
    Timer timer;
    const double delta = internal::ResolveDelta(budget_, graph);
    Matrix logits =
        TrainGapAndPredict(graph, split, budget_.epsilon, delta, options_);
    CacheLogits(logits, graph);
    return MakeResult(graph, split, std::move(logits), timer.Seconds(),
                      budget_.epsilon, delta);
  }

 private:
  internal::BudgetKeys budget_;
  GapOptions options_;
};

}  // namespace

namespace internal {

void RegisterGapModel(ModelRegistry* registry) {
  registry->Register(
      "gap",
      [](const ModelConfig& config) -> std::unique_ptr<GraphModel> {
        return std::make_unique<GapModel>(config);
      },
      "GAP-EDP: noisy multi-hop aggregation + MLP head (zCDP)");
}

}  // namespace internal
}  // namespace gcon
