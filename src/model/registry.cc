#include "model/registry.h"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"

namespace gcon {

ModelRegistry& ModelRegistry::Global() {
  static ModelRegistry* registry = new ModelRegistry();
  return *registry;
}

void ModelRegistry::Register(const std::string& name, Factory factory,
                             const std::string& summary) {
  GCON_CHECK(!name.empty()) << "model name must be non-empty";
  GCON_CHECK(factory != nullptr) << "null factory for model '" << name << "'";
  std::unique_lock<std::shared_mutex> lock(mu_);
  const bool inserted =
      entries_.emplace(name, Entry{std::move(factory), summary}).second;
  GCON_CHECK(inserted) << "model '" << name << "' registered twice";
}

bool ModelRegistry::Contains(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.find(name) != entries_.end();
}

std::unique_ptr<GraphModel> ModelRegistry::Create(
    const std::string& name, const ModelConfig& config) const {
  Factory factory;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::invalid_argument("unknown method '" + name +
                                  "'; registered methods: " +
                                  Join(NamesLocked(), ", "));
    }
    factory = it->second.factory;
  }
  std::unique_ptr<GraphModel> model = factory(config);
  GCON_CHECK(model != nullptr)
      << "factory for model '" << name << "' returned null";
  // Adapters read every key they understand at construction time, so any
  // key still unread is a typo or belongs to a different method.
  config.CheckAllKeysUsed(name);
  return model;
}

std::vector<std::string> ModelRegistry::NamesLocked() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return NamesLocked();
}

std::string ModelRegistry::Summary(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? std::string() : it->second.summary;
}

}  // namespace gcon
