// "mlp": features-only classifier — never reads the edge set, so it is
// edge-DP at zero budget (the "no graph information" floor of Figure 1).
#include <memory>
#include <sstream>

#include "baselines/mlp_baseline.h"
#include "common/timer.h"
#include "model/adapters.h"

namespace gcon {
namespace {

class MlpModel : public internal::CachedLogitsModel {
 public:
  explicit MlpModel(const ModelConfig& config) {
    options_.hidden = config.GetInt("hidden", options_.hidden);
    options_.epochs = config.GetInt("epochs", options_.epochs);
    options_.learning_rate =
        config.GetDouble("learning_rate", options_.learning_rate);
    options_.weight_decay =
        config.GetDouble("weight_decay", options_.weight_decay);
    options_.seed = config.GetSeed("seed", options_.seed);
    internal::ReadBudgetKeys(config);  // accepted, ignored: edge-free
  }

  std::string name() const override { return "mlp"; }

  std::string Describe() const override {
    std::ostringstream out;
    out << "mlp hidden=" << options_.hidden << " epochs=" << options_.epochs
        << " learning_rate=" << options_.learning_rate
        << " weight_decay=" << options_.weight_decay
        << " seed=" << options_.seed;
    return out.str();
  }

  bool UsesPrivacyBudget() const override { return false; }

  TrainResult Train(const Graph& graph, const Split& split) override {
    Timer timer;
    Matrix logits = TrainMlpAndPredict(graph, split, options_);
    CacheLogits(logits, graph);
    // Edges never touched: (0, 0)-edge-DP.
    return MakeResult(graph, split, std::move(logits), timer.Seconds(), 0.0,
                      0.0);
  }

 private:
  MlpBaselineOptions options_;
};

}  // namespace

namespace internal {

void RegisterMlpModel(ModelRegistry* registry) {
  registry->Register(
      "mlp",
      [](const ModelConfig& config) -> std::unique_ptr<GraphModel> {
        return std::make_unique<MlpModel>(config);
      },
      "features-only MLP; edge-DP for free (utility floor)");
}

}  // namespace internal
}  // namespace gcon
