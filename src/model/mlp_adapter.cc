// "mlp": features-only classifier — never reads the edge set, so it is
// edge-DP at zero budget (the "no graph information" floor of Figure 1).
//
// Persistence: unlike the one-shot baselines, the fitted network itself is
// kept, so the adapter supports Save/Load ("gcon-mlp v1" = a header around
// the nn/mlp_io block) and can Predict on any graph with the same feature
// width — making the edge-free floor servable through the same
// InferenceSession path as the published GCON artifact. Recomputing
// Forward on the training features reproduces the training-time logits
// bitwise, which the registry round-trip test relies on.
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "baselines/mlp_baseline.h"
#include "common/check.h"
#include "common/timer.h"
#include "model/adapters.h"
#include "nn/mlp_io.h"

namespace gcon {
namespace {

class MlpModel : public GraphModel {
 public:
  explicit MlpModel(const ModelConfig& config) {
    options_.hidden = config.GetInt("hidden", options_.hidden);
    options_.epochs = config.GetInt("epochs", options_.epochs);
    options_.learning_rate =
        config.GetDouble("learning_rate", options_.learning_rate);
    options_.weight_decay =
        config.GetDouble("weight_decay", options_.weight_decay);
    options_.seed = config.GetSeed("seed", options_.seed);
    internal::ReadBudgetKeys(config);  // accepted, ignored: edge-free
  }

  std::string name() const override { return "mlp"; }

  std::string Describe() const override {
    std::ostringstream out;
    out << "mlp hidden=" << options_.hidden << " epochs=" << options_.epochs
        << " learning_rate=" << options_.learning_rate
        << " weight_decay=" << options_.weight_decay
        << " seed=" << options_.seed;
    return out.str();
  }

  bool UsesPrivacyBudget() const override { return false; }

  TrainResult Train(const Graph& graph, const Split& split) override {
    Timer timer;
    Matrix logits = TrainMlpAndPredict(graph, split, options_, &mlp_);
    // Edges never touched: (0, 0)-edge-DP.
    return MakeResult(graph, split, std::move(logits), timer.Seconds(), 0.0,
                      0.0);
  }

  Matrix Predict(const Graph& graph) const override {
    GCON_CHECK(mlp_ != nullptr) << "Predict called before Train/Load on 'mlp'";
    GCON_CHECK_EQ(graph.feature_dim(), mlp_->options().dims.front())
        << "graph feature width does not match the trained network";
    return mlp_->Forward(graph.features());
  }

  bool Save(const std::string& path) const override {
    GCON_CHECK(mlp_ != nullptr) << "Save called before Train on 'mlp'";
    std::ofstream out(path);
    if (!out.good()) {
      throw std::runtime_error("mlp model '" + path +
                               "': cannot open for writing");
    }
    out << "gcon-mlp v1\n";
    SaveMlp(*mlp_, &out);
    if (!out.good()) {
      throw std::runtime_error("mlp model '" + path + "': write failure");
    }
    return true;
  }

  bool Load(const std::string& path) override {
    std::ifstream in(path);
    if (!in.good()) {
      throw std::runtime_error("mlp model '" + path +
                               "': cannot open (missing file?)");
    }
    std::string line;
    if (!std::getline(in, line) || line != "gcon-mlp v1") {
      throw std::runtime_error("mlp model '" + path + "': bad magic '" +
                               line + "' (want 'gcon-mlp v1')");
    }
    try {
      mlp_ = std::make_unique<Mlp>(LoadMlp(&in));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("mlp model '" + path + "': " + e.what());
    }
    return true;
  }

 private:
  MlpBaselineOptions options_;
  std::unique_ptr<Mlp> mlp_;
};

}  // namespace

namespace internal {

void RegisterMlpModel(ModelRegistry* registry) {
  registry->Register(
      "mlp",
      [](const ModelConfig& config) -> std::unique_ptr<GraphModel> {
        return std::make_unique<MlpModel>(config);
      },
      "features-only MLP; edge-DP for free (utility floor)");
}

}  // namespace internal
}  // namespace gcon
