// "gcn": the non-private 2-layer GCN — the utility ceiling of Figure 1.
#include <limits>
#include <memory>
#include <sstream>

#include "baselines/gcn.h"
#include "common/timer.h"
#include "model/adapters.h"

namespace gcon {
namespace {

class GcnModel : public internal::CachedLogitsModel {
 public:
  explicit GcnModel(const ModelConfig& config) {
    options_.hidden = config.GetInt("hidden", options_.hidden);
    options_.epochs = config.GetInt("epochs", options_.epochs);
    options_.learning_rate =
        config.GetDouble("learning_rate", options_.learning_rate);
    options_.weight_decay =
        config.GetDouble("weight_decay", options_.weight_decay);
    options_.eval_every = config.GetInt("eval_every", options_.eval_every);
    options_.seed = config.GetSeed("seed", options_.seed);
    internal::ReadBudgetKeys(config);  // accepted, ignored: not private
  }

  std::string name() const override { return "gcn"; }

  std::string Describe() const override {
    std::ostringstream out;
    out << "gcn hidden=" << options_.hidden << " epochs=" << options_.epochs
        << " learning_rate=" << options_.learning_rate
        << " weight_decay=" << options_.weight_decay
        << " eval_every=" << options_.eval_every << " seed=" << options_.seed;
    return out.str();
  }

  bool UsesPrivacyBudget() const override { return false; }

  TrainResult Train(const Graph& graph, const Split& split) override {
    Timer timer;
    Matrix logits = TrainGcnAndPredict(graph, split, options_);
    CacheLogits(logits, graph);
    // Non-private: the trained model exposes the exact edge set.
    return MakeResult(graph, split, std::move(logits), timer.Seconds(),
                      std::numeric_limits<double>::infinity(), 0.0);
  }

 private:
  GcnOptions options_;
};

}  // namespace

namespace internal {

void RegisterGcnModel(ModelRegistry* registry) {
  registry->Register(
      "gcn",
      [](const ModelConfig& config) -> std::unique_ptr<GraphModel> {
        return std::make_unique<GcnModel>(config);
      },
      "non-private 2-layer GCN (Kipf & Welling); utility ceiling");
}

}  // namespace internal
}  // namespace gcon
