// "dpsgd": DP-SGD (Abadi et al.) adapted to edge DP on a one-layer SGC.
#include <memory>
#include <sstream>

#include "baselines/dpsgd_gcn.h"
#include "common/timer.h"
#include "model/adapters.h"

namespace gcon {
namespace {

class DpsgdModel : public internal::CachedLogitsModel {
 public:
  explicit DpsgdModel(const ModelConfig& config)
      : budget_(internal::ReadBudgetKeys(config)) {
    options_.clip = config.GetDouble("clip", options_.clip);
    options_.steps = config.GetInt("steps", options_.steps);
    options_.sample_rate = config.GetDouble("sample_rate", options_.sample_rate);
    options_.learning_rate =
        config.GetDouble("learning_rate", options_.learning_rate);
    options_.seed = config.GetSeed("seed", options_.seed);
  }

  std::string name() const override { return "dpsgd"; }

  std::string Describe() const override {
    std::ostringstream out;
    out << "dpsgd epsilon=" << budget_.epsilon << " delta=" << internal::DeltaLabel(budget_)
        << " clip=" << options_.clip << " steps=" << options_.steps
        << " sample_rate=" << options_.sample_rate
        << " learning_rate=" << options_.learning_rate
        << " seed=" << options_.seed;
    return out.str();
  }

  bool UsesPrivacyBudget() const override { return true; }

  TrainResult Train(const Graph& graph, const Split& split) override {
    Timer timer;
    const double delta = internal::ResolveDelta(budget_, graph);
    Matrix logits = TrainDpsgdGcnAndPredict(graph, split, budget_.epsilon,
                                            delta, options_);
    CacheLogits(logits, graph);
    return MakeResult(graph, split, std::move(logits), timer.Seconds(),
                      budget_.epsilon, delta);
  }

 private:
  internal::BudgetKeys budget_;
  DpsgdOptions options_;
};

}  // namespace

namespace internal {

void RegisterDpsgdModel(ModelRegistry* registry) {
  registry->Register(
      "dpsgd",
      [](const ModelConfig& config) -> std::unique_ptr<GraphModel> {
        return std::make_unique<DpsgdModel>(config);
      },
      "DP-SGD on a one-layer SGC (per-node clipping, RDP accountant)");
}

}  // namespace internal
}  // namespace gcon
