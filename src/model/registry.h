// String-keyed registry of GraphModel factories.
//
// Each adapter translation unit defines a factory and registers it under
// its method name ("gcon", "gcn", ...); consumers create models with
//   auto model = BuiltinModelRegistry().Create("gcon", config);
// BuiltinModelRegistry() (adapters.h) guarantees the eight built-in
// adapters are linked and registered — plain static-initializer
// registration is not enough because gcon_core is a static library and the
// linker drops object files nothing references.
//
// Adding a ninth method: implement the adapter in one new src/model/*.cc
// file and add its Register* call to adapters.cc. Every registry consumer
// (CLI --help, bench loops, tests) picks it up automatically.
#ifndef GCON_MODEL_REGISTRY_H_
#define GCON_MODEL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "model/model.h"

namespace gcon {

class ModelRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<GraphModel>(const ModelConfig&)>;

  /// The process-wide registry instance.
  static ModelRegistry& Global();

  /// Registers `factory` under `name` with a one-line `summary` for
  /// --help/Describe listings. Re-registering a name is a programming
  /// error (aborts).
  void Register(const std::string& name, Factory factory,
                const std::string& summary);

  bool Contains(const std::string& name) const;

  /// Instantiates the named model. Throws std::invalid_argument when the
  /// name is unknown (the message lists the registered names) or when
  /// `config` contains a key the adapter never read.
  std::unique_ptr<GraphModel> Create(const std::string& name,
                                     const ModelConfig& config) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// The summary string given at registration; empty for unknown names.
  std::string Summary(const std::string& name) const;

 private:
  struct Entry {
    Factory factory;
    std::string summary;
  };

  std::vector<std::string> NamesLocked() const;

  /// Lookups take shared locks so concurrent experiment workers can Create
  /// models freely; Register takes the exclusive lock. (Registration in
  /// practice happens once, inside BuiltinModelRegistry's magic static, but
  /// the registry must not silently require that.) Factories run outside
  /// the lock — a factory that registers models would deadlock otherwise.
  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace gcon

#endif  // GCON_MODEL_REGISTRY_H_
