// Built-in GraphModel adapters: GCON plus the seven comparison methods of
// Figures 1-4 (GCN, DPGCN, DP-SGD, GAP, ProGAP, LPGNet, MLP), each mapping
// the uniform ModelConfig onto its method's existing options struct.
//
// Shared config keys (consumed by every adapter so one sweep config can
// drive the whole suite):
//   epsilon   privacy budget (ignored by the non-DP gcn and the edge-free
//             mlp, which report their own spent values)
//   delta     privacy delta; <= 0 or absent means "auto" = 1/|directed E|
//             for the (epsilon, delta)-DP methods
//   seed      RNG seed
// Method-specific keys mirror the fields of the method's options struct;
// `Describe()` prints every resolved value. Unknown keys are rejected by
// ModelRegistry::Create.
#ifndef GCON_MODEL_ADAPTERS_H_
#define GCON_MODEL_ADAPTERS_H_

#include "model/registry.h"

namespace gcon {

/// ModelRegistry::Global() with all eight built-in adapters registered
/// (idempotent). Use this instead of Global() so the adapter object files
/// are linked in from the static library.
ModelRegistry& BuiltinModelRegistry();

namespace internal {

// One registration hook per adapter translation unit; called (once) by
// BuiltinModelRegistry. A new method adds its hook here and to the list in
// adapters.cc.
void RegisterGconModel(ModelRegistry* registry);
void RegisterGcnModel(ModelRegistry* registry);
void RegisterDpgcnModel(ModelRegistry* registry);
void RegisterDpsgdModel(ModelRegistry* registry);
void RegisterGapModel(ModelRegistry* registry);
void RegisterProgapModel(ModelRegistry* registry);
void RegisterLpgnetModel(ModelRegistry* registry);
void RegisterMlpModel(ModelRegistry* registry);

/// Reads the shared budget keys. For methods that ignore one (or both) of
/// them this still marks the keys consumed, so a sweep driver can put
/// "epsilon" in every method's config without tripping the unknown-key
/// check.
struct BudgetKeys {
  double epsilon = 1.0;
  double delta = 0.0;  ///< <= 0 means auto: 1/(2 * |undirected E|)
};
BudgetKeys ReadBudgetKeys(const ModelConfig& config);

/// Resolves an "auto" delta against the training graph.
double ResolveDelta(const BudgetKeys& keys, const Graph& graph);

/// "auto" for the <= 0 sentinel, the numeric value otherwise (Describe).
std::string DeltaLabel(const BudgetKeys& keys);

/// Base for adapters whose underlying method trains and predicts in one
/// shot (all the baselines): Train caches the logits, and Predict returns
/// them for the training graph only.
class CachedLogitsModel : public GraphModel {
 public:
  Matrix Predict(const Graph& graph) const override;

 protected:
  void CacheLogits(const Matrix& logits, const Graph& graph);

 private:
  Matrix cached_logits_;
  int trained_nodes_ = 0;
};

}  // namespace internal
}  // namespace gcon

#endif  // GCON_MODEL_ADAPTERS_H_
