// Scalar/matrix differential-privacy mechanisms.
//
// These primitives back the baseline methods (GAP/ProGAP aggregation
// perturbation, LPGNet degree-vector perturbation, DPGCN topology
// perturbation, DP-SGD gradient perturbation). GCON itself does NOT use
// them — its only randomness is the objective-perturbation noise matrix B
// (core/noise.h).
#ifndef GCON_DP_MECHANISMS_H_
#define GCON_DP_MECHANISMS_H_

#include "linalg/matrix.h"
#include "rng/rng.h"

namespace gcon {

/// Adds Laplace(sensitivity/epsilon) noise to every element of m.
/// Satisfies epsilon-DP for L1 sensitivity `l1_sensitivity`.
void LaplaceMechanismInPlace(Matrix* m, double l1_sensitivity, double epsilon,
                             Rng* rng);

/// Adds N(0, sigma^2) noise to every element of m.
void GaussianNoiseInPlace(Matrix* m, double sigma, Rng* rng);

/// Classic Gaussian mechanism calibration: sigma so that releasing a value
/// of L2 sensitivity `l2_sensitivity` is (epsilon, delta)-DP
/// (sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon; requires
/// epsilon <= 1 for the classic bound, but the formula is the standard
/// practical choice beyond that too).
double GaussianSigma(double l2_sensitivity, double epsilon, double delta);

/// zero-Concentrated DP helpers (Bun & Steinke 2016):
///   rho for one Gaussian release of L2 sensitivity s with stddev sigma is
///   s^2 / (2 sigma^2); rho composes additively; (epsilon, delta)-DP holds
///   with epsilon = rho + 2 sqrt(rho ln(1/delta)).
/// Converts a target (epsilon, delta) to the largest admissible rho.
double ZcdpRhoFromEpsilonDelta(double epsilon, double delta);

/// epsilon(delta) for a given rho (inverse of the above, for reporting).
double ZcdpEpsilon(double rho, double delta);

/// Sigma for `count` Gaussian releases, each of L2 sensitivity
/// `l2_sensitivity`, so the composition is (epsilon, delta)-DP via zCDP.
double ZcdpSigmaForComposition(int count, double l2_sensitivity,
                               double epsilon, double delta);

}  // namespace gcon

#endif  // GCON_DP_MECHANISMS_H_
