// Persistent privacy-budget ledger — the durable half of the repeated-
// release accounting story (the train→publish→serve ROADMAP item).
//
// The epsilon a GCON artifact carries is a receipt for ONE release. A
// serving system that hot-swaps retrained artifacts over the same
// population spends fresh budget on every publish (GAP-style composition:
// each release of a model trained on the same nodes is a new query against
// the same private data), so the running total must survive restarts,
// crashes, and in-process server reconstruction — an in-memory gauge that
// resets to the incoming artifact's own epsilon silently forgets every
// prior release. This ledger is the system of record the gauge mirrors.
//
// Format: a human-readable append-only record file,
//
//   gcon-budget-ledger v1
//   R <seq> <graph-fp> <epsilon> <delta> <artifact-fp> <ts> <model>
//   C <seq>
//   A <seq>
//
// (fingerprints and seq as decimal u64, doubles at precision 17 in the
// classic locale — the file reads back identically under any LC_NUMERIC)
//
// keyed by (graph fingerprint, model name): FingerprintGraph of the
// serving population plus the published name identify "the same model
// trained on the same nodes" across processes. Every record line is
// written with one write(2) and fsync'd before the operation it describes
// proceeds, so the file on disk is always a prefix of the true history.
//
// Two-phase accounting: Reserve appends an R record (charging the epsilon
// immediately — see below), the caller attempts the swap, then Commit (C)
// or Abort (A) resolves the reservation. An aborted reservation refunds
// its charge, so a failed publish — unreadable artifact, population
// mismatch, refused swap — never spends budget.
//
// Crash recovery (replay on open):
//   * A torn FINAL line (no trailing newline, or unparseable) is the tail
//     of a write the process died inside; the operation it describes never
//     proceeded (records are durable BEFORE their effect), so the tail is
//     truncated away and replay continues from a consistent prefix.
//   * An unparseable line in the MIDDLE of the file is corruption, not a
//     torn write — the ledger refuses to open rather than guess a total.
//   * A reservation with neither C nor A (crash mid-publish) stays
//     CHARGED: the swap may have completed before the commit record was
//     written, and privacy accounting must err toward over-counting a
//     release that never escaped, never toward forgetting one that did.
//
// Enforcement: Reserve takes the caller's cap (0 = unlimited) and throws
// BudgetExhaustedError — without writing anything — when the charge would
// push the key's total past it. The check and the charge happen under one
// lock, so two concurrent publishes cannot jointly overshoot the cap.
//
// The default-constructed ledger is in-memory (no file, nothing survives
// the object): it gives a server with no --budget-ledger flag the same
// reserve/commit arithmetic and cap enforcement, just without durability.
//
// Thread-safe; every public method locks. No raw threads, no RNG, no
// dependence on the serve tier (the server translates
// BudgetExhaustedError into its wire-coded rejection).
#ifndef GCON_DP_BUDGET_LEDGER_H_
#define GCON_DP_BUDGET_LEDGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

namespace gcon {

/// Thrown by Reserve/AccountArtifact when a charge would exceed the cap.
/// Deliberately NOT a ServeError: the dp tier does not know about wire
/// codes; the serve tier catches this and re-throws its coded rejection.
class BudgetExhaustedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BudgetLedger {
 public:
  /// A charged-but-unresolved release. Returned by Reserve; pass to
  /// exactly one of Commit or Abort.
  struct Reservation {
    std::uint64_t seq = 0;
    std::uint64_t graph_fingerprint = 0;
    std::string model;
    double epsilon = 0.0;
    double delta = 0.0;
    std::uint64_t artifact_fingerprint = 0;
  };

  /// Per-key accounting snapshot (see Totals()).
  struct BudgetTotals {
    double epsilon = 0.0;        ///< charged (committed + unresolved) sum
    double delta = 0.0;          ///< basic-composition delta sum
    std::uint64_t publishes = 0; ///< charged releases
  };

  /// In-memory ledger: full reserve/commit/abort + cap semantics, no file.
  BudgetLedger();

  /// Persistent ledger bound to `path`. Creates the file if absent;
  /// otherwise replays it (recovering a torn tail — see file comment).
  /// Throws std::runtime_error on an unopenable or corrupt file.
  explicit BudgetLedger(std::string path);

  ~BudgetLedger();
  BudgetLedger(const BudgetLedger&) = delete;
  BudgetLedger& operator=(const BudgetLedger&) = delete;

  /// Charges `epsilon`/`delta` against (graph_fingerprint, model), durably
  /// (R record fsync'd before return). Throws BudgetExhaustedError — and
  /// writes nothing — when cap > 0 and the key's charged total would
  /// exceed it; throws std::runtime_error if the record cannot be made
  /// durable (disk failure / injected torn write), in which case the
  /// in-memory total is also untouched.
  Reservation Reserve(std::uint64_t graph_fingerprint,
                      const std::string& model, double epsilon, double delta,
                      std::uint64_t artifact_fingerprint, double cap);

  /// Marks the reservation's release as completed (C record). The charge
  /// was already taken at Reserve; this makes it permanent and remembers
  /// the artifact fingerprint as the key's live release. Returns the
  /// key's charged epsilon total after the commit.
  double Commit(const Reservation& reservation);

  /// Refunds the reservation (A record): the publish failed before the
  /// swap, so no release happened and no budget is spent.
  void Abort(const Reservation& reservation);

  /// Startup accounting for an artifact loaded from disk: if `
  /// artifact_fingerprint` already is the key's last committed release
  /// (a restart serving the same bits), nothing is charged; otherwise the
  /// load is a fresh release and is reserved+committed inline (subject to
  /// `cap`, like Reserve). Returns the key's charged epsilon total either
  /// way — the value the gcon_dp_epsilon gauge must show.
  double AccountArtifact(std::uint64_t graph_fingerprint,
                         const std::string& model, double epsilon,
                         double delta, std::uint64_t artifact_fingerprint,
                         double cap);

  /// Charged totals for one key (zeroes for a key never seen).
  BudgetTotals Totals(std::uint64_t graph_fingerprint,
                      const std::string& model) const;

  /// Charged epsilon for one key (Totals().epsilon).
  double TotalEpsilon(std::uint64_t graph_fingerprint,
                      const std::string& model) const;

  bool persistent() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  using Key = std::pair<std::uint64_t, std::string>;

  struct Entry {
    BudgetTotals totals;
    std::uint64_t last_committed_artifact = 0;
    bool has_committed = false;
  };

  /// Replays `path_` into entries_/next_seq_, truncating a torn tail.
  /// Creates the file (header only) when absent.
  void OpenAndReplay();

  /// Appends one record line durably (write + fsync) or throws without
  /// side effects. Caller holds mu_. The torn-write fault hook
  /// (Fault::kTornLedgerWrite) fires here: half the bytes land, then the
  /// write "fails" — exactly the tail OpenAndReplay must recover from.
  void AppendDurableLocked(const std::string& line);

  std::string FormatReserveLine(const Reservation& reservation) const;

  mutable std::mutex mu_;
  std::string path_;
  int fd_ = -1;  ///< -1 for the in-memory ledger
  std::uint64_t next_seq_ = 1;
  std::map<Key, Entry> entries_;
  std::map<std::uint64_t, Reservation> unresolved_;
};

}  // namespace gcon

#endif  // GCON_DP_BUDGET_LEDGER_H_
