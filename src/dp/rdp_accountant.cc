#include "dp/rdp_accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/lgamma_safe.h"
#include "obs/metrics.h"

namespace gcon {
namespace {

// Accountant call counters: one series per entry point. DpSgdSigma calls
// DpSgdEpsilon internally (bisection), so the `epsilon` series also counts
// those inner evaluations — it measures accountant work, not user calls.
void RecordAccountantCall(const char* fn) {
  if (!obs::MetricsEnabled()) return;
  static const auto handles = [] {
    auto& registry = obs::MetricsRegistry::Global();
    struct {
      obs::Counter* epsilon;
      obs::Counter* sigma;
    } out{registry.counter("gcon_dp_accountant_calls_total",
                           "RDP accountant evaluations, by entry point.",
                           {{"fn", "dp_sgd_epsilon"}}),
          registry.counter("gcon_dp_accountant_calls_total",
                           "RDP accountant evaluations, by entry point.",
                           {{"fn", "dp_sgd_sigma"}})};
    return out;
  }();
  if (fn[0] == 'e') {
    handles.epsilon->Increment();
  } else {
    handles.sigma->Increment();
  }
}

// log(n choose k) via lgamma.
double LogBinom(int n, int k) {
  return LGammaSafe(n + 1.0) - LGammaSafe(k + 1.0) -
         LGammaSafe(n - k + 1.0);
}

// Numerically stable log(sum(exp(terms))).
double LogSumExp(const std::vector<double>& terms) {
  double max_term = -std::numeric_limits<double>::infinity();
  for (double t : terms) max_term = std::max(max_term, t);
  if (!std::isfinite(max_term)) return max_term;
  double acc = 0.0;
  for (double t : terms) acc += std::exp(t - max_term);
  return max_term + std::log(acc);
}

}  // namespace

double GaussianRdp(double alpha, double sigma) {
  GCON_CHECK_GT(alpha, 1.0);
  GCON_CHECK_GT(sigma, 0.0);
  return alpha / (2.0 * sigma * sigma);
}

double SubsampledGaussianRdp(int alpha, double q, double sigma) {
  GCON_CHECK_GE(alpha, 2);
  GCON_CHECK_GT(sigma, 0.0);
  GCON_CHECK_GE(q, 0.0);
  GCON_CHECK_LE(q, 1.0);
  if (q == 0.0) return 0.0;
  if (q == 1.0) return GaussianRdp(alpha, sigma);
  // E_{k ~ Binom(alpha, q)} exp(k(k-1) / (2 sigma^2)), in log space.
  std::vector<double> terms;
  terms.reserve(static_cast<std::size_t>(alpha) + 1);
  const double log_q = std::log(q);
  const double log_1mq = std::log1p(-q);
  for (int k = 0; k <= alpha; ++k) {
    const double term = LogBinom(alpha, k) + k * log_q +
                        (alpha - k) * log_1mq +
                        (static_cast<double>(k) * (k - 1)) /
                            (2.0 * sigma * sigma);
    terms.push_back(term);
  }
  return LogSumExp(terms) / (alpha - 1.0);
}

double DpSgdEpsilon(double sigma, double q, int steps, double delta,
                    int max_order) {
  GCON_CHECK_GT(steps, 0);
  GCON_CHECK_GT(delta, 0.0);
  RecordAccountantCall("epsilon");
  double best = std::numeric_limits<double>::infinity();
  const double log_inv_delta = std::log(1.0 / delta);
  for (int alpha = 2; alpha <= max_order; ++alpha) {
    const double rdp = steps * SubsampledGaussianRdp(alpha, q, sigma);
    const double eps = rdp + log_inv_delta / (alpha - 1.0);
    best = std::min(best, eps);
  }
  return best;
}

double DpSgdSigma(double epsilon, double delta, double q, int steps,
                  int max_order) {
  GCON_CHECK_GT(epsilon, 0.0);
  RecordAccountantCall("sigma");
  double lo = 1e-2;
  double hi = 1e-2;
  // Grow hi until it satisfies the budget.
  while (DpSgdEpsilon(hi, q, steps, delta, max_order) > epsilon) {
    hi *= 2.0;
    GCON_CHECK_LT(hi, 1e9) << "cannot satisfy epsilon=" << epsilon;
  }
  // lo should violate the budget; shrink if necessary (very loose budgets).
  while (DpSgdEpsilon(lo, q, steps, delta, max_order) < epsilon && lo > 1e-9) {
    lo *= 0.5;
  }
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (DpSgdEpsilon(mid, q, steps, delta, max_order) > epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace gcon
