#include "dp/budget_ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <ctime>
#include <fstream>
#include <locale>
#include <sstream>
#include <system_error>
#include <vector>

#include "common/logging.h"
#include "serve/fault_injection.h"

namespace gcon {
namespace {

constexpr const char kLedgerHeader[] = "gcon-budget-ledger v1";

bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = first + token.size();
  const std::from_chars_result result = std::from_chars(first, last, *out);
  return result.ec == std::errc() && result.ptr == last;
}

/// Locale-independent double parse (the file must read back identically no
/// matter what LC_NUMERIC the host process runs under).
bool ParseLedgerDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = first + token.size();
  const std::from_chars_result result = std::from_chars(first, last, *out);
  return result.ec == std::errc() && result.ptr == last;
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t space = line.find(' ', pos);
    if (space == std::string::npos) {
      tokens.push_back(line.substr(pos));
      break;
    }
    tokens.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  return tokens;
}

[[noreturn]] void Corrupt(const std::string& path, std::size_t line_number,
                          const std::string& why) {
  throw std::runtime_error("budget ledger '" + path + "': corrupt record at line " +
                           std::to_string(line_number) + " (" + why + ")");
}

}  // namespace

BudgetLedger::BudgetLedger() = default;

BudgetLedger::BudgetLedger(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    throw std::invalid_argument("budget ledger path must not be empty");
  }
  OpenAndReplay();
}

BudgetLedger::~BudgetLedger() {
  if (fd_ >= 0) ::close(fd_);
}

void BudgetLedger::OpenAndReplay() {
  std::string content;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      content = buffer.str();
    }
  }

  std::size_t good_end = 0;
  if (!content.empty()) {
    std::size_t eol = content.find('\n');
    if (eol == std::string::npos ||
        content.compare(0, eol, kLedgerHeader) != 0) {
      throw std::runtime_error("budget ledger '" + path_ + "': not a " +
                               std::string(kLedgerHeader) + " file");
    }
    good_end = eol + 1;
    std::size_t pos = good_end;
    std::size_t line_number = 2;
    while (pos < content.size()) {
      eol = content.find('\n', pos);
      if (eol == std::string::npos) {
        // Torn tail: the process died inside this record's write. Records
        // are durable BEFORE their operation proceeds, so the operation
        // never happened — drop the tail and the history stays truthful.
        GCON_LOG(WARNING) << "budget ledger '" << path_
                          << "': recovering torn trailing record ("
                          << content.size() - pos << " bytes dropped)";
        break;
      }
      const std::string line = content.substr(pos, eol - pos);
      const std::vector<std::string> tokens = SplitTokens(line);
      if (tokens.empty()) Corrupt(path_, line_number, "empty record");
      if (tokens[0] == "R") {
        // R <seq> <graph-fp> <epsilon> <delta> <artifact-fp> <ts> <model>
        Reservation r;
        std::uint64_t timestamp = 0;
        if (tokens.size() < 8 || !ParseU64(tokens[1], &r.seq) ||
            !ParseU64(tokens[2], &r.graph_fingerprint) ||
            !ParseLedgerDouble(tokens[3], &r.epsilon) ||
            !ParseLedgerDouble(tokens[4], &r.delta) ||
            !ParseU64(tokens[5], &r.artifact_fingerprint) ||
            !ParseU64(tokens[6], &timestamp)) {
          Corrupt(path_, line_number, "bad reserve record");
        }
        r.model = tokens[7];
        for (std::size_t t = 8; t < tokens.size(); ++t) {
          r.model += ' ';
          r.model += tokens[t];
        }
        if (unresolved_.count(r.seq) != 0) {
          Corrupt(path_, line_number, "duplicate reservation seq");
        }
        Entry& entry = entries_[Key(r.graph_fingerprint, r.model)];
        entry.totals.epsilon += r.epsilon;
        entry.totals.delta += r.delta;
        entry.totals.publishes += 1;
        unresolved_[r.seq] = r;
        if (r.seq >= next_seq_) next_seq_ = r.seq + 1;
      } else if (tokens[0] == "C" || tokens[0] == "A") {
        std::uint64_t seq = 0;
        if (tokens.size() != 2 || !ParseU64(tokens[1], &seq)) {
          Corrupt(path_, line_number, "bad resolution record");
        }
        const auto it = unresolved_.find(seq);
        if (it == unresolved_.end()) {
          Corrupt(path_, line_number, "resolution of unknown reservation");
        }
        const Reservation& r = it->second;
        Entry& entry = entries_[Key(r.graph_fingerprint, r.model)];
        if (tokens[0] == "C") {
          entry.has_committed = true;
          entry.last_committed_artifact = r.artifact_fingerprint;
        } else {
          // Aborted: the publish failed before its swap — refund.
          entry.totals.epsilon -= r.epsilon;
          entry.totals.delta -= r.delta;
          entry.totals.publishes -= 1;
        }
        unresolved_.erase(it);
      } else {
        Corrupt(path_, line_number, "unknown record kind '" + tokens[0] + "'");
      }
      good_end = eol + 1;
      pos = eol + 1;
      ++line_number;
    }
  }
  // Reservations with neither C nor A are a crash mid-publish: the swap
  // may have completed before its commit record landed, so their charges
  // STAY (privacy errs toward over-counting) — but no handle survives to
  // resolve them, so they leave the unresolved map.
  if (!unresolved_.empty()) {
    GCON_LOG(WARNING) << "budget ledger '" << path_ << "': "
                      << unresolved_.size()
                      << " reservation(s) unresolved by a crash stay charged";
    unresolved_.clear();
  }

  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("budget ledger: cannot open '" + path_ + "' (" +
                             std::strerror(errno) + ")");
  }
  if (content.empty()) {
    AppendDurableLocked(kLedgerHeader);
  } else if (good_end < content.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(good_end)) != 0) {
      throw std::runtime_error("budget ledger: cannot truncate torn tail of '" +
                               path_ + "' (" + std::strerror(errno) + ")");
    }
    ::fsync(fd_);
  }
}

void BudgetLedger::AppendDurableLocked(const std::string& line) {
  if (fd_ == -1) return;  // in-memory ledger: arithmetic only
  if (fd_ < -1) {
    throw std::runtime_error(
        "budget ledger '" + path_ +
        "': unusable after a failed write (reopen to recover)");
  }
  std::string data = line;
  data.push_back('\n');
  if (FaultInjector::Global().ShouldFire(Fault::kTornLedgerWrite)) {
    // Chaos site: half the record lands, then the "process dies" — the
    // torn tail OpenAndReplay must truncate away. The in-process object
    // poisons itself (a crashed writer does not keep writing).
    const std::size_t half = data.size() / 2;
    if (half > 0) {
      [[maybe_unused]] const ssize_t n = ::write(fd_, data.data(), half);
    }
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -2;
    throw std::runtime_error("budget ledger '" + path_ +
                             "': injected torn write");
  }
  const off_t before = ::lseek(fd_, 0, SEEK_END);
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // Best-effort rollback so later appends don't land after a torn
      // line; if even that fails, poison — recovery happens at reopen.
      if (before < 0 || ::ftruncate(fd_, before) != 0) {
        ::close(fd_);
        fd_ = -2;
      }
      throw std::runtime_error("budget ledger: write to '" + path_ +
                               "' failed (" + std::strerror(errno) + ")");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("budget ledger: fsync of '" + path_ +
                             "' failed (" + std::strerror(errno) + ")");
  }
}

std::string BudgetLedger::FormatReserveLine(
    const Reservation& reservation) const {
  std::ostringstream out;
  out.imbue(std::locale::classic());  // the file is locale-invariant
  out.precision(17);
  out << "R " << reservation.seq << ' ' << reservation.graph_fingerprint
      << ' ' << reservation.epsilon << ' ' << reservation.delta << ' '
      << reservation.artifact_fingerprint << ' '
      << static_cast<std::uint64_t>(std::time(nullptr)) << ' '
      << reservation.model;
  return out.str();
}

namespace {

[[noreturn]] void ThrowExhausted(const std::string& model, double charged,
                                 double requested, double cap) {
  std::ostringstream msg;
  msg.imbue(std::locale::classic());
  msg.precision(17);
  msg << "release of model '" << model << "' refused: cumulative epsilon "
      << charged << " + " << requested << " exceeds budget cap " << cap;
  throw BudgetExhaustedError(msg.str());
}

}  // namespace

BudgetLedger::Reservation BudgetLedger::Reserve(
    std::uint64_t graph_fingerprint, const std::string& model, double epsilon,
    double delta, std::uint64_t artifact_fingerprint, double cap) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[Key(graph_fingerprint, model)];
  // Check-and-charge under one lock: a second concurrent publish sees this
  // reservation's charge and cannot jointly overshoot the cap. Reaching
  // the cap exactly is allowed; exceeding it is not.
  if (cap > 0 && entry.totals.epsilon + epsilon > cap) {
    ThrowExhausted(model, entry.totals.epsilon, epsilon, cap);
  }
  Reservation reservation{next_seq_, graph_fingerprint, model,
                          epsilon,   delta,             artifact_fingerprint};
  AppendDurableLocked(FormatReserveLine(reservation));
  ++next_seq_;
  entry.totals.epsilon += epsilon;
  entry.totals.delta += delta;
  entry.totals.publishes += 1;
  unresolved_[reservation.seq] = reservation;
  return reservation;
}

double BudgetLedger::Commit(const Reservation& reservation) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = unresolved_.find(reservation.seq);
  if (it == unresolved_.end()) {
    throw std::logic_error("budget ledger: commit of an unknown reservation");
  }
  // If this append fails the charge simply stays (the swap already
  // happened; a lost commit record must never refund a real release).
  AppendDurableLocked("C " + std::to_string(reservation.seq));
  unresolved_.erase(it);
  Entry& entry =
      entries_[Key(reservation.graph_fingerprint, reservation.model)];
  entry.has_committed = true;
  entry.last_committed_artifact = reservation.artifact_fingerprint;
  return entry.totals.epsilon;
}

void BudgetLedger::Abort(const Reservation& reservation) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = unresolved_.find(reservation.seq);
  if (it == unresolved_.end()) {
    throw std::logic_error("budget ledger: abort of an unknown reservation");
  }
  AppendDurableLocked("A " + std::to_string(reservation.seq));
  unresolved_.erase(it);
  Entry& entry =
      entries_[Key(reservation.graph_fingerprint, reservation.model)];
  entry.totals.epsilon -= reservation.epsilon;
  entry.totals.delta -= reservation.delta;
  entry.totals.publishes -= 1;
}

double BudgetLedger::AccountArtifact(std::uint64_t graph_fingerprint,
                                     const std::string& model, double epsilon,
                                     double delta,
                                     std::uint64_t artifact_fingerprint,
                                     double cap) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[Key(graph_fingerprint, model)];
  if (entry.has_committed &&
      entry.last_committed_artifact == artifact_fingerprint) {
    // A restart serving the ledger's own last release: those bits were
    // already charged — restore the total, never re-spend (and never
    // RESET to the artifact's own epsilon).
    return entry.totals.epsilon;
  }
  if (cap > 0 && entry.totals.epsilon + epsilon > cap) {
    ThrowExhausted(model, entry.totals.epsilon, epsilon, cap);
  }
  Reservation reservation{next_seq_, graph_fingerprint, model,
                          epsilon,   delta,             artifact_fingerprint};
  AppendDurableLocked(FormatReserveLine(reservation));
  ++next_seq_;
  entry.totals.epsilon += epsilon;
  entry.totals.delta += delta;
  entry.totals.publishes += 1;
  // Charge already durable and in memory; if the commit append fails the
  // reservation replays as crash-unresolved — still charged, consistent.
  AppendDurableLocked("C " + std::to_string(reservation.seq));
  entry.has_committed = true;
  entry.last_committed_artifact = artifact_fingerprint;
  return entry.totals.epsilon;
}

BudgetLedger::BudgetTotals BudgetLedger::Totals(
    std::uint64_t graph_fingerprint, const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(Key(graph_fingerprint, model));
  return it == entries_.end() ? BudgetTotals{} : it->second.totals;
}

double BudgetLedger::TotalEpsilon(std::uint64_t graph_fingerprint,
                                  const std::string& model) const {
  return Totals(graph_fingerprint, model).epsilon;
}

}  // namespace gcon
