// Rényi-DP accountant for the (subsampled) Gaussian mechanism.
//
// Implements, from scratch:
//   * RDP of the Gaussian mechanism: eps_alpha = alpha / (2 sigma^2)
//     (noise multiplier sigma, sensitivity 1);
//   * RDP of the Poisson-subsampled Gaussian mechanism at integer orders
//     (Mironov, Talwar, Zhang 2019, upper bound via binomial expansion);
//   * additive composition over steps;
//   * conversion to (epsilon, delta)-DP:
//     eps = min_alpha [ eps_alpha + log(1/delta) / (alpha - 1) ].
// Used to calibrate the DP-SGD baseline's noise multiplier.
#ifndef GCON_DP_RDP_ACCOUNTANT_H_
#define GCON_DP_RDP_ACCOUNTANT_H_

namespace gcon {

/// RDP order-alpha cost of one Gaussian mechanism invocation with noise
/// multiplier sigma (sensitivity 1).
double GaussianRdp(double alpha, double sigma);

/// RDP order-alpha (integer alpha >= 2) upper bound of one Poisson-subsampled
/// Gaussian invocation with sampling rate q and noise multiplier sigma.
/// q = 1 reduces to GaussianRdp.
double SubsampledGaussianRdp(int alpha, double q, double sigma);

/// (epsilon) after `steps` compositions of the subsampled Gaussian with
/// rate q and multiplier sigma, at failure probability delta. Minimizes over
/// integer orders 2..max_order.
double DpSgdEpsilon(double sigma, double q, int steps, double delta,
                    int max_order = 64);

/// Smallest noise multiplier sigma such that `steps` compositions stay
/// within (epsilon, delta)-DP. Binary search over sigma; aborts if even a
/// huge sigma cannot satisfy the target.
double DpSgdSigma(double epsilon, double delta, double q, int steps,
                  int max_order = 64);

}  // namespace gcon

#endif  // GCON_DP_RDP_ACCOUNTANT_H_
