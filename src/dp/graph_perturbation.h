// Edge-DP graph-topology perturbation mechanisms (the DPGCN baseline).
//
// Two mechanisms from the LinkTeller paper (Wu et al., IEEE S&P 2022):
//
//  * EdgeRand — randomized response on every node pair: keep each bit with
//    probability e^eps/(1+e^eps). eps-edge-DP. The expected number of
//    injected edges is (1/(1+e^eps)) * n(n-1)/2, which explodes for small
//    eps / large n; callers should prefer LapGraph beyond small graphs.
//
//  * LapGraph — (1) spend eps1 = split*eps on a noisy edge count
//    m~ = |E| + Lap(1/eps1); (2) add Lap(1/eps2) to every cell of the upper
//    triangle and keep the m~ largest cells as edges.
//
// Both are *simulated exactly in distribution* without materializing the
// O(n^2) noisy matrix: for a threshold t, a true edge survives with
// p1 = P(1 + Lap > t) and a non-edge turns on with p0 = P(Lap > t), all
// cells independent — so the survivor counts are Binomial and the surviving
// sets are uniform. For LapGraph we pick t such that the expected kept-cell
// count equals m~ (the exact mechanism uses the m~-th order statistic;
// the difference is an O(sqrt(n)) fluctuation in the kept count with no
// effect on per-cell marginals, and utility is indistinguishable).
#ifndef GCON_DP_GRAPH_PERTURBATION_H_
#define GCON_DP_GRAPH_PERTURBATION_H_

#include "graph/graph.h"
#include "rng/rng.h"

namespace gcon {

/// EdgeRand randomized response. Aborts if the expected output edge count
/// exceeds `max_edges` (guard against accidental O(n^2) graphs).
Graph EdgeRand(const Graph& graph, double epsilon, Rng* rng,
               std::size_t max_edges = 20'000'000);

/// LapGraph with budget split `count_split` (fraction of eps spent on the
/// edge count; LinkTeller uses 0.01).
Graph LapGraph(const Graph& graph, double epsilon, Rng* rng,
               double count_split = 0.01);

namespace internal {

/// P(Lap(1/eps) + shift > t) — exposed for tests.
double LaplaceTail(double shift, double eps, double t);

/// Solves for the threshold t where the expected number of kept cells is
/// `target` (monotone decreasing in t). Exposed for tests.
double SolveLapGraphThreshold(std::size_t num_edges, std::size_t num_pairs,
                              double eps2, double target);

}  // namespace internal
}  // namespace gcon

#endif  // GCON_DP_GRAPH_PERTURBATION_H_
