#include "dp/mechanisms.h"

#include <cmath>

#include "common/check.h"

namespace gcon {

void LaplaceMechanismInPlace(Matrix* m, double l1_sensitivity, double epsilon,
                             Rng* rng) {
  GCON_CHECK_GT(epsilon, 0.0);
  GCON_CHECK_GT(l1_sensitivity, 0.0);
  const double scale = l1_sensitivity / epsilon;
  for (std::size_t k = 0; k < m->size(); ++k) {
    m->data()[k] += rng->Laplace(scale);
  }
}

void GaussianNoiseInPlace(Matrix* m, double sigma, Rng* rng) {
  GCON_CHECK_GE(sigma, 0.0);
  if (sigma == 0.0) return;
  for (std::size_t k = 0; k < m->size(); ++k) {
    m->data()[k] += rng->Normal(0.0, sigma);
  }
}

double GaussianSigma(double l2_sensitivity, double epsilon, double delta) {
  GCON_CHECK_GT(epsilon, 0.0);
  GCON_CHECK_GT(delta, 0.0);
  GCON_CHECK_LT(delta, 1.0);
  return l2_sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

double ZcdpRhoFromEpsilonDelta(double epsilon, double delta) {
  GCON_CHECK_GT(epsilon, 0.0);
  GCON_CHECK_GT(delta, 0.0);
  GCON_CHECK_LT(delta, 1.0);
  const double log_inv_delta = std::log(1.0 / delta);
  const double root = std::sqrt(log_inv_delta + epsilon) -
                      std::sqrt(log_inv_delta);
  return root * root;
}

double ZcdpEpsilon(double rho, double delta) {
  GCON_CHECK_GE(rho, 0.0);
  GCON_CHECK_GT(delta, 0.0);
  GCON_CHECK_LT(delta, 1.0);
  return rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta));
}

double ZcdpSigmaForComposition(int count, double l2_sensitivity,
                               double epsilon, double delta) {
  GCON_CHECK_GT(count, 0);
  const double rho = ZcdpRhoFromEpsilonDelta(epsilon, delta);
  GCON_CHECK_GT(rho, 0.0);
  return l2_sensitivity * std::sqrt(static_cast<double>(count) / (2.0 * rho));
}

}  // namespace gcon
