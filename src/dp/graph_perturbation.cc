#include "dp/graph_perturbation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace gcon {
namespace {

// New graph with the same nodes/labels/features but no edges.
Graph EmptyCopy(const Graph& graph) {
  Graph out(graph.num_nodes(), graph.num_classes());
  for (int v = 0; v < graph.num_nodes(); ++v) {
    out.set_label(v, graph.label(v));
  }
  out.set_features(graph.features());
  return out;
}

// Keeps a uniformly random subset of `keep` original edges.
void AddSurvivingEdges(const Graph& source, std::int64_t keep, Rng* rng,
                       Graph* out) {
  const auto edges = source.EdgeList();
  GCON_CHECK_LE(keep, static_cast<std::int64_t>(edges.size()));
  const std::vector<int> chosen = rng->SampleWithoutReplacement(
      static_cast<int>(edges.size()), static_cast<int>(keep));
  for (int idx : chosen) {
    const auto& [u, v] = edges[static_cast<std::size_t>(idx)];
    out->AddEdge(u, v);
  }
}

// Adds `count` uniformly random node pairs that are NOT edges of `source`
// (and not yet added to `out`). Rejection sampling is efficient because the
// graphs of interest are sparse (|E| << n^2).
void AddRandomNonEdges(const Graph& source, std::int64_t count, Rng* rng,
                       Graph* out) {
  const std::uint64_t n = static_cast<std::uint64_t>(source.num_nodes());
  std::int64_t added = 0;
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = 100 * count + 1000;
  while (added < count && attempts < max_attempts) {
    ++attempts;
    const int u = static_cast<int>(rng->UniformInt(n));
    const int v = static_cast<int>(rng->UniformInt(n));
    if (u == v) continue;
    if (source.HasEdge(u, v)) continue;
    if (out->AddEdge(u, v)) ++added;
  }
  if (added < count) {
    GCON_LOG(WARNING) << "AddRandomNonEdges: only placed " << added << "/"
                      << count;
  }
}

std::size_t NumPairs(const Graph& graph) {
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  return n * (n - 1) / 2;
}

}  // namespace

namespace internal {

double LaplaceTail(double shift, double eps, double t) {
  const double x = (t - shift) * eps;  // (t - shift) / b with b = 1/eps
  if (x >= 0.0) return 0.5 * std::exp(-x);
  return 1.0 - 0.5 * std::exp(x);
}

double SolveLapGraphThreshold(std::size_t num_edges, std::size_t num_pairs,
                              double eps2, double target) {
  GCON_CHECK_LE(num_edges, num_pairs);
  const double m1 = static_cast<double>(num_edges);
  const double m0 = static_cast<double>(num_pairs - num_edges);
  auto expected = [&](double t) {
    return m1 * LaplaceTail(1.0, eps2, t) + m0 * LaplaceTail(0.0, eps2, t);
  };
  // expected() is strictly decreasing in t; bracket the solution.
  double lo = -60.0 / eps2;
  double hi = 1.0 + 60.0 / eps2;
  if (expected(lo) <= target) return lo;
  if (expected(hi) >= target) return hi;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (expected(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace internal

Graph EdgeRand(const Graph& graph, double epsilon, Rng* rng,
               std::size_t max_edges) {
  GCON_CHECK_GT(epsilon, 0.0);
  const std::size_t pairs = NumPairs(graph);
  const double p_flip = 1.0 / (1.0 + std::exp(epsilon));
  const double expected_edges =
      static_cast<double>(graph.num_edges()) * (1.0 - p_flip) +
      static_cast<double>(pairs - graph.num_edges()) * p_flip;
  GCON_CHECK_LE(expected_edges, static_cast<double>(max_edges))
      << "EdgeRand would produce ~" << expected_edges
      << " edges; use LapGraph for this scale";
  Graph out = EmptyCopy(graph);
  const std::int64_t keep =
      rng->Binomial(static_cast<std::int64_t>(graph.num_edges()), 1.0 - p_flip);
  AddSurvivingEdges(graph, keep, rng, &out);
  const std::int64_t inject = rng->Binomial(
      static_cast<std::int64_t>(pairs - graph.num_edges()), p_flip);
  AddRandomNonEdges(graph, inject, rng, &out);
  return out;
}

Graph LapGraph(const Graph& graph, double epsilon, Rng* rng,
               double count_split) {
  GCON_CHECK_GT(epsilon, 0.0);
  GCON_CHECK_GT(count_split, 0.0);
  GCON_CHECK_LT(count_split, 1.0);
  const double eps1 = count_split * epsilon;
  const double eps2 = epsilon - eps1;
  const std::size_t pairs = NumPairs(graph);

  // Step 1: noisy edge count (sensitivity 1).
  double noisy_count =
      static_cast<double>(graph.num_edges()) + rng->Laplace(1.0 / eps1);
  noisy_count = std::clamp(noisy_count, 0.0, static_cast<double>(pairs));

  // Step 2: per-cell Laplace noise + top-m~ selection, simulated via the
  // threshold construction documented in the header.
  const double t = internal::SolveLapGraphThreshold(graph.num_edges(), pairs,
                                                    eps2, noisy_count);
  const double p1 = internal::LaplaceTail(1.0, eps2, t);
  const double p0 = internal::LaplaceTail(0.0, eps2, t);

  Graph out = EmptyCopy(graph);
  const std::int64_t keep =
      rng->Binomial(static_cast<std::int64_t>(graph.num_edges()), p1);
  AddSurvivingEdges(graph, keep, rng, &out);
  const std::int64_t inject = rng->Binomial(
      static_cast<std::int64_t>(pairs - graph.num_edges()), p0);
  AddRandomNonEdges(graph, inject, rng, &out);
  return out;
}

}  // namespace gcon
