// Plain-text serialization for attributed graphs.
//
// Format ("gcon-graph v1", line-oriented):
//   gcon-graph v1
//   nodes <n> classes <c> features <d> edges <m>
//   L <node> <label>                     (n lines)
//   F <node> <idx>:<val> <idx>:<val> ... (n lines, sparse features)
//   E <u> <v>                            (m lines, u < v)
// This lets users plug in the real Cora-ML/CiteSeer/PubMed/Actor data by
// converting them to this format; everything downstream is agnostic to
// whether the graph came from a file or a generator.
#ifndef GCON_GRAPH_IO_H_
#define GCON_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"

namespace gcon {

/// Writes `graph` to `path`. Aborts on I/O failure.
void SaveGraph(const Graph& graph, const std::string& path);

/// Reads a graph from `path`. Aborts on parse failure; runs
/// CheckConsistency before returning.
Graph LoadGraph(const std::string& path);

}  // namespace gcon

#endif  // GCON_GRAPH_IO_H_
