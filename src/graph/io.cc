#include "graph/io.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace gcon {

void SaveGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  GCON_CHECK(out.good()) << "cannot open " << path << " for writing";
  out << "gcon-graph v1\n";
  out << "nodes " << graph.num_nodes() << " classes " << graph.num_classes()
      << " features " << graph.feature_dim() << " edges " << graph.num_edges()
      << "\n";
  for (int v = 0; v < graph.num_nodes(); ++v) {
    out << "L " << v << " " << graph.label(v) << "\n";
  }
  const Matrix& x = graph.features();
  for (int v = 0; v < graph.num_nodes(); ++v) {
    out << "F " << v;
    for (int j = 0; j < graph.feature_dim(); ++j) {
      const double value = x(static_cast<std::size_t>(v), static_cast<std::size_t>(j));
      if (value != 0.0) {
        out << " " << j << ":" << value;
      }
    }
    out << "\n";
  }
  for (const auto& [u, v] : graph.EdgeList()) {
    out << "E " << u << " " << v << "\n";
  }
  GCON_CHECK(out.good()) << "write failure on " << path;
}

Graph LoadGraph(const std::string& path) {
  std::ifstream in(path);
  GCON_CHECK(in.good()) << "cannot open " << path;
  std::string line;
  GCON_CHECK(static_cast<bool>(std::getline(in, line))) << "empty file";
  GCON_CHECK_EQ(line, std::string("gcon-graph v1")) << "bad magic: " << line;

  std::string word;
  int n = 0, c = 0, d = 0;
  std::size_t m = 0;
  GCON_CHECK(static_cast<bool>(std::getline(in, line)));
  {
    std::istringstream header(line);
    std::string k1, k2, k3, k4;
    header >> k1 >> n >> k2 >> c >> k3 >> d >> k4 >> m;
    GCON_CHECK_EQ(k1, std::string("nodes"));
    GCON_CHECK_EQ(k2, std::string("classes"));
    GCON_CHECK_EQ(k3, std::string("features"));
    GCON_CHECK_EQ(k4, std::string("edges"));
  }
  Graph graph(n, c);
  Matrix x(static_cast<std::size_t>(n), static_cast<std::size_t>(d));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    row >> word;
    if (word == "L") {
      int v = 0, label = 0;
      row >> v >> label;
      graph.set_label(v, label);
    } else if (word == "F") {
      int v = 0;
      row >> v;
      std::string pair;
      while (row >> pair) {
        const auto colon = pair.find(':');
        GCON_CHECK_NE(colon, std::string::npos) << "bad feature " << pair;
        const int idx = std::stoi(pair.substr(0, colon));
        const double value = std::stod(pair.substr(colon + 1));
        x.At(static_cast<std::size_t>(v), static_cast<std::size_t>(idx)) = value;
      }
    } else if (word == "E") {
      int u = 0, v = 0;
      row >> u >> v;
      GCON_CHECK(graph.AddEdge(u, v)) << "duplicate edge " << u << "-" << v;
    } else {
      GCON_CHECK(false) << "bad record type: " << word;
    }
  }
  GCON_CHECK_EQ(graph.num_edges(), m) << "edge count mismatch";
  graph.set_features(std::move(x));
  graph.CheckConsistency();
  return graph;
}

}  // namespace gcon
