#include "graph/splits.h"

#include <algorithm>

#include "common/check.h"

namespace gcon {

Split PlanetoidSplit(const Graph& graph, int per_class, int val_size,
                     int test_size, Rng* rng) {
  const int n = graph.num_nodes();
  const std::vector<int> order = rng->Permutation(n);
  std::vector<int> taken_per_class(static_cast<std::size_t>(graph.num_classes()),
                                   0);
  Split split;
  std::vector<int> rest;
  for (int idx : order) {
    const int label = graph.label(idx);
    if (taken_per_class[static_cast<std::size_t>(label)] < per_class) {
      split.train.push_back(idx);
      ++taken_per_class[static_cast<std::size_t>(label)];
    } else {
      rest.push_back(idx);
    }
  }
  const int val_take = std::min<int>(val_size, static_cast<int>(rest.size()));
  split.val.assign(rest.begin(), rest.begin() + val_take);
  const int test_take =
      std::min<int>(test_size, static_cast<int>(rest.size()) - val_take);
  split.test.assign(rest.begin() + val_take,
                    rest.begin() + val_take + test_take);
  return split;
}

Split ProportionalSplit(const Graph& graph, double train_frac, double val_frac,
                        double test_frac, Rng* rng) {
  GCON_CHECK_LE(train_frac + val_frac + test_frac, 1.0 + 1e-9);
  const int n = graph.num_nodes();
  const std::vector<int> order = rng->Permutation(n);
  const int train_take = static_cast<int>(train_frac * n);
  const int val_take = static_cast<int>(val_frac * n);
  const int test_take = std::min<int>(static_cast<int>(test_frac * n),
                                      n - train_take - val_take);
  Split split;
  split.train.assign(order.begin(), order.begin() + train_take);
  split.val.assign(order.begin() + train_take,
                   order.begin() + train_take + val_take);
  split.test.assign(order.begin() + train_take + val_take,
                    order.begin() + train_take + val_take + test_take);
  return split;
}

}  // namespace gcon
