#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"

namespace gcon {
namespace {

// Inserts `value` into sorted `list` if absent. Returns true on insert.
bool SortedInsert(std::vector<int>* list, int value) {
  auto it = std::lower_bound(list->begin(), list->end(), value);
  if (it != list->end() && *it == value) return false;
  list->insert(it, value);
  return true;
}

// Erases `value` from sorted `list` if present. Returns true on erase.
bool SortedErase(std::vector<int>* list, int value) {
  auto it = std::lower_bound(list->begin(), list->end(), value);
  if (it == list->end() || *it != value) return false;
  list->erase(it);
  return true;
}

}  // namespace

bool Graph::AddEdge(int u, int v) {
  GCON_CHECK_GE(u, 0);
  GCON_CHECK_GE(v, 0);
  GCON_CHECK_LT(u, num_nodes());
  GCON_CHECK_LT(v, num_nodes());
  if (u == v) return false;
  if (!SortedInsert(&adj_[static_cast<std::size_t>(u)], v)) return false;
  SortedInsert(&adj_[static_cast<std::size_t>(v)], u);
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(int u, int v) {
  GCON_CHECK_LT(u, num_nodes());
  GCON_CHECK_LT(v, num_nodes());
  if (!SortedErase(&adj_[static_cast<std::size_t>(u)], v)) return false;
  SortedErase(&adj_[static_cast<std::size_t>(v)], u);
  --num_edges_;
  return true;
}

bool Graph::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) return false;
  const auto& list = adj_[static_cast<std::size_t>(u)];
  return std::binary_search(list.begin(), list.end(), v);
}

std::vector<std::pair<int, int>> Graph::EdgeList() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(num_edges_);
  for (int u = 0; u < num_nodes(); ++u) {
    for (int v : adj_[static_cast<std::size_t>(u)]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

void Graph::set_label(int v, int label) {
  GCON_CHECK_LT(v, num_nodes());
  GCON_CHECK_GE(label, 0);
  GCON_CHECK_LT(label, num_classes_);
  labels_[static_cast<std::size_t>(v)] = label;
}

Matrix Graph::OneHotLabels() const {
  Matrix y(static_cast<std::size_t>(num_nodes()),
           static_cast<std::size_t>(num_classes_));
  for (int v = 0; v < num_nodes(); ++v) {
    y(static_cast<std::size_t>(v),
      static_cast<std::size_t>(labels_[static_cast<std::size_t>(v)])) = 1.0;
  }
  return y;
}

CsrMatrix Graph::AdjacencyCsr() const {
  const std::size_t n = static_cast<std::size_t>(num_nodes());
  std::vector<std::int64_t> row_ptr(n + 1, 0);
  std::vector<std::int32_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(2 * num_edges_);
  values.reserve(2 * num_edges_);
  for (std::size_t u = 0; u < n; ++u) {
    row_ptr[u + 1] = row_ptr[u] + static_cast<std::int64_t>(adj_[u].size());
    for (int v : adj_[u]) {
      col_idx.push_back(v);
      values.push_back(1.0);
    }
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

void Graph::CheckConsistency() const {
  std::size_t directed = 0;
  for (int u = 0; u < num_nodes(); ++u) {
    const auto& list = adj_[static_cast<std::size_t>(u)];
    GCON_CHECK(std::is_sorted(list.begin(), list.end()))
        << "adjacency of " << u << " not sorted";
    for (int v : list) {
      GCON_CHECK_NE(u, v) << "self loop at " << u;
      GCON_CHECK(HasEdge(v, u)) << "asymmetric edge " << u << "->" << v;
    }
    directed += list.size();
  }
  GCON_CHECK_EQ(directed, 2 * num_edges_);
  if (!features_.empty()) {
    GCON_CHECK_EQ(features_.rows(), static_cast<std::size_t>(num_nodes()));
  }
  for (int v = 0; v < num_nodes(); ++v) {
    GCON_CHECK_GE(label(v), 0);
    GCON_CHECK_LT(label(v), num_classes_);
  }
}

}  // namespace gcon
