// Graph statistics used by Table II and by generator calibration tests.
#ifndef GCON_GRAPH_STATS_H_
#define GCON_GRAPH_STATS_H_

#include "graph/graph.h"

namespace gcon {

/// Homophily ratio per Definition 7 of the paper: the mean over nodes (with
/// at least one neighbor) of the fraction of neighbors sharing the node's
/// label. Isolated nodes are skipped.
double HomophilyRatio(const Graph& graph);

/// Maximum node degree.
int MaxDegree(const Graph& graph);

/// Mean node degree (2|E|/n).
double MeanDegree(const Graph& graph);

/// Number of nodes with zero degree.
int IsolatedCount(const Graph& graph);

/// Fraction of label l among all nodes.
double ClassFraction(const Graph& graph, int label);

}  // namespace gcon

#endif  // GCON_GRAPH_STATS_H_
