// Attributed undirected graph for node classification.
//
// A Graph owns: sorted adjacency lists (no self-loops; symmetry is enforced
// by construction), a dense node-feature matrix X (n x d0), integer labels,
// and the class count. Single-edge Add/Remove are provided because the
// edge-DP analysis is exercised by property tests that compare neighboring
// graphs D and D' differing in exactly one edge.
#ifndef GCON_GRAPH_GRAPH_H_
#define GCON_GRAPH_GRAPH_H_

#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "sparse/csr_matrix.h"

namespace gcon {

class Graph {
 public:
  Graph() : num_classes_(0) {}

  /// Creates a graph with `num_nodes` isolated nodes.
  Graph(int num_nodes, int num_classes)
      : adj_(static_cast<std::size_t>(num_nodes)),
        labels_(static_cast<std::size_t>(num_nodes), 0),
        num_classes_(num_classes) {}

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_classes() const { return num_classes_; }

  /// Number of undirected edges.
  std::size_t num_edges() const { return num_edges_; }

  /// Adds undirected edge {u, v}. Returns false (no-op) if it already exists
  /// or u == v.
  bool AddEdge(int u, int v);

  /// Removes undirected edge {u, v}. Returns false if absent.
  bool RemoveEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  int Degree(int v) const {
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }

  const std::vector<int>& Neighbors(int v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  /// All undirected edges as (u, v) with u < v.
  std::vector<std::pair<int, int>> EdgeList() const;

  // --- attributes ---------------------------------------------------------

  void set_features(Matrix x) { features_ = std::move(x); }
  const Matrix& features() const { return features_; }
  Matrix* mutable_features() { return &features_; }
  int feature_dim() const { return static_cast<int>(features_.cols()); }

  void set_label(int v, int label);
  int label(int v) const { return labels_[static_cast<std::size_t>(v)]; }
  const std::vector<int>& labels() const { return labels_; }

  /// One-hot label matrix Y (n x c).
  Matrix OneHotLabels() const;

  // --- linear-algebra views ------------------------------------------------

  /// Adjacency matrix A as CSR (0/1 entries, no self-loops).
  CsrMatrix AdjacencyCsr() const;

  /// Validates internal invariants (sorted neighbor lists, symmetry, no
  /// self-loops, label range). Aborts on violation; used by tests and after
  /// deserialization.
  void CheckConsistency() const;

 private:
  std::vector<std::vector<int>> adj_;
  std::vector<int> labels_;
  Matrix features_;
  int num_classes_;
  std::size_t num_edges_ = 0;
};

}  // namespace gcon

#endif  // GCON_GRAPH_GRAPH_H_
