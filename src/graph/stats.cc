#include "graph/stats.h"

#include <algorithm>

namespace gcon {

double HomophilyRatio(const Graph& graph) {
  double total = 0.0;
  int counted = 0;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    const auto& neighbors = graph.Neighbors(v);
    if (neighbors.empty()) continue;
    int same = 0;
    for (int u : neighbors) {
      if (graph.label(u) == graph.label(v)) ++same;
    }
    total += static_cast<double>(same) / static_cast<double>(neighbors.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

int MaxDegree(const Graph& graph) {
  int best = 0;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    best = std::max(best, graph.Degree(v));
  }
  return best;
}

double MeanDegree(const Graph& graph) {
  if (graph.num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(graph.num_edges()) /
         static_cast<double>(graph.num_nodes());
}

int IsolatedCount(const Graph& graph) {
  int count = 0;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (graph.Degree(v) == 0) ++count;
  }
  return count;
}

double ClassFraction(const Graph& graph, int label) {
  if (graph.num_nodes() == 0) return 0.0;
  int count = 0;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (graph.label(v) == label) ++count;
  }
  return static_cast<double>(count) / graph.num_nodes();
}

}  // namespace gcon
