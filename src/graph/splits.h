// Train/validation/test node splits.
//
// The paper (Appendix P) uses the fixed "planetoid" style split for the
// citation graphs — 20 training nodes per class, 500 validation, 1000 test —
// and random 60/20/20 proportional splits for Actor. Both are provided;
// sizes are clamped when a (scaled-down) graph is too small for the nominal
// counts.
#ifndef GCON_GRAPH_SPLITS_H_
#define GCON_GRAPH_SPLITS_H_

#include <vector>

#include "graph/graph.h"
#include "rng/rng.h"

namespace gcon {

struct Split {
  std::vector<int> train;
  std::vector<int> val;
  std::vector<int> test;
};

/// Planetoid-style split: `per_class` training nodes from each class, then
/// `val_size` validation and `test_size` test nodes from the remainder.
/// Counts are clamped to what the graph can supply.
Split PlanetoidSplit(const Graph& graph, int per_class, int val_size,
                     int test_size, Rng* rng);

/// Random proportional split (fractions must sum to <= 1).
Split ProportionalSplit(const Graph& graph, double train_frac, double val_frac,
                        double test_frac, Rng* rng);

}  // namespace gcon

#endif  // GCON_GRAPH_SPLITS_H_
