// Synthetic attributed-graph generators calibrated to Table II of the paper.
//
// The paper evaluates on Cora-ML, CiteSeer, PubMed (homophilous citation
// graphs) and Actor (heterophilous). Those datasets are not redistributable
// here, so each is substituted by a generator matched on the axes the
// evaluation actually discriminates on:
//   * node / edge / feature / class counts (Table II),
//   * homophily ratio (per-edge same-label probability ≈ Definition 7),
//   * skewed degree distribution (rank-weighted preferential attachment),
//   * class-conditional sparse bag-of-words features (topic blocks), which
//     is what makes MLP-on-features a meaningful baseline, exactly as in
//     the real citation data.
// See DESIGN.md §2 for the substitution argument. Real data in the same
// text format can be loaded through graph/io.h instead.
#ifndef GCON_GRAPH_DATASETS_H_
#define GCON_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/splits.h"
#include "rng/rng.h"

namespace gcon {

/// Full recipe for one synthetic dataset, including its split policy.
struct DatasetSpec {
  std::string name;
  int num_nodes = 0;
  std::size_t num_undirected_edges = 0;
  int num_features = 0;
  int num_classes = 0;
  /// Probability that a generated edge joins two same-label nodes; the
  /// realized Definition-7 homophily ratio tracks this closely.
  double homophily = 0.8;
  /// Concentration of per-node local homophily: each node draws its own
  /// same-label edge probability from Beta(h*k, (1-h)*k) with this k.
  /// Smaller k -> more heterogeneous neighborhoods (as in real citation
  /// graphs, where local homophily varies widely around the global mean);
  /// very large k -> every node at exactly `homophily`.
  double homophily_concentration = 2.5;
  /// Degree skew: node weights ~ (rank+1)^{-degree_exponent}.
  double degree_exponent = 0.75;
  /// Expected fraction of active (nonzero) feature words per node.
  double feature_density = 0.02;
  /// Probability an active word is drawn from the node's class topic block.
  double topic_bias = 0.7;

  // Split policy (Appendix P).
  bool planetoid_split = true;
  int train_per_class = 20;
  int val_size = 500;
  int test_size = 1000;
};

/// Table II rows. Edge counts are undirected (Table II counts both
/// directions; e.g. Cora-ML's 16,316 = 2 x 8,158).
DatasetSpec CoraMlSpec();
DatasetSpec CiteSeerSpec();
DatasetSpec PubMedSpec();
DatasetSpec ActorSpec();

/// Small, fast spec for unit tests (n=150, 3 classes).
DatasetSpec TinySpec();

/// Returns the spec by lowercase name ("cora_ml", "citeseer", "pubmed",
/// "actor", "tiny"); aborts on unknown names.
DatasetSpec SpecByName(const std::string& name);

/// All four paper datasets in Table II order.
std::vector<DatasetSpec> PaperSpecs();

/// Shrinks a spec by `factor` in nodes/edges/split sizes and by
/// sqrt(factor) in feature dimension (floored at 32), preserving class
/// count and homophily. Used by bench binaries to fit the CI budget;
/// factor = 1 reproduces the paper scale.
DatasetSpec Scaled(const DatasetSpec& spec, double factor);

/// Generates the attributed graph for `spec`.
Graph GenerateDataset(const DatasetSpec& spec, Rng* rng);

/// Generates the spec's train/val/test split for `graph`.
Split MakeSplit(const DatasetSpec& spec, const Graph& graph, Rng* rng);

}  // namespace gcon

#endif  // GCON_GRAPH_DATASETS_H_
