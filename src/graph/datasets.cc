#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace gcon {
namespace {

// Weighted sampler over a fixed set of node ids via prefix sums + binary
// search. Weights define the degree skew of the generated graph.
class WeightedSampler {
 public:
  WeightedSampler(std::vector<int> ids, const std::vector<double>& weight) {
    ids_ = std::move(ids);
    prefix_.reserve(ids_.size());
    double acc = 0.0;
    for (int id : ids_) {
      acc += weight[static_cast<std::size_t>(id)];
      prefix_.push_back(acc);
    }
  }

  bool empty() const { return ids_.empty(); }

  int Sample(Rng* rng) const {
    GCON_CHECK(!ids_.empty());
    const double u = rng->NextDouble() * prefix_.back();
    const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), u);
    const std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - prefix_.begin()), ids_.size() - 1);
    return ids_[idx];
  }

 private:
  std::vector<int> ids_;
  std::vector<double> prefix_;
};

}  // namespace

DatasetSpec CoraMlSpec() {
  DatasetSpec spec;
  spec.name = "cora_ml";
  spec.num_nodes = 2995;
  spec.num_undirected_edges = 8158;  // Table II: 16,316 directed
  spec.num_features = 2879;
  spec.num_classes = 7;
  spec.homophily = 0.81;
  spec.feature_density = 0.012;
  spec.topic_bias = 0.42;
  return spec;
}

DatasetSpec CiteSeerSpec() {
  DatasetSpec spec;
  spec.name = "citeseer";
  spec.num_nodes = 3327;
  spec.num_undirected_edges = 4552;  // Table II: 9,104 directed
  spec.num_features = 3703;
  spec.num_classes = 6;
  spec.homophily = 0.71;
  spec.feature_density = 0.009;
  spec.topic_bias = 0.40;
  return spec;
}

DatasetSpec PubMedSpec() {
  DatasetSpec spec;
  spec.name = "pubmed";
  spec.num_nodes = 19717;
  spec.num_undirected_edges = 44324;  // Table II: 88,648 directed
  spec.num_features = 500;
  spec.num_classes = 3;
  spec.homophily = 0.79;
  spec.feature_density = 0.06;
  spec.topic_bias = 0.45;
  return spec;
}

DatasetSpec ActorSpec() {
  DatasetSpec spec;
  spec.name = "actor";
  spec.num_nodes = 7600;
  spec.num_undirected_edges = 15009;  // Table II: 30,019 directed (rounded)
  spec.num_features = 932;
  spec.num_classes = 5;
  spec.homophily = 0.22;
  spec.feature_density = 0.035;
  spec.topic_bias = 0.15;  // heterophilous data also has weaker features
  spec.planetoid_split = false;  // Appendix P: 60/20/20 random splits
  return spec;
}

DatasetSpec TinySpec() {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.num_nodes = 150;
  spec.num_undirected_edges = 450;
  spec.num_features = 32;
  spec.num_classes = 3;
  spec.homophily = 0.8;
  spec.feature_density = 0.2;
  spec.train_per_class = 10;
  spec.val_size = 30;
  spec.test_size = 60;
  return spec;
}

DatasetSpec SpecByName(const std::string& name) {
  if (name == "cora_ml") return CoraMlSpec();
  if (name == "citeseer") return CiteSeerSpec();
  if (name == "pubmed") return PubMedSpec();
  if (name == "actor") return ActorSpec();
  if (name == "tiny") return TinySpec();
  GCON_CHECK(false) << "unknown dataset: " << name;
  return DatasetSpec{};
}

std::vector<DatasetSpec> PaperSpecs() {
  return {CoraMlSpec(), CiteSeerSpec(), PubMedSpec(), ActorSpec()};
}

DatasetSpec Scaled(const DatasetSpec& spec, double factor) {
  GCON_CHECK_GT(factor, 0.0);
  GCON_CHECK_LE(factor, 1.0);
  if (factor == 1.0) return spec;
  DatasetSpec out = spec;
  out.num_nodes = std::max(60, static_cast<int>(spec.num_nodes * factor));
  out.num_undirected_edges = std::max<std::size_t>(
      static_cast<std::size_t>(out.num_nodes),
      static_cast<std::size_t>(
          static_cast<double>(spec.num_undirected_edges) * factor));
  out.num_features = std::max(
      32, static_cast<int>(spec.num_features * std::sqrt(factor)));
  out.val_size = std::max(20, static_cast<int>(spec.val_size * factor));
  out.test_size = std::max(40, static_cast<int>(spec.test_size * factor));
  // Keep enough labeled nodes for the convex stage to be meaningful.
  out.train_per_class = std::max(5, spec.train_per_class);
  return out;
}

Graph GenerateDataset(const DatasetSpec& spec, Rng* rng) {
  GCON_CHECK_GE(spec.num_classes, 2);
  GCON_CHECK_GE(spec.num_nodes, spec.num_classes);
  Graph graph(spec.num_nodes, spec.num_classes);

  // --- labels: balanced assignment, then shuffled --------------------------
  {
    std::vector<int> labels(static_cast<std::size_t>(spec.num_nodes));
    for (int i = 0; i < spec.num_nodes; ++i) {
      labels[static_cast<std::size_t>(i)] = i % spec.num_classes;
    }
    const std::vector<int> perm = rng->Permutation(spec.num_nodes);
    for (int i = 0; i < spec.num_nodes; ++i) {
      graph.set_label(i, labels[static_cast<std::size_t>(perm[
          static_cast<std::size_t>(i)])]);
    }
  }

  // --- degree weights: rank^{-gamma}, ranks randomly assigned --------------
  std::vector<double> weight(static_cast<std::size_t>(spec.num_nodes));
  {
    const std::vector<int> rank = rng->Permutation(spec.num_nodes);
    for (int i = 0; i < spec.num_nodes; ++i) {
      weight[static_cast<std::size_t>(i)] =
          std::pow(static_cast<double>(rank[static_cast<std::size_t>(i)]) + 1.0,
                   -spec.degree_exponent);
    }
  }

  // Per-class and global samplers.
  std::vector<std::vector<int>> class_members(
      static_cast<std::size_t>(spec.num_classes));
  for (int v = 0; v < spec.num_nodes; ++v) {
    class_members[static_cast<std::size_t>(graph.label(v))].push_back(v);
  }
  std::vector<WeightedSampler> class_sampler;
  class_sampler.reserve(static_cast<std::size_t>(spec.num_classes));
  for (int c = 0; c < spec.num_classes; ++c) {
    class_sampler.emplace_back(class_members[static_cast<std::size_t>(c)],
                               weight);
  }
  std::vector<int> all_ids(static_cast<std::size_t>(spec.num_nodes));
  for (int v = 0; v < spec.num_nodes; ++v) all_ids[static_cast<std::size_t>(v)] = v;
  WeightedSampler global_sampler(all_ids, weight);

  // --- edges: label-aware preferential attachment --------------------------
  // Per-node local homophily ~ Beta around the global target: real graphs
  // have heterogeneous neighborhoods, and without this the per-class
  // neighbor counts would be an unrealistically clean label signal.
  std::vector<double> local_homophily(static_cast<std::size_t>(spec.num_nodes));
  {
    const double k = spec.homophily_concentration;
    const double a = std::max(1e-3, spec.homophily * k);
    const double b = std::max(1e-3, (1.0 - spec.homophily) * k);
    for (auto& h : local_homophily) {
      h = rng->Beta(a, b);
    }
  }
  const std::size_t target = spec.num_undirected_edges;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 200 * target + 10000;
  while (graph.num_edges() < target && attempts < max_attempts) {
    ++attempts;
    const int u = global_sampler.Sample(rng);
    const bool same =
        rng->Bernoulli(local_homophily[static_cast<std::size_t>(u)]);
    int v = -1;
    if (same) {
      v = class_sampler[static_cast<std::size_t>(graph.label(u))].Sample(rng);
    } else {
      // Rejection from the global sampler; classes are balanced so this
      // terminates quickly.
      for (int tries = 0; tries < 64; ++tries) {
        const int cand = global_sampler.Sample(rng);
        if (graph.label(cand) != graph.label(u)) {
          v = cand;
          break;
        }
      }
      if (v < 0) continue;
    }
    if (u == v) continue;
    graph.AddEdge(u, v);
  }
  if (graph.num_edges() < target) {
    GCON_LOG(WARNING) << spec.name << ": generated " << graph.num_edges()
                      << "/" << target << " edges before attempt cap";
  }

  // --- features: class-conditional sparse bag of words ---------------------
  const int d0 = spec.num_features;
  const int block = std::max(1, d0 / spec.num_classes);
  Matrix x(static_cast<std::size_t>(spec.num_nodes),
           static_cast<std::size_t>(d0));
  for (int v = 0; v < spec.num_nodes; ++v) {
    const int label = graph.label(v);
    const int block_begin = label * block;
    const int block_end = std::min(d0, block_begin + block);
    std::int64_t active = rng->Binomial(d0, spec.feature_density);
    if (active < 2) active = 2;
    for (std::int64_t w = 0; w < active; ++w) {
      int word;
      if (rng->Bernoulli(spec.topic_bias) && block_end > block_begin) {
        word = block_begin + static_cast<int>(rng->UniformInt(
                                 static_cast<std::uint64_t>(block_end - block_begin)));
      } else {
        word = static_cast<int>(rng->UniformInt(static_cast<std::uint64_t>(d0)));
      }
      x(static_cast<std::size_t>(v), static_cast<std::size_t>(word)) = 1.0;
    }
  }
  graph.set_features(std::move(x));
  return graph;
}

Split MakeSplit(const DatasetSpec& spec, const Graph& graph, Rng* rng) {
  if (spec.planetoid_split) {
    return PlanetoidSplit(graph, spec.train_per_class, spec.val_size,
                          spec.test_size, rng);
  }
  return ProportionalSplit(graph, 0.6, 0.2, 0.2, rng);
}

}  // namespace gcon
