// Assertion macros for invariant checking.
//
// GCON_CHECK* macros are always on (release and debug): numeric code full of
// silent NaN paths is harder to debug than a crash with a message. They abort
// with file/line and a formatted message on failure. Use them for programming
// errors and precondition violations, not for recoverable conditions.
#ifndef GCON_COMMON_CHECK_H_
#define GCON_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace gcon {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::cerr << "[GCON CHECK FAILED] " << file << ":" << line << ": " << expr;
  if (!message.empty()) {
    std::cerr << " — " << message;
  }
  std::cerr << std::endl;
  std::abort();
}

// Stream sink that builds the optional message attached to a failing check.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gcon

#define GCON_CHECK(cond)                                             \
  if (cond) {                                                        \
  } else                                                             \
    ::gcon::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define GCON_CHECK_EQ(a, b) GCON_CHECK((a) == (b))
#define GCON_CHECK_NE(a, b) GCON_CHECK((a) != (b))
#define GCON_CHECK_LT(a, b) GCON_CHECK((a) < (b))
#define GCON_CHECK_LE(a, b) GCON_CHECK((a) <= (b))
#define GCON_CHECK_GT(a, b) GCON_CHECK((a) > (b))
#define GCON_CHECK_GE(a, b) GCON_CHECK((a) >= (b))

#endif  // GCON_COMMON_CHECK_H_
