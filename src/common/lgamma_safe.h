// Thread-safe log-gamma.
//
// POSIX allows lgamma(3) to store the sign of Γ(x) in the global variable
// `signgam`, and glibc does — so every std::lgamma call is an unsynchronized
// write to shared state. Single-threaded that is invisible; with the
// parallel experiment engine fanning runs across workers it is a data race
// (ThreadSanitizer flags it in the Theorem 1 chain, the RDP accountant, and
// the audit's Beta CDF, all of which evaluate log-gamma concurrently).
// lgamma_r keeps the sign in a caller-provided local instead. Every Γ here
// is evaluated at strictly positive arguments, where the sign is always +1
// and can be discarded.
#ifndef GCON_COMMON_LGAMMA_SAFE_H_
#define GCON_COMMON_LGAMMA_SAFE_H_

#include <cmath>

namespace gcon {

/// ln|Γ(x)| without the write to the process-global `signgam`.
inline double LGammaSafe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  // No known global-state lgamma outside the platforms above; fall back.
  return std::lgamma(x);
#endif
}

}  // namespace gcon

#endif  // GCON_COMMON_LGAMMA_SAFE_H_
