// Minimal leveled logging to stderr.
//
// Usage: GCON_LOG(INFO) << "trained in " << seconds << "s";
// Levels below the global threshold (set via set_log_level or the
// GCON_LOG_LEVEL environment variable: DEBUG/INFO/WARNING/ERROR) are
// compiled in but skipped at runtime.
//
// Each record is buffered in full and flushed to stderr as a single
// write(), so records from concurrent threads never interleave mid-line
// (tests/logging_test.cc pins this under TSan).
#ifndef GCON_COMMON_LOGGING_H_
#define GCON_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace gcon {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Returns the current global log threshold.
LogLevel log_level();

/// Sets the global log threshold.
void set_log_level(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gcon

#define GCON_LOG_DEBUG ::gcon::LogLevel::kDebug
#define GCON_LOG_INFO ::gcon::LogLevel::kInfo
#define GCON_LOG_WARNING ::gcon::LogLevel::kWarning
#define GCON_LOG_ERROR ::gcon::LogLevel::kError

#define GCON_LOG(severity) \
  ::gcon::internal::LogMessage(GCON_LOG_##severity, __FILE__, __LINE__)

#endif  // GCON_COMMON_LOGGING_H_
