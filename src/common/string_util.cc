#include "common/string_util.h"

#include <cctype>
#include <iomanip>
#include <sstream>

namespace gcon {

std::vector<std::string> SplitString(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream in(s);
  while (std::getline(in, piece, delim)) {
    if (!piece.empty()) {
      out.push_back(piece);
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatDouble(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

}  // namespace gcon
