// Tiny command-line flag parser used by benches and examples.
//
// Supports "--name=value" and "--name value" forms plus boolean switches
// ("--full"). Unknown flags — and unparsable numeric values — abort with a
// usage message so typos in experiment scripts fail loudly instead of
// silently running the default configuration.
#ifndef GCON_COMMON_FLAGS_H_
#define GCON_COMMON_FLAGS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gcon {

/// Parsed command-line flags. Values are stored as strings and converted on
/// access; every accessor takes a default returned when the flag is absent.
class Flags {
 public:
  /// Parses argv. `spec` maps flag name -> help text; flags outside the spec
  /// cause an abort with the rendered usage. Names in `switches` are boolean
  /// switches: "--share-data eval" leaves "eval" positional instead of
  /// consuming it as the flag's value (the "--name=value" form still works
  /// for them, e.g. "--share-data=false"). Flags outside `switches` keep the
  /// greedy "--name value" behavior. Positional arguments are kept in order
  /// and available via positional().
  Flags(int argc, char** argv, const std::map<std::string, std::string>& spec,
        const std::set<std::string>& switches = {});

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  /// Numeric accessors parse the whole stored value; a malformed one
  /// ("--runs=abc", "--runs=12abc", an out-of-range literal) aborts with a
  /// message naming the flag plus the rendered usage, exit code 2.
  int GetInt(const std::string& name, int default_value) const;
  /// GetInt plus a positivity requirement: 0 and negatives abort with a
  /// message naming the flag ("--threads: ... expected a positive
  /// integer"). For knobs where zero is not a mode but a mistake
  /// (serve --threads/--max_batch/--max_wait_us, eval --runs).
  int GetPositiveInt(const std::string& name, int default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Every value given for a repeatable flag, in command-line order
  /// ("--set a=1 --set b=2" -> {"a=1", "b=2"}); empty when absent. The
  /// scalar accessors above return the last occurrence.
  std::vector<std::string> GetList(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage string from the spec given to the constructor.
  std::string Usage() const;

 private:
  /// Prints "Invalid value for --name ..." plus Usage() and exits 2.
  [[noreturn]] void InvalidValue(const std::string& name,
                                 const std::string& value,
                                 const char* expected) const;

  std::string program_;
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::vector<std::string>> all_values_;
  std::vector<std::string> positional_;
};

/// Reads an integer from the environment, returning `default_value` when the
/// variable is unset or unparsable. Used for bench scaling knobs.
int EnvInt(const char* name, int default_value);

/// Reads a boolean ("1"/"true"/"yes") from the environment.
bool EnvBool(const char* name, bool default_value);

}  // namespace gcon

#endif  // GCON_COMMON_FLAGS_H_
