// Small string helpers shared across modules (no external deps).
#ifndef GCON_COMMON_STRING_UTIL_H_
#define GCON_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace gcon {

/// Splits `s` on `delim`, dropping empty pieces.
std::vector<std::string> SplitString(const std::string& s, char delim);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Formats a double with `digits` significant decimal places (fixed).
std::string FormatDouble(double value, int digits);

}  // namespace gcon

#endif  // GCON_COMMON_STRING_UTIL_H_
