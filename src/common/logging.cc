#include "common/logging.h"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace gcon {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("GCON_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "WARNING") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel& GlobalLevel() {
  static LogLevel level = InitialLevel();
  return level;
}

std::mutex& LogMutex() {
  static std::mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return GlobalLevel(); }

void set_log_level(LogLevel level) { GlobalLevel() = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(log_level())),
      level_(level) {
  if (enabled_) {
    // Keep only the basename to make log lines compact.
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " "
            << (base != nullptr ? base + 1 : file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  // The whole record (trailing newline included) goes to stderr as one
  // write() so records from concurrent threads can never shear mid-line:
  // streaming through std::cerr would emit one syscall per << chunk, and
  // another thread's chunks could interleave between them. The mutex stays
  // to keep the rare short-write continuation loop from interleaving too.
  stream_ << '\n';
  const std::string record = stream_.str();
  std::lock_guard<std::mutex> lock(LogMutex());
  std::size_t off = 0;
  while (off < record.size()) {
    const ssize_t n =
        ::write(STDERR_FILENO, record.data() + off, record.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // stderr is gone; a log record is not worth aborting over
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace internal
}  // namespace gcon
