// Wall-clock timer for coarse instrumentation of training phases.
#ifndef GCON_COMMON_TIMER_H_
#define GCON_COMMON_TIMER_H_

#include <chrono>

namespace gcon {

/// Measures elapsed wall-clock time; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gcon

#endif  // GCON_COMMON_TIMER_H_
