#include "common/flags.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "common/check.h"

namespace gcon {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

Flags::Flags(int argc, char** argv,
             const std::map<std::string, std::string>& spec,
             const std::set<std::string>& switches)
    : program_(argc > 0 ? argv[0] : "prog"), spec_(spec) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // "--name value" form: consume the next token — unless the flag is a
      // declared switch (which never takes a separate-token value, so
      // "--share-data eval" leaves "eval" positional) or the token is a
      // flag itself.
      if (switches.find(name) == switches.end() && i + 1 < argc &&
          !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";  // boolean switch
      }
    }
    if (spec_.find(name) == spec_.end()) {
      std::cerr << "Unknown flag --" << name << "\n" << Usage();
      std::exit(2);
    }
    values_[name] = value;
    all_values_[name].push_back(value);
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

void Flags::InvalidValue(const std::string& name, const std::string& value,
                         const char* expected) const {
  // std::stoi/stod used to escape here as an uncaught exception with no
  // context; fail like the unknown-flag path instead — name the flag and
  // show the usage.
  std::cerr << "Invalid value for --" << name << ": '" << value
            << "' (expected " << expected << ")\n"
            << Usage();
  std::exit(2);
}

int Flags::GetInt(const std::string& name, int default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(it->second, &consumed);
    // Reject trailing junk ("12abc"), which std::stoi parses silently.
    if (consumed != it->second.size()) {
      InvalidValue(name, it->second, "an integer");
    }
    return value;
  } catch (const std::exception&) {
    InvalidValue(name, it->second, "an integer");
  }
}

int Flags::GetPositiveInt(const std::string& name, int default_value) const {
  const int value = GetInt(name, default_value);
  if (value < 1) {
    InvalidValue(name, GetString(name, std::to_string(default_value)),
                 "a positive integer");
  }
  return value;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) {
      InvalidValue(name, it->second, "a number");
    }
    return value;
  } catch (const std::exception&) {
    InvalidValue(name, it->second, "a number");
  }
}

std::vector<std::string> Flags::GetList(const std::string& name) const {
  auto it = all_values_.find(name);
  return it == all_values_.end() ? std::vector<std::string>() : it->second;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string Flags::Usage() const {
  std::ostringstream out;
  out << "Usage: " << program_ << " [flags]\n";
  for (const auto& [name, help] : spec_) {
    out << "  --" << name << ": " << help << "\n";
  }
  return out.str();
}

int EnvInt(const char* name, int default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env) return default_value;
  return static_cast<int>(v);
}

bool EnvBool(const char* name, bool default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr) return default_value;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
         std::strcmp(env, "yes") == 0 || std::strcmp(env, "on") == 0;
}

}  // namespace gcon
