#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gcon {

Matrix Softmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* in_row = logits.RowPtr(i);
    double* out_row = out.RowPtr(i);
    double max_v = in_row[0];
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      max_v = std::max(max_v, in_row[j]);
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      out_row[j] = std::exp(in_row[j] - max_v);
      sum += out_row[j];
    }
    const double inv = 1.0 / sum;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      out_row[j] *= inv;
    }
  }
  return out;
}

double SoftmaxCrossEntropy(const Matrix& logits, const std::vector<int>& labels,
                           const std::vector<int>& index, Matrix* grad) {
  GCON_CHECK(!index.empty());
  if (grad != nullptr) {
    grad->Resize(logits.rows(), logits.cols());
  }
  const double inv_count = 1.0 / static_cast<double>(index.size());
  double total = 0.0;
  for (int node : index) {
    const std::size_t i = static_cast<std::size_t>(node);
    GCON_CHECK_LT(i, logits.rows());
    const double* row = logits.RowPtr(i);
    double max_v = row[0];
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      max_v = std::max(max_v, row[j]);
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      sum += std::exp(row[j] - max_v);
    }
    const double log_sum = std::log(sum) + max_v;
    const int y = labels[i];
    GCON_CHECK_GE(y, 0);
    GCON_CHECK_LT(static_cast<std::size_t>(y), logits.cols());
    total += log_sum - row[y];
    if (grad != nullptr) {
      double* grow = grad->RowPtr(i);
      for (std::size_t j = 0; j < logits.cols(); ++j) {
        const double p = std::exp(row[j] - log_sum);
        grow[j] = (p - (static_cast<int>(j) == y ? 1.0 : 0.0)) * inv_count;
      }
    }
  }
  return total * inv_count;
}

}  // namespace gcon
