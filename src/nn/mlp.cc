#include "nn/mlp.h"

#include <cmath>

#include "common/check.h"
#include "linalg/ops.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "rng/rng.h"

namespace gcon {

void GlorotInit(Matrix* w, std::uint64_t seed) {
  Rng rng(seed);
  const double fan_in = static_cast<double>(w->rows());
  const double fan_out = static_cast<double>(w->cols());
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (std::size_t k = 0; k < w->size(); ++k) {
    w->data()[k] = rng.Uniform(-limit, limit);
  }
}

double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& idx) {
  if (idx.empty()) return 0.0;
  int correct = 0;
  for (int node : idx) {
    const std::size_t i = static_cast<std::size_t>(node);
    if (static_cast<int>(RowArgMax(logits, i)) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(idx.size());
}

Mlp::Mlp(const MlpOptions& options) : options_(options) {
  GCON_CHECK_GE(options_.dims.size(), 2u) << "need at least input+output dims";
  const std::size_t layer_count = options_.dims.size() - 1;
  weights_.reserve(layer_count);
  biases_.reserve(layer_count);
  for (std::size_t l = 0; l < layer_count; ++l) {
    Matrix w(static_cast<std::size_t>(options_.dims[l]),
             static_cast<std::size_t>(options_.dims[l + 1]));
    GlorotInit(&w, options_.seed + 7919 * (l + 1));
    weights_.push_back(std::move(w));
    biases_.emplace_back(1, static_cast<std::size_t>(options_.dims[l + 1]));
  }
}

void Mlp::ForwardKeep(const Matrix& x,
                      std::vector<Matrix>* activations) const {
  activations->clear();
  activations->push_back(x);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix z = MatMul(activations->back(), weights_[l]);
    const double* b = biases_[l].RowPtr(0);
    for (std::size_t i = 0; i < z.rows(); ++i) {
      double* row = z.RowPtr(i);
      for (std::size_t j = 0; j < z.cols(); ++j) row[j] += b[j];
    }
    if (l + 1 < weights_.size()) {
      ApplyActivationInPlace(options_.hidden_activation, &z);
    }
    activations->push_back(std::move(z));
  }
}

Matrix Mlp::Forward(const Matrix& x) const {
  std::vector<Matrix> activations;
  ForwardKeep(x, &activations);
  return std::move(activations.back());
}

Matrix Mlp::HiddenRepresentation(const Matrix& x, int layer) const {
  GCON_CHECK_GE(layer, 1);
  GCON_CHECK_LT(layer, num_layers());
  std::vector<Matrix> activations;
  ForwardKeep(x, &activations);
  return std::move(activations[static_cast<std::size_t>(layer)]);
}

std::vector<int> Mlp::Predict(const Matrix& x) const {
  const Matrix logits = Forward(x);
  std::vector<int> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = static_cast<int>(RowArgMax(logits, i));
  }
  return out;
}

double Mlp::LossAndGrads(const Matrix& x, const std::vector<int>& labels,
                         const std::vector<int>& idx, std::vector<Matrix>* dw,
                         std::vector<Matrix>* db) const {
  std::vector<Matrix> activations;
  ForwardKeep(x, &activations);
  Matrix dz;
  const double loss =
      SoftmaxCrossEntropy(activations.back(), labels, idx, &dz);
  const std::size_t layer_count = weights_.size();
  dw->assign(layer_count, Matrix());
  db->assign(layer_count, Matrix());
  for (std::size_t l = layer_count; l-- > 0;) {
    (*dw)[l] = MatMulTransA(activations[l], dz);
    Matrix bias_grad(1, dz.cols());
    for (std::size_t j = 0; j < dz.cols(); ++j) {
      bias_grad(0, j) = ColSum(dz, j);
    }
    (*db)[l] = std::move(bias_grad);
    if (l == 0) break;
    Matrix dh = MatMulTransB(dz, weights_[l]);
    Matrix deriv;
    ActivationDerivFromOutput(options_.hidden_activation, activations[l],
                              &deriv);
    dz = Hadamard(dh, deriv);
  }
  return loss;
}

double Mlp::Train(const Matrix& x, const std::vector<int>& labels,
                  const std::vector<int>& train_idx,
                  const std::vector<int>& val_idx) {
  GCON_CHECK(!train_idx.empty());
  // Work on the gathered training block so each epoch touches n1 rows, not n.
  const Matrix x_train = GatherRows(x, train_idx);
  std::vector<int> labels_train(train_idx.size());
  std::vector<int> local_idx(train_idx.size());
  for (std::size_t i = 0; i < train_idx.size(); ++i) {
    labels_train[i] = labels[static_cast<std::size_t>(train_idx[i])];
    local_idx[i] = static_cast<int>(i);
  }
  Matrix x_val;
  std::vector<int> labels_val;
  std::vector<int> local_val_idx;
  if (!val_idx.empty()) {
    x_val = GatherRows(x, val_idx);
    labels_val.resize(val_idx.size());
    local_val_idx.resize(val_idx.size());
    for (std::size_t i = 0; i < val_idx.size(); ++i) {
      labels_val[i] = labels[static_cast<std::size_t>(val_idx[i])];
      local_val_idx[i] = static_cast<int>(i);
    }
  }

  Adam::Options adam_options;
  adam_options.learning_rate = options_.learning_rate;
  adam_options.weight_decay = options_.weight_decay;
  Adam adam(adam_options);
  std::vector<std::size_t> w_slot, b_slot;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    w_slot.push_back(adam.Register(weights_[l]));
    b_slot.push_back(adam.Register(biases_[l]));
  }

  double best_val = -1.0;
  std::vector<Matrix> best_w = weights_;
  std::vector<Matrix> best_b = biases_;
  double last_loss = 0.0;
  std::vector<Matrix> dw, db;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    last_loss = LossAndGrads(x_train, labels_train, local_idx, &dw, &db);
    adam.BeginStep();
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      adam.Step(w_slot[l], dw[l], &weights_[l]);
      adam.Step(b_slot[l], db[l], &biases_[l]);
    }
    if (!val_idx.empty() &&
        (epoch % options_.eval_every == 0 || epoch + 1 == options_.epochs)) {
      const Matrix val_logits = Forward(x_val);
      const double acc = Accuracy(val_logits, labels_val, local_val_idx);
      if (acc > best_val) {
        best_val = acc;
        best_w = weights_;
        best_b = biases_;
      }
    }
  }
  if (!val_idx.empty() && best_val >= 0.0) {
    weights_ = std::move(best_w);
    biases_ = std::move(best_b);
  }
  return last_loss;
}

}  // namespace gcon
