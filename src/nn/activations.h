// Element-wise activation functions and their derivatives.
#ifndef GCON_NN_ACTIVATIONS_H_
#define GCON_NN_ACTIVATIONS_H_

#include "linalg/matrix.h"

namespace gcon {

enum class Activation {
  kIdentity,
  kRelu,
  kTanh,
  kSigmoid,
};

/// Applies the activation element-wise in place.
void ApplyActivationInPlace(Activation act, Matrix* m);

/// Given the *post-activation* values `out`, writes the element-wise
/// derivative d act(x) / dx into `deriv` (same shape). For ReLU this is the
/// usual subgradient with deriv(0) = 0. Using post-activation values avoids
/// retaining pre-activation buffers for tanh/sigmoid.
void ActivationDerivFromOutput(Activation act, const Matrix& out,
                               Matrix* deriv);

/// Parses "identity" / "relu" / "tanh" / "sigmoid".
Activation ActivationByName(const std::string& name);

}  // namespace gcon

#endif  // GCON_NN_ACTIVATIONS_H_
