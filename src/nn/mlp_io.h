// MLP (de)serialization, needed to persist the GCON feature encoder
// alongside the released parameters Θ_priv so a downstream consumer can
// encode new graphs (inference scenario (ii)).
//
// Text format (line oriented, inside a larger stream):
//   mlp <num_layers+1 dims...> <activation>
//   W <layer> <rows> <cols> followed by rows*cols doubles
//   b <layer> <cols> followed by cols doubles
#ifndef GCON_NN_MLP_IO_H_
#define GCON_NN_MLP_IO_H_

#include <iosfwd>

#include "nn/mlp.h"

namespace gcon {

/// Writes the architecture and weights of `mlp` to `out`.
void SaveMlp(const Mlp& mlp, std::ostream* out);

/// Reads an MLP previously written by SaveMlp. Throws std::runtime_error
/// describing the defect (bad magic, shape mismatch, truncation) on
/// malformed input; embedding callers (core/model_io) add the file path.
Mlp LoadMlp(std::istream* in);

}  // namespace gcon

#endif  // GCON_NN_MLP_IO_H_
