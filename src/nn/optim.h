// First-order optimizers operating on Matrix parameters.
//
// The same Adam implementation drives the MLP encoder, the GCN baselines,
// and the GCON convex stage (the paper's Remark after Theorem 1 notes the
// privacy guarantee is independent of the optimizer, so Adam is safe there).
#ifndef GCON_NN_OPTIM_H_
#define GCON_NN_OPTIM_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace gcon {

/// Adam (Kingma & Ba, 2015) over a fixed set of parameter tensors.
/// Weight decay is decoupled-style: applied as `grad + wd * param`.
class Adam {
 public:
  struct Options {
    double learning_rate = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  explicit Adam(Options options) : options_(options) {}

  /// Registers a parameter tensor; returns its slot id. The tensor's shape
  /// must stay fixed for the optimizer's lifetime.
  std::size_t Register(const Matrix& param);

  /// Applies one Adam update to `param` (registered as `slot`) given `grad`.
  void Step(std::size_t slot, const Matrix& grad, Matrix* param);

  /// Advances the shared timestep. Call once per optimization step, before
  /// the per-tensor Step calls of that iteration.
  void BeginStep() { ++t_; }

  const Options& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  struct Slots {
    Matrix m;
    Matrix v;
  };
  Options options_;
  std::vector<Slots> slots_;
  long t_ = 0;
};

/// Plain (full-batch or stochastic) gradient descent with optional momentum.
class Sgd {
 public:
  struct Options {
    double learning_rate = 0.1;
    double momentum = 0.0;
    double weight_decay = 0.0;
  };

  explicit Sgd(Options options) : options_(options) {}

  std::size_t Register(const Matrix& param);
  void Step(std::size_t slot, const Matrix& grad, Matrix* param);

  const Options& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  Options options_;
  std::vector<Matrix> velocity_;
};

}  // namespace gcon

#endif  // GCON_NN_OPTIM_H_
