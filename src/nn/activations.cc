#include "nn/activations.h"

#include <cmath>
#include <string>

#include "common/check.h"

namespace gcon {

void ApplyActivationInPlace(Activation act, Matrix* m) {
  double* data = m->data();
  const std::size_t size = m->size();
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (std::size_t k = 0; k < size; ++k) {
        if (data[k] < 0.0) data[k] = 0.0;
      }
      return;
    case Activation::kTanh:
      for (std::size_t k = 0; k < size; ++k) {
        data[k] = std::tanh(data[k]);
      }
      return;
    case Activation::kSigmoid:
      for (std::size_t k = 0; k < size; ++k) {
        data[k] = 1.0 / (1.0 + std::exp(-data[k]));
      }
      return;
  }
}

void ActivationDerivFromOutput(Activation act, const Matrix& out,
                               Matrix* deriv) {
  deriv->Resize(out.rows(), out.cols());
  const double* o = out.data();
  double* d = deriv->data();
  const std::size_t size = out.size();
  switch (act) {
    case Activation::kIdentity:
      for (std::size_t k = 0; k < size; ++k) d[k] = 1.0;
      return;
    case Activation::kRelu:
      for (std::size_t k = 0; k < size; ++k) d[k] = o[k] > 0.0 ? 1.0 : 0.0;
      return;
    case Activation::kTanh:
      for (std::size_t k = 0; k < size; ++k) d[k] = 1.0 - o[k] * o[k];
      return;
    case Activation::kSigmoid:
      for (std::size_t k = 0; k < size; ++k) d[k] = o[k] * (1.0 - o[k]);
      return;
  }
}

Activation ActivationByName(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  GCON_CHECK(false) << "unknown activation: " << name;
  return Activation::kIdentity;
}

}  // namespace gcon
