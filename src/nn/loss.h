// Classification losses for the non-convex components (encoder, baselines).
//
// The GCON convex stage uses its own loss family (core/convex_loss.h); this
// header is standard softmax cross-entropy for MLP/GCN training.
#ifndef GCON_NN_LOSS_H_
#define GCON_NN_LOSS_H_

#include <vector>

#include "linalg/matrix.h"

namespace gcon {

/// Row-wise softmax (numerically stable).
Matrix Softmax(const Matrix& logits);

/// Mean softmax cross-entropy over the rows of `logits` listed in `index`
/// against integer `labels` (global node ids). If `grad` is non-null it
/// receives d loss / d logits — a full-size matrix, zero outside `index`.
double SoftmaxCrossEntropy(const Matrix& logits, const std::vector<int>& labels,
                           const std::vector<int>& index, Matrix* grad);

}  // namespace gcon

#endif  // GCON_NN_LOSS_H_
