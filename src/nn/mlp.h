// Multilayer perceptron with hand-derived backpropagation.
//
// Serves three roles in the reproduction:
//   1. the GCON feature encoder (Algorithm 3): trained on features/labels
//      only (no edges), then its penultimate representation becomes the
//      encoded features X̄;
//   2. the MLP baseline of Figure 1 (edge-DP for free since it never
//      touches edges);
//   3. classifier heads inside GAP / ProGAP / LPGNet.
// Training is full-batch Adam on softmax cross-entropy with optional
// validation-based model selection (best weights restored).
#ifndef GCON_NN_MLP_H_
#define GCON_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "nn/activations.h"

namespace gcon {

struct MlpOptions {
  /// Layer widths, input first, logits last, e.g. {d0, 64, d1, c}.
  std::vector<int> dims;
  Activation hidden_activation = Activation::kRelu;
  double learning_rate = 0.01;
  double weight_decay = 1e-5;
  int epochs = 200;
  std::uint64_t seed = 1;
  /// Evaluate on the validation set every `eval_every` epochs.
  int eval_every = 5;
};

class Mlp {
 public:
  explicit Mlp(const MlpOptions& options);

  /// Forward pass to logits (no softmax).
  Matrix Forward(const Matrix& x) const;

  /// Representation after the activation of hidden layer `layer`
  /// (1-based; `layer` in [1, num_layers-1]). layer = num_layers-1 is the
  /// penultimate representation used by the GCON encoder.
  Matrix HiddenRepresentation(const Matrix& x, int layer) const;

  /// Argmax class predictions for each row of x.
  std::vector<int> Predict(const Matrix& x) const;

  /// Trains on rows `train_idx` of x (full batch). If `val_idx` is
  /// non-empty, keeps the weights with the best validation accuracy.
  /// Returns the final training loss.
  double Train(const Matrix& x, const std::vector<int>& labels,
               const std::vector<int>& train_idx,
               const std::vector<int>& val_idx);

  /// Loss and parameter gradients at the current weights, over rows `idx`.
  /// Exposed for gradient-check tests.
  double LossAndGrads(const Matrix& x, const std::vector<int>& labels,
                      const std::vector<int>& idx, std::vector<Matrix>* dw,
                      std::vector<Matrix>* db) const;

  int num_layers() const { return static_cast<int>(weights_.size()); }
  const Matrix& weight(int layer) const {
    return weights_[static_cast<std::size_t>(layer)];
  }
  Matrix* mutable_weight(int layer) {
    return &weights_[static_cast<std::size_t>(layer)];
  }
  const Matrix& bias(int layer) const {
    return biases_[static_cast<std::size_t>(layer)];
  }
  Matrix* mutable_bias(int layer) {
    return &biases_[static_cast<std::size_t>(layer)];
  }
  const MlpOptions& options() const { return options_; }

 private:
  /// Forward keeping every post-activation (activations[0] = input).
  void ForwardKeep(const Matrix& x, std::vector<Matrix>* activations) const;

  MlpOptions options_;
  std::vector<Matrix> weights_;  // weights_[l]: dims[l] x dims[l+1]
  std::vector<Matrix> biases_;   // biases_[l]: 1 x dims[l+1]
};

/// Glorot-uniform initialization: U(-a, a), a = sqrt(6 / (fan_in+fan_out)).
void GlorotInit(Matrix* w, std::uint64_t seed);

/// Multiclass accuracy of argmax(logits rows in `idx`) vs labels.
double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& idx);

}  // namespace gcon

#endif  // GCON_NN_MLP_H_
