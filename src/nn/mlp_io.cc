#include "nn/mlp_io.h"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gcon {
namespace {

// Malformed persisted input is an environmental error, not a programming
// error: report it as an exception the caller can attach a file path to,
// instead of aborting the process.
[[noreturn]] void Malformed(const std::string& what) {
  throw std::runtime_error("mlp block: " + what);
}

// Sanity bounds on a declared architecture: a corrupt or hostile header
// must not be able to make LoadMlp allocate unbounded memory before the
// truncation check fires (found by the artifact fuzzer). A real encoder is
// nowhere near these.
constexpr std::size_t kMaxMlpLayers = 64;
constexpr long long kMaxMlpDim = 1 << 24;
constexpr long long kMaxMlpMatrixElems = 1 << 26;

const char* ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "identity";
}

void WriteMatrix(const char* tag, int layer, const Matrix& m,
                 std::ostream* out) {
  *out << tag << " " << layer << " " << m.rows() << " " << m.cols() << "\n";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      *out << row[j] << (j + 1 == m.cols() ? "" : " ");
    }
    *out << "\n";
  }
}

void ReadMatrixInto(const char* tag, int expected_layer, std::istream* in,
                    Matrix* m) {
  std::string word;
  int layer = 0;
  std::size_t rows = 0, cols = 0;
  if (!(*in >> word >> layer >> rows >> cols)) {
    Malformed(std::string("truncated before the ") + tag + " header of layer " +
              std::to_string(expected_layer));
  }
  if (word != tag) {
    Malformed("expected '" + std::string(tag) + "' for layer " +
              std::to_string(expected_layer) + ", got '" + word + "'");
  }
  if (layer != expected_layer) {
    Malformed(std::string(tag) + " layer out of order: want " +
              std::to_string(expected_layer) + ", got " +
              std::to_string(layer));
  }
  if (rows != m->rows() || cols != m->cols()) {
    std::ostringstream msg;
    msg << tag << " " << layer << " shape " << rows << "x" << cols
        << " does not match the declared architecture (" << m->rows() << "x"
        << m->cols() << ")";
    Malformed(msg.str());
  }
  for (std::size_t k = 0; k < m->size(); ++k) {
    if (!(*in >> m->data()[k])) {
      Malformed(std::string("truncated ") + tag + " matrix of layer " +
                std::to_string(layer));
    }
  }
}

}  // namespace

void SaveMlp(const Mlp& mlp, std::ostream* out) {
  const MlpOptions& options = mlp.options();
  *out << std::setprecision(17);
  *out << "mlp " << options.dims.size();
  for (int dim : options.dims) {
    *out << " " << dim;
  }
  *out << " " << ActivationName(options.hidden_activation) << "\n";
  for (int l = 0; l < mlp.num_layers(); ++l) {
    WriteMatrix("W", l, mlp.weight(l), out);
    WriteMatrix("b", l, mlp.bias(l), out);
  }
}

Mlp LoadMlp(std::istream* in) {
  std::string word;
  if (!(*in >> word)) Malformed("truncated before the mlp header");
  if (word != "mlp") Malformed("bad magic '" + word + "' (want 'mlp')");
  std::size_t dim_count = 0;
  if (!(*in >> dim_count) || dim_count < 2) {
    Malformed("architecture needs at least input and output dims");
  }
  if (dim_count > kMaxMlpLayers) {
    Malformed("implausible layer count " + std::to_string(dim_count) +
              " (max " + std::to_string(kMaxMlpLayers) + ")");
  }
  MlpOptions options;
  options.dims.resize(dim_count);
  for (auto& dim : options.dims) {
    if (!(*in >> dim) || dim <= 0) {
      Malformed("non-positive or missing layer dimension");
    }
    if (dim > kMaxMlpDim) {
      Malformed("implausible layer dimension " + std::to_string(dim) +
                " (max " + std::to_string(kMaxMlpDim) + ")");
    }
  }
  for (std::size_t i = 0; i + 1 < options.dims.size(); ++i) {
    const long long elems = static_cast<long long>(options.dims[i]) *
                            static_cast<long long>(options.dims[i + 1]);
    if (elems > kMaxMlpMatrixElems) {
      Malformed("implausible weight shape " + std::to_string(options.dims[i]) +
                "x" + std::to_string(options.dims[i + 1]) +
                " (declared size would exceed the mlp block bound)");
    }
  }
  std::string activation;
  if (!(*in >> activation)) Malformed("truncated before the activation name");
  if (activation != "identity" && activation != "relu" &&
      activation != "tanh" && activation != "sigmoid") {
    // ActivationByName treats an unknown name as a programming error and
    // aborts; from persisted input it is corruption, so throw instead.
    Malformed("unknown activation '" + activation + "'");
  }
  options.hidden_activation = ActivationByName(activation);
  Mlp mlp(options);
  for (int l = 0; l < mlp.num_layers(); ++l) {
    ReadMatrixInto("W", l, in, mlp.mutable_weight(l));
    ReadMatrixInto("b", l, in, mlp.mutable_bias(l));
  }
  return mlp;
}

}  // namespace gcon
