#include "nn/mlp_io.h"

#include <iomanip>
#include <istream>
#include <ostream>
#include <string>

#include "common/check.h"

namespace gcon {
namespace {

const char* ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "identity";
}

void WriteMatrix(const char* tag, int layer, const Matrix& m,
                 std::ostream* out) {
  *out << tag << " " << layer << " " << m.rows() << " " << m.cols() << "\n";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      *out << row[j] << (j + 1 == m.cols() ? "" : " ");
    }
    *out << "\n";
  }
}

void ReadMatrixInto(const char* tag, int expected_layer, std::istream* in,
                    Matrix* m) {
  std::string word;
  int layer = 0;
  std::size_t rows = 0, cols = 0;
  *in >> word >> layer >> rows >> cols;
  GCON_CHECK_EQ(word, std::string(tag)) << "expected " << tag;
  GCON_CHECK_EQ(layer, expected_layer);
  GCON_CHECK_EQ(rows, m->rows()) << "layer " << layer << " shape mismatch";
  GCON_CHECK_EQ(cols, m->cols());
  for (std::size_t k = 0; k < m->size(); ++k) {
    GCON_CHECK(static_cast<bool>(*in >> m->data()[k])) << "truncated matrix";
  }
}

}  // namespace

void SaveMlp(const Mlp& mlp, std::ostream* out) {
  const MlpOptions& options = mlp.options();
  *out << std::setprecision(17);
  *out << "mlp " << options.dims.size();
  for (int dim : options.dims) {
    *out << " " << dim;
  }
  *out << " " << ActivationName(options.hidden_activation) << "\n";
  for (int l = 0; l < mlp.num_layers(); ++l) {
    WriteMatrix("W", l, mlp.weight(l), out);
    WriteMatrix("b", l, mlp.bias(l), out);
  }
}

Mlp LoadMlp(std::istream* in) {
  std::string word;
  *in >> word;
  GCON_CHECK_EQ(word, std::string("mlp")) << "bad mlp magic";
  std::size_t dim_count = 0;
  *in >> dim_count;
  GCON_CHECK_GE(dim_count, 2u);
  MlpOptions options;
  options.dims.resize(dim_count);
  for (auto& dim : options.dims) {
    *in >> dim;
    GCON_CHECK_GT(dim, 0);
  }
  std::string activation;
  *in >> activation;
  options.hidden_activation = ActivationByName(activation);
  Mlp mlp(options);
  for (int l = 0; l < mlp.num_layers(); ++l) {
    ReadMatrixInto("W", l, in, mlp.mutable_weight(l));
    ReadMatrixInto("b", l, in, mlp.mutable_bias(l));
  }
  return mlp;
}

}  // namespace gcon
