#include "nn/optim.h"

#include <cmath>

#include "common/check.h"

namespace gcon {

std::size_t Adam::Register(const Matrix& param) {
  Slots s;
  s.m.Resize(param.rows(), param.cols());
  s.v.Resize(param.rows(), param.cols());
  slots_.push_back(std::move(s));
  return slots_.size() - 1;
}

void Adam::Step(std::size_t slot, const Matrix& grad, Matrix* param) {
  GCON_CHECK_LT(slot, slots_.size());
  GCON_CHECK_GT(t_, 0) << "call BeginStep() before Step()";
  Slots& s = slots_[slot];
  GCON_CHECK_EQ(s.m.rows(), param->rows());
  GCON_CHECK_EQ(s.m.cols(), param->cols());
  GCON_CHECK_EQ(grad.rows(), param->rows());
  GCON_CHECK_EQ(grad.cols(), param->cols());
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double lr = options_.learning_rate;
  const double wd = options_.weight_decay;
  double* p = param->data();
  const double* g = grad.data();
  double* m = s.m.data();
  double* v = s.v.data();
  for (std::size_t k = 0; k < param->size(); ++k) {
    const double gk = g[k] + wd * p[k];
    m[k] = b1 * m[k] + (1.0 - b1) * gk;
    v[k] = b2 * v[k] + (1.0 - b2) * gk * gk;
    const double m_hat = m[k] / bias1;
    const double v_hat = v[k] / bias2;
    p[k] -= lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
  }
}

std::size_t Sgd::Register(const Matrix& param) {
  Matrix vel(param.rows(), param.cols());
  velocity_.push_back(std::move(vel));
  return velocity_.size() - 1;
}

void Sgd::Step(std::size_t slot, const Matrix& grad, Matrix* param) {
  GCON_CHECK_LT(slot, velocity_.size());
  Matrix& vel = velocity_[slot];
  GCON_CHECK_EQ(grad.rows(), param->rows());
  GCON_CHECK_EQ(grad.cols(), param->cols());
  double* p = param->data();
  const double* g = grad.data();
  double* v = vel.data();
  const double mu = options_.momentum;
  const double lr = options_.learning_rate;
  const double wd = options_.weight_decay;
  for (std::size_t k = 0; k < param->size(); ++k) {
    const double gk = g[k] + wd * p[k];
    v[k] = mu * v[k] + gk;
    p[k] -= lr * v[k];
  }
}

}  // namespace gcon
