#include "serve/inference_session.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "linalg/ops.h"

namespace gcon {

namespace {

// A parseable artifact can still be internally inconsistent, or mismatch
// the serving graph. Both are environmental (a bad published file, the
// wrong --graph), so they throw like LoadModel's own defects do — never
// GCON_CHECK, which would abort past the CLI's error reporting.
[[noreturn]] void BadSession(const std::string& what) {
  throw std::runtime_error("cannot serve this artifact: " + what);
}

}  // namespace

InferenceSession::InferenceSession(GconArtifact artifact, Graph graph)
    : per_query_(true),
      graph_(std::move(graph)),
      artifact_(std::move(artifact)) {
  if (artifact_->steps.empty()) {
    BadSession("it declares no propagation steps");
  }
  if (graph_.num_nodes() <= 0) {
    BadSession("the serving graph is empty");
  }
  const int encoder_in = artifact_->encoder.options().dims.front();
  if (graph_.feature_dim() != encoder_in) {
    BadSession("the serving graph has " +
               std::to_string(graph_.feature_dim()) +
               "-dim features but the encoder expects " +
               std::to_string(encoder_in));
  }
  // The whole-graph work, done once: exactly the calls Infer makes, so each
  // encoded row is bitwise identical to the offline pipeline's.
  encoded_ = artifact_->encoder.HiddenRepresentation(
      graph_.features(), artifact_->encoder.num_layers() - 1);
  RowL2NormalizeInPlace(&encoded_);
  alpha_inf_ = artifact_->alpha_inference >= 0.0 ? artifact_->alpha_inference
                                                : artifact_->alpha;
  if (artifact_->theta.rows() != artifact_->steps.size() * encoded_.cols()) {
    BadSession("theta has " + std::to_string(artifact_->theta.rows()) +
               " rows, want steps x encoder width = " +
               std::to_string(artifact_->steps.size() * encoded_.cols()));
  }
  num_classes_ = artifact_->theta.cols();
}

InferenceSession::InferenceSession(const GraphModel& model, Graph graph)
    : per_query_(false), graph_(std::move(graph)) {
  if (graph_.num_nodes() <= 0) {
    throw std::runtime_error("cannot serve an empty graph");
  }
  dense_logits_ = model.Predict(graph_);
  GCON_CHECK_EQ(dense_logits_.rows(),
                static_cast<std::size_t>(graph_.num_nodes()));
  num_classes_ = dense_logits_.cols();
}

InferenceSession InferenceSession::FromFile(const std::string& model_path,
                                            Graph graph) {
  GconArtifact artifact = LoadModel(model_path);  // throws with the path
  try {
    return InferenceSession(std::move(artifact), std::move(graph));
  } catch (const std::runtime_error& e) {
    // Consistency failures know the defect; attach where it came from.
    throw std::runtime_error("model artifact '" + model_path +
                             "': " + e.what());
  }
}

void InferenceSession::ValidateRequest(const ServeRequest& request) const {
  if (request.node < 0 || request.node >= graph_.num_nodes()) {
    throw std::invalid_argument(
        "node " + std::to_string(request.node) + " out of range [0, " +
        std::to_string(graph_.num_nodes()) + ")");
  }
  if (request.has_edges && !per_query_) {
    throw std::invalid_argument(
        "per-query edge lists need a gcon artifact session; this session "
        "serves precomputed logits");
  }
}

void InferenceSession::HopRow(int node, const std::vector<int>& neighbors,
                              double* out) const {
  const std::size_t d = encoded_.cols();
  // Transition row values exactly as BuildTransition writes them: every
  // off-diagonal entry min(1/(k+1), 1/2), and the diagonal accumulated by
  // the same repeated subtraction (floating point is not associative; the
  // replay must subtract k times, not compute 1 - k*off).
  const double k = static_cast<double>(neighbors.size());
  const double off = std::min(1.0 / (k + 1.0), 0.5);
  double diag = 1.0;
  for (std::size_t i = 0; i < neighbors.size(); ++i) diag -= off;

  // Accumulate in CSR order — columns ascending with the diagonal merged at
  // its sorted position — mirroring SpmmAxpby's per-row loop.
  std::vector<double> sum(d, 0.0);
  auto accumulate = [&](int col, double value) {
    const double* zrow = encoded_.RowPtr(static_cast<std::size_t>(col));
    for (std::size_t j = 0; j < d; ++j) sum[j] += value * zrow[j];
  };
  bool diag_done = false;
  for (int neighbor : neighbors) {
    if (!diag_done && node < neighbor) {
      accumulate(node, diag);
      diag_done = true;
    }
    accumulate(neighbor, off);
  }
  if (!diag_done) accumulate(node, diag);

  // out = (1 - alpha_I) * (Ã_v · X̄) + alpha_I * X̄_v, the SpmmAxpby tail.
  const double a = 1.0 - alpha_inf_;
  const double b = alpha_inf_;
  const double* xrow = encoded_.RowPtr(static_cast<std::size_t>(node));
  for (std::size_t j = 0; j < d; ++j) {
    out[j] = a * sum[j] + b * xrow[j];
  }
}

void InferenceSession::FillFeatureRow(const ServeRequest& request,
                                      double* row) const {
  const std::size_t d = encoded_.cols();
  const int v = request.node;
  const double* encoded_row = encoded_.RowPtr(static_cast<std::size_t>(v));

  std::vector<double> hop;
  bool have_hop = false;
  std::vector<int> sanitized;
  const std::vector<int>* neighbors = &graph_.Neighbors(v);
  if (request.has_edges) {
    sanitized = request.edges;
    std::sort(sanitized.begin(), sanitized.end());
    sanitized.erase(std::unique(sanitized.begin(), sanitized.end()),
                    sanitized.end());
    sanitized.erase(
        std::remove_if(sanitized.begin(), sanitized.end(),
                       [&](int u) {
                         return u < 0 || u >= graph_.num_nodes() || u == v;
                       }),
        sanitized.end());
    neighbors = &sanitized;
  }

  // The offline loop computes the one-hop block once and reuses it for
  // every step m > 0 (Eq. (16) reads only the query node's own edges no
  // matter how deep training propagated); replay that here.
  for (std::size_t s = 0; s < artifact_->steps.size(); ++s) {
    double* block = row + s * d;
    if (artifact_->steps[s] == 0) {
      std::copy(encoded_row, encoded_row + d, block);
      continue;
    }
    if (!have_hop) {
      hop.resize(d);
      HopRow(v, *neighbors, hop.data());
      have_hop = true;
    }
    std::copy(hop.begin(), hop.end(), block);
  }
}

Matrix InferenceSession::QueryBatch(
    const std::vector<const ServeRequest*>& batch) const {
  const std::size_t b = batch.size();
  if (!per_query_) {
    Matrix out(b, num_classes_);
    for (std::size_t i = 0; i < b; ++i) {
      const double* src = dense_logits_.RowPtr(
          static_cast<std::size_t>(batch[i]->node));
      std::copy(src, src + num_classes_, out.RowPtr(i));
    }
    return out;
  }
  // One coalesced feature block, one GEMM — the micro-batcher's payoff. A
  // GEMM row's bit pattern does not depend on the other rows (zero-padded
  // fringe tiles, fixed k-order), so this equals b independent queries.
  Matrix z(b, artifact_->steps.size() * encoded_.cols());
  for (std::size_t i = 0; i < b; ++i) {
    FillFeatureRow(*batch[i], z.RowPtr(i));
  }
  return MatMul(z, artifact_->theta);
}

std::vector<double> InferenceSession::QueryLogits(
    const ServeRequest& request) const {
  ValidateRequest(request);
  const std::vector<const ServeRequest*> batch = {&request};
  const Matrix logits = QueryBatch(batch);
  return logits.RowCopy(0);
}

}  // namespace gcon
