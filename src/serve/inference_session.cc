#include "serve/inference_session.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "linalg/ops.h"
#include "propagation/cache.h"

namespace gcon {

namespace {

// A parseable artifact can still be internally inconsistent, or mismatch
// the serving graph. Both are environmental (a bad published file, the
// wrong --graph), so they throw like LoadModel's own defects do — never
// GCON_CHECK, which would abort past the CLI's error reporting.
[[noreturn]] void BadSession(const std::string& what) {
  throw std::runtime_error("cannot serve this artifact: " + what);
}

/// Sorted, deduplicated, in-range-neighbor list for a rebuilt transition
/// row. `self` is excluded (no self-loops, matching Graph's invariant).
std::vector<int> SanitizeEdges(const std::vector<int>& edges, int self,
                               int num_nodes) {
  std::vector<int> sanitized = edges;
  std::sort(sanitized.begin(), sanitized.end());
  sanitized.erase(std::unique(sanitized.begin(), sanitized.end()),
                  sanitized.end());
  sanitized.erase(
      std::remove_if(sanitized.begin(), sanitized.end(),
                     [&](int u) {
                       return u < 0 || u >= num_nodes || u == self;
                     }),
      sanitized.end());
  return sanitized;
}

std::uint64_t Fnv1a(const void* data, std::size_t len, std::uint64_t hash) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Content hash of a release: the trained weights plus the privacy
/// receipt. Two independently trained artifacts collide only if their
/// theta bytes (and receipt) are identical — which, for the ledger's
/// "same release reloaded?" question, IS the same release.
std::uint64_t FingerprintArtifact(const GconArtifact& artifact) {
  std::uint64_t hash = 14695981039346656037ull;
  hash = Fnv1a(&artifact.epsilon, sizeof(artifact.epsilon), hash);
  hash = Fnv1a(&artifact.delta, sizeof(artifact.delta), hash);
  hash = Fnv1a(&artifact.alpha, sizeof(artifact.alpha), hash);
  hash = Fnv1a(&artifact.alpha_inference, sizeof(artifact.alpha_inference),
               hash);
  if (!artifact.steps.empty()) {
    hash = Fnv1a(artifact.steps.data(),
                 artifact.steps.size() * sizeof(int), hash);
  }
  const std::uint64_t rows = artifact.theta.rows();
  const std::uint64_t cols = artifact.theta.cols();
  hash = Fnv1a(&rows, sizeof(rows), hash);
  hash = Fnv1a(&cols, sizeof(cols), hash);
  if (!artifact.theta.empty()) {
    hash = Fnv1a(artifact.theta.data(),
                 artifact.theta.size() * sizeof(double), hash);
  }
  return hash;
}

}  // namespace

void InferenceSession::InitArtifact(GconArtifact artifact,
                                    std::shared_ptr<const Graph> graph) {
  per_query_ = true;
  graph_ = std::move(graph);
  artifact_ = std::move(artifact);
  if (artifact_->steps.empty()) {
    BadSession("it declares no propagation steps");
  }
  if (graph_ == nullptr || graph_->num_nodes() <= 0) {
    BadSession("the serving graph is empty");
  }
  const int encoder_in = artifact_->encoder.options().dims.front();
  if (graph_->feature_dim() != encoder_in) {
    BadSession("the serving graph has " +
               std::to_string(graph_->feature_dim()) +
               "-dim features but the encoder expects " +
               std::to_string(encoder_in));
  }
  // The whole-graph work, done once: exactly the calls Infer makes, so each
  // encoded row is bitwise identical to the offline pipeline's. The
  // transition comes through the same cache Infer uses — a serving process
  // that also ran offline inference on this graph reuses the build.
  encoded_ = artifact_->encoder.HiddenRepresentation(
      graph_->features(), artifact_->encoder.num_layers() - 1);
  RowL2NormalizeInPlace(&encoded_);
  transition_ = PropagationCache::Global().Transition(*graph_).csr;
  alpha_inf_ = artifact_->alpha_inference >= 0.0 ? artifact_->alpha_inference
                                                : artifact_->alpha;
  if (artifact_->theta.rows() != artifact_->steps.size() * encoded_.cols()) {
    BadSession("theta has " + std::to_string(artifact_->theta.rows()) +
               " rows, want steps x encoder width = " +
               std::to_string(artifact_->steps.size() * encoded_.cols()));
  }
  num_classes_ = artifact_->theta.cols();
  artifact_fp_ = FingerprintArtifact(*artifact_);
}

InferenceSession::InferenceSession(GconArtifact artifact, Graph graph)
    : InferenceSession(std::move(artifact),
                       std::make_shared<const Graph>(std::move(graph))) {}

InferenceSession::InferenceSession(GconArtifact artifact,
                                   std::shared_ptr<const Graph> graph) {
  InitArtifact(std::move(artifact), std::move(graph));
}

InferenceSession::InferenceSession(const GraphModel& model, Graph graph)
    : InferenceSession(model,
                       std::make_shared<const Graph>(std::move(graph))) {}

InferenceSession::InferenceSession(const GraphModel& model,
                                   std::shared_ptr<const Graph> graph) {
  // A model that publishes its release artifact gets the full per-query
  // path — private edge lists and feature-carrying queries included.
  if (const GconArtifact* artifact = model.ReleaseArtifact()) {
    InitArtifact(*artifact, std::move(graph));
    return;
  }
  per_query_ = false;
  graph_ = std::move(graph);
  if (graph_ == nullptr || graph_->num_nodes() <= 0) {
    throw std::runtime_error("cannot serve an empty graph");
  }
  dense_logits_ = model.Predict(*graph_);
  GCON_CHECK_EQ(dense_logits_.rows(),
                static_cast<std::size_t>(graph_->num_nodes()));
  num_classes_ = dense_logits_.cols();
}

InferenceSession InferenceSession::FromFile(const std::string& model_path,
                                            Graph graph) {
  return FromFile(model_path,
                  std::make_shared<const Graph>(std::move(graph)));
}

InferenceSession InferenceSession::FromFile(
    const std::string& model_path, std::shared_ptr<const Graph> graph) {
  GconArtifact artifact = LoadModel(model_path);  // throws with the path
  try {
    return InferenceSession(std::move(artifact), std::move(graph));
  } catch (const std::runtime_error& e) {
    // Consistency failures know the defect; attach where it came from.
    throw std::runtime_error("model artifact '" + model_path +
                             "': " + e.what());
  }
}

void InferenceSession::ValidateRequest(const ServeRequest& request) const {
  if (request.has_features) {
    if (!per_query_) {
      throw std::invalid_argument(
          "feature-carrying queries need a gcon artifact session; this "
          "session serves precomputed logits");
    }
    if (request.node != -1) {
      throw std::invalid_argument(
          "a query carries either 'node' or 'features', not both");
    }
    if (static_cast<int>(request.feature_count()) != graph_->feature_dim()) {
      throw std::invalid_argument(
          "query features have " + std::to_string(request.feature_count()) +
          " values but the encoder expects " +
          std::to_string(graph_->feature_dim()));
    }
    return;
  }
  if (request.node < 0 || request.node >= graph_->num_nodes()) {
    throw std::invalid_argument(
        "node " + std::to_string(request.node) + " out of range [0, " +
        std::to_string(graph_->num_nodes()) + ")");
  }
  if (request.has_edges && !per_query_) {
    throw std::invalid_argument(
        "per-query edge lists need a gcon artifact session; this session "
        "serves precomputed logits");
  }
}

void InferenceSession::RebuiltHopRow(int self_col, const double* self_row,
                                     const std::vector<int>& neighbors,
                                     double* out) const {
  const std::size_t d = encoded_.cols();
  // Transition row values exactly as BuildTransition writes them: every
  // off-diagonal entry min(1/(k+1), 1/2), and the diagonal accumulated by
  // the same repeated subtraction (floating point is not associative; the
  // replay must subtract k times, not compute 1 - k*off).
  const double k = static_cast<double>(neighbors.size());
  const double off = std::min(1.0 / (k + 1.0), 0.5);
  double diag = 1.0;
  for (std::size_t i = 0; i < neighbors.size(); ++i) diag -= off;

  // Accumulate in CSR order — columns ascending with the diagonal merged at
  // its sorted position — mirroring SpmmAxpby's per-row loop. An inductive
  // query's virtual node sits at column n, past every neighbor, so its
  // diagonal lands last, exactly where BuildTransition on the augmented
  // graph puts it.
  std::vector<double> sum(d, 0.0);
  auto accumulate = [&](const double* zrow, double value) {
    for (std::size_t j = 0; j < d; ++j) sum[j] += value * zrow[j];
  };
  bool diag_done = false;
  for (int neighbor : neighbors) {
    if (!diag_done && self_col < neighbor) {
      accumulate(self_row, diag);
      diag_done = true;
    }
    accumulate(encoded_.RowPtr(static_cast<std::size_t>(neighbor)), off);
  }
  if (!diag_done) accumulate(self_row, diag);

  // out = (1 - alpha_I) * (Ã_v · X̄) + alpha_I * X̄_v, the SpmmAxpby tail.
  const double a = 1.0 - alpha_inf_;
  const double b = alpha_inf_;
  for (std::size_t j = 0; j < d; ++j) {
    out[j] = a * sum[j] + b * self_row[j];
  }
}

void InferenceSession::CachedHopRow(int node, double* out) const {
  // Replays SpmmAxpby row `node` verbatim over the cached transition: same
  // entries, same column-ascending order, same a·sum + b·x tail.
  const std::size_t d = encoded_.cols();
  const CsrMatrix& t = *transition_;
  const std::vector<std::int64_t>& row_ptr = t.row_ptr();
  const std::vector<std::int32_t>& col_idx = t.col_idx();
  const std::vector<double>& values = t.values();
  std::vector<double> sum(d, 0.0);
  for (std::int64_t k = row_ptr[static_cast<std::size_t>(node)];
       k < row_ptr[static_cast<std::size_t>(node) + 1]; ++k) {
    const double value = values[static_cast<std::size_t>(k)];
    const double* zrow = encoded_.RowPtr(
        static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]));
    for (std::size_t j = 0; j < d; ++j) sum[j] += value * zrow[j];
  }
  const double a = 1.0 - alpha_inf_;
  const double b = alpha_inf_;
  const double* xrow = encoded_.RowPtr(static_cast<std::size_t>(node));
  for (std::size_t j = 0; j < d; ++j) {
    out[j] = a * sum[j] + b * xrow[j];
  }
}

void InferenceSession::FillFeatureRow(const ServeRequest& request,
                                      const double* encoded_query_row,
                                      double* row) const {
  const std::size_t d = encoded_.cols();
  const int n = graph_->num_nodes();
  // The query node's own encoded row: a graph row, or the freshly encoded
  // feature-carrying query (virtual node index n).
  const int self_col = request.has_features ? n : request.node;
  const double* self_row =
      request.has_features
          ? encoded_query_row
          : encoded_.RowPtr(static_cast<std::size_t>(request.node));

  std::vector<double> hop;
  bool have_hop = false;
  auto ensure_hop = [&] {
    if (have_hop) return;
    hop.resize(d);
    if (!request.has_features && !request.has_edges) {
      CachedHopRow(request.node, hop.data());
    } else {
      const std::vector<int> neighbors =
          SanitizeEdges(request.edges, self_col, n);
      RebuiltHopRow(self_col, self_row, neighbors, hop.data());
    }
    have_hop = true;
  };

  // The offline loop computes the one-hop block once and reuses it for
  // every step m > 0 (Eq. (16) reads only the query node's own edges no
  // matter how deep training propagated); replay that here.
  for (std::size_t s = 0; s < artifact_->steps.size(); ++s) {
    double* block = row + s * d;
    if (artifact_->steps[s] == 0) {
      std::copy(self_row, self_row + d, block);
      continue;
    }
    ensure_hop();
    std::copy(hop.begin(), hop.end(), block);
  }
}

Matrix InferenceSession::QueryBatch(
    const std::vector<const ServeRequest*>& batch) const {
  const std::size_t b = batch.size();
  if (!per_query_) {
    Matrix out(b, num_classes_);
    for (std::size_t i = 0; i < b; ++i) {
      const double* src = dense_logits_.RowPtr(
          static_cast<std::size_t>(batch[i]->node));
      std::copy(src, src + num_classes_, out.RowPtr(i));
    }
    return out;
  }
  // Feature-carrying queries share one coalesced encoder forward — a GEMM
  // row's bits are independent of the batch's other rows, so this equals
  // encoding each query alone, which equals its row in the offline forward
  // over the augmented graph.
  std::size_t inductive = 0;
  for (const ServeRequest* request : batch) {
    if (request->has_features) ++inductive;
  }
  Matrix encoded_queries;
  if (inductive > 0) {
    Matrix raw(inductive, static_cast<std::size_t>(graph_->feature_dim()));
    const std::size_t dim = static_cast<std::size_t>(graph_->feature_dim());
    std::size_t q = 0;
    for (const ServeRequest* request : batch) {
      if (!request->has_features) continue;
      double* dst = raw.RowPtr(q++);
      if (request->feature_view.data != nullptr) {
        // Binary transport: widen the pinned f32 frame payload straight
        // into the packed panel. f32 -> f64 is exact, so this row is
        // bitwise the row an offline Infer sees for the same (widened)
        // feature values — the zero-copy path changes where the bytes
        // come from, never what they are.
        const float* src = request->feature_view.data;
        for (std::size_t j = 0; j < dim; ++j) {
          dst[j] = static_cast<double>(src[j]);
        }
      } else {
        std::copy(request->features.begin(), request->features.end(), dst);
      }
    }
    encoded_queries = artifact_->encoder.HiddenRepresentation(
        raw, artifact_->encoder.num_layers() - 1);
    RowL2NormalizeInPlace(&encoded_queries);
  }
  // One coalesced feature block, one GEMM — the micro-batcher's payoff. A
  // GEMM row's bit pattern does not depend on the other rows (zero-padded
  // fringe tiles, fixed k-order), so this equals b independent queries.
  Matrix z(b, artifact_->steps.size() * encoded_.cols());
  std::size_t q = 0;
  for (std::size_t i = 0; i < b; ++i) {
    const double* encoded_query_row =
        batch[i]->has_features ? encoded_queries.RowPtr(q++) : nullptr;
    FillFeatureRow(*batch[i], encoded_query_row, z.RowPtr(i));
  }
  for (const ServeRequest* request : batch) {
    if (request->trace) request->trace->Stamp(obs::kMarkGather);
  }
  Matrix logits = MatMul(z, artifact_->theta);
  for (const ServeRequest* request : batch) {
    if (request->trace) request->trace->Stamp(obs::kMarkGemm);
  }
  return logits;
}

std::vector<double> InferenceSession::QueryLogits(
    const ServeRequest& request) const {
  ValidateRequest(request);
  const std::vector<const ServeRequest*> batch = {&request};
  const Matrix logits = QueryBatch(batch);
  return logits.RowCopy(0);
}

}  // namespace gcon
