// Fault-injection hooks for the serving tier's chaos tests.
//
// The serving code calls ShouldFire(...) at a handful of named sites
// (queue admission, the batch worker's pre-GEMM window, the TCP write
// path, the per-batch session snapshot). Disarmed — the only state a
// production process ever has — each site costs one relaxed atomic load
// of `armed_`, so the hooks are compiled in unconditionally instead of
// forking a test-only build.
//
// Tests arm a fault for a bounded number of firings:
//
//   FaultInjector::Global().Arm(Fault::kQueueFull, 1);
//   ... submit; expect a structured `overloaded` rejection; retry works.
//
// kSwapDuringBatch is a callback site rather than a boolean: the test
// installs the Publish() call it wants to race against an in-flight batch,
// and the server handler fires it right after taking its session snapshot
// — the exact window an atomic hot-swap must survive.
//
// Faults can also be armed from the environment for whole-process chaos
// runs (`GCON_FAULTS=queue_full:3,torn_socket` — name[:count], comma
// separated), parsed once at first Global() use.
#ifndef GCON_SERVE_FAULT_INJECTION_H_
#define GCON_SERVE_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace gcon {

/// Injection sites in the serving tier. FaultName() gives the spelling
/// GCON_FAULTS uses.
enum class Fault : int {
  kQueueFull = 0,     ///< Submit treats the queue as full (admission site)
  kSlowHandler,       ///< batch worker sleeps before the deadline check/GEMM
  kMidBatchThrow,     ///< batch handler throws mid-batch
  kTornSocket,        ///< TCP write sends half a line, then kills the socket
  kSwapDuringBatch,   ///< runs the installed callback inside a batch window
  kTornLedgerWrite,   ///< budget-ledger append lands half its bytes, then dies
};

inline constexpr int kNumFaults = 6;

const char* FaultName(Fault fault);

class FaultInjector {
 public:
  /// Process-wide instance (the injection sites live in library code with
  /// no test-owned object to hand a pointer to). First use parses
  /// GCON_FAULTS.
  static FaultInjector& Global();

  /// Arms `fault` for the next `count` ShouldFire calls at its site.
  void Arm(Fault fault, int count = 1);

  /// Parses a GCON_FAULTS-style spec ("name[:count],...") and arms each
  /// entry. Returns false (arming nothing further) on a malformed spec or
  /// unknown fault name.
  bool ArmFromSpec(const std::string& spec);

  /// True exactly `count` times per Arm(fault, count), then false. The
  /// disarmed fast path is one relaxed atomic load.
  bool ShouldFire(Fault fault);

  /// Installs the action kSwapDuringBatch (or any callback-shaped fault)
  /// runs when it fires. Pass nullptr to clear.
  void SetCallback(Fault fault, std::function<void()> callback);

  /// ShouldFire + run the installed callback (if any). Used by sites whose
  /// fault is an action, not a boolean.
  void FireCallback(Fault fault);

  /// How long kSlowHandler sleeps per firing (tests shrink it to keep the
  /// suite fast).
  void set_slow_handler_us(int us) {
    slow_handler_us_.store(us, std::memory_order_relaxed);
  }
  int slow_handler_us() const {
    return slow_handler_us_.load(std::memory_order_relaxed);
  }

  /// Sleeps for slow_handler_us() if kSlowHandler fires (the batch
  /// worker's one-line site).
  void MaybeSleepSlowHandler();

  /// Number of times `fault` has fired since the last Reset.
  std::uint64_t fired(Fault fault) const;

  /// Disarms everything, clears callbacks and counters. Chaos tests call
  /// this in teardown so faults never leak across tests.
  void Reset();

 private:
  FaultInjector();

  std::atomic<bool> armed_{false};
  std::array<std::atomic<int>, kNumFaults> remaining_{};
  std::array<std::atomic<std::uint64_t>, kNumFaults> fired_{};
  std::atomic<int> slow_handler_us_{20000};

  std::mutex callback_mu_;
  std::array<std::function<void()>, kNumFaults> callbacks_;
};

}  // namespace gcon

#endif  // GCON_SERVE_FAULT_INJECTION_H_
