#include "serve/wire.h"

#include <cctype>
#include <cstdint>
#include <limits>
#include <sstream>

namespace gcon {
namespace {

/// Minimal recursive-descent scanner over one wire line.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : line_(line) {}

  void SkipWs() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < line_.size() && line_[pos_] == c;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= line_.size();
  }

  bool ReadString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < line_.size() && line_[pos_] != '"') {
      out->push_back(line_[pos_++]);
    }
    return Consume('"');
  }

  bool ReadInt(std::int64_t* out) {
    SkipWs();
    const std::size_t start = pos_;
    if (pos_ < line_.size() && (line_[pos_] == '-' || line_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start ||
        (pos_ == start + 1 && !std::isdigit(
                                  static_cast<unsigned char>(line_[start])))) {
      return false;
    }
    try {
      *out = std::stoll(line_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }

 private:
  const std::string& line_;
  std::size_t pos_ = 0;
};

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n' || c == '\r' || c == '\t') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

bool ParseWireRequest(const std::string& line, WireCommand* command,
                      ServeRequest* request, std::string* error) {
  *command = WireCommand::kQuery;
  *request = ServeRequest{};
  LineScanner scan(line);
  if (!scan.Consume('{')) {
    *error = "request must be a {...} object";
    return false;
  }
  bool have_node = false;
  std::string cmd;
  if (!scan.Peek('}')) {
    do {
      std::string key;
      if (!scan.ReadString(&key)) {
        *error = "expected a quoted key";
        return false;
      }
      if (!scan.Consume(':')) {
        *error = "expected ':' after key '" + key + "'";
        return false;
      }
      if (key == "id") {
        if (!scan.ReadInt(&request->id)) {
          *error = "key 'id' wants an integer";
          return false;
        }
      } else if (key == "node") {
        std::int64_t node = 0;
        if (!scan.ReadInt(&node)) {
          *error = "key 'node' wants an integer";
          return false;
        }
        // Reject instead of narrowing: a wrapped id could land inside
        // [0, n) and silently serve the wrong node.
        if (node < std::numeric_limits<int>::min() ||
            node > std::numeric_limits<int>::max()) {
          *error = "key 'node' out of range";
          return false;
        }
        request->node = static_cast<int>(node);
        have_node = true;
      } else if (key == "edges") {
        if (!scan.Consume('[')) {
          *error = "key 'edges' wants an array of integers";
          return false;
        }
        request->has_edges = true;
        request->edges.clear();
        if (!scan.Peek(']')) {
          do {
            std::int64_t endpoint = 0;
            if (!scan.ReadInt(&endpoint)) {
              *error = "key 'edges' wants integers";
              return false;
            }
            if (endpoint < std::numeric_limits<int>::min() ||
                endpoint > std::numeric_limits<int>::max()) {
              *error = "key 'edges' entry out of range";
              return false;
            }
            request->edges.push_back(static_cast<int>(endpoint));
          } while (scan.Consume(','));
        }
        if (!scan.Consume(']')) {
          *error = "unterminated 'edges' array";
          return false;
        }
      } else if (key == "cmd") {
        if (!scan.ReadString(&cmd)) {
          *error = "key 'cmd' wants a quoted string";
          return false;
        }
      } else {
        *error = "unknown key '" + key +
                 "' (want id, node, edges, or cmd)";
        return false;
      }
    } while (scan.Consume(','));
  }
  if (!scan.Consume('}') || !scan.AtEnd()) {
    *error = "trailing garbage after the request object";
    return false;
  }

  if (!cmd.empty()) {
    if (cmd == "stats") {
      *command = WireCommand::kStats;
      return true;
    }
    if (cmd == "quit") {
      *command = WireCommand::kQuit;
      return true;
    }
    *error = "unknown cmd '" + cmd + "' (want stats or quit)";
    return false;
  }
  if (!have_node) {
    *error = "query needs a 'node' key";
    return false;
  }
  return true;
}

std::string FormatWireResponse(const ServeResponse& response) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"id\": " << response.id << ", \"node\": " << response.node
      << ", \"label\": " << response.label << ", \"logits\": [";
  for (std::size_t j = 0; j < response.logits.size(); ++j) {
    out << (j == 0 ? "" : ", ") << response.logits[j];
  }
  out << "]}";
  return out.str();
}

std::string FormatWireError(std::int64_t id, const std::string& error) {
  std::ostringstream out;
  out << "{\"id\": " << id << ", \"error\": \"" << EscapeJson(error)
      << "\"}";
  return out.str();
}

}  // namespace gcon
