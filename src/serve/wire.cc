#include "serve/wire.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <limits>
#include <locale>
#include <sstream>
#include <system_error>

namespace gcon {
namespace {

/// Classifies a token std::from_chars flagged result_out_of_range, which
/// it reports identically for overflow (> DBL_MAX) and total underflow
/// (below the smallest subnormal), leaving the value unmodified. The two
/// get opposite treatment — underflow is a valid feature value (±0),
/// overflow is a defect — so decide from the token itself: an out-of-range
/// magnitude is >= 1e309 or < 1e-323, hence the sign of (decimal exponent
/// of the leading significant digit + explicit exponent) is decisive.
/// `first..last` is already validated as a number (sign stripped).
bool TokenUnderflows(const char* first, const char* last) {
  const char* p = first;
  if (p < last && (*p == '-' || *p == '+')) ++p;
  long lead = 0;
  bool seen_sig = false;
  long int_digits = 0;
  long sig_pos_int = -1;
  while (p < last && *p >= '0' && *p <= '9') {
    if (!seen_sig && *p != '0') {
      seen_sig = true;
      sig_pos_int = int_digits;
    }
    ++int_digits;
    ++p;
  }
  if (p < last && *p == '.') {
    ++p;
    long frac_index = 0;
    while (p < last && *p >= '0' && *p <= '9') {
      if (!seen_sig && *p != '0') {
        seen_sig = true;
        lead = -(frac_index + 1);
      }
      ++frac_index;
      ++p;
    }
  }
  if (sig_pos_int >= 0) lead = int_digits - 1 - sig_pos_int;
  long exponent = 0;
  if (p < last && (*p == 'e' || *p == 'E')) {
    ++p;
    bool negative = false;
    if (p < last && (*p == '-' || *p == '+')) {
      negative = (*p == '-');
      ++p;
    }
    while (p < last && *p >= '0' && *p <= '9') {
      // Clamp: only the sign of the sum matters, and `lead` is bounded by
      // the token length, so saturating at a million keeps it exact.
      if (exponent < 1000000) exponent = exponent * 10 + (*p - '0');
      ++p;
    }
    if (negative) exponent = -exponent;
  }
  return lead + exponent < 0;
}

/// Minimal recursive-descent scanner over one wire line.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : line_(line) {}

  void SkipWs() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < line_.size() && line_[pos_] == c;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= line_.size();
  }

  bool ReadString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < line_.size() && line_[pos_] != '"') {
      out->push_back(line_[pos_++]);
    }
    return Consume('"');
  }

  bool ReadInt(std::int64_t* out) {
    SkipWs();
    const std::size_t start = pos_;
    if (pos_ < line_.size() && (line_[pos_] == '-' || line_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start ||
        (pos_ == start + 1 && !std::isdigit(
                                  static_cast<unsigned char>(line_[start])))) {
      return false;
    }
    try {
      *out = std::stoll(line_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }

  /// JSON number: optional sign, digits, optional fraction/exponent. The
  /// token is cut at the first character no number can contain and handed
  /// to std::from_chars, so "1e" or "." fail instead of half-parsing.
  /// from_chars, unlike the strtod it replaced, never consults LC_NUMERIC:
  /// a host process in a comma-decimal locale (de_DE) parses "0.5"
  /// identically to the C locale (regression-tested in the conformance
  /// suite). Range policy is unchanged from the strtod era: magnitudes
  /// below the smallest subnormal parse as signed zero (underflow is a
  /// valid feature value; 1e-310 still parses to the exact subnormal),
  /// magnitudes no double can hold reject.
  bool ReadDouble(double* out) {
    SkipWs();
    const std::size_t start = pos_;
    while (pos_ < line_.size()) {
      const char c = line_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+' || c == '.' || c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    const char* first = line_.data() + start;
    const char* last = line_.data() + pos_;
    // strtod accepted an explicit leading '+'; from_chars does not.
    // Strip it so every line the old parser served stays valid.
    if (first < last && *first == '+') ++first;
    double value = 0.0;
    const std::from_chars_result result = std::from_chars(first, last, value);
    if (result.ptr != last) return false;
    if (result.ec == std::errc::result_out_of_range) {
      // One errc covers overflow AND underflow (value untouched either
      // way); the token's own magnitude tells them apart.
      if (!TokenUnderflows(first, last)) return false;
      value = (*first == '-') ? -0.0 : 0.0;
    } else if (result.ec != std::errc()) {
      return false;
    }
    *out = value;
    return true;
  }

 private:
  const std::string& line_;
  std::size_t pos_ = 0;
};

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n' || c == '\r' || c == '\t') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

bool ParseRequestBody(const std::string& line, WireCommand* command,
                      ServeRequest* request, std::string* error) {
  LineScanner scan(line);
  if (!scan.Consume('{')) {
    *error = "request must be a {...} object";
    return false;
  }
  bool have_node = false;
  std::string cmd;
  if (!scan.Peek('}')) {
    do {
      std::string key;
      if (!scan.ReadString(&key)) {
        *error = "expected a quoted key";
        return false;
      }
      if (!scan.Consume(':')) {
        *error = "expected ':' after key '" + key + "'";
        return false;
      }
      if (key == "id") {
        if (!scan.ReadInt(&request->id)) {
          *error = "key 'id' wants an integer";
          return false;
        }
      } else if (key == "node") {
        std::int64_t node = 0;
        if (!scan.ReadInt(&node)) {
          *error = "key 'node' wants an integer";
          return false;
        }
        // Negative ids are rejected here, not downstream: -1 is the
        // struct's "no node" sentinel, so letting it through would make
        // {"node": -1, "features": [...]} indistinguishable from a pure
        // feature query and dodge the either/or validation.
        if (node < 0) {
          *error = "key 'node' wants a non-negative integer";
          return false;
        }
        // Reject instead of narrowing: a wrapped id could land inside
        // [0, n) and silently serve the wrong node.
        if (node > std::numeric_limits<int>::max()) {
          *error = "key 'node' out of range";
          return false;
        }
        request->node = static_cast<int>(node);
        have_node = true;
      } else if (key == "edges") {
        if (!scan.Consume('[')) {
          *error = "key 'edges' wants an array of integers";
          return false;
        }
        request->has_edges = true;
        request->edges.clear();
        if (!scan.Peek(']')) {
          do {
            std::int64_t endpoint = 0;
            if (!scan.ReadInt(&endpoint)) {
              *error = "key 'edges' wants integers";
              return false;
            }
            if (endpoint < std::numeric_limits<int>::min() ||
                endpoint > std::numeric_limits<int>::max()) {
              *error = "key 'edges' entry out of range";
              return false;
            }
            request->edges.push_back(static_cast<int>(endpoint));
          } while (scan.Consume(','));
        }
        if (!scan.Consume(']')) {
          *error = "unterminated 'edges' array";
          return false;
        }
      } else if (key == "features") {
        if (!scan.Consume('[')) {
          *error = "key 'features' wants an array of numbers";
          return false;
        }
        request->has_features = true;
        request->features.clear();
        if (!scan.Peek(']')) {
          do {
            double value = 0.0;
            if (!scan.ReadDouble(&value)) {
              *error = "key 'features' wants numbers";
              return false;
            }
            request->features.push_back(value);
          } while (scan.Consume(','));
        }
        if (!scan.Consume(']')) {
          *error = "unterminated 'features' array";
          return false;
        }
      } else if (key == "model") {
        if (!scan.ReadString(&request->model)) {
          *error = "key 'model' wants a quoted string";
          return false;
        }
      } else if (key == "deadline_us") {
        std::int64_t deadline = 0;
        if (!scan.ReadInt(&deadline) || deadline <= 0) {
          *error = "key 'deadline_us' wants a positive integer";
          return false;
        }
        request->deadline_us = deadline;
      } else if (key == "path") {
        if (!scan.ReadString(&request->path)) {
          *error = "key 'path' wants a quoted string";
          return false;
        }
      } else if (key == "cmd") {
        if (!scan.ReadString(&cmd)) {
          *error = "key 'cmd' wants a quoted string";
          return false;
        }
      } else {
        *error = "unknown key '" + key +
                 "' (want id, node, edges, features, model, deadline_us, "
                 "path, or cmd)";
        return false;
      }
    } while (scan.Consume(','));
  }
  if (!scan.Consume('}') || !scan.AtEnd()) {
    *error = "trailing garbage after the request object";
    return false;
  }

  if (!cmd.empty()) {
    if (cmd == "stats") {
      *command = WireCommand::kStats;
      return true;
    }
    if (cmd == "list_models") {
      *command = WireCommand::kListModels;
      return true;
    }
    if (cmd == "quit") {
      *command = WireCommand::kQuit;
      return true;
    }
    if (cmd == "publish") {
      if (request->path.empty()) {
        *error = "cmd 'publish' needs a 'path' naming the artifact file";
        return false;
      }
      *command = WireCommand::kPublish;
      return true;
    }
    if (cmd == "drain") {
      *command = WireCommand::kDrain;
      return true;
    }
    if (cmd == "metrics") {
      *command = WireCommand::kMetrics;
      return true;
    }
    if (cmd == "trace") {
      *command = WireCommand::kTrace;
      return true;
    }
    if (cmd == "budget") {
      *command = WireCommand::kBudget;
      return true;
    }
    *error = "unknown cmd '" + cmd +
             "' (want stats, list_models, publish, budget, drain, metrics, "
             "trace, or quit)";
    return false;
  }
  if (!request->path.empty()) {
    *error = "key 'path' is only valid with cmd 'publish'";
    return false;
  }
  if (!have_node && !request->has_features) {
    *error = "query needs a 'node' or 'features' key";
    return false;
  }
  return true;
}

}  // namespace

bool RecoverWireId(const std::string& line, std::int64_t* id) {
  // Find a quoted "id" key anywhere and parse the integer after its colon.
  // This runs only on lines the real parser rejected, so it tolerates any
  // surrounding garbage — the goal is correlation, not validation.
  for (std::size_t at = line.find("\"id\""); at != std::string::npos;
       at = line.find("\"id\"", at + 1)) {
    std::size_t pos = at + 4;
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos >= line.size() || line[pos] != ':') continue;
    ++pos;
    const std::string tail = line.substr(pos);  // LineScanner holds a ref
    LineScanner scan(tail);
    if (scan.ReadInt(id)) return true;
  }
  return false;
}

bool ParseWireRequest(const std::string& line, WireCommand* command,
                      ServeRequest* request, std::string* error) {
  *command = WireCommand::kQuery;
  *request = ServeRequest{};
  if (ParseRequestBody(line, command, request, error)) return true;
  // The defect may precede the "id" key, in which case the in-order parse
  // never reached it; re-scan so the error line still correlates.
  std::int64_t recovered = 0;
  if (request->id == 0 && RecoverWireId(line, &recovered)) {
    request->id = recovered;
  }
  return false;
}

std::string FormatWireResponse(const ServeResponse& response) {
  std::ostringstream out;
  // Wire bytes must not depend on the host process's global locale (which
  // ostringstream captures at construction): pin the classic "C" locale so
  // an embedder calling std::locale::global(de_DE) cannot turn logits into
  // "0,5" or group integer digits.
  out.imbue(std::locale::classic());
  out.precision(17);
  out << "{\"id\": " << response.id << ", \"node\": " << response.node
      << ", \"label\": " << response.label << ", \"logits\": [";
  for (std::size_t j = 0; j < response.logits.size(); ++j) {
    out << (j == 0 ? "" : ", ") << response.logits[j];
  }
  out << "]}";
  return out.str();
}

std::string FormatWireError(std::int64_t id, const std::string& error) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "{\"id\": " << id << ", \"error\": \"" << EscapeJson(error)
      << "\"}";
  return out.str();
}

std::string FormatWireError(std::int64_t id, ServeErrorCode code,
                            const std::string& error) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "{\"id\": " << id << ", \"code\": \"" << ServeErrorCodeName(code)
      << "\", \"error\": \"" << EscapeJson(error) << "\"}";
  return out.str();
}

}  // namespace gcon
