#include "serve/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

namespace gcon {
namespace {

constexpr const char* kFaultNames[kNumFaults] = {
    "queue_full", "slow_handler", "mid_batch_throw", "torn_socket",
    "swap_during_batch", "torn_ledger_write",
};

int FaultIndexByName(const std::string& name) {
  for (int f = 0; f < kNumFaults; ++f) {
    if (name == kFaultNames[f]) return f;
  }
  return -1;
}

}  // namespace

const char* FaultName(Fault fault) {
  return kFaultNames[static_cast<int>(fault)];
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

FaultInjector::FaultInjector() {
  const char* spec = std::getenv("GCON_FAULTS");
  if (spec != nullptr && spec[0] != '\0') {
    ArmFromSpec(spec);
  }
}

void FaultInjector::Arm(Fault fault, int count) {
  if (count <= 0) return;
  remaining_[static_cast<std::size_t>(fault)].fetch_add(
      count, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

bool FaultInjector::ArmFromSpec(const std::string& spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string entry =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!entry.empty()) {
      const std::size_t colon = entry.find(':');
      const std::string name = entry.substr(0, colon);
      int count = 1;
      if (colon != std::string::npos) {
        try {
          count = std::stoi(entry.substr(colon + 1));
        } catch (const std::exception&) {
          return false;
        }
        if (count < 1) return false;
      }
      const int index = FaultIndexByName(name);
      if (index < 0) return false;
      Arm(static_cast<Fault>(index), count);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

bool FaultInjector::ShouldFire(Fault fault) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::atomic<int>& remaining = remaining_[static_cast<std::size_t>(fault)];
  int count = remaining.load(std::memory_order_relaxed);
  while (count > 0) {
    if (remaining.compare_exchange_weak(count, count - 1,
                                        std::memory_order_acq_rel)) {
      fired_[static_cast<std::size_t>(fault)].fetch_add(
          1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void FaultInjector::SetCallback(Fault fault, std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  callbacks_[static_cast<std::size_t>(fault)] = std::move(callback);
}

void FaultInjector::FireCallback(Fault fault) {
  if (!ShouldFire(fault)) return;
  std::function<void()> callback;
  {
    std::lock_guard<std::mutex> lock(callback_mu_);
    callback = callbacks_[static_cast<std::size_t>(fault)];
  }
  if (callback) callback();
}

void FaultInjector::MaybeSleepSlowHandler() {
  if (!ShouldFire(Fault::kSlowHandler)) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(slow_handler_us()));
}

std::uint64_t FaultInjector::fired(Fault fault) const {
  return fired_[static_cast<std::size_t>(fault)].load(
      std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  for (int f = 0; f < kNumFaults; ++f) {
    remaining_[static_cast<std::size_t>(f)].store(0,
                                                  std::memory_order_relaxed);
    fired_[static_cast<std::size_t>(f)].store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(callback_mu_);
    for (auto& callback : callbacks_) callback = nullptr;
  }
  slow_handler_us_.store(20000, std::memory_order_relaxed);
  armed_.store(false, std::memory_order_release);
}

}  // namespace gcon
