// Name -> InferenceSession routing for the multi-model inference server.
//
// A ModelRouter owns several named InferenceSessions — one per published
// artifact the process serves — and resolves the wire protocol's "model"
// field to one of them. Construction validates the set (non-empty, unique
// wire-safe names); the NAME SET is immutable after that, so Resolve /
// Find / NameList stay lock-free forever.
//
// The sessions themselves are hot-swappable: each slot holds a
// shared_ptr<const InferenceSession>, and Publish(name, session) flips the
// pointer atomically (under a short mutex) to a replacement built over the
// same serving population. In-flight batches keep working against the
// snapshot they took via SessionRef() — the old session retires when the
// last such snapshot releases it, which is the "drain old" half of a
// zero-dropped-queries hot swap. Every batch takes exactly one snapshot,
// so a single batch never mixes two versions and the bitwise-identity
// invariant holds on each side of the flip.
//
// The first-listed model is the default: a request that names no model
// (every pre-multi-model client) routes there, which is what makes a
// one-model router behave exactly like the old single-session server.
#ifndef GCON_SERVE_ROUTER_H_
#define GCON_SERVE_ROUTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/inference_session.h"

namespace gcon {

class ModelRouter {
 public:
  struct NamedModel {
    std::string name;
    InferenceSession session;
  };

  /// Throws std::invalid_argument when `models` is empty, a name repeats,
  /// or a name is empty / contains characters the wire format cannot echo
  /// verbatim (quotes, backslashes, whitespace, control bytes).
  explicit ModelRouter(std::vector<NamedModel> models);

  int size() const { return static_cast<int>(slots_.size()); }
  const std::string& name(int index) const {
    return slots_[static_cast<std::size_t>(index)].name;
  }
  /// The currently published session for `index`. The reference is valid
  /// until the next Publish against this name — code that works across a
  /// possible swap window (a batch handler, anything off the construction
  /// path) must hold a SessionRef snapshot instead.
  const InferenceSession& session(int index) const {
    return *SessionRef(index);
  }
  /// Owning snapshot of the published session: keeps that version alive
  /// (and its answers bitwise stable) however many Publish calls land
  /// while the caller works.
  std::shared_ptr<const InferenceSession> SessionRef(int index) const;
  const std::string& default_model() const { return slots_.front().name; }

  /// Atomic hot-swap: publishes `session` as the new version of `name`
  /// (which must already be served — the name set is fixed at startup).
  /// The replacement must serve the same population (node count and
  /// feature dim), so every request validated against the old version is
  /// still valid when a batch executes it against the new one. Returns the
  /// retired session (callers usually drop it; in-flight batches keep it
  /// alive until they finish). Throws std::invalid_argument on an unknown
  /// name or a population mismatch.
  std::shared_ptr<const InferenceSession> Publish(const std::string& name,
                                                  InferenceSession session);

  /// Index for `model` ("" means the default model). Throws
  /// std::invalid_argument naming the unknown model and listing what is
  /// being served — the message a client sees on its error line.
  int Resolve(const std::string& model) const;

  /// Index for `model`, or -1 when unknown (no throw).
  int Find(const std::string& model) const;

  /// Comma-separated model names, in registration order (error messages,
  /// the serve banner).
  std::string NameList() const;

  /// The {"cmd": "list_models"} response: every model's name, serving
  /// population size, class count, and whether it runs the per-query
  /// Eq. (16) path (feature-carrying queries require it). Deterministic —
  /// the conformance suite goldens it.
  std::string ListModelsJson() const;

 private:
  struct Slot {
    std::string name;
    std::shared_ptr<const InferenceSession> session;
  };

  /// Guards each slot's session pointer (names and the slot vector itself
  /// never change after construction). Held only for pointer reads/flips,
  /// never across inference.
  mutable std::mutex swap_mu_;
  std::vector<Slot> slots_;
  std::map<std::string, int> by_name_;
};

}  // namespace gcon

#endif  // GCON_SERVE_ROUTER_H_
