// Name -> InferenceSession routing for the multi-model inference server.
//
// A ModelRouter owns several named, immutable InferenceSessions — one per
// published artifact the process serves — and resolves the wire protocol's
// "model" field to one of them. Construction validates the set (non-empty,
// unique wire-safe names); after that every method is const and lock-free,
// so the server's submit path and admin verbs read it concurrently without
// synchronization. The first-listed model is the default: a request that
// names no model (every pre-multi-model client) routes there, which is
// what makes a one-model router behave exactly like the old single-session
// server.
#ifndef GCON_SERVE_ROUTER_H_
#define GCON_SERVE_ROUTER_H_

#include <map>
#include <string>
#include <vector>

#include "serve/inference_session.h"

namespace gcon {

class ModelRouter {
 public:
  struct NamedModel {
    std::string name;
    InferenceSession session;
  };

  /// Throws std::invalid_argument when `models` is empty, a name repeats,
  /// or a name is empty / contains characters the wire format cannot echo
  /// verbatim (quotes, backslashes, whitespace, control bytes).
  explicit ModelRouter(std::vector<NamedModel> models);

  int size() const { return static_cast<int>(models_.size()); }
  const std::string& name(int index) const { return models_[index].name; }
  const InferenceSession& session(int index) const {
    return models_[index].session;
  }
  const std::string& default_model() const { return models_.front().name; }

  /// Index for `model` ("" means the default model). Throws
  /// std::invalid_argument naming the unknown model and listing what is
  /// being served — the message a client sees on its error line.
  int Resolve(const std::string& model) const;

  /// Index for `model`, or -1 when unknown (no throw).
  int Find(const std::string& model) const;

  /// Comma-separated model names, in registration order (error messages,
  /// the serve banner).
  std::string NameList() const;

  /// The {"cmd": "list_models"} response: every model's name, serving
  /// population size, class count, and whether it runs the per-query
  /// Eq. (16) path (feature-carrying queries require it). Deterministic —
  /// the conformance suite goldens it.
  std::string ListModelsJson() const;

 private:
  std::vector<NamedModel> models_;
  std::map<std::string, int> by_name_;
};

}  // namespace gcon

#endif  // GCON_SERVE_ROUTER_H_
