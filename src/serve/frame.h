// Length-prefixed binary frame codec for `gcon_cli serve` — the fast
// transport next to the newline-JSON one (serve/wire.h). JSON stays the
// admin/debug format (its admin verbs answer the same JSON documents over
// either transport); binary exists so feature-carrying (inductive) queries
// stop paying a text codec per feature: the payload ships little-endian
// f32 features that the serve path reads *in place* — the connection's
// frame buffer is pinned (ServeRequest::frame_pin) and the f32 values are
// widened straight into the packed GEMM panel, with no intermediate
// vector and no strtod.
//
// Transport negotiation is one byte deep: a binary client's very first
// byte is kFramePreamble (0xC0), which no JSON line can start with, so
// the server sniffs byte one and picks the codec per connection.
//
//   client -> [C0 'G' 'C' 'O' 'N' 'B' ver_lo ver_hi]      (hello, 8 bytes)
//   server -> [C0 'G' 'C' 'O' 'N' 'B' ver_lo ver_hi]      (negotiated ack)
//   client -> frame*                                       (pipelined)
//   server -> one response/error frame per request frame, order preserved;
//             admin frames answer a kAdminReply (or error) frame
//
// The negotiated version is min(client, kFrameVersion); a client hello
// carrying version 0 (or a bad magic) gets an error frame and a
// disconnect. Every frame after the hello is
//
//   [u32 payload_len (LE)] [u8 type] [payload_len bytes]
//
// with payload_len capped at kMaxFrameBytes (== kMaxWireLineBytes — the
// two transports share one framing bound). Multi-byte integers and floats
// are little-endian; offsets below are into the payload. Declared counts
// must consume the payload exactly — a frame with slack or truncated
// arrays is rejected with a structured `malformed_frame` error whose id
// field echoes the request id whenever the payload reached offset 8.
//
// Request (type 0x10) — header 36 bytes, arrays 4-byte aligned after it:
//   off  0  i64  id
//   off  8  i64  deadline_us        (0 = none; negative rejected)
//   off 16  i32  node               (-1 = absent; < -1 rejected)
//   off 20  u32  flags              (bit0 = has_edges, bit1 = has_features)
//   off 24  u32  edge_count         (0 unless bit0)
//   off 28  u32  feature_dim        (0 unless bit1)
//   off 32  u32  model_len          (0 = default model)
//   off 36  i32  edges[edge_count]
//   then    f32  features[feature_dim]   (4-aligned by construction)
//   then    char model[model_len]        (name bytes, last)
//
// Response (type 0x11) — header 24 bytes, logits 8-byte aligned:
//   off  0  i64  id
//   off  8  i32  node               (-1 for feature-carrying queries)
//   off 12  i32  label
//   off 16  u32  num_logits
//   off 20  u32  reserved           (zero)
//   off 24  f64  logits[num_logits]
// Logits are f64 bit patterns: a binary response is memcmp-identical to
// the offline `predict` row, exactly like the JSON transport's 17-digit
// round-trip (only *request* features are f32 — the quantization a client
// opts into by choosing the binary transport is applied before the
// encoder, identically to a JSON client sending the same widened values).
//
// Error (type 0x12):
//   off  0  i64  id                 (0 when no request id was recoverable)
//   off  8  u32  code               (WireErrorCode encoding, below)
//   off 12  u32  message_len
//   off 16  char message[message_len]
//
// Admin (type 0x20) and its reply (type 0x21):
//   admin:  off 0 u32 verb; off 4 u32 model_len; off 8 u32 path_len;
//           then model bytes, then path bytes
//   reply:  the whole payload is the same JSON document the newline
//           transport answers (stats / list_models / publish / drain) —
//           admin stays JSON-bodied on purpose; it is the debug surface.
//
// ServeErrorCode binary encodings (wire-stable, locked by the binary
// conformance goldens): 0 = uncoded (prose-only rejection, e.g. unknown
// model), 1 = overloaded, 2 = deadline_exceeded, 3 = draining,
// 4 = malformed_frame, 5 = budget_exhausted.
#ifndef GCON_SERVE_FRAME_H_
#define GCON_SERVE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/inference_session.h"
#include "serve/serve_error.h"
#include "serve/wire.h"

namespace gcon {

/// First byte of a binary connection (and of every hello). 0xC0 is not
/// printable ASCII and cannot begin a JSON wire line, so one peeked byte
/// decides the transport.
inline constexpr unsigned char kFramePreamble = 0xC0;

/// Magic after the preamble byte: "GCONB".
inline constexpr char kFrameMagic[5] = {'G', 'C', 'O', 'N', 'B'};

/// Highest protocol version this build speaks. Negotiation is
/// min(client, server); version 0 is invalid.
inline constexpr std::uint16_t kFrameVersion = 1;

/// Hello message size (preamble + magic + u16 version), both directions.
inline constexpr std::size_t kFrameHelloBytes = 8;

/// Frame header size (u32 payload_len + u8 type).
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Hard cap on one frame payload — the same bound as a JSON wire line, so
/// neither transport lets a client that lost framing pin server memory.
inline constexpr std::size_t kMaxFrameBytes = kMaxWireLineBytes;

/// Frame types (the u8 after the length prefix).
enum class FrameType : std::uint8_t {
  kRequest = 0x10,     ///< client -> server: one ServeRequest
  kResponse = 0x11,    ///< server -> client: one ServeResponse
  kError = 0x12,       ///< server -> client: a rejection (coded)
  kAdmin = 0x20,       ///< client -> server: stats/list_models/publish/…
  kAdminReply = 0x21,  ///< server -> client: the admin verb's JSON body
};

/// Admin verbs a kAdmin frame can carry (the binary spelling of the JSON
/// "cmd" vocabulary).
enum class AdminVerb : std::uint32_t {
  kStats = 1,
  kListModels = 2,
  kQuit = 3,
  kPublish = 4,  ///< model = target name (may be empty), path = artifact
  kDrain = 5,
  kMetrics = 6,  ///< reply payload is Prometheus text, not JSON
  kTrace = 7,    ///< last sampled span timelines as one JSON document
  kBudget = 8,   ///< per-model DP budget totals/caps (the "budget" cmd)
};

/// A decoded error frame (client-side decoding; servers encode).
struct FrameError {
  std::int64_t id = 0;
  std::uint32_t code = 0;  ///< WireErrorCode encoding; 0 = uncoded
  std::string message;
};

/// The wire-stable binary encoding of a ServeErrorCode (see file comment).
std::uint32_t WireErrorCode(ServeErrorCode code);

/// Hello bytes for `version` (either direction).
std::string EncodeHello(std::uint16_t version);

/// Validates a hello (preamble + magic) and extracts the peer's version.
/// Returns false with *error set on a malformed hello; a version of 0 is
/// reported as malformed here so callers reject it uniformly.
bool ParseHello(const char* bytes, std::size_t len, std::uint16_t* version,
                std::string* error);

/// Validates a frame header: known type, payload_len <= kMaxFrameBytes.
/// `bytes` must hold kFrameHeaderBytes.
bool ParseFrameHeader(const char* bytes, FrameType* type,
                      std::uint32_t* payload_len, std::string* error);

/// Encodes a complete request frame (header + payload) from a request
/// whose features, if any, live in the owning `features` vector — doubles
/// are narrowed to f32 for the wire, which is the binary transport's
/// contract. Client-side (tests, bench, external clients).
std::string EncodeRequestFrame(const ServeRequest& request);

/// Decodes a request payload *in place*: on success, a feature-carrying
/// request's ServeRequest::feature_view points INTO `payload` (the caller
/// owns keeping those bytes alive — the server pins the frame buffer via
/// ServeRequest::frame_pin; see inference_session.h). `payload` must be
/// 4-byte aligned so the f32 view is loadable. On failure returns false
/// with *error set and request->id carrying the id whenever the payload
/// reached offset 8 — structured error correlation, the binary analogue
/// of RecoverWireId.
bool ParseRequestPayload(const char* payload, std::size_t len,
                         ServeRequest* request, std::string* error);

/// Encodes a complete response frame (header + payload).
std::string EncodeResponseFrame(const ServeResponse& response);

/// Decodes a response payload (client-side).
bool ParseResponsePayload(const char* payload, std::size_t len,
                          ServeResponse* response, std::string* error);

/// Encodes a complete error frame; `code` is a WireErrorCode encoding.
std::string EncodeErrorFrame(std::int64_t id, std::uint32_t code,
                             const std::string& message);

/// Decodes an error payload (client-side).
bool ParseErrorPayload(const char* payload, std::size_t len, FrameError* out,
                       std::string* error);

/// Encodes a complete admin frame.
std::string EncodeAdminFrame(AdminVerb verb, const std::string& model = "",
                             const std::string& path = "");

/// Decodes an admin payload.
bool ParseAdminPayload(const char* payload, std::size_t len, AdminVerb* verb,
                       std::string* model, std::string* path,
                       std::string* error);

/// Encodes a complete admin-reply frame wrapping a JSON document.
std::string EncodeAdminReplyFrame(const std::string& json);

}  // namespace gcon

#endif  // GCON_SERVE_FRAME_H_
