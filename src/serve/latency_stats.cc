#include "serve/latency_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gcon {

LatencyStats::LatencyStats() : count_(0), sum_us_(0), max_us_(0) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int LatencyStats::BucketIndex(std::uint64_t us) {
  if (us < kSubBuckets) {
    // Values 0..7: the first octave is exact (sub-bucket == value).
    return static_cast<int>(us);
  }
  int octave = 63 - __builtin_clzll(us);
  if (octave >= kOctaves) {
    return kBuckets - 1;
  }
  // Three bits below the leading one select the linear sub-bucket.
  const int sub =
      static_cast<int>((us >> (octave - 3)) & (kSubBuckets - 1));
  return octave * kSubBuckets + sub;
}

std::uint64_t LatencyStats::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) {
    return static_cast<std::uint64_t>(bucket);
  }
  const int octave = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  // Largest value whose top bits are (1, sub): one below the next
  // sub-bucket's start. Shift up before the /8 so octaves 1-2 (unreachable
  // from BucketIndex but inside the public contract) stay defined.
  return ((static_cast<std::uint64_t>(kSubBuckets + sub + 1) << octave) >>
          3) -
         1;
}

void LatencyStats::Record(double us) {
  const std::uint64_t v =
      us <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(us));
  buckets_[static_cast<std::size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_us_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

double LatencyStats::PercentileLocked(
    const std::array<std::uint64_t, kBuckets>& counts, std::uint64_t total,
    double q) const {
  if (total == 0) return 0.0;
  const std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[static_cast<std::size_t>(b)];
    if (seen >= std::max<std::uint64_t>(target, 1)) {
      return static_cast<double>(BucketUpperBound(b));
    }
  }
  return static_cast<double>(BucketUpperBound(kBuckets - 1));
}

LatencyStats::Snapshot LatencyStats::Summarize() const {
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    total += counts[static_cast<std::size_t>(b)];
  }
  Snapshot snap;
  snap.count = total;
  if (total > 0) {
    snap.mean_us = static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
                   static_cast<double>(total);
  }
  snap.max_us = static_cast<double>(max_us_.load(std::memory_order_relaxed));
  // Bucket upper bounds can overshoot the true maximum; clamp so the
  // reported quantiles never exceed an actually observed value.
  snap.p50_us = std::min(PercentileLocked(counts, total, 0.50), snap.max_us);
  snap.p95_us = std::min(PercentileLocked(counts, total, 0.95), snap.max_us);
  snap.p99_us = std::min(PercentileLocked(counts, total, 0.99), snap.max_us);
  return snap;
}

void LatencyStats::Add(const LatencyStats& other) {
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = other.buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (n > 0) {
      buckets_[static_cast<std::size_t>(b)].fetch_add(
          n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_us_.fetch_add(other.sum_us_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  const std::uint64_t other_max =
      other.max_us_.load(std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_us_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

void LatencyStats::Reset() {
  // Release stores: a reader that acquires one of these zeros must not see
  // stale pre-reset state published through it. Record() may still land
  // either side of the sweep (see header) — that is approximation, not a
  // data race: every access stays atomic.
  for (auto& b : buckets_) b.store(0, std::memory_order_release);
  count_.store(0, std::memory_order_release);
  sum_us_.store(0, std::memory_order_release);
  max_us_.store(0, std::memory_order_release);
}

std::array<std::uint64_t, LatencyStats::kBuckets> LatencyStats::BucketCounts()
    const {
  std::array<std::uint64_t, kBuckets> counts;
  for (int b = 0; b < kBuckets; ++b) {
    counts[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  }
  return counts;
}

std::uint64_t LatencyStats::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyStats::SumUs() const {
  return sum_us_.load(std::memory_order_relaxed);
}

std::string LatencyStats::Snapshot::ToString() const {
  std::ostringstream out;
  out << "count=" << count << " mean=" << mean_us << "us p50=" << p50_us
      << "us p95=" << p95_us << "us p99=" << p99_us << "us max=" << max_us
      << "us";
  return out.str();
}

}  // namespace gcon
