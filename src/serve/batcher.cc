#include "serve/batcher.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace gcon {
namespace {

// A lull this long with no new arrival while a batch is filling means the
// burst is over: ship what we have instead of idling out the full deadline.
// Short on purpose — every microsecond spent hoping for stragglers is a
// microsecond every already-queued client waits.
constexpr std::chrono::microseconds kArrivalLull(5);

[[noreturn]] void BadOption(const char* name, int value) {
  throw std::invalid_argument("serve option '" + std::string(name) +
                              "' must be >= 1 (got " + std::to_string(value) +
                              ")");
}

}  // namespace

void ServeOptions::Validate() const {
  if (threads < 1) BadOption("threads", threads);
  if (max_batch < 1) BadOption("max_batch", max_batch);
  if (max_wait_us < 1) BadOption("max_wait_us", max_wait_us);
}

MicroBatcher::MicroBatcher(ServeOptions options, BatchHandler handler)
    : options_(options), handler_(std::move(handler)) {
  options_.Validate();
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) {
    workers_.emplace_back(&MicroBatcher::WorkerMain, this);
  }
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    arrival_cv_.notify_all();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::future<ServeResponse> MicroBatcher::Submit(ServeRequest request) {
  auto pending = std::make_unique<PendingQuery>();
  pending->request = std::move(request);
  pending->enqueued = std::chrono::steady_clock::now();
  std::future<ServeResponse> future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("MicroBatcher: Submit after Stop");
    }
    queue_.push_back(std::move(pending));
  }
  arrival_cv_.notify_one();
  return future;
}

std::vector<std::unique_ptr<PendingQuery>> MicroBatcher::TakeBatchLocked(
    std::unique_lock<std::mutex>* lock) {
  const std::size_t max_batch = static_cast<std::size_t>(options_.max_batch);
  for (;;) {
    arrival_cv_.wait(*lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // stopping and drained

    // An existing backlog already amortizes the batch overhead: ship it
    // now — delaying it only idles every queued client (a straggler wait
    // here measured as a 3x throughput LOSS under closed-loop load). Only
    // a lone query is worth holding back, briefly, for company.
    if (queue_.size() == 1 && max_batch > 1 && !stopping_) {
      const auto deadline =
          queue_.front()->enqueued +
          std::chrono::microseconds(options_.max_wait_us);
      while (queue_.size() < max_batch && !stopping_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        const auto step = std::min<std::chrono::steady_clock::duration>(
            deadline - now, kArrivalLull);
        const std::size_t before = queue_.size();
        arrival_cv_.wait_for(*lock, step);
        if (queue_.size() <= before) break;  // lull — ship what we have
      }
    }
    if (queue_.empty()) continue;  // a peer worker took the backlog

    std::vector<std::unique_ptr<PendingQuery>> batch;
    const std::size_t take = std::min(queue_.size(), max_batch);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (!queue_.empty()) {
      // Leftovers belong to another worker; wake one.
      arrival_cv_.notify_one();
    }
    return batch;
  }
}

void MicroBatcher::WorkerMain() {
  for (;;) {
    std::vector<std::unique_ptr<PendingQuery>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch = TakeBatchLocked(&lock);
      if (batch.empty()) return;
      ++batches_run_;
      queries_served_ += batch.size();
    }

    std::vector<PendingQuery*> views;
    views.reserve(batch.size());
    for (auto& p : batch) views.push_back(p.get());
    try {
      handler_(views);
      const auto done = std::chrono::steady_clock::now();
      for (auto& p : batch) {
        p->response.id = p->request.id;
        p->response.node = p->request.node;
        p->response.latency_us =
            std::chrono::duration<double, std::micro>(done - p->enqueued)
                .count();
        latency_.Record(p->response.latency_us);
        p->promise.set_value(std::move(p->response));
      }
    } catch (...) {
      // Validation happens at Submit, so this is a handler bug or OOM:
      // surface it on every affected query instead of hanging the futures.
      const std::exception_ptr error = std::current_exception();
      for (auto& p : batch) {
        p->promise.set_exception(error);
      }
    }
  }
}

void MicroBatcher::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  queries_served_ = 0;
  batches_run_ = 0;
  latency_.Reset();
}

std::uint64_t MicroBatcher::queries_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_served_;
}

std::uint64_t MicroBatcher::batches_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_run_;
}

}  // namespace gcon
