#include "serve/batcher.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/fault_injection.h"

namespace gcon {
namespace {

// A lull this long with no new arrival while a batch is filling means the
// burst is over: ship what we have instead of idling out the full deadline.
// Short on purpose — every microsecond spent hoping for stragglers is a
// microsecond every already-queued client waits.
constexpr std::chrono::microseconds kArrivalLull(5);

[[noreturn]] void BadOption(const char* name, int value) {
  throw std::invalid_argument("serve option '" + std::string(name) +
                              "' must be >= 1 (got " + std::to_string(value) +
                              ")");
}

}  // namespace

void ServeOptions::Validate() const {
  if (threads < 1) BadOption("threads", threads);
  if (max_batch < 1) BadOption("max_batch", max_batch);
  if (max_wait_us < 1) BadOption("max_wait_us", max_wait_us);
  if (max_queue < 0) {
    throw std::invalid_argument(
        "serve option 'max_queue' must be >= 0 (0 = unbounded; got " +
        std::to_string(max_queue) + ")");
  }
  if (io_timeout_ms < 1) BadOption("io_timeout_ms", io_timeout_ms);
  if (budget_cap < 0) {
    throw std::invalid_argument(
        "serve option 'budget_cap' must be >= 0 (0 = unlimited; got " +
        std::to_string(budget_cap) + ")");
  }
}

MicroBatcher::MicroBatcher(ServeOptions options, BatchHandler handler)
    : MicroBatcher(options, std::vector<BatchHandler>{std::move(handler)}) {}

MicroBatcher::MicroBatcher(ServeOptions options,
                           std::vector<BatchHandler> handlers,
                           std::vector<std::string> queue_labels)
    : options_(options) {
  options_.Validate();
  if (handlers.empty()) {
    throw std::invalid_argument("MicroBatcher needs at least one handler");
  }
  queues_.reserve(handlers.size());
  auto& registry = obs::MetricsRegistry::Global();
  for (BatchHandler& handler : handlers) {
    queues_.push_back(std::make_unique<Queue>(std::move(handler)));
    Queue& queue = *queues_.back();
    const std::size_t index = queues_.size() - 1;
    const std::string model = index < queue_labels.size()
                                  ? queue_labels[index]
                                  : "q" + std::to_string(index);
    QueueMetrics& m = queue.metrics;
    m.accepted = registry.counter("gcon_serve_accepted_total",
                                  "Queries admitted to a model queue.",
                                  {{"model", model}});
    const auto rejected = [&](ServeErrorCode code) {
      return registry.counter(
          "gcon_serve_rejected_total",
          "Queries rejected, by ServeError code.",
          {{"model", model}, {"code", ServeErrorCodeName(code)}});
    };
    m.rejected_overload = rejected(ServeErrorCode::kOverloaded);
    m.rejected_deadline = rejected(ServeErrorCode::kDeadlineExceeded);
    m.rejected_draining = rejected(ServeErrorCode::kDraining);
    m.depth = registry.gauge("gcon_serve_queue_depth",
                             "Currently pending queries per model queue.",
                             {{"model", model}});
    m.peak = registry.gauge(
        "gcon_serve_queue_peak",
        "High-water mark of the pending queue since server start.",
        {{"model", model}});
    m.batch_size = registry.histogram(
        "gcon_serve_batch_size",
        "Queries coalesced per handler call (batch-size distribution).",
        {{"model", model}});
  }
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) {
    workers_.emplace_back(&MicroBatcher::WorkerMain, this);
  }
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    arrival_cv_.notify_all();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void MicroBatcher::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  // Wake any worker holding a lone query back for company: with admission
  // closed no company is coming, so ship what is queued now.
  arrival_cv_.notify_all();
}

void MicroBatcher::Drain() {
  BeginDrain();
  Stop();
}

std::future<ServeResponse> MicroBatcher::Submit(std::size_t queue,
                                                ServeRequest request) {
  GCON_CHECK_LT(queue, queues_.size());
  auto pending = std::make_unique<PendingQuery>();
  pending->request = std::move(request);
  pending->enqueued = std::chrono::steady_clock::now();
  if (pending->request.deadline_us != 0) {
    pending->has_deadline = true;
    pending->deadline =
        pending->enqueued +
        std::chrono::microseconds(pending->request.deadline_us);
  }
  std::future<ServeResponse> future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    Queue& target = *queues_[queue];
    if (stopping_ || draining_) {
      target.metrics.rejected_draining->Increment();
      throw ServeError(ServeErrorCode::kDraining,
                       "server draining; not accepting new queries");
    }
    // Admission control: reject rather than queue without bound. The
    // injected variant lets the chaos/conformance suites hit this path
    // deterministically without racing a real flood.
    const bool queue_full =
        options_.max_queue > 0 &&
        target.pending.size() >= static_cast<std::size_t>(options_.max_queue);
    if (queue_full ||
        FaultInjector::Global().ShouldFire(Fault::kQueueFull)) {
      ++target.rejected_overload;
      target.metrics.rejected_overload->Increment();
      throw ServeError(ServeErrorCode::kOverloaded,
                       "model queue full (max_queue=" +
                           std::to_string(options_.max_queue) +
                           "); retry later");
    }
    if (pending->request.trace) {
      pending->request.trace->Stamp(obs::kMarkEnqueue);
    }
    target.pending.push_back(std::move(pending));
    ++total_pending_;
    if (target.pending.size() > target.queue_peak) {
      target.queue_peak = target.pending.size();
    }
    // Registry mirrors of the admission counters are refreshed at scrape
    // time (RefreshObsMetrics) — a per-query registry touch inside this
    // critical section is measurable against the obs_overhead_qps_ratio
    // gate; a plain increment under the already-held mutex is not.
    ++target.accepted_total;
  }
  arrival_cv_.notify_one();
  return future;
}

MicroBatcher::Queue* MicroBatcher::TakeBatchLocked(
    std::unique_lock<std::mutex>* lock,
    std::vector<std::unique_ptr<PendingQuery>>* batch) {
  const std::size_t max_batch = static_cast<std::size_t>(options_.max_batch);
  for (;;) {
    // Bounded wait, not an indefinite one: glibc condvars before 2.38 can
    // lose a broadcast to a stolen wakeup (sourceware bug 25847), which
    // left an idle worker asleep through Stop()'s notify and hung a
    // SIGTERM drain until a second signal's spurious wake rescued it.
    // Rechecking the predicate every 50ms turns that lost wakeup into a
    // bounded delay; an idle worker waking 20x/s costs nothing.
    while (!(stopping_ || total_pending_ > 0)) {
      arrival_cv_.wait_for(*lock, std::chrono::milliseconds(50));
    }
    if (total_pending_ == 0) return nullptr;  // stopping and drained

    // FIFO across models: serve the queue whose head waited longest.
    Queue* queue = nullptr;
    for (auto& candidate : queues_) {
      if (candidate->pending.empty()) continue;
      if (queue == nullptr || candidate->pending.front()->enqueued <
                                  queue->pending.front()->enqueued) {
        queue = candidate.get();
      }
    }

    // An existing backlog already amortizes the batch overhead: ship it
    // now — delaying it only idles every queued client (a straggler wait
    // here measured as a 3x throughput LOSS under closed-loop load). Only
    // a lone query — lone across EVERY queue; pending work for another
    // model must not idle this worker — is worth holding back, briefly,
    // for company.
    if (total_pending_ == 1 && max_batch > 1 && !stopping_ && !draining_) {
      const auto deadline =
          queue->pending.front()->enqueued +
          std::chrono::microseconds(options_.max_wait_us);
      while (queue->pending.size() < max_batch && !stopping_ && !draining_ &&
             total_pending_ == queue->pending.size()) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        const auto step = std::min<std::chrono::steady_clock::duration>(
            deadline - now, kArrivalLull);
        const std::size_t before = total_pending_;
        arrival_cv_.wait_for(*lock, step);
        if (total_pending_ <= before) break;  // lull — ship what we have
      }
    }
    if (queue->pending.empty()) continue;  // a peer worker took the backlog

    const std::size_t take = std::min(queue->pending.size(), max_batch);
    batch->clear();
    batch->reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch->push_back(std::move(queue->pending.front()));
      queue->pending.pop_front();
    }
    total_pending_ -= take;
    if (total_pending_ > 0) {
      // Leftovers (this queue's or another's) belong to a peer; wake one.
      arrival_cv_.notify_one();
    }
    return queue;
  }
}

void MicroBatcher::WorkerMain() {
  for (;;) {
    std::vector<std::unique_ptr<PendingQuery>> batch;
    Queue* queue = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue = TakeBatchLocked(&lock, &batch);
      if (queue == nullptr) return;
    }
    for (const auto& p : batch) {
      if (p->request.trace) p->request.trace->Stamp(obs::kMarkBatchForm);
    }

    // Chaos site: a stalled handler (lock contention, page fault storm,
    // a slow downstream) delays execution past queued deadlines — the
    // sleep sits before the deadline check so injected slowness expires
    // deadlined queries exactly like real slowness would.
    FaultInjector::Global().MaybeSleepSlowHandler();

    // Drop expired queries now, immediately before the GEMM: their
    // clients have given up, so spending batch rows on them only delays
    // everyone still waiting. Their futures resolve with a structured
    // deadline_exceeded error, never silence.
    std::vector<std::unique_ptr<PendingQuery>> expired;
    {
      bool any_deadline = false;
      for (const auto& p : batch) any_deadline |= p->has_deadline;
      if (any_deadline) {
        const auto now = std::chrono::steady_clock::now();
        std::size_t keep = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (batch[i]->has_deadline && now >= batch[i]->deadline) {
            expired.push_back(std::move(batch[i]));
          } else {
            if (keep != i) batch[keep] = std::move(batch[i]);
            ++keep;
          }
        }
        batch.resize(keep);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue->rejected_deadline += expired.size();
      if (!batch.empty()) {
        ++queue->batches_run;
        queue->queries_served += batch.size();
      }
    }
    if (!expired.empty()) {
      queue->metrics.rejected_deadline->Increment(expired.size());
    }
    if (!batch.empty()) {
      queue->metrics.batch_size->Observe(static_cast<double>(batch.size()));
    }
    for (auto& p : expired) {
      p->promise.set_exception(std::make_exception_ptr(
          ServeError(ServeErrorCode::kDeadlineExceeded,
                     "query deadline expired before execution")));
    }
    if (batch.empty()) continue;

    std::vector<PendingQuery*> views;
    views.reserve(batch.size());
    for (auto& p : batch) views.push_back(p.get());
    try {
      if (FaultInjector::Global().ShouldFire(Fault::kMidBatchThrow)) {
        throw std::runtime_error("injected mid-batch fault");
      }
      queue->handler(views);
      const auto done = std::chrono::steady_clock::now();
      for (auto& p : batch) {
        p->response.id = p->request.id;
        p->response.node = p->request.node;
        p->response.latency_us =
            std::chrono::duration<double, std::micro>(done - p->enqueued)
                .count();
        queue->latency.Record(p->response.latency_us);
        p->promise.set_value(std::move(p->response));
      }
    } catch (...) {
      // Validation happens at Submit, so this is a handler bug or OOM:
      // surface it on every affected query instead of hanging the futures.
      const std::exception_ptr error = std::current_exception();
      for (auto& p : batch) {
        p->promise.set_exception(error);
      }
    }
  }
}

void MicroBatcher::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& queue : queues_) {
    queue->queries_served = 0;
    queue->batches_run = 0;
    queue->rejected_overload = 0;
    queue->rejected_deadline = 0;
    queue->queue_peak = 0;
    queue->latency.Reset();
  }
}

void MicroBatcher::RefreshObsMetrics() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& queue : queues_) {
    // Counter mirror: internal accepted_total is monotone and the delta is
    // computed under mu_, so concurrent scrapes cannot double-count. While
    // the registry is disarmed the Increment is dropped and the mirror
    // simply catches up on the next armed scrape.
    const std::uint64_t mirrored = queue->metrics.accepted->value();
    if (queue->accepted_total > mirrored) {
      queue->metrics.accepted->Increment(queue->accepted_total - mirrored);
    }
    queue->metrics.depth->Set(static_cast<double>(queue->pending.size()));
    queue->metrics.peak->Set(static_cast<double>(queue->queue_peak));
  }
}

const LatencyStats& MicroBatcher::latency(std::size_t queue) const {
  GCON_CHECK_LT(queue, queues_.size());
  return queues_[queue]->latency;
}

std::uint64_t MicroBatcher::queries_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& queue : queues_) total += queue->queries_served;
  return total;
}

std::uint64_t MicroBatcher::batches_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& queue : queues_) total += queue->batches_run;
  return total;
}

std::uint64_t MicroBatcher::queries_served(std::size_t queue) const {
  GCON_CHECK_LT(queue, queues_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[queue]->queries_served;
}

std::uint64_t MicroBatcher::batches_run(std::size_t queue) const {
  GCON_CHECK_LT(queue, queues_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[queue]->batches_run;
}

std::uint64_t MicroBatcher::rejected_overload() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& queue : queues_) total += queue->rejected_overload;
  return total;
}

std::uint64_t MicroBatcher::rejected_deadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& queue : queues_) total += queue->rejected_deadline;
  return total;
}

std::uint64_t MicroBatcher::rejected_overload(std::size_t queue) const {
  GCON_CHECK_LT(queue, queues_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[queue]->rejected_overload;
}

std::uint64_t MicroBatcher::rejected_deadline(std::size_t queue) const {
  GCON_CHECK_LT(queue, queues_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[queue]->rejected_deadline;
}

std::uint64_t MicroBatcher::queue_peak(std::size_t queue) const {
  GCON_CHECK_LT(queue, queues_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[queue]->queue_peak;
}

}  // namespace gcon
