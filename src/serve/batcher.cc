#include "serve/batcher.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.h"

namespace gcon {
namespace {

// A lull this long with no new arrival while a batch is filling means the
// burst is over: ship what we have instead of idling out the full deadline.
// Short on purpose — every microsecond spent hoping for stragglers is a
// microsecond every already-queued client waits.
constexpr std::chrono::microseconds kArrivalLull(5);

[[noreturn]] void BadOption(const char* name, int value) {
  throw std::invalid_argument("serve option '" + std::string(name) +
                              "' must be >= 1 (got " + std::to_string(value) +
                              ")");
}

}  // namespace

void ServeOptions::Validate() const {
  if (threads < 1) BadOption("threads", threads);
  if (max_batch < 1) BadOption("max_batch", max_batch);
  if (max_wait_us < 1) BadOption("max_wait_us", max_wait_us);
}

MicroBatcher::MicroBatcher(ServeOptions options, BatchHandler handler)
    : MicroBatcher(options, std::vector<BatchHandler>{std::move(handler)}) {}

MicroBatcher::MicroBatcher(ServeOptions options,
                           std::vector<BatchHandler> handlers)
    : options_(options) {
  options_.Validate();
  if (handlers.empty()) {
    throw std::invalid_argument("MicroBatcher needs at least one handler");
  }
  queues_.reserve(handlers.size());
  for (BatchHandler& handler : handlers) {
    queues_.push_back(std::make_unique<Queue>(std::move(handler)));
  }
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) {
    workers_.emplace_back(&MicroBatcher::WorkerMain, this);
  }
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    arrival_cv_.notify_all();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::future<ServeResponse> MicroBatcher::Submit(std::size_t queue,
                                                ServeRequest request) {
  GCON_CHECK_LT(queue, queues_.size());
  auto pending = std::make_unique<PendingQuery>();
  pending->request = std::move(request);
  pending->enqueued = std::chrono::steady_clock::now();
  std::future<ServeResponse> future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("MicroBatcher: Submit after Stop");
    }
    queues_[queue]->pending.push_back(std::move(pending));
    ++total_pending_;
  }
  arrival_cv_.notify_one();
  return future;
}

MicroBatcher::Queue* MicroBatcher::TakeBatchLocked(
    std::unique_lock<std::mutex>* lock,
    std::vector<std::unique_ptr<PendingQuery>>* batch) {
  const std::size_t max_batch = static_cast<std::size_t>(options_.max_batch);
  for (;;) {
    arrival_cv_.wait(*lock, [&] { return stopping_ || total_pending_ > 0; });
    if (total_pending_ == 0) return nullptr;  // stopping and drained

    // FIFO across models: serve the queue whose head waited longest.
    Queue* queue = nullptr;
    for (auto& candidate : queues_) {
      if (candidate->pending.empty()) continue;
      if (queue == nullptr || candidate->pending.front()->enqueued <
                                  queue->pending.front()->enqueued) {
        queue = candidate.get();
      }
    }

    // An existing backlog already amortizes the batch overhead: ship it
    // now — delaying it only idles every queued client (a straggler wait
    // here measured as a 3x throughput LOSS under closed-loop load). Only
    // a lone query — lone across EVERY queue; pending work for another
    // model must not idle this worker — is worth holding back, briefly,
    // for company.
    if (total_pending_ == 1 && max_batch > 1 && !stopping_) {
      const auto deadline =
          queue->pending.front()->enqueued +
          std::chrono::microseconds(options_.max_wait_us);
      while (queue->pending.size() < max_batch && !stopping_ &&
             total_pending_ == queue->pending.size()) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        const auto step = std::min<std::chrono::steady_clock::duration>(
            deadline - now, kArrivalLull);
        const std::size_t before = total_pending_;
        arrival_cv_.wait_for(*lock, step);
        if (total_pending_ <= before) break;  // lull — ship what we have
      }
    }
    if (queue->pending.empty()) continue;  // a peer worker took the backlog

    const std::size_t take = std::min(queue->pending.size(), max_batch);
    batch->clear();
    batch->reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch->push_back(std::move(queue->pending.front()));
      queue->pending.pop_front();
    }
    total_pending_ -= take;
    if (total_pending_ > 0) {
      // Leftovers (this queue's or another's) belong to a peer; wake one.
      arrival_cv_.notify_one();
    }
    return queue;
  }
}

void MicroBatcher::WorkerMain() {
  for (;;) {
    std::vector<std::unique_ptr<PendingQuery>> batch;
    Queue* queue = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue = TakeBatchLocked(&lock, &batch);
      if (queue == nullptr) return;
      ++queue->batches_run;
      queue->queries_served += batch.size();
    }

    std::vector<PendingQuery*> views;
    views.reserve(batch.size());
    for (auto& p : batch) views.push_back(p.get());
    try {
      queue->handler(views);
      const auto done = std::chrono::steady_clock::now();
      for (auto& p : batch) {
        p->response.id = p->request.id;
        p->response.node = p->request.node;
        p->response.latency_us =
            std::chrono::duration<double, std::micro>(done - p->enqueued)
                .count();
        queue->latency.Record(p->response.latency_us);
        p->promise.set_value(std::move(p->response));
      }
    } catch (...) {
      // Validation happens at Submit, so this is a handler bug or OOM:
      // surface it on every affected query instead of hanging the futures.
      const std::exception_ptr error = std::current_exception();
      for (auto& p : batch) {
        p->promise.set_exception(error);
      }
    }
  }
}

void MicroBatcher::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& queue : queues_) {
    queue->queries_served = 0;
    queue->batches_run = 0;
    queue->latency.Reset();
  }
}

const LatencyStats& MicroBatcher::latency(std::size_t queue) const {
  GCON_CHECK_LT(queue, queues_.size());
  return queues_[queue]->latency;
}

std::uint64_t MicroBatcher::queries_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& queue : queues_) total += queue->queries_served;
  return total;
}

std::uint64_t MicroBatcher::batches_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& queue : queues_) total += queue->batches_run;
  return total;
}

std::uint64_t MicroBatcher::queries_served(std::size_t queue) const {
  GCON_CHECK_LT(queue, queues_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[queue]->queries_served;
}

std::uint64_t MicroBatcher::batches_run(std::size_t queue) const {
  GCON_CHECK_LT(queue, queues_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[queue]->batches_run;
}

}  // namespace gcon
