#include "serve/frame.h"

#include <cstring>
#include <limits>

namespace gcon {
namespace {

// The zero-copy feature view reads f32 values straight out of the frame
// buffer, so the wire's little-endian layout must be the host's. Every
// supported target (x86-64, aarch64) is little-endian; a big-endian port
// would byte-swap in ParseRequestPayload instead of taking the view.
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "binary frame codec assumes a little-endian host");

void PutU16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI32(std::string* out, std::int32_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
}

void PutI64(std::string* out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

void PutF32(std::string* out, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

void PutF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

std::uint16_t GetU16(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(u[0] | (u[1] << 8));
}

std::uint32_t GetU32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

std::uint64_t GetU64(const char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

std::int32_t GetI32(const char* p) {
  return static_cast<std::int32_t>(GetU32(p));
}

std::int64_t GetI64(const char* p) {
  return static_cast<std::int64_t>(GetU64(p));
}

double GetF64(const char* p) {
  const std::uint64_t bits = GetU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Prepends the [u32 len][u8 type] header once the payload is built.
std::string WrapFrame(FrameType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<std::uint32_t>(payload.size()));
  frame.push_back(static_cast<char>(type));
  frame += payload;
  return frame;
}

constexpr std::size_t kRequestHeaderBytes = 36;
constexpr std::size_t kResponseHeaderBytes = 24;
constexpr std::size_t kErrorHeaderBytes = 16;
constexpr std::size_t kAdminHeaderBytes = 12;

constexpr std::uint32_t kFlagHasEdges = 1u << 0;
constexpr std::uint32_t kFlagHasFeatures = 1u << 1;

}  // namespace

std::uint32_t WireErrorCode(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kOverloaded:
      return 1;
    case ServeErrorCode::kDeadlineExceeded:
      return 2;
    case ServeErrorCode::kDraining:
      return 3;
    case ServeErrorCode::kMalformedFrame:
      return 4;
    case ServeErrorCode::kBudgetExhausted:
      return 5;
  }
  return 0;
}

std::string EncodeHello(std::uint16_t version) {
  std::string hello;
  hello.reserve(kFrameHelloBytes);
  hello.push_back(static_cast<char>(kFramePreamble));
  hello.append(kFrameMagic, sizeof(kFrameMagic));
  PutU16(&hello, version);
  return hello;
}

bool ParseHello(const char* bytes, std::size_t len, std::uint16_t* version,
                std::string* error) {
  if (len < kFrameHelloBytes) {
    *error = "truncated hello (want " + std::to_string(kFrameHelloBytes) +
             " bytes, got " + std::to_string(len) + ")";
    return false;
  }
  if (static_cast<unsigned char>(bytes[0]) != kFramePreamble ||
      std::memcmp(bytes + 1, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    *error = "bad hello magic (want C0 'GCONB')";
    return false;
  }
  *version = GetU16(bytes + 6);
  if (*version == 0) {
    *error = "unsupported protocol version 0 (this server speaks " +
             std::to_string(kFrameVersion) + ")";
    return false;
  }
  return true;
}

bool ParseFrameHeader(const char* bytes, FrameType* type,
                      std::uint32_t* payload_len, std::string* error) {
  *payload_len = GetU32(bytes);
  const std::uint8_t raw_type = static_cast<std::uint8_t>(bytes[4]);
  if (*payload_len > kMaxFrameBytes) {
    *error = "oversized frame (declared " + std::to_string(*payload_len) +
             " bytes, limit " + std::to_string(kMaxFrameBytes) + ")";
    return false;
  }
  switch (raw_type) {
    case static_cast<std::uint8_t>(FrameType::kRequest):
    case static_cast<std::uint8_t>(FrameType::kResponse):
    case static_cast<std::uint8_t>(FrameType::kError):
    case static_cast<std::uint8_t>(FrameType::kAdmin):
    case static_cast<std::uint8_t>(FrameType::kAdminReply):
      *type = static_cast<FrameType>(raw_type);
      return true;
    default:
      *error = "unknown frame type 0x" + [raw_type] {
        const char digits[] = "0123456789abcdef";
        std::string hex;
        hex.push_back(digits[(raw_type >> 4) & 0xF]);
        hex.push_back(digits[raw_type & 0xF]);
        return hex;
      }();
      return false;
  }
}

std::string EncodeRequestFrame(const ServeRequest& request) {
  std::string payload;
  const std::size_t feature_count = request.feature_count();
  payload.reserve(kRequestHeaderBytes + 4 * request.edges.size() +
                  4 * feature_count + request.model.size());
  PutI64(&payload, request.id);
  PutI64(&payload, request.deadline_us);
  PutI32(&payload, request.node);
  std::uint32_t flags = 0;
  if (request.has_edges) flags |= kFlagHasEdges;
  if (request.has_features) flags |= kFlagHasFeatures;
  PutU32(&payload, flags);
  PutU32(&payload, request.has_edges
                       ? static_cast<std::uint32_t>(request.edges.size())
                       : 0u);
  PutU32(&payload,
         request.has_features ? static_cast<std::uint32_t>(feature_count)
                              : 0u);
  PutU32(&payload, static_cast<std::uint32_t>(request.model.size()));
  if (request.has_edges) {
    for (int e : request.edges) PutI32(&payload, e);
  }
  if (request.has_features) {
    if (request.feature_view.data != nullptr) {
      for (std::uint32_t j = 0; j < request.feature_view.count; ++j) {
        PutF32(&payload, request.feature_view.data[j]);
      }
    } else {
      // The binary transport is f32: doubles narrow here, on the client —
      // a server-side parse never rounds.
      for (double v : request.features) {
        PutF32(&payload, static_cast<float>(v));
      }
    }
  }
  payload += request.model;
  return WrapFrame(FrameType::kRequest, payload);
}

bool ParseRequestPayload(const char* payload, std::size_t len,
                         ServeRequest* request, std::string* error) {
  *request = ServeRequest{};
  if (len >= 8) request->id = GetI64(payload);  // best-effort correlation
  if (len < kRequestHeaderBytes) {
    *error = "truncated request frame (want at least " +
             std::to_string(kRequestHeaderBytes) + " payload bytes, got " +
             std::to_string(len) + ")";
    return false;
  }
  request->deadline_us = GetI64(payload + 8);
  const std::int32_t node = GetI32(payload + 16);
  const std::uint32_t flags = GetU32(payload + 20);
  const std::uint32_t edge_count = GetU32(payload + 24);
  const std::uint32_t feature_dim = GetU32(payload + 28);
  const std::uint32_t model_len = GetU32(payload + 32);

  if (request->deadline_us < 0) {
    *error = "deadline_us wants a non-negative value (0 = none)";
    return false;
  }
  if (node < -1) {
    *error = "node wants -1 (absent) or a non-negative index";
    return false;
  }
  if ((flags & ~(kFlagHasEdges | kFlagHasFeatures)) != 0) {
    *error = "unknown request flags set";
    return false;
  }
  const bool has_edges = (flags & kFlagHasEdges) != 0;
  const bool has_features = (flags & kFlagHasFeatures) != 0;
  if (!has_edges && edge_count != 0) {
    *error = "edge_count must be 0 without the has_edges flag";
    return false;
  }
  if (!has_features && feature_dim != 0) {
    *error = "feature_dim must be 0 without the has_features flag";
    return false;
  }
  if (node == -1 && !has_features) {
    *error = "request frame carries neither a node nor features";
    return false;
  }
  if (node != -1 && has_features) {
    *error = "a query carries either 'node' or 'features', not both";
    return false;
  }
  // Declared counts must consume the payload exactly; u64 arithmetic so a
  // hostile count cannot wrap the bound check.
  const std::uint64_t want = static_cast<std::uint64_t>(kRequestHeaderBytes) +
                             4ull * edge_count + 4ull * feature_dim +
                             model_len;
  if (want != len) {
    *error = "request frame size mismatch (declared dims need " +
             std::to_string(want) + " payload bytes, frame has " +
             std::to_string(len) + ")";
    return false;
  }

  request->node = node;
  request->has_edges = has_edges;
  request->has_features = has_features;
  const char* cursor = payload + kRequestHeaderBytes;
  if (has_edges) {
    request->edges.resize(edge_count);
    for (std::uint32_t i = 0; i < edge_count; ++i, cursor += 4) {
      request->edges[i] = GetI32(cursor);
    }
  }
  if (has_features) {
    // The zero-copy contract: the request's feature payload IS the frame
    // buffer. 36 + 4*edge_count keeps this offset 4-aligned whenever the
    // buffer base is (the server reads frames into vector<char> storage,
    // which operator new aligns well past 4).
    request->feature_view.data = reinterpret_cast<const float*>(cursor);
    request->feature_view.count = feature_dim;
    cursor += 4ull * feature_dim;
  }
  request->model.assign(cursor, model_len);
  return true;
}

std::string EncodeResponseFrame(const ServeResponse& response) {
  std::string payload;
  payload.reserve(kResponseHeaderBytes + 8 * response.logits.size());
  PutI64(&payload, response.id);
  PutI32(&payload, response.node);
  PutI32(&payload, response.label);
  PutU32(&payload, static_cast<std::uint32_t>(response.logits.size()));
  PutU32(&payload, 0);  // reserved
  for (double v : response.logits) PutF64(&payload, v);
  return WrapFrame(FrameType::kResponse, payload);
}

bool ParseResponsePayload(const char* payload, std::size_t len,
                          ServeResponse* response, std::string* error) {
  *response = ServeResponse{};
  if (len < kResponseHeaderBytes) {
    *error = "truncated response frame";
    return false;
  }
  response->id = GetI64(payload);
  response->node = GetI32(payload + 8);
  response->label = GetI32(payload + 12);
  const std::uint32_t num_logits = GetU32(payload + 16);
  const std::uint64_t want =
      static_cast<std::uint64_t>(kResponseHeaderBytes) + 8ull * num_logits;
  if (want != len) {
    *error = "response frame size mismatch";
    return false;
  }
  response->logits.resize(num_logits);
  const char* cursor = payload + kResponseHeaderBytes;
  for (std::uint32_t j = 0; j < num_logits; ++j, cursor += 8) {
    response->logits[j] = GetF64(cursor);
  }
  return true;
}

std::string EncodeErrorFrame(std::int64_t id, std::uint32_t code,
                             const std::string& message) {
  std::string payload;
  payload.reserve(kErrorHeaderBytes + message.size());
  PutI64(&payload, id);
  PutU32(&payload, code);
  PutU32(&payload, static_cast<std::uint32_t>(message.size()));
  payload += message;
  return WrapFrame(FrameType::kError, payload);
}

bool ParseErrorPayload(const char* payload, std::size_t len, FrameError* out,
                       std::string* error) {
  *out = FrameError{};
  if (len < kErrorHeaderBytes) {
    *error = "truncated error frame";
    return false;
  }
  out->id = GetI64(payload);
  out->code = GetU32(payload + 8);
  const std::uint32_t message_len = GetU32(payload + 12);
  if (static_cast<std::uint64_t>(kErrorHeaderBytes) + message_len != len) {
    *error = "error frame size mismatch";
    return false;
  }
  out->message.assign(payload + kErrorHeaderBytes, message_len);
  return true;
}

std::string EncodeAdminFrame(AdminVerb verb, const std::string& model,
                             const std::string& path) {
  std::string payload;
  payload.reserve(kAdminHeaderBytes + model.size() + path.size());
  PutU32(&payload, static_cast<std::uint32_t>(verb));
  PutU32(&payload, static_cast<std::uint32_t>(model.size()));
  PutU32(&payload, static_cast<std::uint32_t>(path.size()));
  payload += model;
  payload += path;
  return WrapFrame(FrameType::kAdmin, payload);
}

bool ParseAdminPayload(const char* payload, std::size_t len, AdminVerb* verb,
                       std::string* model, std::string* path,
                       std::string* error) {
  if (len < kAdminHeaderBytes) {
    *error = "truncated admin frame";
    return false;
  }
  const std::uint32_t raw_verb = GetU32(payload);
  const std::uint32_t model_len = GetU32(payload + 4);
  const std::uint32_t path_len = GetU32(payload + 8);
  switch (raw_verb) {
    case static_cast<std::uint32_t>(AdminVerb::kStats):
    case static_cast<std::uint32_t>(AdminVerb::kListModels):
    case static_cast<std::uint32_t>(AdminVerb::kQuit):
    case static_cast<std::uint32_t>(AdminVerb::kPublish):
    case static_cast<std::uint32_t>(AdminVerb::kDrain):
    case static_cast<std::uint32_t>(AdminVerb::kMetrics):
    case static_cast<std::uint32_t>(AdminVerb::kTrace):
    case static_cast<std::uint32_t>(AdminVerb::kBudget):
      *verb = static_cast<AdminVerb>(raw_verb);
      break;
    default:
      *error = "unknown admin verb " + std::to_string(raw_verb) +
               " (want stats=1, list_models=2, quit=3, publish=4, drain=5, "
               "metrics=6, trace=7, budget=8)";
      return false;
  }
  const std::uint64_t want = static_cast<std::uint64_t>(kAdminHeaderBytes) +
                             model_len + static_cast<std::uint64_t>(path_len);
  if (want != len) {
    *error = "admin frame size mismatch";
    return false;
  }
  model->assign(payload + kAdminHeaderBytes, model_len);
  path->assign(payload + kAdminHeaderBytes + model_len, path_len);
  if (*verb == AdminVerb::kPublish && path->empty()) {
    *error = "admin verb 'publish' needs a path naming the artifact file";
    return false;
  }
  return true;
}

std::string EncodeAdminReplyFrame(const std::string& json) {
  return WrapFrame(FrameType::kAdminReply, json);
}

}  // namespace gcon
