#include "serve/router.h"

#include <cctype>
#include <locale>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace gcon {
namespace {

bool WireSafeName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || c == '"' || c == '\\' || std::isspace(u)) return false;
  }
  return true;
}

}  // namespace

ModelRouter::ModelRouter(std::vector<NamedModel> models) {
  if (models.empty()) {
    throw std::invalid_argument("ModelRouter needs at least one model");
  }
  slots_.reserve(models.size());
  for (NamedModel& model : models) {
    const int i = static_cast<int>(slots_.size());
    if (!WireSafeName(model.name)) {
      throw std::invalid_argument(
          "model name '" + model.name +
          "' is not wire-safe (must be non-empty, no quotes, backslashes, "
          "or whitespace)");
    }
    if (!by_name_.emplace(model.name, i).second) {
      throw std::invalid_argument("duplicate model name '" + model.name +
                                  "'");
    }
    slots_.push_back({std::move(model.name),
                      std::make_shared<const InferenceSession>(
                          std::move(model.session))});
  }
}

std::shared_ptr<const InferenceSession> ModelRouter::SessionRef(
    int index) const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return slots_[static_cast<std::size_t>(index)].session;
}

std::shared_ptr<const InferenceSession> ModelRouter::Publish(
    const std::string& name, InferenceSession session) {
  const int index = Resolve(name);
  auto incoming = std::make_shared<const InferenceSession>(
      std::move(session));
  std::lock_guard<std::mutex> lock(swap_mu_);
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  // Same-population check: requests are validated against whatever version
  // is current at Submit time but may execute (batched) against the next
  // one; matching node count and feature dim keeps every accepted request
  // servable on both sides of the flip.
  if (incoming->num_nodes() != slot.session->num_nodes() ||
      incoming->feature_dim() != slot.session->feature_dim()) {
    throw std::invalid_argument(
        "publish for '" + slot.name + "' serves a different population (" +
        std::to_string(incoming->num_nodes()) + " nodes x " +
        std::to_string(incoming->feature_dim()) + " features; serving " +
        std::to_string(slot.session->num_nodes()) + " x " +
        std::to_string(slot.session->feature_dim()) + ")");
  }
  slot.session.swap(incoming);
  return incoming;  // now the retired session
}

int ModelRouter::Find(const std::string& model) const {
  if (model.empty()) return 0;
  const auto it = by_name_.find(model);
  return it == by_name_.end() ? -1 : it->second;
}

int ModelRouter::Resolve(const std::string& model) const {
  const int index = Find(model);
  if (index < 0) {
    throw std::invalid_argument("unknown model '" + model +
                                "' (serving: " + NameList() + ")");
  }
  return index;
}

std::string ModelRouter::NameList() const {
  std::string out;
  for (const Slot& slot : slots_) {
    if (!out.empty()) out += ", ";
    out += slot.name;
  }
  return out;
}

std::string ModelRouter::ListModelsJson() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());  // wire bytes are locale-invariant
  out << "{\"models\": [";
  for (int i = 0; i < size(); ++i) {
    const std::string& slot_name = name(i);
    const std::shared_ptr<const InferenceSession> session = SessionRef(i);
    out << (i == 0 ? "" : ", ") << "{\"name\": \"" << slot_name
        << "\", \"nodes\": " << session->num_nodes()
        << ", \"classes\": " << session->num_classes()
        << ", \"features\": " << session->feature_dim()
        << ", \"per_query\": " << (session->per_query() ? "true" : "false")
        << "}";
  }
  out << "], \"default\": \"" << default_model() << "\"}";
  return out.str();
}

}  // namespace gcon
