#include "serve/router.h"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace gcon {
namespace {

bool WireSafeName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || c == '"' || c == '\\' || std::isspace(u)) return false;
  }
  return true;
}

}  // namespace

ModelRouter::ModelRouter(std::vector<NamedModel> models)
    : models_(std::move(models)) {
  if (models_.empty()) {
    throw std::invalid_argument("ModelRouter needs at least one model");
  }
  for (int i = 0; i < size(); ++i) {
    const std::string& name = models_[static_cast<std::size_t>(i)].name;
    if (!WireSafeName(name)) {
      throw std::invalid_argument(
          "model name '" + name +
          "' is not wire-safe (must be non-empty, no quotes, backslashes, "
          "or whitespace)");
    }
    if (!by_name_.emplace(name, i).second) {
      throw std::invalid_argument("duplicate model name '" + name + "'");
    }
  }
}

int ModelRouter::Find(const std::string& model) const {
  if (model.empty()) return 0;
  const auto it = by_name_.find(model);
  return it == by_name_.end() ? -1 : it->second;
}

int ModelRouter::Resolve(const std::string& model) const {
  const int index = Find(model);
  if (index < 0) {
    throw std::invalid_argument("unknown model '" + model +
                                "' (serving: " + NameList() + ")");
  }
  return index;
}

std::string ModelRouter::NameList() const {
  std::string out;
  for (const NamedModel& model : models_) {
    if (!out.empty()) out += ", ";
    out += model.name;
  }
  return out;
}

std::string ModelRouter::ListModelsJson() const {
  std::ostringstream out;
  out << "{\"models\": [";
  for (int i = 0; i < size(); ++i) {
    const NamedModel& model = models_[static_cast<std::size_t>(i)];
    out << (i == 0 ? "" : ", ") << "{\"name\": \"" << model.name
        << "\", \"nodes\": " << model.session.num_nodes()
        << ", \"classes\": " << model.session.num_classes()
        << ", \"features\": " << model.session.feature_dim()
        << ", \"per_query\": "
        << (model.session.per_query() ? "true" : "false") << "}";
  }
  out << "], \"default\": \"" << default_model() << "\"}";
  return out.str();
}

}  // namespace gcon
