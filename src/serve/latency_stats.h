// Lock-free latency histogram for the serving tier.
//
// Record() is called on the hot path by every batch worker, so the store is
// an array of atomic counters — no mutex, no allocation. Buckets are
// geometric in microseconds: one octave per power of two, refined into 8
// linear sub-buckets (the three bits below the leading one), which bounds
// the relative quantile error at ~12.5%. Percentiles are read by walking
// the cumulative counts and reporting the bucket's upper bound, so reported
// p50/p95/p99 never understate the true quantile.
//
// Snapshot() is safe to call concurrently with Record(); it reads each
// counter once (relaxed), so a snapshot taken mid-burst is a consistent
// *approximation*, which is all a monitoring read needs.
#ifndef GCON_SERVE_LATENCY_STATS_H_
#define GCON_SERVE_LATENCY_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace gcon {

class LatencyStats {
 public:
  /// Octaves 2^0..2^31 us (~36 minutes) x 8 sub-buckets.
  static constexpr int kOctaves = 32;
  static constexpr int kSubBuckets = 8;
  static constexpr int kBuckets = kOctaves * kSubBuckets;

  LatencyStats();

  /// Records one measurement, in microseconds (values < 1 land in the first
  /// bucket; values beyond the last octave saturate into the last bucket).
  void Record(double us);

  /// Bucket index a value lands in (exposed for tests).
  static int BucketIndex(std::uint64_t us);
  /// Inclusive upper bound, in us, of the values mapping to `bucket`.
  static std::uint64_t BucketUpperBound(int bucket);

  struct Snapshot {
    std::uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;

    /// "count=N mean=Xus p50=... p95=... p99=... max=..." for logs.
    std::string ToString() const;
  };

  /// Consistent-enough view of the histogram (see header comment).
  Snapshot Summarize() const;

  /// Merges `other`'s counters into this histogram (relaxed reads of
  /// `other`, like Summarize — a mid-burst merge is a consistent-enough
  /// approximation). Used to aggregate the per-model histograms of a
  /// multi-model server into one process-wide view.
  void Add(const LatencyStats& other);

  /// Zeroes every counter. Safe to call concurrently with Record()/Add():
  /// each counter is zeroed with a release store, so a racing reader that
  /// observes the zero also observes no stale pre-reset residue through it.
  /// The reset is still not atomic *across* buckets — a recording that
  /// straddles the sweep may survive partially (count without its bucket,
  /// or vice versa), which keeps a mid-burst reset a consistent-enough
  /// approximation rather than a torn read or UB. Used by benches between
  /// phases, where router workers are not fully quiesced.
  void Reset();

  /// Relaxed per-bucket snapshot of the raw counters, for exposition
  /// formats (Prometheus histograms) that need the buckets themselves
  /// rather than derived percentiles. Same mid-burst approximation
  /// contract as Summarize().
  std::array<std::uint64_t, kBuckets> BucketCounts() const;

  /// Relaxed reads of the scalar counters (same contract as Summarize).
  std::uint64_t TotalCount() const;
  std::uint64_t SumUs() const;

 private:
  double PercentileLocked(const std::array<std::uint64_t, kBuckets>& counts,
                          std::uint64_t total, double q) const;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_;
  std::atomic<std::uint64_t> count_;
  std::atomic<std::uint64_t> sum_us_;  ///< integral us; mean error < 1us
  std::atomic<std::uint64_t> max_us_;
};

}  // namespace gcon

#endif  // GCON_SERVE_LATENCY_STATS_H_
