// Per-query inference over a published GCON artifact (or any trained
// registry GraphModel) — the read side of the paper's deployment story.
//
// The offline path (`GconArtifact::Infer`, `gcon_cli predict`) re-runs the
// whole-graph pipeline for every call: encode all n nodes, one fused SpMM
// over the full transition matrix, one n-row GEMM. A serving tier answers
// "logits for node v" thousands of times a second, so this session does the
// whole-graph work exactly once at load time (the encoder forward + row
// normalization — edge-free, hence artifact-safe; the transition matrix
// comes through PropagationCache, shared with any offline Infer over the
// same graph) and then answers each query from v's neighborhood alone, per
// Eq. (16): the one-hop row
//   hop_v = (1-α_I) · Ã_v · X̄ + α_I · X̄_v
// touches deg(v)+1 rows of the encoded matrix, and the logits are a single
// (s·d1)-by-c row product. GAP and DPAR make the same observation: with
// propagation decoupled from training, per-node inference is cheap.
//
// Inductive (feature-carrying) queries — the paper's scenario (iii) — go
// one step further: the request supplies a brand-new node's raw feature
// vector and its edge list into the serving population, and the session
// answers as if the graph had been augmented with that node offline. The
// query row is encoded through the artifact's MLP (row-wise, so one row's
// bits match its row in any batched forward), normalized, and propagated
// with the same Eq. (16) replay — the virtual node sits at index n, after
// every real node, so its transition row is fully determined by the query.
// Decoupled DP-GNNs can serve this without re-aggregation; per-hop
// architectures (GAP) cannot.
//
// Bitwise contract: every query path below reproduces the offline result
// exactly — QueryBatch row i equals row node_i of GconArtifact::Infer, and
// a feature-carrying answer equals row n of Infer on the graph augmented
// with the query node — by replicating the offline kernels' accumulation
// order:
//   * the encoded matrix is the same full-graph call, made once; a query
//     row is a one-row forward through the same layers (GEMM rows are
//     independent of the batch's other rows);
//   * the per-node hop replays CsrMatrix::SpmmAxpby's per-row arithmetic
//     (column-ascending accumulate, then a·sum + b·x): default-adjacency
//     queries read the cached transition row verbatim, private-edge and
//     inductive queries rebuild the row with BuildTransition's exact
//     per-entry values;
//   * the final GEMM's per-row results are invariant to the batch's row
//     count (fringe tiles are zero-padded into the same micro-kernel), so
//     one coalesced product over B rows matches the n-row offline product.
// tests/serve_test.cc and tests/serve_inductive_test.cc enforce this with
// memcmp, not AllClose.
//
// Privacy: everything served is post-processing of the released (ε, δ)-DP
// artifact plus the *query's own* features and edges — the same data the
// querying node already holds — so serving consumes no additional privacy
// budget.
#ifndef GCON_SERVE_INFERENCE_SESSION_H_
#define GCON_SERVE_INFERENCE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "graph/graph.h"
#include "linalg/matrix.h"
#include "model/model.h"
#include "obs/trace.h"
#include "sparse/csr_matrix.h"

namespace gcon {

/// One node-prediction query.
struct ServeRequest {
  std::int64_t id = 0;  ///< echoed back; correlates pipelined wire requests
  /// Named model to route to (multi-model serving); empty means the
  /// server's default (first-listed) model.
  std::string model;
  int node = -1;        ///< node index in the serving graph, [0, n)
  /// When true, `edges` replaces the serving graph's adjacency for this
  /// query (the private-edge scenario: the querying node reveals its own
  /// edge list and nothing else). Self-loops, duplicates, and out-of-range
  /// endpoints are ignored. For feature-carrying queries, `edges` is the
  /// new node's edge list into the serving population (default: isolated).
  bool has_edges = false;
  std::vector<int> edges;
  /// When true, this is an inductive query: the request carries the raw
  /// feature vector of a node *not in the serving graph* (length = the
  /// graph's feature dim) and `node` must stay -1. Served as if the graph
  /// had been augmented with this node at index n. The payload lives in
  /// exactly one of two places:
  ///   * `features` — an owning f64 vector (JSON transport, in-process
  ///     callers); or
  ///   * `feature_view` — a non-owning f32 span into a binary transport
  ///     frame buffer (serve/frame.h), valid only while `frame_pin` holds
  ///     the buffer alive. The serve path widens these f32 values straight
  ///     into the gathered GEMM panel — no intermediate copy.
  bool has_features = false;
  std::vector<double> features;
  /// Non-owning view of a little-endian f32 feature payload inside a
  /// binary frame buffer. `data` non-null means the view is authoritative
  /// and `features` stays empty.
  struct FeatureView {
    const float* data = nullptr;
    std::uint32_t count = 0;
  };
  FeatureView feature_view;
  /// Keeps `feature_view`'s frame buffer alive for the request's whole
  /// lifetime. The request is moved — connection loop, batcher queue,
  /// batch execution — so the pin travels with it and releases only when
  /// the batch's futures have been resolved and the PendingQuery destroyed
  /// (batch-lifetime safety: the buffer outlives the GEMM gather).
  std::shared_ptr<const void> frame_pin;

  /// Feature count regardless of representation (view or owning vector).
  std::size_t feature_count() const {
    return feature_view.data != nullptr
               ? static_cast<std::size_t>(feature_view.count)
               : features.size();
  }
  /// Optional deadline, microseconds from submission; 0 = none. A query
  /// still queued when its deadline passes is dropped by the batch worker
  /// immediately before the GEMM and fails with a structured
  /// `deadline_exceeded` error instead of wasting the batch slot.
  std::int64_t deadline_us = 0;
  /// Admin payload for the `publish` verb: filesystem path of the artifact
  /// to load. Unused (and rejected by the parser) on query lines.
  std::string path;
  /// Span timeline for sampled requests (obs/trace.h); null for the
  /// unsampled majority, making every stamp site a single pointer check.
  /// The pointee is deliberately mutable through const ServeRequest& —
  /// stamping a trace observes the request, it does not alter it — and the
  /// shared_ptr lets the wire layer keep the timeline alive after the
  /// request itself has been consumed by the batch.
  std::shared_ptr<obs::RequestTrace> trace;
};

/// Answer to one query.
struct ServeResponse {
  std::int64_t id = 0;
  int node = -1;                ///< -1 for feature-carrying queries
  int label = -1;               ///< argmax of logits (ties -> smallest)
  std::vector<double> logits;   ///< one value per class
  double latency_us = 0.0;      ///< enqueue-to-completion (set by the server)
};

/// Immutable, thread-safe query engine over one loaded model. All methods
/// are const and safe to call concurrently.
class InferenceSession {
 public:
  /// Artifact mode: per-query Eq. (16) inference. `graph` supplies the
  /// serving population (features always; edges as the default adjacency
  /// for queries without a private edge list). The encoder forward over all
  /// nodes runs here, once, and the transition matrix is fetched through
  /// PropagationCache (a session over a graph some offline Infer already
  /// touched pays nothing to build it). The shared_ptr overloads let a
  /// multi-model server host one copy of the population, not one per
  /// model — the graph is read-only to every session.
  InferenceSession(GconArtifact artifact, Graph graph);
  InferenceSession(GconArtifact artifact,
                   std::shared_ptr<const Graph> graph);

  /// Registry-model mode. When the model publishes a release artifact
  /// (GraphModel::ReleaseArtifact, e.g. "gcon"), the session copies it and
  /// behaves exactly like artifact mode — per-query propagation, private
  /// edge lists, and feature-carrying queries all work. Otherwise it
  /// computes model.Predict(graph) once and answers from the stored rows;
  /// per-query edges and features are rejected (the model already consumed
  /// the adjacency at whatever granularity it supports).
  InferenceSession(const GraphModel& model, Graph graph);
  InferenceSession(const GraphModel& model, std::shared_ptr<const Graph> graph);

  /// Artifact mode from a "gcon-model v1" file (core/model_io.h LoadModel;
  /// throws std::runtime_error naming the path on a bad artifact).
  static InferenceSession FromFile(const std::string& model_path, Graph graph);
  static InferenceSession FromFile(const std::string& model_path,
                                   std::shared_ptr<const Graph> graph);

  int num_nodes() const { return graph_->num_nodes(); }
  int num_classes() const { return static_cast<int>(num_classes_); }
  int feature_dim() const { return graph_->feature_dim(); }
  /// The serving population (never null). Hot-swap (ModelRouter::Publish)
  /// builds the replacement session over this same shared graph so a swap
  /// never duplicates the population in memory.
  const std::shared_ptr<const Graph>& graph_ptr() const { return graph_; }
  /// True in artifact mode (per-query propagation; private edges and
  /// feature-carrying queries allowed).
  bool per_query() const { return per_query_; }
  /// The loaded artifact's privacy budget (0 in precomputed-logits mode) —
  /// feeds the server's cumulative gcon_dp_epsilon gauge per model.
  double artifact_epsilon() const {
    return artifact_ ? artifact_->epsilon : 0.0;
  }
  /// The artifact's delta half of the receipt (0 in precomputed mode).
  double artifact_delta() const {
    return artifact_ ? artifact_->delta : 0.0;
  }
  /// Content fingerprint of the loaded artifact (theta bytes, steps, and
  /// the privacy receipt; 0 in precomputed-logits mode). The budget ledger
  /// uses it to tell "a restart serving the same release" (already
  /// charged) from "a fresh release" (charge again).
  std::uint64_t artifact_fingerprint() const { return artifact_fp_; }

  /// Throws std::invalid_argument when `request` cannot be served (node out
  /// of range; edges/features in precomputed-logits mode; features of the
  /// wrong length; a query carrying both 'node' and 'features').
  void ValidateRequest(const ServeRequest& request) const;

  /// Logits for one query; bitwise identical to the offline whole-graph
  /// inference row of request.node (when no private edge list overrides the
  /// graph adjacency), or — for a feature-carrying query — to row n of
  /// offline inference on the graph augmented with the query node.
  std::vector<double> QueryLogits(const ServeRequest& request) const;

  /// Coalesced batch: gathers every query's propagated feature row into one
  /// block and runs a single B-row GEMM against Θ (feature-carrying rows
  /// share one coalesced encoder forward first). Row i answers batch[i].
  /// This is the micro-batcher's kernel; row results are independent of the
  /// batch composition (see header comment), which is what makes batching
  /// transparent to clients.
  Matrix QueryBatch(const std::vector<const ServeRequest*>& batch) const;

 private:
  /// Shared body of the per-query constructors: consistency checks, the
  /// one-time encoder forward, and the cached transition fetch.
  void InitArtifact(GconArtifact artifact,
                    std::shared_ptr<const Graph> graph);

  /// Fills `row` (length steps*d1 in artifact mode) with the propagated
  /// feature blocks for one query. `encoded_query_row` is the encoded,
  /// normalized row of a feature-carrying query (nullptr for in-graph
  /// queries).
  void FillFeatureRow(const ServeRequest& request,
                      const double* encoded_query_row, double* row) const;

  /// The Eq. (16) one-hop row for a node whose transition row must be
  /// rebuilt (private edge list or inductive query): `self_col` is the
  /// node's column index for the diagonal's sorted position, `self_row`
  /// its encoded row (a row of encoded_, or the freshly encoded query).
  /// `neighbors` must be sorted ascending, deduplicated, in [0, n), and
  /// exclude self_col — BuildTransition's exact per-entry values are
  /// replayed over them.
  void RebuiltHopRow(int self_col, const double* self_row,
                     const std::vector<int>& neighbors, double* out) const;

  /// The Eq. (16) one-hop row for in-graph node `node` under the default
  /// adjacency: replays SpmmAxpby row `node` over the cached transition.
  void CachedHopRow(int node, double* out) const;

  bool per_query_ = false;
  /// The serving population — immutable and shareable across the sessions
  /// of a multi-model server (never null after construction).
  std::shared_ptr<const Graph> graph_;
  std::size_t num_classes_ = 0;

  // Artifact mode (empty in precomputed-logits mode).
  std::optional<GconArtifact> artifact_;
  std::uint64_t artifact_fp_ = 0;  ///< content hash, set by InitArtifact
  Matrix encoded_;        ///< X̄ after row normalization (n x d1)
  double alpha_inf_ = 0;  ///< resolved inference restart probability
  /// BuildTransition(graph_) via PropagationCache — rows are read verbatim
  /// for default-adjacency queries.
  std::shared_ptr<const CsrMatrix> transition_;

  // Precomputed-logits mode.
  Matrix dense_logits_;  ///< model.Predict(graph), n x c
};

}  // namespace gcon

#endif  // GCON_SERVE_INFERENCE_SESSION_H_
