// Per-query inference over a published GCON artifact (or any trained
// registry GraphModel) — the read side of the paper's deployment story.
//
// The offline path (`GconArtifact::Infer`, `gcon_cli predict`) re-runs the
// whole-graph pipeline for every call: encode all n nodes, one fused SpMM
// over the full transition matrix, one n-row GEMM. A serving tier answers
// "logits for node v" thousands of times a second, so this session does the
// whole-graph work exactly once at load time (the encoder forward + row
// normalization — edge-free, hence artifact-safe) and then answers each
// query from v's neighborhood alone, per Eq. (16): the one-hop row
//   hop_v = (1-α_I) · Ã_v · X̄ + α_I · X̄_v
// touches deg(v)+1 rows of the encoded matrix, and the logits are a single
// (s·d1)-by-c row product. GAP and DPAR make the same observation: with
// propagation decoupled from training, per-node inference is cheap.
//
// Bitwise contract: every query path below reproduces the offline result
// exactly — QueryBatch row i equals row node_i of GconArtifact::Infer — by
// replicating the offline kernels' accumulation order:
//   * the encoded matrix is the same full-graph call, made once;
//   * the per-node hop replays CsrMatrix::SpmmAxpby's per-row arithmetic
//     (column-ascending accumulate, then a·sum + b·x) on a transition row
//     rebuilt with BuildTransition's exact per-entry values;
//   * the final GEMM's per-row results are invariant to the batch's row
//     count (fringe tiles are zero-padded into the same micro-kernel), so
//     one coalesced product over B rows matches the n-row offline product.
// tests/serve_test.cc enforces this with memcmp, not AllClose.
//
// Privacy: everything served is post-processing of the released (ε, δ)-DP
// artifact plus the *query's own* edges — the same data the querying node
// already holds — so serving consumes no additional privacy budget.
#ifndef GCON_SERVE_INFERENCE_SESSION_H_
#define GCON_SERVE_INFERENCE_SESSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "graph/graph.h"
#include "linalg/matrix.h"
#include "model/model.h"

namespace gcon {

/// One node-prediction query.
struct ServeRequest {
  std::int64_t id = 0;  ///< echoed back; correlates pipelined wire requests
  int node = -1;        ///< node index in the serving graph, [0, n)
  /// When true, `edges` replaces the serving graph's adjacency for this
  /// query (the private-edge scenario: the querying node reveals its own
  /// edge list and nothing else). Self-loops, duplicates, and out-of-range
  /// endpoints are ignored.
  bool has_edges = false;
  std::vector<int> edges;
};

/// Answer to one query.
struct ServeResponse {
  std::int64_t id = 0;
  int node = -1;
  int label = -1;               ///< argmax of logits (ties -> smallest)
  std::vector<double> logits;   ///< one value per class
  double latency_us = 0.0;      ///< enqueue-to-completion (set by the server)
};

/// Immutable, thread-safe query engine over one loaded model. All methods
/// are const and safe to call concurrently.
class InferenceSession {
 public:
  /// Artifact mode: per-query Eq. (16) inference. `graph` supplies the
  /// serving population (features always; edges as the default adjacency
  /// for queries without a private edge list). The encoder forward over all
  /// nodes runs here, once.
  InferenceSession(GconArtifact artifact, Graph graph);

  /// Generic mode: serves any trained registry model by computing
  /// model.Predict(graph) once and answering queries from the stored rows.
  /// Per-query private edge lists are not supported (the model already
  /// consumed the adjacency at whatever granularity it supports).
  InferenceSession(const GraphModel& model, Graph graph);

  /// Artifact mode from a "gcon-model v1" file (core/model_io.h LoadModel;
  /// throws std::runtime_error naming the path on a bad artifact).
  static InferenceSession FromFile(const std::string& model_path, Graph graph);

  int num_nodes() const { return graph_.num_nodes(); }
  int num_classes() const { return static_cast<int>(num_classes_); }
  /// True in artifact mode (per-query propagation; private edges allowed).
  bool per_query() const { return per_query_; }

  /// Throws std::invalid_argument when `request` cannot be served (node out
  /// of range; private edges in generic mode).
  void ValidateRequest(const ServeRequest& request) const;

  /// Logits for one query; bitwise identical to the offline whole-graph
  /// inference row of request.node (when no private edge list overrides the
  /// graph adjacency).
  std::vector<double> QueryLogits(const ServeRequest& request) const;

  /// Coalesced batch: gathers every query's propagated feature row into one
  /// block and runs a single B-row GEMM against Θ. Row i answers batch[i].
  /// This is the micro-batcher's kernel; row results are independent of the
  /// batch composition (see header comment), which is what makes batching
  /// transparent to clients.
  Matrix QueryBatch(const std::vector<const ServeRequest*>& batch) const;

 private:
  /// Fills `row` (length steps*d1 in artifact mode) with the propagated
  /// feature blocks for one query.
  void FillFeatureRow(const ServeRequest& request, double* row) const;

  /// The Eq. (16) one-hop row for `node` with the given neighbor list
  /// (column-ascending, diagonal value replayed from BuildTransition).
  void HopRow(int node, const std::vector<int>& neighbors, double* out) const;

  bool per_query_ = false;
  Graph graph_;
  std::size_t num_classes_ = 0;

  // Artifact mode (empty in generic mode — Mlp has no default state).
  std::optional<GconArtifact> artifact_;
  Matrix encoded_;        ///< X̄ after row normalization (n x d1)
  double alpha_inf_ = 0;  ///< resolved inference restart probability

  // Generic mode.
  Matrix dense_logits_;  ///< model.Predict(graph), n x c
};

}  // namespace gcon

#endif  // GCON_SERVE_INFERENCE_SESSION_H_
