// Newline-delimited JSON-ish wire format for `gcon_cli serve`.
//
// One request per line, one response line per request, order preserved per
// connection (requests may be pipelined):
//
//   -> {"id": 7, "node": 12}
//   -> {"id": 8, "node": 3, "edges": [1, 5, 9]}
//   <- {"id": 7, "node": 12, "label": 2, "logits": [0.1, ...]}
//   <- {"id": 8, "node": 3, "label": 0, "logits": [...]}
//   -> {"cmd": "stats"}
//   <- {"queries": 2, "batches": 1, "p50_us": ..., ...}
//
// A request the server cannot parse or serve yields an error line carrying
// whatever id was recovered: {"id": 7, "error": "..."}.
//
// The parser is a hand-rolled scanner for exactly this shape — unquoted
// whitespace is ignored, unknown keys are rejected (same typo discipline as
// ModelConfig), nesting is not supported. It exists so clients can be
// written in two lines of any language, not to be a JSON library.
#ifndef GCON_SERVE_WIRE_H_
#define GCON_SERVE_WIRE_H_

#include <string>

#include "serve/inference_session.h"

namespace gcon {

/// Commands a wire line can carry besides a query.
enum class WireCommand {
  kQuery,  ///< a ServeRequest (the common case)
  kStats,  ///< {"cmd": "stats"} — server counters + latency percentiles
  kQuit,   ///< {"cmd": "quit"} — close this connection
};

/// Parses one request line. Returns false and fills *error on malformed
/// input (*request keeps any id recovered before the failure, so the error
/// response can echo it). On success *command says what the line was; for
/// kQuery, *request is fully populated.
bool ParseWireRequest(const std::string& line, WireCommand* command,
                      ServeRequest* request, std::string* error);

/// Response line (17 significant digits, enough to round-trip doubles).
std::string FormatWireResponse(const ServeResponse& response);

/// Error line for a request that failed to parse or serve.
std::string FormatWireError(std::int64_t id, const std::string& error);

}  // namespace gcon

#endif  // GCON_SERVE_WIRE_H_
