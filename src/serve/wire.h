// Newline-delimited JSON-ish wire format for `gcon_cli serve`.
//
// One request per line, one response line per request, order preserved per
// connection (requests may be pipelined):
//
//   -> {"id": 7, "node": 12}
//   -> {"id": 8, "node": 3, "edges": [1, 5, 9]}
//   -> {"id": 9, "model": "alt", "node": 4}
//   -> {"id": 10, "features": [0.5, 0.0, ...], "edges": [1, 5]}
//   <- {"id": 7, "node": 12, "label": 2, "logits": [0.1, ...]}
//   <- {"id": 8, "node": 3, "label": 0, "logits": [...]}
//   <- ...
//   -> {"cmd": "stats"}
//   <- {"queries": 4, "batches": 2, ..., "models": [...]}
//   -> {"cmd": "list_models"}
//   <- {"models": [{"name": "default", ...}], "default": "default"}
//
// A "features" query is the inductive scenario: the line carries an unseen
// node's raw feature vector (length = the serving graph's feature dim) and
// optionally its edges into the serving population; "node" must be absent.
// "model" routes the query to a named artifact (multi-model serving);
// absent means the default (first-listed) model. "deadline_us" (positive
// integer) bounds how long the query may wait in queue: expired queries
// are dropped before execution with a coded error line.
//
// Admin verbs beyond stats/list_models/quit: {"cmd": "publish", "model":
// "name", "path": "/path/to.model"} hot-swaps a served artifact in place
// (same population required; answers {"published": ...} with the new
// metadata), and {"cmd": "drain"} stops admission while queued work
// flushes (answers {"draining": true}; subsequent queries get a coded
// "draining" rejection).
//
// {"cmd": "budget"} reports the privacy-budget accounting behind those
// publishes: per-model cumulative epsilon/delta charged in the budget
// ledger, the publish count, the configured --budget-cap (0 = unlimited,
// with "remaining" present only under a cap), and the ledger path. A
// publish that would push a model past the cap is refused with a coded
// "budget_exhausted" error line and the served artifact stays unchanged.
//
// Observability verbs: {"cmd": "metrics"} answers the process-wide
// Prometheus text exposition — a multi-line response, terminated by a
// "# EOF" line instead of the usual one-line framing (a bare `metrics`
// line is accepted too, so `echo metrics | nc host port` scrapes without
// JSON); {"cmd": "trace"} answers the last sampled per-request span
// timelines as one JSON line (obs/trace.h).
//
// Structured rejections (overload, deadline, draining) carry a machine-
// readable code alongside the message: {"id": 7, "code": "overloaded",
// "error": "..."} — see serve_error.h for the code vocabulary.
//
// A request the server cannot parse or serve yields an error line carrying
// whatever id was recovered: {"id": 7, "error": "..."}. Recovery is
// best-effort but deliberate: even when the defect precedes the "id" key,
// the parser re-scans the raw line for one so pipelined clients can
// correlate the failure (see RecoverWireId).
//
// The parser is a hand-rolled scanner for exactly this shape — unquoted
// whitespace is ignored, unknown keys are rejected (same typo discipline as
// ModelConfig), nesting is not supported. It exists so clients can be
// written in two lines of any language, not to be a JSON library. Lines
// longer than kMaxWireLineBytes are rejected and the connection closed (a
// stream that long has lost framing; there is nothing to resync on).
#ifndef GCON_SERVE_WIRE_H_
#define GCON_SERVE_WIRE_H_

#include <cstddef>
#include <string>

#include "serve/inference_session.h"
#include "serve/serve_error.h"

namespace gcon {

/// Hard cap on one wire line (request or response). Large enough for a
/// feature-carrying query over any of the bundled datasets (PubMed's 500
/// features at 17 significant digits is ~13 KB), small enough that a
/// client that lost framing cannot pin server memory.
inline constexpr std::size_t kMaxWireLineBytes = 1u << 20;

/// Commands a wire line can carry besides a query.
enum class WireCommand {
  kQuery,       ///< a ServeRequest (the common case)
  kStats,       ///< {"cmd": "stats"} — counters + latency percentiles
  kListModels,  ///< {"cmd": "list_models"} — served models + metadata
  kQuit,        ///< {"cmd": "quit"} — close this connection
  kPublish,     ///< {"cmd": "publish", "model": ..., "path": ...} hot-swap
  kDrain,       ///< {"cmd": "drain"} — stop admitting, flush queued work
  kMetrics,     ///< {"cmd": "metrics"} — Prometheus text, ends "# EOF"
  kTrace,       ///< {"cmd": "trace"} — last sampled span timelines as JSON
  kBudget,      ///< {"cmd": "budget"} — per-model DP budget totals/caps
};

/// Parses one request line. Returns false and fills *error on malformed
/// input (*request carries any id recoverable from the line — even one
/// past the defect — so the error response can echo it). On success
/// *command says what the line was; for kQuery, *request is fully
/// populated.
bool ParseWireRequest(const std::string& line, WireCommand* command,
                      ServeRequest* request, std::string* error);

/// Best-effort scan of a (possibly malformed) line for an `"id": <int>`
/// pair. Returns true and fills *id when one is found. Used to correlate
/// error responses for lines the full parser rejected.
bool RecoverWireId(const std::string& line, std::int64_t* id);

/// Response line (17 significant digits, enough to round-trip doubles).
std::string FormatWireResponse(const ServeResponse& response);

/// Error line for a request that failed to parse or serve.
std::string FormatWireError(std::int64_t id, const std::string& error);

/// Coded error line for a structured serving rejection:
/// {"id": I, "code": "overloaded", "error": "..."}. The code string is
/// ServeErrorCodeName's spelling — a client branches on it (retry with
/// backoff vs give up) without parsing the prose.
std::string FormatWireError(std::int64_t id, ServeErrorCode code,
                            const std::string& error);

}  // namespace gcon

#endif  // GCON_SERVE_WIRE_H_
