// The inference server: a ModelRouter's named InferenceSessions behind one
// shared-worker MicroBatcher, plus the TCP front end `gcon_cli serve`
// speaks.
//
// In-process use (tests, benches, embedding applications):
//
//   InferenceServer server(std::move(session), {.threads=2, .max_batch=32});
//   ServeResponse r = server.Query({.id=1, .node=v});   // blocking
//   // or pipeline: auto f = server.QueryAsync(req); ... f.get();
//
// Multi-model: construct with a vector of {name, session} entries — one
// process hosts several published artifacts. The batch workers are shared
// (ServeOptions.threads total, not per model); each model keeps its own
// pending queue, counters, and latency histogram, and a batch never mixes
// models. Requests route by ServeRequest.model; empty routes to the
// first-listed (default) model, so single-model clients never change.
//
// Every query is validated on the submitting thread (bad node, wrong-length
// features, unknown model -> throw at the call site, not a poisoned batch),
// then coalesced by the batcher; the batch handler gathers the propagated
// feature rows — encoding feature-carrying queries first — and runs one
// GEMM. Responses are bitwise identical to one-at-a-time offline inference,
// so clients cannot observe how their queries were batched or routed.
//
// The TCP front end is deliberately thin: a loopback-bound listener, one
// thread per connection, each request answered in order via QueryAsync so
// pipelined client batches coalesce in the batcher. Two transports share
// the port, negotiated from the connection's first byte: newline-JSON
// (serve/wire.h — the admin/debug transport) and length-prefixed binary
// frames (serve/frame.h — the fast path, whose f32 feature payloads are
// gathered into the GEMM panel without a copy or a text round-trip). Both
// answer identical bits. It exists to demonstrate and smoke-test the
// deployment story end to end, not to be a production RPC stack.
#ifndef GCON_SERVE_SERVER_H_
#define GCON_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dp/budget_ledger.h"
#include "serve/batcher.h"
#include "serve/inference_session.h"
#include "serve/latency_stats.h"
#include "serve/router.h"

namespace gcon {

class InferenceServer {
 public:
  /// Single-model server: `session` becomes the router's only (default)
  /// entry, named "default". Starts options.threads batch workers.
  InferenceServer(InferenceSession session, ServeOptions options);

  /// Multi-model server: one named entry per published artifact, shared
  /// batch workers, per-model queues/stats. Throws std::invalid_argument
  /// on an empty set or duplicate/unsafe names (see ModelRouter).
  ///
  /// Privacy accounting: every loaded artifact is charged against the
  /// budget ledger (options.budget_ledger; in-memory when empty) keyed by
  /// (population fingerprint, model name) — UNLESS the ledger's last
  /// committed release for that key is this very artifact, in which case
  /// the prior charge stands (a restart never re-spends, and never resets
  /// the total to the artifact's own epsilon). The gcon_dp_epsilon gauge
  /// is set to the ledger's charged total. Throws BudgetExhaustedError
  /// when a load would push a model past options.budget_cap.
  InferenceServer(std::vector<ModelRouter::NamedModel> models,
                  ServeOptions options);

  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Validates, routes by request.model, and enqueues; the future resolves
  /// when the batch holding this query completes. Throws
  /// std::invalid_argument on an unknown model or a request its session
  /// cannot serve, and ServeError on overload (the model's queue is at
  /// max_queue) or a draining server. A request carrying deadline_us may
  /// resolve with ServeError(kDeadlineExceeded) instead of a value.
  std::future<ServeResponse> QueryAsync(ServeRequest request);

  /// Blocking convenience around QueryAsync.
  ServeResponse Query(ServeRequest request);

  /// Atomic hot-swap: `session` becomes the new version of served model
  /// `name` ("" = the default model). In-flight batches finish against the
  /// version they snapshotted; later batches read the new one; no accepted
  /// query is dropped. Throws std::invalid_argument on an unknown name or
  /// a population (node count / feature dim) mismatch.
  ///
  /// Budget enforcement: the incoming epsilon is reserved from the ledger
  /// BEFORE the swap — ServeError(kBudgetExhausted) when options.budget_cap
  /// would be exceeded, with the old bits still serving — and committed
  /// only after the swap succeeds, so a publish that throws for any reason
  /// leaves both the ledger and the gauge untouched.
  void Publish(const std::string& name, InferenceSession session);

  /// The {"cmd": "publish"} verb: loads the artifact at `path` over the
  /// target model's own shared serving graph, hot-swaps it in, and returns
  /// the deterministic response line {"published": ..., metadata...,
  /// "epsilon": the release's charge, "epsilon_total": the model's charged
  /// total after it}. Throws (std::invalid_argument / std::runtime_error
  /// naming the path) on an unknown model, unreadable artifact, or
  /// population mismatch, and ServeError(kBudgetExhausted) on a refused
  /// over-cap publish — budget untouched in every failure case.
  std::string PublishFromFile(const std::string& name,
                              const std::string& path);

  /// Stops admitting queries — QueryAsync throws ServeError(kDraining) —
  /// while everything already accepted keeps completing. The {"cmd":
  /// "drain"} verb; the first half of Drain().
  void BeginDrain();

  /// Graceful shutdown: BeginDrain, flush every accepted query, join the
  /// batch workers. `gcon_cli serve` calls this after SIGTERM so accepted
  /// queries are never dropped. Idempotent.
  void Drain();

  /// The default model's session (the only one for single-model servers).
  const InferenceSession& session() const { return router_.session(0); }
  const ModelRouter& router() const { return router_; }
  const ServeOptions& options() const { return batcher_->options(); }

  /// Enqueue-to-completion latency across all completed queries of every
  /// model (merged histograms); the indexed form reads one model's.
  LatencyStats::Snapshot latency() const;
  LatencyStats::Snapshot latency(int model) const;
  std::uint64_t queries_served() const;
  std::uint64_t batches_run() const;

  /// Drops the counters and histograms of every model (call quiesced; see
  /// MicroBatcher::ResetCounters). Benches separate warm-up from the
  /// measured run with this.
  void ResetStats();

  /// {"queries": ..., "batches": ..., "mean_batch": ..., percentiles...,
  /// "models": [{"name": ..., per-model counters...}, ...]} — the stats
  /// line the wire protocol returns for {"cmd": "stats"}.
  std::string StatsJson() const;

  /// The {"cmd": "list_models"} response (ModelRouter::ListModelsJson).
  std::string ListModelsJson() const { return router_.ListModelsJson(); }

  /// The {"cmd": "budget"} response: one entry per model with the charged
  /// cumulative epsilon/delta, publish count, the configured cap
  /// ("remaining" present only when a cap is set), plus the ledger path
  /// and whether it is persistent. Deterministic field order, locked by
  /// the conformance goldens on both transports.
  std::string BudgetJson() const;

  /// The process-lifetime budget ledger backing this server's accounting.
  const BudgetLedger& budget_ledger() const { return *ledger_; }

  /// The `metrics` admin verb's body: refreshes the scrape-time metric
  /// mirrors (queue depth/peak, accepted totals) and renders the global
  /// registry's Prometheus text exposition. Both transports answer with
  /// exactly this string.
  std::string MetricsText();

  /// Joins the batch workers; pending queries complete first.
  void Stop();

 private:
  /// Shared accounting path of Publish/PublishFromFile: reserve (throws
  /// the coded budget_exhausted rejection when over cap), swap, then
  /// commit-or-abort. Returns the model's charged epsilon total after the
  /// commit. `publish_mu_` serializes it so reserve order matches swap
  /// order and the gauge never regresses under concurrent publishes.
  double PublishAccounted(const std::string& target,
                          InferenceSession session);

  ModelRouter router_;
  /// Budget accounting (construction order matters: charged before the
  /// batcher starts accepting queries). model_fp_[m] is the serving
  /// population's fingerprint — the ledger key's graph half — fixed at
  /// construction because a swap never changes the population.
  std::unique_ptr<BudgetLedger> ledger_;
  std::vector<std::uint64_t> model_fp_;
  double budget_cap_ = 0.0;
  std::mutex publish_mu_;
  std::unique_ptr<MicroBatcher> batcher_;
};

/// Runs the TCP front end on 127.0.0.1:`port` (port 0 picks an ephemeral
/// port). Prints one "serving on 127.0.0.1:<port> ..." line to stderr once
/// the socket is listening — and publishes the bound port to *bound_port
/// when given, so in-process callers (tests) can connect to an ephemeral
/// port — then accepts until `shutdown` (when given) becomes true or the
/// process dies. Each connection's transport is sniffed from its first
/// byte: 0xC0 starts the binary frame handshake (serve/frame.h), anything
/// else is served line-by-line per serve/wire.h.
/// Robustness: transient accept failures (EINTR/ECONNABORTED, and
/// EMFILE/ENFILE-style exhaustion with doubling backoff) are logged and
/// survived, never fatal; every accepted socket gets
/// ServeOptions.io_timeout_ms read/write timeouts so a stalled client is
/// disconnected instead of pinning its thread; writes are SIGPIPE-safe.
/// Returns 0 on clean shutdown (callers then Drain() the server to flush
/// accepted queries); throws std::runtime_error on socket setup failure
/// (port in use, ...).
int RunTcpServer(InferenceServer* server, int port,
                 const std::atomic<bool>* shutdown = nullptr,
                 std::atomic<int>* bound_port = nullptr);

}  // namespace gcon

#endif  // GCON_SERVE_SERVER_H_
