// The inference server: an InferenceSession behind a MicroBatcher, plus
// the TCP front end `gcon_cli serve` speaks.
//
// In-process use (tests, benches, embedding applications):
//
//   InferenceServer server(std::move(session), {.threads=2, .max_batch=32});
//   ServeResponse r = server.Query({.id=1, .node=v});   // blocking
//   // or pipeline: auto f = server.QueryAsync(req); ... f.get();
//
// Every query is validated on the submitting thread (bad node -> throw at
// the call site, not a poisoned batch), then coalesced by the batcher; the
// batch handler gathers the propagated feature rows and runs one GEMM.
// Responses are bitwise identical to one-at-a-time offline inference, so
// clients cannot observe how their queries were batched.
//
// The TCP front end is deliberately thin: newline-delimited wire requests
// (serve/wire.h) on a loopback-bound listener, one thread per connection,
// each line answered in order via QueryAsync so pipelined client batches
// coalesce in the batcher. It exists to demonstrate and smoke-test the
// deployment story end to end, not to be a production RPC stack.
#ifndef GCON_SERVE_SERVER_H_
#define GCON_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "serve/batcher.h"
#include "serve/inference_session.h"
#include "serve/latency_stats.h"

namespace gcon {

class InferenceServer {
 public:
  /// Starts options.threads batch workers over `session`.
  InferenceServer(InferenceSession session, ServeOptions options);
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Validates and enqueues; the future resolves when the batch holding
  /// this query completes. Throws std::invalid_argument on a request the
  /// session cannot serve.
  std::future<ServeResponse> QueryAsync(ServeRequest request);

  /// Blocking convenience around QueryAsync.
  ServeResponse Query(ServeRequest request);

  const InferenceSession& session() const { return session_; }
  const ServeOptions& options() const { return batcher_->options(); }

  /// Enqueue-to-completion latency across all completed queries.
  LatencyStats::Snapshot latency() const;
  std::uint64_t queries_served() const;
  std::uint64_t batches_run() const;

  /// Drops the counters and histogram (call quiesced; see
  /// MicroBatcher::ResetCounters). Benches separate warm-up from the
  /// measured run with this.
  void ResetStats();

  /// {"queries": ..., "batches": ..., "mean_batch": ..., percentiles...} —
  /// the stats line the wire protocol returns for {"cmd": "stats"}.
  std::string StatsJson() const;

  /// Joins the batch workers; pending queries complete first.
  void Stop();

 private:
  InferenceSession session_;
  std::unique_ptr<MicroBatcher> batcher_;
};

/// Runs the TCP front end on 127.0.0.1:`port` (port 0 picks an ephemeral
/// port). Prints one "serving on 127.0.0.1:<port> ..." line to stdout once
/// the socket is listening, then accepts until `shutdown` (when given)
/// becomes true or the process dies; each connection is served line-by-line
/// per serve/wire.h. Returns 0 on clean shutdown; throws std::runtime_error
/// on socket setup failure (port in use, ...).
int RunTcpServer(InferenceServer* server, int port,
                 const std::atomic<bool>* shutdown = nullptr);

}  // namespace gcon

#endif  // GCON_SERVE_SERVER_H_
