#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "linalg/ops.h"
#include "serve/wire.h"

namespace gcon {
namespace {

std::vector<ModelRouter::NamedModel> SingleModel(InferenceSession session) {
  std::vector<ModelRouter::NamedModel> models;
  models.push_back({"default", std::move(session)});
  return models;
}

}  // namespace

InferenceServer::InferenceServer(InferenceSession session,
                                 ServeOptions options)
    : InferenceServer(SingleModel(std::move(session)), options) {}

InferenceServer::InferenceServer(std::vector<ModelRouter::NamedModel> models,
                                 ServeOptions options)
    : router_(std::move(models)) {
  // One handler per model, all run by the batcher's shared workers: one
  // gather + one GEMM per batch, then per-query argmax. The sessions are
  // immutable after construction (and their addresses stable inside
  // router_), so concurrent batches need no locking.
  std::vector<MicroBatcher::BatchHandler> handlers;
  handlers.reserve(static_cast<std::size_t>(router_.size()));
  for (int m = 0; m < router_.size(); ++m) {
    const InferenceSession* session = &router_.session(m);
    handlers.push_back([session](std::vector<PendingQuery*>& batch) {
      std::vector<const ServeRequest*> requests;
      requests.reserve(batch.size());
      for (PendingQuery* p : batch) requests.push_back(&p->request);
      const Matrix logits = session->QueryBatch(requests);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i]->response.logits = logits.RowCopy(i);
        batch[i]->response.label =
            static_cast<int>(RowArgMax(logits, i));
      }
    });
  }
  batcher_ = std::make_unique<MicroBatcher>(options, std::move(handlers));
}

InferenceServer::~InferenceServer() { Stop(); }

void InferenceServer::Stop() { batcher_->Stop(); }

std::future<ServeResponse> InferenceServer::QueryAsync(ServeRequest request) {
  const int model = router_.Resolve(request.model);
  router_.session(model).ValidateRequest(request);
  return batcher_->Submit(static_cast<std::size_t>(model),
                          std::move(request));
}

ServeResponse InferenceServer::Query(ServeRequest request) {
  return QueryAsync(std::move(request)).get();
}

LatencyStats::Snapshot InferenceServer::latency() const {
  if (router_.size() == 1) return batcher_->latency(0).Summarize();
  LatencyStats merged;
  for (int m = 0; m < router_.size(); ++m) {
    merged.Add(batcher_->latency(static_cast<std::size_t>(m)));
  }
  return merged.Summarize();
}

LatencyStats::Snapshot InferenceServer::latency(int model) const {
  return batcher_->latency(static_cast<std::size_t>(model)).Summarize();
}

std::uint64_t InferenceServer::queries_served() const {
  return batcher_->queries_served();
}

std::uint64_t InferenceServer::batches_run() const {
  return batcher_->batches_run();
}

void InferenceServer::ResetStats() { batcher_->ResetCounters(); }

namespace {

void AppendCounters(std::ostream* out, std::uint64_t queries,
                    std::uint64_t batches,
                    const LatencyStats::Snapshot& lat) {
  *out << "\"queries\": " << queries << ", \"batches\": " << batches
       << ", \"mean_batch\": "
       << (batches == 0 ? 0.0
                        : static_cast<double>(queries) /
                              static_cast<double>(batches))
       << ", \"mean_us\": " << lat.mean_us << ", \"p50_us\": " << lat.p50_us
       << ", \"p95_us\": " << lat.p95_us << ", \"p99_us\": " << lat.p99_us
       << ", \"max_us\": " << lat.max_us;
}

}  // namespace

std::string InferenceServer::StatsJson() const {
  std::ostringstream out;
  out.precision(6);
  out << "{";
  AppendCounters(&out, queries_served(), batches_run(), latency());
  out << ", \"models\": [";
  for (int m = 0; m < router_.size(); ++m) {
    out << (m == 0 ? "" : ", ") << "{\"name\": \"" << router_.name(m)
        << "\", ";
    AppendCounters(&out,
                   batcher_->queries_served(static_cast<std::size_t>(m)),
                   batcher_->batches_run(static_cast<std::size_t>(m)),
                   latency(m));
    out << "}";
  }
  out << "]}";
  return out.str();
}

namespace {

[[noreturn]] void SocketError(const std::string& what) {
  throw std::runtime_error("serve: " + what + " (" +
                           std::strerror(errno) + ")");
}

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal — a retry, not an error
    if (n <= 0) return;  // client went away; the connection loop will see EOF
    sent += static_cast<std::size_t>(n);
  }
}

/// Serves one connection line-by-line. Query lines are pipelined through
/// QueryAsync (so a burst from one client coalesces into one batch);
/// responses flush in request order at chunk boundaries and before any
/// admin/quit/error line, preserving the ordered-wire contract.
void ServeConnection(InferenceServer* server, int fd) {
  std::string buffer;
  struct InFlight {
    std::int64_t id;
    std::future<ServeResponse> future;
  };
  std::deque<InFlight> pending;
  char chunk[4096];

  auto flush_pending = [&] {
    while (!pending.empty()) {
      try {
        const ServeResponse response = pending.front().future.get();
        SendAll(fd, FormatWireResponse(response) + "\n");
      } catch (const std::exception& e) {
        // Batch-handler failure: the error line must still carry the id
        // the client used, or a pipelined client cannot attribute it.
        SendAll(fd, FormatWireError(pending.front().id, e.what()) + "\n");
      }
      pending.pop_front();
    }
  };

  // A line (or partial line) past the size cap means the client lost
  // framing — report with whatever id is recoverable, then hang up; there
  // is no byte to resync on.
  auto oversized = [&](const std::string& data) {
    std::int64_t id = 0;
    RecoverWireId(data, &id);
    flush_pending();
    SendAll(fd, FormatWireError(
                    id, "oversized request line (limit " +
                            std::to_string(kMaxWireLineBytes) + " bytes)") +
                    "\n");
    ::close(fd);
  };

  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t eol = buffer.find('\n', start);
         eol != std::string::npos; eol = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, eol - start);
      start = eol + 1;
      if (line.size() > kMaxWireLineBytes) {
        oversized(line);
        return;
      }
      if (line.empty() ||
          line.find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      WireCommand command;
      ServeRequest request;
      std::string error;
      if (!ParseWireRequest(line, &command, &request, &error)) {
        flush_pending();
        SendAll(fd, FormatWireError(request.id, error) + "\n");
        continue;
      }
      if (command == WireCommand::kStats) {
        flush_pending();
        SendAll(fd, server->StatsJson() + "\n");
        continue;
      }
      if (command == WireCommand::kListModels) {
        flush_pending();
        SendAll(fd, server->ListModelsJson() + "\n");
        continue;
      }
      if (command == WireCommand::kQuit) {
        flush_pending();
        ::close(fd);
        return;
      }
      try {
        const std::int64_t id = request.id;
        pending.push_back({id, server->QueryAsync(std::move(request))});
      } catch (const std::exception& e) {
        flush_pending();
        SendAll(fd, FormatWireError(request.id, e.what()) + "\n");
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxWireLineBytes) {
      oversized(buffer);
      return;
    }
    flush_pending();
  }
  ::close(fd);
}

}  // namespace

int RunTcpServer(InferenceServer* server, int port,
                 const std::atomic<bool>* shutdown,
                 std::atomic<int>* bound_port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) SocketError("cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd);
    SocketError("cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd, 128) != 0) {
    ::close(listen_fd);
    SocketError("cannot listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int actual_port = ntohs(addr.sin_port);

  std::cout << "serving on 127.0.0.1:" << actual_port << " (models="
            << server->router().NameList() << ", "
            << server->session().num_nodes() << " nodes, "
            << server->session().num_classes() << " classes, threads="
            << server->options().threads << " max_batch="
            << server->options().max_batch << " max_wait_us="
            << server->options().max_wait_us << ")" << std::endl;
  if (bound_port != nullptr) {
    bound_port->store(actual_port, std::memory_order_release);
  }

  // Connection threads are detached and counted: a long-running server
  // must reclaim each thread's stack when its client disconnects, not
  // accumulate joinable handles until shutdown.
  auto active = std::make_shared<std::atomic<int>>(0);
  for (;;) {
    if (shutdown != nullptr && shutdown->load(std::memory_order_acquire)) {
      break;
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout (recheck shutdown) or EINTR
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    active->fetch_add(1, std::memory_order_acq_rel);
    std::thread([server, fd, active] {
      ServeConnection(server, fd);
      active->fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
  }
  ::close(listen_fd);
  // Clean shutdown: the detached handlers borrow `server`; wait for every
  // open connection to finish before handing control back.
  while (active->load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

}  // namespace gcon
